//! End-to-end tests of the paper's headline claims, at reduced scale.
//!
//! Each test runs full simulations through the public API and checks the
//! *direction* of a published result (who wins, and that the win is
//! material). Magnitudes are asserted loosely — the substrate is a
//! calibrated simulator, not the authors' testbed (see DESIGN.md).

use qoserve::prelude::*;

fn hw() -> HardwareConfig {
    HardwareConfig::llama3_8b_a100_tp1()
}

fn trace(dataset: Dataset, qps: f64, secs: u64, seed: u64) -> Trace {
    TraceBuilder::new(dataset)
        .arrivals(ArrivalProcess::poisson(qps))
        .duration(SimDuration::from_secs(secs))
        .paper_tier_mix()
        .build(&SeedStream::new(seed))
}

fn violations(trace: &Trace, spec: &SchedulerSpec, seed: u64) -> SloReport {
    let config = ClusterConfig::new(hw());
    let outcomes = run_shared(trace, 1, spec, &config, &SeedStream::new(seed));
    SloReport::compute(&outcomes, trace.long_prompt_threshold())
}

/// §4.2 / Fig. 11: at heavy overload QoServe has an order of magnitude
/// fewer violations than FCFS and EDF.
#[test]
fn overload_violation_gap_is_an_order_of_magnitude() {
    let t = trace(Dataset::azure_code(), 6.0, 2_400, 1);
    let fcfs = violations(&t, &SchedulerSpec::sarathi_fcfs(), 1).violation_pct();
    let edf = violations(&t, &SchedulerSpec::sarathi_edf(), 1).violation_pct();
    let qs = violations(&t, &SchedulerSpec::qoserve(), 1).violation_pct();
    assert!(
        fcfs > 10.0 * qs.max(0.5),
        "FCFS {fcfs:.1}% should be >= 10x QoServe {qs:.1}%"
    );
    assert!(
        edf > 5.0 * qs.max(0.5),
        "EDF {edf:.1}% should be far above QoServe {qs:.1}%"
    );
}

/// §2.4 / Fig. 2: SRPF starves long requests even at loads where QoServe
/// serves them cleanly.
#[test]
fn srpf_is_unfair_to_long_requests() {
    let t = trace(Dataset::azure_code(), 4.5, 2_400, 2);
    let srpf = violations(&t, &SchedulerSpec::sarathi_srpf(), 2);
    let qs = violations(&t, &SchedulerSpec::qoserve(), 2);
    assert!(
        srpf.long_violation_pct() > 10.0,
        "SRPF long violations {:.1}% should be substantial",
        srpf.long_violation_pct()
    );
    assert!(
        qs.long_violation_pct() < srpf.long_violation_pct() / 4.0,
        "QoServe long violations {:.1}% vs SRPF {:.1}%",
        qs.long_violation_pct(),
        srpf.long_violation_pct()
    );
    // And SRPF's unfairness: long requests fare far worse than short ones.
    assert!(srpf.long_violation_pct() > 5.0 * srpf.short_violation_pct().max(0.2));
}

/// §4.1.1 / Table 4: a shared QoServe pool needs fewer replicas than a
/// siloed deployment at the same load and SLOs.
#[test]
fn shared_qoserve_beats_siloed_on_gpu_count() {
    let t = trace(Dataset::azure_code(), 14.0, 1_200, 3);
    let config = ClusterConfig::new(hw());
    let seeds = SeedStream::new(3);

    // Siloed: size each silo independently (interactive chunk 256, batch
    // chunk 2048), mimicking the paper's capacity estimation.
    let interactive = SchedulerSpec::Sarathi {
        policy: OrderPolicy::Fcfs,
        chunk: 256,
    };
    let batch = SchedulerSpec::Sarathi {
        policy: OrderPolicy::Fcfs,
        chunk: 2_048,
    };
    let mut siloed_total = 0u32;
    for (tier, spec) in [
        (TierId::Q1, &interactive),
        (TierId::Q2, &batch),
        (TierId::Q3, &batch),
    ] {
        let sub = Trace::from_requests(
            "silo",
            t.requests()
                .iter()
                .filter(|r| r.tier() == tier)
                .copied()
                .collect(),
        );
        let n = min_replicas_for(&sub, spec, &config, 1.0, 12, &seeds)
            .expect("12 replicas must cover a third of the load");
        siloed_total += n;
    }

    let shared = min_replicas_for(&t, &SchedulerSpec::qoserve(), &config, 1.0, 12, &seeds)
        .expect("12 replicas must cover the full load");

    assert!(
        shared < siloed_total,
        "QoServe shared ({shared}) should need fewer GPUs than siloed ({siloed_total})"
    );
}

/// §4.4.1 / Table 5: each technique helps — capacity rises monotonically
/// from EDF through DC, and overload violations fall through ER and HP.
#[test]
fn ablation_is_monotone() {
    let overload = trace(Dataset::azure_code(), 9.0, 1_800, 4);
    let edf = violations(&overload, &SchedulerSpec::sarathi_edf(), 4).violation_pct();
    let dc = violations(
        &overload,
        &SchedulerSpec::qoserve_with(QoServeConfig::ablation_dc()),
        4,
    )
    .violation_pct();
    let dc_er = violations(
        &overload,
        &SchedulerSpec::qoserve_with(QoServeConfig::ablation_dc_er()),
        4,
    )
    .violation_pct();
    let full = violations(
        &overload,
        &SchedulerSpec::qoserve_with(QoServeConfig::ablation_full()),
        4,
    )
    .violation_pct();
    assert!(dc < edf, "DC {dc:.1}% should improve on EDF {edf:.1}%");
    assert!(dc_er <= dc, "ER {dc_er:.1}% should improve on DC {dc:.1}%");
    assert!(
        full < dc_er,
        "HP {full:.1}% should improve on DC+ER {dc_er:.1}% at overload"
    );
}

/// §4.3 / Fig. 12: under a diurnal overload with free-tier tagging,
/// QoServe keeps important requests nearly violation-free while shedding
/// a bounded slice.
#[test]
fn important_requests_survive_transient_overload() {
    let t = TraceBuilder::new(Dataset::azure_code())
        .arrivals(ArrivalProcess::DiurnalSquare {
            low_qps: 3.0,
            high_qps: 8.0,
            half_period: SimDuration::from_secs(300),
        })
        .duration(SimDuration::from_secs(2_400))
        .paper_tier_mix()
        .low_priority_fraction(0.2)
        .build(&SeedStream::new(5));

    let qs = violations(&t, &SchedulerSpec::qoserve(), 5);
    let fcfs = violations(&t, &SchedulerSpec::sarathi_fcfs(), 5);

    assert!(
        qs.important_violation_pct() < 2.0,
        "important violations {:.2}% should be near zero",
        qs.important_violation_pct()
    );
    assert!(
        fcfs.violation_pct() > 3.0 * qs.violation_pct().max(1.0),
        "FCFS {:.1}% vs QoServe {:.1}%",
        fcfs.violation_pct(),
        qs.violation_pct()
    );
    assert!(
        qs.relegated_fraction < 0.35,
        "relegation should shed a bounded slice, got {:.0}%",
        qs.relegated_fraction * 100.0
    );
}

/// §4.1.2 / Fig. 7 (one cell): goodput ordering QoServe > EDF > FCFS on
/// the Azure-Code trace.
#[test]
fn goodput_ordering_holds() {
    let config = ClusterConfig::new(hw());
    let options = GoodputOptions {
        window: SimDuration::from_secs(1_200),
        resolution: 0.25,
        ..Default::default()
    };
    let seeds = SeedStream::new(6);
    let g =
        |spec: &SchedulerSpec| max_goodput(&Dataset::azure_code(), spec, &config, &options, &seeds);
    let fcfs = g(&SchedulerSpec::sarathi_fcfs());
    let edf = g(&SchedulerSpec::sarathi_edf());
    let qs = g(&SchedulerSpec::qoserve());
    assert!(edf > fcfs, "EDF {edf} should beat FCFS {fcfs}");
    assert!(qs > edf, "QoServe {qs} should beat EDF {edf}");
    assert!(
        qs / fcfs > 1.5,
        "QoServe/FCFS ratio {:.2} should be material (paper: 1.5-2.4x)",
        qs / fcfs
    );
}
