//! Request arrival processes.
//!
//! The paper generates arrivals from a Poisson process at a target QPS
//! (§4, following Sarathi's methodology), and evaluates transient overload
//! with a diurnal square wave alternating between a low and a high rate
//! every 15 minutes (Fig. 12a).

use rand::Rng;
use serde::{Deserialize, Serialize};

use qoserve_sim::rng::exponential_gap_secs;
use qoserve_sim::{SimDuration, SimTime};

/// How request arrival times are generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate.
    Poisson {
        /// Mean arrival rate in requests per second.
        qps: f64,
    },
    /// Piecewise-Poisson square wave: `low_qps` and `high_qps` alternate
    /// every `half_period` (the paper uses 2.0 / 5.0 QPS and 15 minutes).
    /// The wave starts in the low phase.
    DiurnalSquare {
        /// Rate during the low phase.
        low_qps: f64,
        /// Rate during the high phase.
        high_qps: f64,
        /// Duration of each phase.
        half_period: SimDuration,
    },
    /// Deterministic arrivals at an exact spacing (useful for tests and for
    /// the Medha chunking comparison where queueing noise is unwanted).
    Uniform {
        /// Arrival rate in requests per second.
        qps: f64,
    },
}

impl ArrivalProcess {
    /// Poisson arrivals at `qps`.
    ///
    /// # Panics
    ///
    /// Panics if `qps` is not strictly positive.
    pub fn poisson(qps: f64) -> Self {
        assert!(qps > 0.0, "qps must be positive");
        ArrivalProcess::Poisson { qps }
    }

    /// The paper's Fig. 12 workload: 2 ↔ 5 QPS every 15 minutes.
    pub fn paper_diurnal() -> Self {
        ArrivalProcess::DiurnalSquare {
            low_qps: 2.0,
            high_qps: 5.0,
            half_period: SimDuration::from_secs(15 * 60),
        }
    }

    /// Deterministic arrivals at `qps`.
    ///
    /// # Panics
    ///
    /// Panics if `qps` is not strictly positive.
    pub fn uniform(qps: f64) -> Self {
        assert!(qps > 0.0, "qps must be positive");
        ArrivalProcess::Uniform { qps }
    }

    /// Long-run mean rate of the process in requests per second.
    pub fn mean_qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { qps } | ArrivalProcess::Uniform { qps } => qps,
            ArrivalProcess::DiurnalSquare {
                low_qps, high_qps, ..
            } => (low_qps + high_qps) / 2.0,
        }
    }

    /// The instantaneous rate at `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match *self {
            ArrivalProcess::Poisson { qps } | ArrivalProcess::Uniform { qps } => qps,
            ArrivalProcess::DiurnalSquare {
                low_qps,
                high_qps,
                half_period,
            } => {
                let phase = (t.as_micros() / half_period.as_micros().max(1)) % 2;
                if phase == 0 {
                    low_qps
                } else {
                    high_qps
                }
            }
        }
    }

    /// Generates the first `count` arrival times.
    pub fn generate_count<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<SimTime> {
        let mut times = Vec::with_capacity(count);
        let mut t = SimTime::ZERO;
        while times.len() < count {
            t = self.next_after(t, rng);
            times.push(t);
        }
        times
    }

    /// Generates every arrival within `[0, duration)`.
    pub fn generate_for<R: Rng + ?Sized>(
        &self,
        duration: SimDuration,
        rng: &mut R,
    ) -> Vec<SimTime> {
        let mut times = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            t = self.next_after(t, rng);
            if t.duration_since(SimTime::ZERO) >= duration {
                return times;
            }
            times.push(t);
        }
    }

    /// The next arrival strictly after `t`.
    ///
    /// For the diurnal wave this uses thinning-free piecewise generation:
    /// the gap is drawn at the current phase's rate and re-drawn from the
    /// phase boundary if it crosses into the next phase (exactly correct
    /// for piecewise-constant rates thanks to memorylessness).
    pub fn next_after<R: Rng + ?Sized>(&self, t: SimTime, rng: &mut R) -> SimTime {
        match *self {
            ArrivalProcess::Poisson { qps } => {
                t + SimDuration::from_secs_f64(exponential_gap_secs(rng, qps))
            }
            ArrivalProcess::Uniform { qps } => t + SimDuration::from_secs_f64(1.0 / qps),
            ArrivalProcess::DiurnalSquare { half_period, .. } => {
                let mut now = t;
                loop {
                    let rate = self.rate_at(now);
                    let gap = SimDuration::from_secs_f64(exponential_gap_secs(rng, rate));
                    let phase_index = now.as_micros() / half_period.as_micros().max(1);
                    let phase_end =
                        SimTime::from_micros((phase_index + 1) * half_period.as_micros());
                    let candidate = now + gap;
                    if candidate < phase_end {
                        return candidate.max(t + SimDuration::from_micros(1));
                    }
                    // Restart from the phase boundary at the new rate.
                    now = phase_end;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_sim::SeedStream;

    #[test]
    fn poisson_rate_matches_target() {
        let p = ArrivalProcess::poisson(5.0);
        let mut rng = SeedStream::new(1).derive("a");
        let times = p.generate_for(SimDuration::from_secs(2_000), &mut rng);
        let rate = times.len() as f64 / 2_000.0;
        assert!((rate - 5.0).abs() < 0.25, "rate was {rate}");
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        for proc in [
            ArrivalProcess::poisson(10.0),
            ArrivalProcess::uniform(10.0),
            ArrivalProcess::paper_diurnal(),
        ] {
            let mut rng = SeedStream::new(2).derive("inc");
            let times = proc.generate_count(2_000, &mut rng);
            for w in times.windows(2) {
                assert!(w[1] > w[0], "{proc:?} produced non-increasing arrivals");
            }
        }
    }

    #[test]
    fn uniform_is_exact() {
        let p = ArrivalProcess::uniform(4.0);
        let mut rng = SeedStream::new(3).derive("u");
        let times = p.generate_count(8, &mut rng);
        assert_eq!(times[0], SimTime::from_millis(250));
        assert_eq!(times[7], SimTime::from_secs(2));
    }

    #[test]
    fn diurnal_phases_have_different_rates() {
        let p = ArrivalProcess::DiurnalSquare {
            low_qps: 2.0,
            high_qps: 5.0,
            half_period: SimDuration::from_secs(900),
        };
        let mut rng = SeedStream::new(4).derive("d");
        let times = p.generate_for(SimDuration::from_secs(3_600), &mut rng);
        let in_window = |lo: u64, hi: u64| {
            times
                .iter()
                .filter(|t| t.as_secs_f64() >= lo as f64 && t.as_secs_f64() < hi as f64)
                .count() as f64
        };
        let low_rate = (in_window(0, 900) + in_window(1_800, 2_700)) / 1_800.0;
        let high_rate = (in_window(900, 1_800) + in_window(2_700, 3_600)) / 1_800.0;
        assert!((low_rate - 2.0).abs() < 0.35, "low phase rate {low_rate}");
        assert!((high_rate - 5.0).abs() < 0.5, "high phase rate {high_rate}");
    }

    #[test]
    fn rate_at_tracks_phase() {
        let p = ArrivalProcess::paper_diurnal();
        assert_eq!(p.rate_at(SimTime::ZERO), 2.0);
        assert_eq!(p.rate_at(SimTime::from_secs(900)), 5.0);
        assert_eq!(p.rate_at(SimTime::from_secs(1_800)), 2.0);
        assert_eq!(p.mean_qps(), 3.5);
    }

    #[test]
    fn generate_count_is_deterministic() {
        let p = ArrivalProcess::poisson(3.0);
        let a = p.generate_count(100, &mut SeedStream::new(5).derive("x"));
        let b = p.generate_count(100, &mut SeedStream::new(5).derive("x"));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "qps must be positive")]
    fn poisson_rejects_zero_rate() {
        let _ = ArrivalProcess::poisson(0.0);
    }
}
