//! CLI entry point: `cargo run -p qoserve-lint [-- --root PATH] [--fix-baseline]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use qoserve_lint::{lint_tree, load_baseline, summary, BASELINE_FILE};

struct Args {
    root: PathBuf,
    fix_baseline: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        fix_baseline: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root requires a path".to_string())?,
                );
            }
            "--fix-baseline" => args.fix_baseline = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                return Err("usage: qoserve-lint [--root PATH] [--fix-baseline] [--quiet]\n\
                            \n\
                            Lints every .rs file of the workspace for determinism, float-\n\
                            ordering, panic-hygiene, unstructured-output, and hot-path-alloc\n\
                            violations. See DESIGN.md\n\
                            (\"Static analysis & the determinism contract\") for the rules.\n\
                            \n\
                            --root PATH       workspace root to lint (default: .)\n\
                            --fix-baseline    rewrite lint-baseline.toml with current ratcheted\n\
                            \u{20}                 counts (ratchet down; other rules must be clean)\n\
                            --quiet           suppress the summary, print diagnostics only"
                    .to_string());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let baseline = match load_baseline(&args.root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("qoserve-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match lint_tree(&args.root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("qoserve-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &report.diagnostics {
        println!("{d}");
    }
    if !args.quiet {
        print!("{}", summary(&report));
    }

    if args.fix_baseline {
        // Refuse to lock in a baseline while non-ratcheted rules are
        // violated — the ratchet must never paper over live diagnostics.
        let non_ratcheted = report
            .diagnostics
            .iter()
            .filter(|d| {
                d.rule != qoserve_lint::rules::RULE_PANIC
                    && d.rule != qoserve_lint::rules::RULE_OUTPUT
                    && d.rule != qoserve_lint::rules::RULE_ALLOC
            })
            .count();
        if non_ratcheted > 0 {
            eprintln!(
                "qoserve-lint: refusing --fix-baseline with {non_ratcheted} non-ratcheted \
                 violation(s) outstanding"
            );
            return ExitCode::from(1);
        }
        let path = args.root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, report.counts.render()) {
            eprintln!("qoserve-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "qoserve-lint: wrote {} ({} file(s) with panic debt, {} with output debt, \
             {} with hot-path-alloc debt)",
            path.display(),
            report.counts.allowed.len(),
            report.counts.output_allowed.len(),
            report.counts.alloc_allowed.len()
        );
        return ExitCode::SUCCESS;
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
