//! Quickstart: co-serve an interactive chat request and a batch
//! summarisation job on one shared replica.
//!
//! ```sh
//! cargo run --release -p qoserve-examples --bin quickstart
//! ```

use qoserve::prelude::*;

fn main() {
    // One Llama3-8B replica on an A100, running the full QoServe
    // scheduler (dynamic chunking + hybrid prioritization + eager
    // relegation), deterministic under the given seed.
    let mut server = QoServe::builder(HardwareConfig::llama3_8b_a100_tp1())
        .seed(42)
        .build();

    // A latency-sensitive chat turn: first token within 6 s, smooth
    // 50 ms pacing afterwards.
    let chat = server.submit(
        Request::interactive(1_024, 200)
            .ttft_secs(6.0)
            .tbt_ms(50.0)
            .arriving_at_secs(0.10),
    );

    // A background document summarisation: only total completion time
    // matters (10 minutes).
    let summary = server.submit(
        Request::batch(8_192, 400)
            .ttlt_secs(600.0)
            .arriving_at_secs(0.15),
    );

    let report = server.run();

    for outcome in &report.outcomes {
        let kind = if outcome.spec.id == chat {
            "chat   "
        } else {
            "summary"
        };
        println!(
            "{kind}  TTFT {:>8}  TTLT {:>8}  worst token lateness {:>10}  violated: {}",
            outcome.ttft().map_or("-".into(), |d| d.to_string()),
            outcome.ttlt().map_or("-".into(), |d| d.to_string()),
            outcome.worst_token_lateness,
            outcome.violated(),
        );
    }
    assert_eq!(report.outcomes[1].spec.id, summary);

    println!(
        "\noverall: {}/{} requests met their QoS contract",
        report.slo.total - report.slo.violations,
        report.slo.total
    );
}
