//! Performance substrate for the QoServe reproduction.
//!
//! The paper's scheduler makes every decision against *predicted batch
//! latency*: dynamic chunking asks "what is the largest prefill chunk whose
//! iteration still fits inside the minimum decode slack?" (§3.3, §3.6.1).
//! The authors answer that with a lightweight random-forest model trained on
//! latency profiles collected through the Vidur simulator's profiling
//! harness. This crate rebuilds that whole pipeline:
//!
//! * [`hardware`] — model/GPU/parallelism descriptions and the three paper
//!   configurations (Table 1): Llama3-8B on A100 TP1, Qwen-7B on A100 TP2
//!   (MHA), Llama3-70B on H100 TP4.
//! * [`batch`] — [`BatchProfile`], the feature description of one mixed
//!   prefill+decode iteration.
//! * [`analytical`] — a calibrated roofline-style latency model standing in
//!   for real GPU kernels (see DESIGN.md for the substitution argument); it
//!   reproduces the Figure 4 throughput/latency-vs-chunk-size shape.
//! * [`profiler`] — the Vidur-like harness: sweeps the batch space and
//!   labels samples with the ground-truth model plus measurement noise.
//! * [`forest`] — a from-scratch CART + bagging random-forest regressor.
//! * [`predictor`] — [`LatencyPredictor`] (forest or analytical) and
//!   [`ChunkBudget`], the `GET_PREFILL_BUDGET` search of Algorithm 1.
//! * [`resilience`] — [`ErrorTracker`] (windowed observed/predicted
//!   latency-ratio quantiles) and [`AdaptiveMargin`], the online
//!   controller that retunes the predictor's safety margin under drift.
//!
//! # Example
//!
//! ```
//! use qoserve_perf::{BatchProfile, HardwareConfig, LatencyModel};
//!
//! let hw = HardwareConfig::llama3_8b_a100_tp1();
//! let model = LatencyModel::new(&hw);
//! let batch = BatchProfile::builder()
//!     .prefill_chunk(512, 0)
//!     .decodes(32, 32 * 1024)
//!     .build();
//! let latency = model.iteration_time(&batch);
//! assert!(latency.as_millis_f64() > 1.0);
//! ```

pub mod analytical;
pub mod batch;
pub mod forest;
pub mod hardware;
pub mod predictor;
pub mod profiler;
pub mod resilience;

pub use analytical::LatencyModel;
pub use batch::{BatchProfile, BatchProfileBuilder, PrefillChunkProfile};
pub use forest::{RandomForest, RandomForestConfig};
pub use hardware::{AttentionKind, GpuSpec, HardwareConfig, ModelSpec, Parallelism};
pub use predictor::{ChunkBudget, ChunkLimits, LatencyPredictor, PredictorKind};
pub use profiler::{ProfileSample, Profiler, ProfilerConfig};
pub use resilience::{AdaptiveMargin, AdaptiveMarginConfig, ErrorTracker};
