//! §4.5.3: scheduling-overhead comparison with SLOs-Serve.
//!
//! The paper argues SLOs-Serve's periodic dynamic program costs
//! `O(N · N_new · M)` per decision while QoServe pops a priority queue in
//! `O(log N_new)` — so only QoServe scales to deep queues and large
//! deployments. This binary measures both schedulers' `plan_batch` wall
//! time directly as the prefill queue deepens, and also compares their
//! end-to-end SLO attainment at a moderate load (where both are healthy —
//! the overhead, not the policy, is the scaling story).

use std::time::Instant;

use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results};
use qoserve_sched::{Constraints, DecodeJob, PrefillJob};

fn queued<S: Scheduler>(sched: &mut S, n: u64) {
    for i in 0..n {
        let spec = RequestSpec {
            id: RequestId(i),
            arrival: SimTime::from_millis(i),
            prompt_tokens: 1_000 + (i % 7) as u32 * 300,
            decode_tokens: 100,
            slo: Slo::of_tier(QosTier::paper_tiers()[(i % 3) as usize]),
            app_id: (i % 3) as u32,
        };
        sched.on_arrival(PrefillJob::new(spec), spec.arrival);
    }
}

fn decode_pool(n: u64) -> Vec<DecodeJob> {
    (0..n)
        .map(|i| DecodeJob {
            id: RequestId(1_000_000 + i),
            context_len: 1_500,
            next_token_deadline: SimTime::from_secs(100),
            relegated: false,
        })
        .collect()
}

/// Mean wall time of `plan_batch` over `reps` fresh schedulers at queue
/// depth `n`, in microseconds.
fn plan_cost<F, S>(make: F, n: u64, reps: usize) -> f64
where
    F: Fn() -> S,
    S: Scheduler,
{
    let decodes = decode_pool(64);
    let mut total = std::time::Duration::ZERO;
    for _ in 0..reps {
        let mut sched = make();
        queued(&mut sched, n);
        let start = Instant::now();
        let plan = sched.plan_batch(SimTime::from_secs(1), &decodes, Constraints::unlimited());
        total += start.elapsed();
        std::hint::black_box(plan);
    }
    total.as_secs_f64() * 1e6 / reps as f64
}

fn main() {
    banner(
        "sched_overhead",
        "Per-decision scheduling cost: QoServe vs SLOs-Serve (§4.5.3)",
    );

    let hw = HardwareConfig::llama3_8b_a100_tp1();
    let mut table = Table::new(vec![
        "queue depth",
        "QoServe plan (us)",
        "SLOs-Serve plan (us)",
        "ratio",
    ]);
    let mut rows = Vec::new();
    for n in [100u64, 1_000, 5_000, 20_000] {
        let reps = if n >= 5_000 { 3 } else { 10 };
        let qs = plan_cost(
            || QoServeScheduler::new(QoServeConfig::default(), LatencyPredictor::analytical(&hw)),
            n,
            reps,
        );
        let slos = plan_cost(
            || {
                SlosServeScheduler::new(
                    SlosServeConfig::default(),
                    LatencyPredictor::analytical(&hw),
                )
            },
            n,
            reps,
        );
        table.row(vec![
            n.to_string(),
            format!("{qs:.0}"),
            format!("{slos:.0}"),
            format!("{:.0}x", slos / qs.max(1e-9)),
        ]);
        rows.push(serde_json::json!({
            "queue_depth": n,
            "qoserve_plan_us": qs,
            "slos_serve_plan_us": slos,
        }));
        eprintln!("  done: depth {n}");
    }
    print!("{table}");
    emit_results("sched_overhead", &rows);
    println!(
        "\npaper: SLOs-Serve's O(N*N_new*M) DP scales poorly with queue depth; \
         QoServe needs O(log N_new) per scheduled prefill"
    );

    // Policy sanity at healthy load: both attain SLOs, so the overhead is
    // the differentiator at scale.
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(3.0))
        .duration(SimDuration::from_secs(600))
        .paper_tier_mix()
        .build(&SeedStream::new(453));
    let config = ClusterConfig::new(hw);
    println!();
    for spec in [
        SchedulerSpec::qoserve(),
        SchedulerSpec::SlosServe {
            config: SlosServeConfig::default(),
        },
    ] {
        let outcomes = run_shared(&trace, 1, &spec, &config, &SeedStream::new(453));
        let report = SloReport::compute(&outcomes, trace.long_prompt_threshold());
        println!(
            "{:>12} at 3 QPS: {:.1}% violations",
            spec.label(),
            report.violation_pct()
        );
    }
}
