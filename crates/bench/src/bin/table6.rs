//! Table 6: robustness to skewed workload compositions.
//!
//! Interactive-dominant (70-15-15) and batch-dominant (15-15-70) splits
//! at 4.5 QPS. Expected shape: the baselines blow through every tier's
//! SLO; QoServe stays compliant by relegating a small slice and
//! exploiting dynamic chunking.

use qoserve::experiments::{run_run, scaled_window};
use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results};
use qoserve_metrics::SloReport;

fn main() {
    banner("table6", "Skewed workload compositions @ 4.5 QPS (Az-Code)");

    let hw = HardwareConfig::llama3_8b_a100_tp1();
    let schemes = [
        SchedulerSpec::sarathi_fcfs(),
        SchedulerSpec::sarathi_edf(),
        SchedulerSpec::qoserve(),
    ];
    let compositions = [
        ("70-15-15", TierMix::paper_interactive_dominant()),
        ("15-15-70", TierMix::paper_batch_dominant()),
    ];

    let mut table = Table::new(vec![
        "composition",
        "scheme",
        "Q1 p50 (6s)",
        "Q2 p50 (600s)",
        "Q3 p50 (1800s)",
        "% violations",
        "relegated",
    ]);
    let mut rows = Vec::new();
    for (name, mix) in &compositions {
        let trace = TraceBuilder::new(Dataset::azure_code())
            .arrivals(ArrivalProcess::poisson(4.5))
            .duration(scaled_window(3600))
            .tier_mix(mix.clone())
            .build(&SeedStream::new(6));
        let threshold = trace.long_prompt_threshold();
        for scheme in &schemes {
            let outcomes = run_run(&trace, scheme, &hw, 6);
            let report = SloReport::compute(&outcomes, threshold);
            table.row(vec![
                (*name).to_owned(),
                scheme.label(),
                format!("{:.2}", report.tier_summary(TierId::Q1).p50),
                format!("{:.2}", report.tier_summary(TierId::Q2).p50),
                format!("{:.2}", report.tier_summary(TierId::Q3).p50),
                format!("{:.1}%", report.violation_pct()),
                format!("{:.1}%", report.relegated_fraction * 100.0),
            ]);
            rows.push(serde_json::json!({
                "composition": name,
                "scheme": scheme.label(),
                "q1_p50_secs": report.tier_summary(TierId::Q1).p50,
                "q2_p50_secs": report.tier_summary(TierId::Q2).p50,
                "q3_p50_secs": report.tier_summary(TierId::Q3).p50,
                "violation_pct": report.violation_pct(),
                "relegated_pct": report.relegated_fraction * 100.0,
            }));
            eprintln!("  done: {name} / {}", scheme.label());
        }
    }
    print!("{table}");
    emit_results("table6", &rows);
    println!();
    println!(
        "paper: baselines violate 82-100% on both skews; QoServe 5% (70-15-15) and \
         0.5% (15-15-70) while relegating 0.5-5% of requests"
    );
}
