//! Execution-time noise.
//!
//! Real iteration latencies jitter around the model's prediction (clock
//! throttling, interference, kernel variance); the artifact appendix even
//! prescribes GPU clock locking to tame it. The simulator injects
//! multiplicative log-normal noise so schedulers cannot overfit an exact
//! latency oracle — this is precisely why the predictor's under-prediction
//! margin matters.

use rand_chacha::ChaCha8Rng;

use qoserve_sim::rng::sample_standard_normal;
use qoserve_sim::{SeedStream, SimDuration};

/// Multiplicative log-normal noise source for iteration latencies.
#[derive(Debug, Clone)]
pub struct ExecutionNoise {
    rng: ChaCha8Rng,
    sigma: f64,
}

impl ExecutionNoise {
    /// Creates a noise source with relative standard deviation `sigma`
    /// (0.02 ≈ 2 % jitter; 0 disables noise), seeded per replica.
    pub fn new(seeds: &SeedStream, replica: u32, sigma: f64) -> Self {
        ExecutionNoise {
            rng: seeds.derive_indexed("exec-noise", u64::from(replica)),
            sigma: sigma.max(0.0),
        }
    }

    /// Applies one noise draw to a clean latency.
    pub fn apply(&mut self, clean: SimDuration) -> SimDuration {
        if self.sigma == 0.0 {
            return clean;
        }
        let z = sample_standard_normal(&mut self.rng);
        // Log-normal with unit median: exp(sigma * z), clamped to avoid
        // pathological draws.
        let factor = (self.sigma * z).exp().clamp(0.5, 2.0);
        clean.mul_f64(factor)
    }

    /// The configured relative standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_identity() {
        let mut n = ExecutionNoise::new(&SeedStream::new(1), 0, 0.0);
        let d = SimDuration::from_millis(42);
        assert_eq!(n.apply(d), d);
    }

    #[test]
    fn noise_is_centered_and_small() {
        let mut n = ExecutionNoise::new(&SeedStream::new(2), 0, 0.02);
        let clean = SimDuration::from_millis(100);
        let samples: Vec<f64> = (0..5_000)
            .map(|_| n.apply(clean).as_millis_f64() / 100.0)
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean factor {mean}");
        assert!(samples.iter().all(|f| (0.8..1.2).contains(f)));
    }

    #[test]
    fn replicas_get_independent_streams() {
        let seeds = SeedStream::new(3);
        let mut a = ExecutionNoise::new(&seeds, 0, 0.05);
        let mut b = ExecutionNoise::new(&seeds, 1, 0.05);
        let d = SimDuration::from_millis(10);
        let same = (0..32).filter(|_| a.apply(d) == b.apply(d)).count();
        assert!(same < 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = SimDuration::from_millis(10);
        let mut a = ExecutionNoise::new(&SeedStream::new(4), 7, 0.05);
        let mut b = ExecutionNoise::new(&SeedStream::new(4), 7, 0.05);
        for _ in 0..16 {
            assert_eq!(a.apply(d), b.apply(d));
        }
    }

    #[test]
    fn negative_sigma_clamps_to_zero() {
        let n = ExecutionNoise::new(&SeedStream::new(5), 0, -1.0);
        assert_eq!(n.sigma(), 0.0);
    }

    #[test]
    fn zero_sigma_never_draws_from_the_rng() {
        // sigma = 0 must be an exact identity AND leave the stream
        // untouched, so enabling/disabling noise cannot shift other draws.
        let seeds = SeedStream::new(6);
        let mut silent = ExecutionNoise::new(&seeds, 0, 0.0);
        let mut live = ExecutionNoise::new(&seeds, 0, 0.05);
        let d = SimDuration::from_millis(33);
        for _ in 0..64 {
            assert_eq!(silent.apply(d), d);
        }
        // The live source still sees the pristine stream from the start.
        let mut fresh = ExecutionNoise::new(&seeds, 0, 0.05);
        assert_eq!(live.apply(d), fresh.apply(d));
    }

    #[test]
    fn identical_seed_and_replica_yield_identical_sequences() {
        // Full-sequence determinism across independently derived streams:
        // same root seed and replica index → every draw matches, for
        // several replica indices.
        for replica in [0u32, 1, 17, 4_096] {
            let mut a = ExecutionNoise::new(&SeedStream::new(9), replica, 0.03);
            let mut b = ExecutionNoise::new(&SeedStream::new(9), replica, 0.03);
            for i in 0..128 {
                let d = SimDuration::from_micros(1_000 + i);
                assert_eq!(a.apply(d), b.apply(d), "replica {replica}, draw {i}");
            }
        }
    }

    #[test]
    fn extreme_sigma_respects_clamp_bounds() {
        // With an absurd sigma almost every draw saturates; the factor
        // must never leave [0.5, 2.0].
        let mut n = ExecutionNoise::new(&SeedStream::new(10), 3, 1_000.0);
        let clean = SimDuration::from_millis(100);
        let (lo, hi) = (clean.mul_f64(0.5), clean.mul_f64(2.0));
        let mut saturated_low = 0u32;
        let mut saturated_high = 0u32;
        for _ in 0..2_000 {
            let noisy = n.apply(clean);
            assert!(noisy >= lo, "below the 0.5x clamp: {noisy:?}");
            assert!(noisy <= hi, "above the 2.0x clamp: {noisy:?}");
            if noisy == lo {
                saturated_low += 1;
            }
            if noisy == hi {
                saturated_high += 1;
            }
        }
        assert!(
            saturated_low > 500 && saturated_high > 500,
            "sigma=1000 should pin almost every draw to a clamp bound \
             ({saturated_low} low, {saturated_high} high)"
        );
    }

    #[test]
    fn different_root_seeds_decorrelate() {
        let d = SimDuration::from_millis(10);
        let mut a = ExecutionNoise::new(&SeedStream::new(11), 0, 0.05);
        let mut b = ExecutionNoise::new(&SeedStream::new(12), 0, 0.05);
        let same = (0..32).filter(|_| a.apply(d) == b.apply(d)).count();
        assert!(same < 4);
    }
}
