//! Availability, retry, and re-prefill accounting under fault injection.
//!
//! When the cluster layer injects faults (crashes, restarts, stragglers),
//! per-request latency percentiles no longer tell the whole story: what
//! matters is *where the lost work went* — completed after re-dispatch,
//! shed by tier-aware load shedding, or dropped when the retry budget ran
//! out — and what the recovery cost in re-prefilled prompt tokens. The
//! [`RecoveryReport`] aggregates exactly that, split by QoS tier, so
//! graceful-degradation claims can be checked per tier (does Q1 survive
//! while free-tier traffic is shed, or does everyone degrade together?).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use qoserve_workload::TierId;

use crate::outcome::{Disposition, RequestOutcome};

/// Recovery counters over one slice of traffic (one tier, or overall).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryCounts {
    /// Requests in the slice.
    pub total: usize,
    /// Requests that ran to completion.
    pub completed: usize,
    /// Completed requests that were relegated along the way.
    pub relegated_completed: usize,
    /// Requests still in flight/queued at the simulation end.
    pub unfinished: usize,
    /// Requests bounced at admission by rate limiting.
    pub rejected: usize,
    /// Requests dropped by tier-aware shedding.
    pub shed: usize,
    /// Requests lost to repeated crashes (retry budget exhausted).
    pub retry_exhausted: usize,
    /// Requests that needed at least one crash re-dispatch.
    pub retried: usize,
    /// Total re-dispatches across the slice.
    pub retries: u64,
    /// Prompt tokens prefilled again after their KV state died with a
    /// replica.
    pub reprefill_tokens: u64,
    /// Migrations off gracefully draining replicas (planned handoffs,
    /// counted separately from crash retries).
    #[serde(default)]
    pub drain_migrated: u64,
}

impl RecoveryCounts {
    fn record(&mut self, o: &RequestOutcome) {
        self.total += 1;
        match o.disposition {
            Disposition::Completed => {
                self.completed += 1;
                if o.relegated {
                    self.relegated_completed += 1;
                }
            }
            Disposition::Unfinished => self.unfinished += 1,
            Disposition::Rejected => self.rejected += 1,
            Disposition::Shed => self.shed += 1,
            Disposition::RetryExhausted => self.retry_exhausted += 1,
        }
        if o.retries > 0 {
            self.retried += 1;
        }
        self.retries += o.retries as u64;
        self.reprefill_tokens += o.reprefill_tokens;
        self.drain_migrated += o.drain_migrations as u64;
    }

    /// Fraction of the slice that completed, in `[0, 1]`.
    pub fn completion_fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.completed as f64 / self.total as f64
        }
    }
}

/// Per-tier (and overall) recovery accounting for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Counters per QoS tier.
    pub by_tier: BTreeMap<TierId, RecoveryCounts>,
    /// Counters over all traffic.
    pub overall: RecoveryCounts,
}

impl RecoveryReport {
    /// Aggregates `outcomes` into per-tier recovery counters.
    pub fn compute(outcomes: &[RequestOutcome]) -> Self {
        let mut report = RecoveryReport::default();
        for o in outcomes {
            report.overall.record(o);
            report.by_tier.entry(o.tier()).or_default().record(o);
        }
        report
    }

    /// Counters for one tier (zeroed when the tier saw no traffic).
    pub fn tier(&self, tier: TierId) -> RecoveryCounts {
        self.by_tier.get(&tier).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_sim::time::SignedDuration;
    use qoserve_sim::{SimDuration, SimTime};
    use qoserve_workload::{QosTier, RequestId, RequestSpec, Slo};

    fn spec(id: u64, tier: QosTier) -> RequestSpec {
        RequestSpec {
            id: RequestId(id),
            arrival: SimTime::ZERO,
            prompt_tokens: 500,
            decode_tokens: 10,
            slo: Slo::of_tier(tier),
            app_id: 0,
        }
    }

    fn completed(id: u64, tier: QosTier, relegated: bool, retries: u32) -> RequestOutcome {
        RequestOutcome {
            spec: spec(id, tier),
            first_token: Some(SimTime::from_secs(1)),
            completion: Some(SimTime::from_secs(2)),
            max_tbt: SimDuration::from_millis(30),
            worst_token_lateness: SignedDuration::from_micros(-1),
            relegated,
            replica: 0,
            disposition: Disposition::Completed,
            retries,
            reprefill_tokens: retries as u64 * 100,
            drain_migrations: 0,
        }
    }

    #[test]
    fn tallies_dispositions_by_tier() {
        let q1 = QosTier::paper_q1();
        let q3 = QosTier::paper_q3();
        let outcomes = vec![
            completed(0, q1, false, 0),
            completed(1, q1, true, 2),
            RequestOutcome::unserved(spec(2, q1), false, 0, Disposition::RetryExhausted),
            RequestOutcome::unserved(spec(3, q3), false, 0, Disposition::Shed),
            RequestOutcome::rejected(spec(4, q3), 0),
            RequestOutcome::unfinished(spec(5, q3), false, 0),
        ];
        let r = RecoveryReport::compute(&outcomes);
        assert_eq!(r.overall.total, 6);
        assert_eq!(r.overall.completed, 2);
        assert_eq!(r.overall.relegated_completed, 1);
        assert_eq!(r.overall.retry_exhausted, 1);
        assert_eq!(r.overall.shed, 1);
        assert_eq!(r.overall.rejected, 1);
        assert_eq!(r.overall.unfinished, 1);
        assert_eq!(r.overall.retried, 1);
        assert_eq!(r.overall.retries, 2);
        assert_eq!(r.overall.reprefill_tokens, 200);

        let t1 = r.tier(q1.id);
        assert_eq!((t1.total, t1.completed, t1.retry_exhausted), (3, 2, 1));
        let t3 = r.tier(q3.id);
        assert_eq!(
            (t3.total, t3.shed, t3.rejected, t3.unfinished),
            (3, 1, 1, 1)
        );
        assert_eq!(r.tier(TierId(9)).total, 0);
    }

    #[test]
    fn completion_fraction() {
        let q1 = QosTier::paper_q1();
        let outcomes = vec![
            completed(0, q1, false, 0),
            RequestOutcome::unserved(spec(1, q1), false, 0, Disposition::Shed),
        ];
        let r = RecoveryReport::compute(&outcomes);
        assert_eq!(r.overall.completion_fraction(), 0.5);
        assert_eq!(RecoveryCounts::default().completion_fraction(), 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let q1 = QosTier::paper_q1();
        let r = RecoveryReport::compute(&[completed(0, q1, false, 1)]);
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<RecoveryReport>(&json).unwrap(), r);
    }

    #[test]
    fn serde_round_trip_covers_every_disposition() {
        let q1 = QosTier::paper_q1();
        let q2 = QosTier::paper_q2();
        let outcomes = vec![
            completed(0, q1, true, 2),
            RequestOutcome::unfinished(spec(1, q1), false, 0),
            RequestOutcome::rejected(spec(2, q2), 0),
            RequestOutcome::unserved(spec(3, q2), false, 0, Disposition::Shed),
            RequestOutcome::unserved(spec(4, q2), false, 0, Disposition::RetryExhausted),
        ];
        let r = RecoveryReport::compute(&outcomes);
        // Every disposition bucket is populated, so a lossy field would
        // show up as an inequality.
        assert_eq!(r.overall.completed, 1);
        assert_eq!(r.overall.unfinished, 1);
        assert_eq!(r.overall.rejected, 1);
        assert_eq!(r.overall.shed, 1);
        assert_eq!(r.overall.retry_exhausted, 1);
        let json = serde_json::to_string(&r).unwrap();
        let back: RecoveryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.tier(q2.id).shed, 1);
        assert_eq!(back.overall.reprefill_tokens, 200);
    }

    #[test]
    fn drain_migrations_tally_and_old_records_default() {
        let q1 = QosTier::paper_q1();
        let mut migrated = completed(0, q1, false, 1);
        migrated.drain_migrations = 1;
        let r = RecoveryReport::compute(&[migrated, completed(1, q1, false, 0)]);
        assert_eq!(r.overall.drain_migrated, 1);
        assert_eq!(r.tier(q1.id).drain_migrated, 1);
        // Reports serialized before the field existed still deserialize.
        let mut v = serde_json::to_value(&r).unwrap();
        v.as_object_mut()
            .unwrap()
            .get_mut("overall")
            .unwrap()
            .as_object_mut()
            .unwrap()
            .remove("drain_migrated");
        let back: RecoveryReport = serde_json::from_value(v).unwrap();
        assert_eq!(back.overall.drain_migrated, 0);
    }
}
