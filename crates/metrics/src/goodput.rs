//! Goodput search: the largest load a deployment sustains while meeting
//! its QoS bar.
//!
//! The paper defines goodput as "the number of requests served per replica
//! per second while meeting the latency targets (p99)", allowing at most
//! 1 % of requests to violate their deadlines (§4.1.2). Finding it means
//! locating the boundary of a monotone pass/fail predicate over QPS, which
//! this module does by coarse ramp-up plus bisection.

/// Rejected search parameters for [`try_max_supported_load`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchRangeError {
    /// `lo > hi` (or a bound was NaN): the interval is empty.
    InvertedRange {
        /// Requested lower bound.
        lo: f64,
        /// Requested upper bound.
        hi: f64,
    },
    /// The bisection target width was zero, negative, or NaN — the search
    /// would never terminate.
    NonPositiveResolution(f64),
}

impl std::fmt::Display for SearchRangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchRangeError::InvertedRange { lo, hi } => {
                write!(f, "lo must be <= hi (lo {lo}, hi {hi})")
            }
            SearchRangeError::NonPositiveResolution(r) => {
                write!(f, "resolution must be positive (got {r})")
            }
        }
    }
}

impl std::error::Error for SearchRangeError {}

/// Finds (approximately) the largest `x` in `[lo, hi]` for which
/// `passes(x)` holds, assuming `passes` is monotone (true below the
/// boundary, false above).
///
/// Each probe typically runs a full simulation, so the routine is frugal:
/// a geometric ramp locates a bracketing interval, then bisection narrows
/// it to `resolution`. Returns `None` when even `lo` fails.
///
/// # Panics
///
/// Panics if `lo > hi`, or `resolution` is not positive; use
/// [`try_max_supported_load`] to handle bad ranges instead.
///
/// # Example
///
/// ```
/// use qoserve_metrics::max_supported_load;
/// // Boundary at 3.7.
/// let got = max_supported_load(0.5, 10.0, 0.1, |qps| qps <= 3.7).unwrap();
/// assert!((got - 3.7).abs() <= 0.1);
/// ```
pub fn max_supported_load<F: FnMut(f64) -> bool>(
    lo: f64,
    hi: f64,
    resolution: f64,
    passes: F,
) -> Option<f64> {
    match try_max_supported_load(lo, hi, resolution, passes) {
        Ok(result) => result,
        // qoserve-lint: allow(panic-hygiene) -- documented `# Panics` wrapper for statically valid ranges; fallible path is try_max_supported_load
        Err(e) => panic!("{e}"),
    }
}

/// [`max_supported_load`] with the parameter validation surfaced as a
/// `Result`: `Err` for an unusable range, `Ok(None)` when even `lo`
/// fails, `Ok(Some(x))` for the located boundary.
pub fn try_max_supported_load<F: FnMut(f64) -> bool>(
    lo: f64,
    hi: f64,
    resolution: f64,
    mut passes: F,
) -> Result<Option<f64>, SearchRangeError> {
    if lo.is_nan() || hi.is_nan() || lo > hi {
        return Err(SearchRangeError::InvertedRange { lo, hi });
    }
    if resolution.is_nan() || resolution <= 0.0 {
        return Err(SearchRangeError::NonPositiveResolution(resolution));
    }

    if !passes(lo) {
        return Ok(None);
    }

    // Geometric ramp from lo to find a failing upper bracket.
    let mut good = lo;
    let mut bad = None;
    let mut probe = (lo * 1.5).max(lo + resolution);
    while probe < hi {
        if passes(probe) {
            good = probe;
            probe *= 1.5;
        } else {
            bad = Some(probe);
            break;
        }
    }
    let mut bad = match bad {
        Some(b) => b,
        None => {
            if passes(hi) {
                return Ok(Some(hi));
            }
            hi
        }
    };

    // Bisection.
    while bad - good > resolution {
        let mid = (good + bad) / 2.0;
        if passes(mid) {
            good = mid;
        } else {
            bad = mid;
        }
    }
    Ok(Some(good))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_internal_boundary() {
        let got = max_supported_load(0.5, 20.0, 0.05, |x| x <= 7.3).unwrap();
        assert!((got - 7.3).abs() <= 0.05, "got {got}");
    }

    #[test]
    fn returns_none_when_lo_fails() {
        assert_eq!(max_supported_load(2.0, 10.0, 0.1, |_| false), None);
    }

    #[test]
    fn returns_hi_when_everything_passes() {
        assert_eq!(max_supported_load(1.0, 10.0, 0.1, |_| true), Some(10.0));
    }

    #[test]
    fn boundary_below_first_probe() {
        // Fails immediately above lo.
        let got = max_supported_load(1.0, 100.0, 0.01, |x| x <= 1.004).unwrap();
        assert!((1.0..=1.01).contains(&got), "got {got}");
    }

    #[test]
    fn result_always_passes() {
        let mut probes = Vec::new();
        let boundary = 4.21;
        let got = max_supported_load(0.5, 16.0, 0.02, |x| {
            probes.push(x);
            x <= boundary
        })
        .unwrap();
        assert!(got <= boundary + 1e-12);
        assert!(boundary - got <= 0.02);
    }

    #[test]
    fn probe_count_is_modest() {
        let mut count = 0;
        let _ = max_supported_load(0.5, 64.0, 0.05, |x| {
            count += 1;
            x <= 31.0
        });
        assert!(count < 30, "used {count} probes");
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn rejects_zero_resolution() {
        let _ = max_supported_load(1.0, 2.0, 0.0, |_| true);
    }

    #[test]
    fn try_variant_reports_range_errors_without_probing() {
        let mut probes = 0;
        let err = try_max_supported_load(5.0, 1.0, 0.1, |_| {
            probes += 1;
            true
        })
        .unwrap_err();
        assert_eq!(err, SearchRangeError::InvertedRange { lo: 5.0, hi: 1.0 });
        assert_eq!(probes, 0, "invalid ranges must not run simulations");

        assert_eq!(
            try_max_supported_load(1.0, 2.0, -0.5, |_| true),
            Err(SearchRangeError::NonPositiveResolution(-0.5))
        );
        assert!(try_max_supported_load(f64::NAN, 2.0, 0.1, |_| true).is_err());
        assert!(try_max_supported_load(1.0, 2.0, f64::NAN, |_| true).is_err());

        // The Ok paths mirror the panicking wrapper exactly.
        assert_eq!(try_max_supported_load(2.0, 10.0, 0.1, |_| false), Ok(None));
        let got = try_max_supported_load(0.5, 20.0, 0.05, |x| x <= 7.3)
            .unwrap()
            .unwrap();
        assert!((got - 7.3).abs() <= 0.05, "got {got}");
        assert_eq!(
            try_max_supported_load(1.0, 10.0, 0.1, |_| true),
            Ok(Some(10.0))
        );
    }
}
