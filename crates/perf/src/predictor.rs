//! Runtime latency prediction and the dynamic-chunk budget search.
//!
//! [`LatencyPredictor`] is what the scheduler consults every iteration. It
//! comes in two flavours: the trained random forest (the paper's deployed
//! configuration) and the raw analytical model (exact, useful for fast
//! simulation sweeps and as an oracle in tests). Both apply a configurable
//! *safety margin* that inflates predictions, implementing the paper's
//! "err on the side of under-predicting chunk size" tuning.
//!
//! [`ChunkBudget`] is `GET_PREFILL_BUDGET` from Algorithm 1: given the
//! decode pool and the minimum slack across decoding requests, find the
//! largest prefill chunk whose predicted iteration latency still fits.

use std::cell::RefCell;

use qoserve_sim::{SeedStream, SimDuration};
use qoserve_trace::{TraceEvent, Tracer};
use serde::{Deserialize, Serialize};

use crate::analytical::LatencyModel;
use crate::batch::BatchProfile;
use crate::forest::{RandomForest, RandomForestConfig};
use crate::hardware::HardwareConfig;
use crate::profiler::{Profiler, ProfilerConfig};

/// Which estimator backs a [`LatencyPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictorKind {
    /// The calibrated analytical model (exact w.r.t. the simulator's ground
    /// truth, minus execution noise).
    Analytical,
    /// The random forest trained on profiler samples — the paper's setup.
    Forest,
}

/// Batch latency estimator with a safety margin.
#[derive(Debug, Clone)]
pub struct LatencyPredictor {
    backend: Backend,
    /// Multiplicative inflation applied to every prediction (0.08 = +8 %).
    margin: f64,
}

#[derive(Debug, Clone)]
enum Backend {
    Analytical(LatencyModel),
    Forest {
        forest: RandomForest,
        /// Analytical companion for the same hardware: the hard-fallback
        /// target when the adaptive layer declares the forest untrustworthy.
        analytical: LatencyModel,
        /// When set, predictions come from `analytical` instead of the
        /// forest (sticky for the rest of the run).
        degraded: bool,
    },
}

impl LatencyPredictor {
    /// Default safety margin, chosen so the < 10 % model error never turns
    /// into a TBT violation (under-predicting the chunk is safe, over-
    /// predicting is not).
    pub const DEFAULT_MARGIN: f64 = 0.08;

    /// Builds an analytical predictor for `hw`.
    pub fn analytical(hw: &HardwareConfig) -> Self {
        LatencyPredictor {
            backend: Backend::Analytical(LatencyModel::new(hw)),
            margin: Self::DEFAULT_MARGIN,
        }
    }

    /// Trains a random-forest predictor for `hw` by running the profiling
    /// harness and fitting the forest, exactly as the paper's offline step.
    pub fn train_forest(hw: &HardwareConfig, seeds: &SeedStream) -> Self {
        let profiler = Profiler::new(hw.clone(), ProfilerConfig::default());
        let samples = profiler.collect(seeds);
        let (rows, labels) = Profiler::to_training_set(&samples);
        let mut rng = seeds.derive("forest-fit");
        let forest = RandomForest::fit(&rows, &labels, RandomForestConfig::default(), &mut rng)
            // qoserve-lint: allow(panic-hygiene) -- offline training step; the profiler grid is statically non-empty and a silent fallback would hide a broken profile
            .expect("profiler always yields a non-empty training set");
        LatencyPredictor {
            backend: Backend::Forest {
                forest,
                analytical: LatencyModel::new(hw),
                degraded: false,
            },
            margin: Self::DEFAULT_MARGIN,
        }
    }

    /// Builds a predictor of the requested kind.
    pub fn of_kind(kind: PredictorKind, hw: &HardwareConfig, seeds: &SeedStream) -> Self {
        match kind {
            PredictorKind::Analytical => Self::analytical(hw),
            PredictorKind::Forest => Self::train_forest(hw, seeds),
        }
    }

    /// Replaces the safety margin (clamped to be non-negative).
    pub fn with_margin(mut self, margin: f64) -> Self {
        self.set_margin(margin);
        self
    }

    /// Updates the safety margin in place (clamped to be non-negative) —
    /// the adaptive-margin controller's entry point.
    pub fn set_margin(&mut self, margin: f64) {
        self.margin = if margin.is_finite() {
            margin.max(0.0)
        } else {
            0.0
        };
    }

    /// The active safety margin.
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Hard fallback: route predictions through the analytical companion
    /// instead of the forest. Returns `true` when this call actually
    /// changed the backend (forest, not yet degraded); analytical
    /// predictors have nothing to fall back to and return `false`.
    pub fn engage_fallback(&mut self) -> bool {
        match &mut self.backend {
            Backend::Forest { degraded, .. } if !*degraded => {
                *degraded = true;
                true
            }
            _ => false,
        }
    }

    /// Whether the forest → analytical fallback is active.
    pub fn fallback_engaged(&self) -> bool {
        matches!(self.backend, Backend::Forest { degraded: true, .. })
    }

    /// Which backend this predictor uses.
    pub fn kind(&self) -> PredictorKind {
        match self.backend {
            Backend::Analytical(_) => PredictorKind::Analytical,
            Backend::Forest { .. } => PredictorKind::Forest,
        }
    }

    /// Predicted iteration latency including the safety margin.
    pub fn predict(&self, batch: &BatchProfile) -> SimDuration {
        SimDuration::from_micros((self.predict_raw_us(batch) * (1.0 + self.margin)).round() as u64)
    }

    /// Margin-free prediction in microseconds.
    pub fn predict_raw_us(&self, batch: &BatchProfile) -> f64 {
        match &self.backend {
            Backend::Analytical(m) => m.iteration_time_us(batch),
            Backend::Forest {
                analytical,
                degraded: true,
                ..
            } => analytical.iteration_time_us(batch),
            Backend::Forest { forest, .. } => forest.predict(&batch.features()).max(0.0),
        }
    }
}

/// Bounds for the dynamic-chunk search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChunkLimits {
    /// Chunk used when latency is unconstrained is capped here; Figure 4
    /// saturates around 2.5 k tokens, so larger chunks add latency for no
    /// throughput.
    pub max_chunk: u32,
    /// Search granularity in tokens.
    pub step: u32,
}

impl Default for ChunkLimits {
    fn default() -> Self {
        ChunkLimits {
            max_chunk: 2_560,
            step: 32,
        }
    }
}

/// Number of direct-mapped memo slots; power of two so the slot index is
/// a mask. 2.5k max chunk / 32-token steps is 80 distinct chunks per
/// decode-pool state, so 4096 slots hold dozens of recent pool states.
const MEMO_SLOTS: usize = 4096;

/// Exact lookup key of one memoized prediction: everything that
/// determines the predicted latency of a single-chunk probe batch —
/// including the predictor's margin bits and fallback state, so the
/// adaptive-margin controller can retune the predictor without
/// invalidating the cache (stale entries simply stop matching).
#[derive(Clone, Copy, PartialEq, Eq)]
struct MemoKey {
    chunk: u32,
    num_decodes: u32,
    decode_context_total: u64,
    prefill_context: u32,
    /// `LatencyPredictor::margin()` as raw bits; the adaptive controller
    /// quantizes margins onto a coarse grid, so few distinct values occur.
    margin_bits: u64,
    /// Whether the forest → analytical fallback was active.
    degraded: bool,
}

impl MemoKey {
    /// Direct-mapped slot index (FNV-1a over the key words).
    fn slot(&self) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [
            self.chunk as u64,
            self.num_decodes as u64,
            self.decode_context_total,
            self.prefill_context as u64,
            self.margin_bits,
            self.degraded as u64,
        ] {
            h ^= word;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h as usize & (MEMO_SLOTS - 1)
    }
}

/// Prediction cache + scratch batch for the chunk-budget search.
///
/// Consecutive scheduler iterations probe near-identical `(chunk, decode
/// pool)` points, and within one binary search the fix-up loop re-probes
/// points the bisection already visited. Caching the final predicted
/// micros (margin included, post-rounding) skips the whole forest/model
/// walk while staying byte-identical; the scratch [`BatchProfile`] avoids
/// a heap allocation per probe.
#[derive(Clone)]
struct MemoState {
    slots: Vec<Option<(MemoKey, u64)>>,
    scratch: BatchProfile,
    hits: u64,
    misses: u64,
}

impl MemoState {
    fn new() -> Self {
        MemoState {
            slots: vec![None; MEMO_SLOTS],
            // One mutable single-chunk profile, reused for every probe.
            scratch: BatchProfile::builder().prefill_chunk(1, 0).build(),
            hits: 0,
            misses: 0,
        }
    }

    /// Predicted iteration micros for `key`, cached. The cached value is
    /// the *final* prediction (margin-inflated, rounded), so a hit returns
    /// exactly what [`LatencyPredictor::predict`] would.
    fn predict_micros(&mut self, predictor: &LatencyPredictor, key: MemoKey) -> u64 {
        let slot = key.slot();
        if let Some((cached_key, micros)) = self.slots[slot] {
            if cached_key == key {
                self.hits += 1;
                return micros;
            }
        }
        self.misses += 1;
        self.scratch.prefill[0].chunk_tokens = key.chunk;
        self.scratch.prefill[0].context_before = key.prefill_context;
        self.scratch.num_decodes = key.num_decodes;
        self.scratch.decode_context_total = key.decode_context_total;
        let micros = predictor.predict(&self.scratch).as_micros();
        self.slots[slot] = Some((key, micros));
        micros
    }
}

impl std::fmt::Debug for MemoState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let filled = self.slots.iter().filter(|s| s.is_some()).count();
        f.debug_struct("MemoState")
            .field("filled", &filled)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

/// The `GET_PREFILL_BUDGET` search of Algorithm 1.
///
/// Predictions are memoized by exact `(chunk, decode pool, prefill
/// context)` key, so the repeated probes of consecutive scheduler
/// iterations skip the predictor entirely while returning byte-identical
/// budgets (a property test pins memoized against the
/// [`uncached`](Self::uncached) search). The cache lives behind a [`RefCell`]:
/// schedulers are per-replica, never shared across threads.
///
/// # Example
///
/// ```
/// use qoserve_perf::{ChunkBudget, ChunkLimits, HardwareConfig, LatencyPredictor};
/// use qoserve_sim::SimDuration;
///
/// let hw = HardwareConfig::llama3_8b_a100_tp1();
/// let budget = ChunkBudget::new(LatencyPredictor::analytical(&hw), ChunkLimits::default());
/// // Plenty of slack: the budget should open up far beyond the 256 default.
/// let roomy = budget.prefill_budget(16, 16 * 500, 0, Some(SimDuration::from_millis(200)));
/// // Tight slack: the budget must shrink.
/// let tight = budget.prefill_budget(16, 16 * 500, 0, Some(SimDuration::from_millis(25)));
/// assert!(roomy > tight);
/// ```
#[derive(Debug, Clone)]
pub struct ChunkBudget {
    predictor: LatencyPredictor,
    limits: ChunkLimits,
    memo: Option<RefCell<MemoState>>,
    tracer: Tracer,
}

impl ChunkBudget {
    /// Creates the budget search over `predictor` with `limits`,
    /// memoization enabled.
    pub fn new(predictor: LatencyPredictor, limits: ChunkLimits) -> Self {
        ChunkBudget {
            predictor,
            limits,
            memo: Some(RefCell::new(MemoState::new())),
            tracer: Tracer::disabled(),
        }
    }

    /// A budget search with memoization disabled — the reference path the
    /// determinism tests and benches compare against.
    pub fn uncached(predictor: LatencyPredictor, limits: ChunkLimits) -> Self {
        ChunkBudget {
            predictor,
            limits,
            memo: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs the decision tracer. With a disabled tracer (the default)
    /// the budget search is byte-identical to the untraced path.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Access to the underlying predictor.
    pub fn predictor(&self) -> &LatencyPredictor {
        &self.predictor
    }

    /// Retunes the predictor's safety margin in place. The prediction
    /// cache stays valid because the margin is part of the memo key —
    /// entries recorded under other margins simply stop matching.
    pub fn set_margin(&mut self, margin: f64) {
        self.predictor.set_margin(margin);
    }

    /// Engages the predictor's forest → analytical fallback; see
    /// [`LatencyPredictor::engage_fallback`]. Cache entries recorded
    /// pre-fallback stop matching (the flag is part of the memo key).
    pub fn engage_fallback(&mut self) -> bool {
        self.predictor.engage_fallback()
    }

    /// The search bounds.
    pub fn limits(&self) -> ChunkLimits {
        self.limits
    }

    /// `(hits, misses)` of the prediction cache; `(0, 0)` when uncached.
    pub fn cache_stats(&self) -> (u64, u64) {
        match &self.memo {
            Some(memo) => {
                let memo = memo.borrow();
                (memo.hits, memo.misses)
            }
            None => (0, 0),
        }
    }

    /// Largest prefill-token budget whose predicted iteration latency fits
    /// within `slack`, given the current decode pool.
    ///
    /// * `num_decodes` / `decode_context_total` — the decode side of the
    ///   upcoming batch.
    /// * `prefill_context` — prompt tokens of the head prefill request that
    ///   are already in the KV cache (deep chunks cost more).
    /// * `slack` — minimum next-token slack across decoding requests;
    ///   `None` means unconstrained (no decodes with deadlines), which
    ///   yields `max_chunk`.
    ///
    /// Returns 0 when even the smallest step would blow the slack — the
    /// engine then runs a decode-only iteration.
    pub fn prefill_budget(
        &self,
        num_decodes: u32,
        decode_context_total: u64,
        prefill_context: u32,
        slack: Option<SimDuration>,
    ) -> u32 {
        // Cache-delta bookkeeping exists only for the trace event; the
        // disabled path must stay branch-cheap.
        let misses_before = if self.tracer.enabled() {
            self.cache_stats().1
        } else {
            0
        };
        let chosen = match slack {
            None => self.limits.max_chunk,
            Some(slack) => match &self.memo {
                Some(memo) => {
                    let mut memo = memo.borrow_mut();
                    let slack_us = slack.as_micros();
                    let margin_bits = self.predictor.margin().to_bits();
                    let degraded = self.predictor.fallback_engaged();
                    self.search(|chunk| {
                        let key = MemoKey {
                            chunk,
                            num_decodes,
                            decode_context_total,
                            prefill_context,
                            margin_bits,
                            degraded,
                        };
                        memo.predict_micros(&self.predictor, key) <= slack_us
                    })
                }
                None => self.search(|chunk| {
                    let batch = BatchProfile::builder()
                        .prefill_chunk(chunk, prefill_context)
                        .decodes(num_decodes, decode_context_total)
                        .build();
                    self.predictor.predict(&batch) <= slack
                }),
            },
        };
        if self.tracer.enabled() {
            self.trace_choice(
                chosen,
                num_decodes,
                decode_context_total,
                prefill_context,
                misses_before,
            );
        }
        chosen
    }

    /// Emits `ChunkBudgetChosen` (enabled tracer only). Probing the chosen
    /// chunk is a pure read of the predictor, so traced and untraced
    /// searches return identical budgets; only the cache hit/miss counters
    /// may move while tracing.
    fn trace_choice(
        &self,
        chosen: u32,
        num_decodes: u32,
        decode_context_total: u64,
        prefill_context: u32,
        misses_before: u64,
    ) {
        let cache_hit = self.memo.is_some() && self.cache_stats().1 == misses_before;
        let batch = BatchProfile::builder()
            .prefill_chunk(chosen, prefill_context)
            .decodes(num_decodes, decode_context_total)
            .build();
        self.tracer.emit(
            None,
            TraceEvent::ChunkBudgetChosen {
                budget: chosen,
                predicted_us: self.predictor.predict_raw_us(&batch),
                margin: self.predictor.margin(),
                cache_hit,
            },
        );
    }

    /// The search skeleton shared by the memoized and uncached paths:
    /// largest step-aligned chunk for which `fits` holds.
    fn search(&self, mut fits: impl FnMut(u32) -> bool) -> u32 {
        let step = self.limits.step.max(1);
        let max_steps = self.limits.max_chunk / step;
        if max_steps == 0 || !fits(step) {
            return 0;
        }
        if fits(max_steps * step) {
            return max_steps * step;
        }

        // Invariant: fits(lo*step), !fits(hi*step). The predictor is
        // monotone in chunk size for the analytical backend and very nearly
        // so for the forest; binary search finds the boundary, then a short
        // downward fix-up guards against local non-monotonicity.
        let (mut lo, mut hi) = (1u32, max_steps);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if fits(mid * step) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut chunk = lo * step;
        while chunk > 0 && !fits(chunk) {
            chunk -= step;
        }
        chunk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareConfig {
        HardwareConfig::llama3_8b_a100_tp1()
    }

    fn analytical_budget() -> ChunkBudget {
        ChunkBudget::new(LatencyPredictor::analytical(&hw()), ChunkLimits::default())
    }

    #[test]
    fn margin_inflates_predictions() {
        let batch = BatchProfile::builder()
            .prefill_chunk(512, 0)
            .decodes(16, 16_000)
            .build();
        let plain = LatencyPredictor::analytical(&hw()).with_margin(0.0);
        let padded = LatencyPredictor::analytical(&hw()).with_margin(0.2);
        let ratio =
            padded.predict(&batch).as_micros() as f64 / plain.predict(&batch).as_micros() as f64;
        assert!((ratio - 1.2).abs() < 0.01);
    }

    #[test]
    fn negative_margin_is_clamped() {
        let p = LatencyPredictor::analytical(&hw()).with_margin(-5.0);
        assert_eq!(p.margin(), 0.0);
    }

    #[test]
    fn unconstrained_slack_yields_max_chunk() {
        let b = analytical_budget();
        assert_eq!(
            b.prefill_budget(0, 0, 0, None),
            ChunkLimits::default().max_chunk
        );
    }

    #[test]
    fn zero_slack_yields_zero_budget() {
        let b = analytical_budget();
        assert_eq!(
            b.prefill_budget(64, 64 * 2_000, 0, Some(SimDuration::ZERO)),
            0
        );
    }

    #[test]
    fn budget_grows_with_slack() {
        let b = analytical_budget();
        let mut last = 0;
        for ms in [20u64, 40, 80, 160, 320] {
            let c = b.prefill_budget(32, 32 * 1_500, 0, Some(SimDuration::from_millis(ms)));
            assert!(c >= last, "slack {ms}ms: budget {c} < previous {last}");
            last = c;
        }
        assert!(
            last > 1_000,
            "large slack should open large chunks, got {last}"
        );
    }

    #[test]
    fn budget_shrinks_with_decode_pressure() {
        let b = analytical_budget();
        let slack = Some(SimDuration::from_millis(60));
        let light = b.prefill_budget(8, 8 * 500, 0, slack);
        let heavy = b.prefill_budget(150, 150 * 3_000, 0, slack);
        assert!(
            light > heavy,
            "heavier decode pool must shrink the budget: {light} vs {heavy}"
        );
    }

    #[test]
    fn budget_shrinks_with_prefill_depth() {
        let b = analytical_budget();
        let slack = Some(SimDuration::from_millis(60));
        let shallow = b.prefill_budget(32, 32 * 1_000, 0, slack);
        let deep = b.prefill_budget(32, 32 * 1_000, 60_000, slack);
        assert!(
            shallow > deep,
            "deep prompt context must shrink the budget: {shallow} vs {deep}"
        );
    }

    #[test]
    fn budget_result_actually_fits() {
        // The returned chunk's (margin-inflated) prediction must be within
        // slack — the whole point of under-predicting.
        let b = analytical_budget();
        let slack = SimDuration::from_millis(55);
        let chunk = b.prefill_budget(48, 48 * 1_800, 2_048, Some(slack));
        assert!(chunk > 0);
        let batch = BatchProfile::builder()
            .prefill_chunk(chunk, 2_048)
            .decodes(48, 48 * 1_800)
            .build();
        assert!(b.predictor().predict(&batch) <= slack);
        // And one more step would not fit (maximality).
        let bigger = BatchProfile::builder()
            .prefill_chunk(chunk + b.limits().step, 2_048)
            .decodes(48, 48 * 1_800)
            .build();
        assert!(b.predictor().predict(&bigger) > slack);
    }

    #[test]
    fn budget_respects_max_chunk() {
        let limits = ChunkLimits {
            max_chunk: 512,
            step: 64,
        };
        let b = ChunkBudget::new(LatencyPredictor::analytical(&hw()), limits);
        let c = b.prefill_budget(1, 100, 0, Some(SimDuration::from_secs(10)));
        assert_eq!(c, 512);
    }

    #[test]
    fn budget_is_step_aligned() {
        let b = analytical_budget();
        let c = b.prefill_budget(32, 32 * 1_500, 0, Some(SimDuration::from_millis(47)));
        assert_eq!(c % ChunkLimits::default().step, 0);
    }

    #[test]
    fn memoized_budget_matches_uncached() {
        let cached = analytical_budget();
        let uncached =
            ChunkBudget::uncached(LatencyPredictor::analytical(&hw()), ChunkLimits::default());
        for num_decodes in [0u32, 1, 8, 64, 200] {
            for ctx_per_decode in [0u64, 300, 1_500, 4_000] {
                for prefill_context in [0u32, 512, 16_384] {
                    for slack_ms in [0u64, 5, 30, 80, 400] {
                        let args = (
                            num_decodes,
                            num_decodes as u64 * ctx_per_decode,
                            prefill_context,
                            Some(SimDuration::from_millis(slack_ms)),
                        );
                        // Twice each, so the second call exercises hits.
                        for _ in 0..2 {
                            assert_eq!(
                                cached.prefill_budget(args.0, args.1, args.2, args.3),
                                uncached.prefill_budget(args.0, args.1, args.2, args.3),
                                "diverged at {args:?}"
                            );
                        }
                    }
                }
            }
        }
        let (hits, misses) = cached.cache_stats();
        assert!(hits > 0, "repeat probes must hit the cache");
        assert!(misses > 0);
        assert_eq!(uncached.cache_stats(), (0, 0));
    }

    #[test]
    fn memoized_forest_budget_matches_uncached() {
        // The forest is the expensive backend the cache exists for; make
        // sure cached hits reproduce its exact (rounded, margin-inflated)
        // comparisons too.
        let seeds = SeedStream::new(79);
        let predictor = LatencyPredictor::train_forest(&hw(), &seeds);
        let cached = ChunkBudget::new(predictor.clone(), ChunkLimits::default());
        let uncached = ChunkBudget::uncached(predictor, ChunkLimits::default());
        for num_decodes in [2u32, 40, 120] {
            for slack_ms in [10u64, 55, 150] {
                let ctx = num_decodes as u64 * 1_200;
                for _ in 0..2 {
                    assert_eq!(
                        cached.prefill_budget(
                            num_decodes,
                            ctx,
                            1_024,
                            Some(SimDuration::from_millis(slack_ms))
                        ),
                        uncached.prefill_budget(
                            num_decodes,
                            ctx,
                            1_024,
                            Some(SimDuration::from_millis(slack_ms))
                        ),
                    );
                }
            }
        }
        let (hits, _) = cached.cache_stats();
        assert!(hits > 0);
    }

    #[test]
    fn unconstrained_slack_skips_the_cache() {
        let b = analytical_budget();
        assert_eq!(b.prefill_budget(8, 8 * 500, 0, None), b.limits().max_chunk);
        assert_eq!(b.cache_stats(), (0, 0));
    }

    #[test]
    fn cloned_budget_keeps_working() {
        // Clone while the cache is warm; both copies stay consistent.
        let b = analytical_budget();
        let slack = Some(SimDuration::from_millis(60));
        let before = b.prefill_budget(32, 32 * 1_500, 0, slack);
        let clone = b.clone();
        assert_eq!(clone.prefill_budget(32, 32 * 1_500, 0, slack), before);
        assert_eq!(b.prefill_budget(32, 32 * 1_500, 0, slack), before);
    }

    #[test]
    fn forest_predictor_tracks_analytical() {
        let seeds = SeedStream::new(77);
        let forest = LatencyPredictor::train_forest(&hw(), &seeds).with_margin(0.0);
        let analytical = LatencyPredictor::analytical(&hw()).with_margin(0.0);
        let batches = [
            BatchProfile::builder().decodes(32, 32 * 1_000).build(),
            BatchProfile::builder().prefill_chunk(512, 0).build(),
            BatchProfile::builder()
                .prefill_chunk(1_024, 4_096)
                .decodes(64, 64 * 2_000)
                .build(),
        ];
        for batch in &batches {
            let f = forest.predict_raw_us(batch);
            let a = analytical.predict_raw_us(batch);
            let rel = (f - a).abs() / a;
            assert!(
                rel < 0.15,
                "forest should track the ground truth within 15%: {f:.0} vs {a:.0}"
            );
        }
        assert_eq!(forest.kind(), PredictorKind::Forest);
    }

    #[test]
    fn forest_budget_is_close_to_analytical_budget() {
        let seeds = SeedStream::new(78);
        let fb = ChunkBudget::new(
            LatencyPredictor::train_forest(&hw(), &seeds),
            ChunkLimits::default(),
        );
        let ab = analytical_budget();
        let slack = Some(SimDuration::from_millis(80));
        let f = fb.prefill_budget(40, 40 * 1_500, 0, slack) as f64;
        let a = ab.prefill_budget(40, 40 * 1_500, 0, slack) as f64;
        assert!(
            (f - a).abs() / a < 0.35,
            "forest budget {f} should be in the neighbourhood of analytical {a}"
        );
    }

    #[test]
    fn of_kind_selects_backend() {
        let seeds = SeedStream::new(1);
        assert_eq!(
            LatencyPredictor::of_kind(PredictorKind::Analytical, &hw(), &seeds).kind(),
            PredictorKind::Analytical
        );
    }

    #[test]
    fn fallback_routes_forest_to_analytical() {
        let seeds = SeedStream::new(80);
        let mut forest = LatencyPredictor::train_forest(&hw(), &seeds);
        let analytical = LatencyPredictor::analytical(&hw());
        let batch = BatchProfile::builder()
            .prefill_chunk(768, 1_024)
            .decodes(24, 24 * 900)
            .build();
        assert!(!forest.fallback_engaged());
        assert!(forest.engage_fallback());
        assert!(forest.fallback_engaged());
        // Degraded forest must quote exactly the analytical companion.
        assert_eq!(
            forest.predict_raw_us(&batch),
            analytical.predict_raw_us(&batch)
        );
        // Still reports its true kind; the fallback is an internal detour.
        assert_eq!(forest.kind(), PredictorKind::Forest);
        // Second engagement is a no-op.
        assert!(!forest.engage_fallback());
    }

    #[test]
    fn analytical_has_no_fallback() {
        let mut p = LatencyPredictor::analytical(&hw());
        assert!(!p.engage_fallback());
        assert!(!p.fallback_engaged());
    }

    #[test]
    fn set_margin_updates_in_place() {
        let mut p = LatencyPredictor::analytical(&hw());
        p.set_margin(0.25);
        assert_eq!(p.margin(), 0.25);
        p.set_margin(-1.0);
        assert_eq!(p.margin(), 0.0);
        p.set_margin(f64::NAN);
        assert_eq!(p.margin(), 0.0);
    }

    #[test]
    fn memo_survives_margin_retuning() {
        // Warm the cache under one margin, retune, and check the cached
        // path still matches a fresh uncached search at every margin —
        // the margin is part of the memo key, so stale entries cannot leak.
        let mut cached = analytical_budget();
        let slack = Some(SimDuration::from_millis(45));
        for margin in [0.08, 0.25, 0.08, 0.5, 0.0] {
            cached.set_margin(margin);
            let uncached = ChunkBudget::uncached(
                LatencyPredictor::analytical(&hw()).with_margin(margin),
                ChunkLimits::default(),
            );
            for num_decodes in [4u32, 48, 130] {
                let ctx = num_decodes as u64 * 1_400;
                assert_eq!(
                    cached.prefill_budget(num_decodes, ctx, 512, slack),
                    uncached.prefill_budget(num_decodes, ctx, 512, slack),
                    "diverged at margin {margin} decodes {num_decodes}"
                );
            }
        }
        let (hits, _) = cached.cache_stats();
        assert!(hits > 0, "revisiting a previous margin must hit the cache");
    }

    #[test]
    fn memo_survives_fallback_engagement() {
        let seeds = SeedStream::new(81);
        let predictor = LatencyPredictor::train_forest(&hw(), &seeds);
        let mut cached = ChunkBudget::new(predictor.clone(), ChunkLimits::default());
        let slack = Some(SimDuration::from_millis(60));
        // Warm with forest predictions.
        cached.prefill_budget(32, 32 * 1_200, 0, slack);
        assert!(cached.engage_fallback());
        let mut reference = predictor;
        reference.engage_fallback();
        let uncached = ChunkBudget::uncached(reference, ChunkLimits::default());
        assert_eq!(
            cached.prefill_budget(32, 32 * 1_200, 0, slack),
            uncached.prefill_budget(32, 32 * 1_200, 0, slack),
            "post-fallback budgets must ignore pre-fallback cache entries"
        );
    }
}
