//! Request routing across replicas.
//!
//! The paper's cluster experiments use round-robin load balancing across
//! replicas (§4.1.1). A least-outstanding-work router is provided as well
//! for sensitivity studies; since replicas are simulated independently,
//! it balances on cumulative assigned prompt+decode tokens — a static
//! approximation of join-shortest-queue documented in DESIGN.md.

use std::fmt;

use serde::{Deserialize, Serialize};

use qoserve_engine::ReplicaState;
use qoserve_workload::RequestSpec;

/// Routing failure: the deployment has no replica to route to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterError {
    /// Zero replicas were offered (misconfiguration, or every replica of
    /// a fault-injected cluster is down).
    NoReplicas,
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::NoReplicas => write!(f, "at least one replica is required"),
        }
    }
}

impl std::error::Error for RouterError {}

/// Routing policy across the replicas of one deployment group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Router {
    /// Strict rotation, as in the paper's experiments.
    RoundRobin,
    /// Send each request to the replica with the least cumulative
    /// assigned work (prompt + decode tokens).
    LeastWork,
}

impl Router {
    /// Assigns each request of `requests` (in order) to one of
    /// `replicas` targets; returns the per-request replica index, or
    /// [`RouterError::NoReplicas`] when there is nothing to route to.
    pub fn try_assign(
        &self,
        requests: &[RequestSpec],
        replicas: usize,
    ) -> Result<Vec<usize>, RouterError> {
        if replicas == 0 {
            return Err(RouterError::NoReplicas);
        }
        Ok(match self {
            Router::RoundRobin => (0..requests.len()).map(|i| i % replicas).collect(),
            Router::LeastWork => {
                let mut load = vec![0u64; replicas];
                requests
                    .iter()
                    .map(|r| {
                        // Manual argmin: first replica with the least load
                        // (ties break to the lowest index, deterministic).
                        let mut target = 0usize;
                        for (i, l) in load.iter().enumerate().skip(1) {
                            if *l < load[target] {
                                target = i;
                            }
                        }
                        load[target] += r.total_tokens() as u64;
                        target
                    })
                    .collect()
            }
        })
    }

    /// Lifecycle-aware assignment: routes each request over only the
    /// replicas whose [`ReplicaState`] accepts work, never targeting a
    /// `Warming` or `Draining` replica. `states` is indexed by replica
    /// id and also fixes the fleet size. Returns
    /// [`RouterError::NoReplicas`] when no replica accepts work.
    ///
    /// Routing state (the rotation, the load table) advances over the
    /// *admissible* subset, so for an all-serving fleet this is exactly
    /// [`try_assign`](Self::try_assign).
    pub fn try_assign_states(
        &self,
        requests: &[RequestSpec],
        states: &[ReplicaState],
    ) -> Result<Vec<usize>, RouterError> {
        let admissible: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.accepts_work())
            .map(|(i, _)| i)
            .collect();
        if admissible.is_empty() {
            return Err(RouterError::NoReplicas);
        }
        let within = self.try_assign(requests, admissible.len())?;
        Ok(within.into_iter().map(|i| admissible[i]).collect())
    }

    /// Assigns each request of `requests` (in order) to one of
    /// `replicas` targets; returns the per-request replica index.
    ///
    /// # Panics
    ///
    /// Panics when `replicas == 0`; use [`try_assign`](Self::try_assign)
    /// to handle that case as a value.
    pub fn assign(&self, requests: &[RequestSpec], replicas: usize) -> Vec<usize> {
        self.try_assign(requests, replicas)
            // qoserve-lint: allow(panic-hygiene) -- documented `# Panics` wrapper over try_assign
            .expect("at least one replica is required")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_sim::SimTime;
    use qoserve_workload::{QosTier, RequestId, Slo};

    fn spec(id: u64, prompt: u32) -> RequestSpec {
        RequestSpec {
            id: RequestId(id),
            arrival: SimTime::from_secs(id),
            prompt_tokens: prompt,
            decode_tokens: 10,
            slo: Slo::of_tier(QosTier::paper_q1()),
            app_id: 0,
        }
    }

    #[test]
    fn round_robin_rotates() {
        let reqs: Vec<RequestSpec> = (0..7).map(|i| spec(i, 100)).collect();
        let targets = Router::RoundRobin.assign(&reqs, 3);
        assert_eq!(targets, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_work_balances_token_mass() {
        // One huge request then several small ones: the small ones should
        // all avoid the replica holding the huge request.
        let mut reqs = vec![spec(0, 100_000)];
        reqs.extend((1..7).map(|i| spec(i, 100)));
        let targets = Router::LeastWork.assign(&reqs, 2);
        assert_eq!(targets[0], 0);
        assert!(targets[1..].iter().all(|t| *t == 1));
    }

    #[test]
    fn single_replica_takes_everything() {
        let reqs: Vec<RequestSpec> = (0..5).map(|i| spec(i, 10)).collect();
        for r in [Router::RoundRobin, Router::LeastWork] {
            assert!(r.assign(&reqs, 1).iter().all(|t| *t == 0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let _ = Router::RoundRobin.assign(&[], 0);
    }

    #[test]
    fn try_assign_surfaces_zero_replicas_as_error() {
        let reqs = vec![spec(0, 10)];
        for r in [Router::RoundRobin, Router::LeastWork] {
            assert_eq!(r.try_assign(&reqs, 0), Err(RouterError::NoReplicas));
            assert!(r.try_assign(&reqs, 1).is_ok());
        }
        assert_eq!(
            RouterError::NoReplicas.to_string(),
            "at least one replica is required"
        );
    }

    #[test]
    fn try_assign_states_skips_warming_and_draining() {
        // Regression for the elastic control plane: fleet [Up, Warming,
        // Draining, Up] routes only over replicas 0 and 3.
        let states = [
            ReplicaState::Up,
            ReplicaState::Warming,
            ReplicaState::Draining,
            ReplicaState::Up,
        ];
        let reqs: Vec<RequestSpec> = (0..6).map(|i| spec(i, 100)).collect();
        for r in [Router::RoundRobin, Router::LeastWork] {
            let targets = r.try_assign_states(&reqs, &states).unwrap();
            assert!(
                targets.iter().all(|t| *t == 0 || *t == 3),
                "{r:?} routed to a non-serving replica: {targets:?}"
            );
        }
        assert_eq!(
            Router::RoundRobin
                .try_assign_states(&reqs, &states)
                .unwrap(),
            vec![0, 3, 0, 3, 0, 3]
        );
        // No replica accepting work is the same typed error as an empty
        // fleet.
        assert_eq!(
            Router::RoundRobin.try_assign_states(&reqs, &[ReplicaState::Draining]),
            Err(RouterError::NoReplicas)
        );
        // An all-serving fleet matches plain try_assign exactly.
        let all_up = [ReplicaState::Up; 3];
        for r in [Router::RoundRobin, Router::LeastWork] {
            assert_eq!(
                r.try_assign_states(&reqs, &all_up).unwrap(),
                r.try_assign(&reqs, 3).unwrap()
            );
        }
    }

    #[test]
    fn try_assign_matches_assign() {
        let reqs: Vec<RequestSpec> = (0..9).map(|i| spec(i, 100 * (i as u32 + 1))).collect();
        for r in [Router::RoundRobin, Router::LeastWork] {
            assert_eq!(r.try_assign(&reqs, 3).unwrap(), r.assign(&reqs, 3));
        }
    }
}
