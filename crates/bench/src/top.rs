//! Pure renderer behind the `qoservetop` terminal dashboard.
//!
//! Every function here maps a [`StatsSnapshot`] (or a slice of one) to a
//! `String` — no I/O, no clocks, no terminal control — so the views are
//! unit-testable and `qoservetop --replay` output is a pure function of
//! the snapshot stream bytes. The binary owns cursor movement and
//! follow-mode polling; this module owns every character of content.

use std::collections::BTreeMap;

use qoserve_stats::{ReplicaStats, StatsSnapshot, TierStats};
use qoserve_trace::RELEGATED_TIER;

/// Glyph ramp shared by the sparklines, lowest to highest.
const SPARK_RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Horizontal bar of `width` cells filled to `fraction` (clamped to
/// `[0, 1]`), e.g. `#######...` at 0.7.
pub fn bar(fraction: f64, width: usize) -> String {
    let clamped = fraction.clamp(0.0, 1.0);
    let filled = (clamped * width as f64).round() as usize;
    let filled = filled.min(width);
    let mut out = String::with_capacity(width);
    for _ in 0..filled {
        out.push('#');
    }
    for _ in filled..width {
        out.push('.');
    }
    out
}

/// Sparkline over `values` scaled to their own maximum; empty input
/// renders as an empty string, an all-zero series as all-low glyphs.
pub fn spark(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 {
                SPARK_RAMP[0]
            } else {
                let level = (v * (SPARK_RAMP.len() as u64 - 1) + max / 2) / max;
                SPARK_RAMP[level as usize % SPARK_RAMP.len()]
            }
        })
        .collect()
}

/// Human label of a raw trace tier id.
pub fn tier_label(tier: u8) -> String {
    if tier == RELEGATED_TIER {
        "best-effort".to_owned()
    } else {
        format!("Q{tier}")
    }
}

/// Compact sim-time label, e.g. `83s` / `12m03s` / `2h05m`.
pub fn fmt_time(us: u64) -> String {
    let secs = us / 1_000_000;
    if secs < 120 {
        format!("{secs}s")
    } else if secs < 7_200 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{}h{:02}m", secs / 3_600, (secs % 3_600) / 60)
    }
}

/// One line of the per-tier attainment view: overall attainment bar,
/// percentage, per-window sparkline, and the raw tallies.
fn tier_line(tier: u8, t: &TierStats) -> String {
    let total = t.completed.max(1);
    let attainment = 1.0 - t.violated as f64 / total as f64;
    let windows: Vec<u64> = windowed_levels(&t.attainment);
    format!(
        "  {:>11}  [{}] {:>5.1}%  {}  done {} viol {} releg {} rej {} unfin {}",
        tier_label(tier),
        bar(attainment, 20),
        100.0 * attainment,
        spark(&windows),
        t.completed,
        t.violated,
        t.relegated,
        t.admission_rejected,
        t.unfinished,
    )
}

/// Per-window *attainment* levels (0..=100) over the contiguous window
/// range, empty windows rendered as fully attained.
fn windowed_levels(counts: &qoserve_metrics::WindowedCounts) -> Vec<u64> {
    let Some((&first, _)) = counts.windows.first_key_value() else {
        return Vec::new();
    };
    let Some((&last, _)) = counts.windows.last_key_value() else {
        return Vec::new();
    };
    (first..=last)
        .map(|idx| match counts.windows.get(&idx) {
            Some(w) if w.total > 0 => 100 - (100 * w.flagged / w.total),
            _ => 100,
        })
        .collect()
}

/// Lifecycle glyph of one replica: `=` serving, `p` provisioning, `d`
/// draining, `x` crashed, `~` degraded, `.` retired, `?` never observed.
fn lifecycle_glyph(r: &ReplicaStats) -> char {
    match r.lifecycle.as_deref() {
        Some("serving") => '=',
        Some("provisioning") => 'p',
        Some("draining") => 'd',
        Some("crashed") => 'x',
        Some("degraded") => '~',
        Some("retired") => '.',
        _ => '?',
    }
}

/// The fleet lifecycle strip plus the control-plane counters.
fn fleet_lines(s: &StatsSnapshot) -> String {
    let strip: String = s.frame.replicas.values().map(lifecycle_glyph).collect();
    let fleet = &s.frame.fleet;
    let size = fleet
        .last_size
        .map(|n| n.to_string())
        .unwrap_or_else(|| "-".to_owned());
    format!(
        "  fleet [{strip}] size {size}  ups {} downs {} warmups {} ({}) \
         redisp {} faults {} busy {}\n  legend: = serving  p provisioning  \
         d draining  x crashed  ~ degraded  . retired",
        fleet.scale_ups,
        fleet.scale_downs,
        fleet.warmups,
        fmt_time(fleet.warmup_us),
        fleet.redispatches,
        fleet.faults,
        fmt_time(fleet.busy_us),
    )
}

/// The `count` worst replicas by violation count (ties to the lower id),
/// one line each; replicas with no violations are skipped.
fn worst_offender_lines(replicas: &BTreeMap<u32, ReplicaStats>, count: usize) -> Vec<String> {
    let mut offenders: Vec<(u32, &ReplicaStats)> = replicas
        .iter()
        .filter(|(_, r)| r.violated > 0)
        .map(|(&id, r)| (id, r))
        .collect();
    // BTreeMap iteration is id-ascending, so this stable sort breaks
    // violation-count ties toward the lower replica id.
    offenders.sort_by_key(|&(_, r)| std::cmp::Reverse(r.violated));
    offenders
        .into_iter()
        .take(count)
        .map(|(id, r)| {
            let queue = r
                .queue_depth
                .mean_series()
                .points
                .iter()
                .map(|&(_, m)| m)
                .fold(0.0f64, f64::max);
            format!(
                "  r{id:<3} viol {:>5}  done {:>6}  crashes {}  qmax {:.1}  drops {}",
                r.violated, r.completed, r.crashes, queue, r.dropped
            )
        })
        .collect()
}

/// One sparkline per violation-cause label (the forensics taxonomy),
/// scaled per cause over the contiguous window range.
fn cause_lines(s: &StatsSnapshot) -> Vec<String> {
    s.frame
        .cause_windows
        .iter()
        .map(|(label, windows)| {
            let levels: Vec<u64> = contiguous_totals(windows);
            let total = s.frame.causes.get(label).copied().unwrap_or(0);
            format!("  {label:>15} {:>5}  {}", total, spark(&levels))
        })
        .collect()
}

/// Per-window totals over the contiguous window range (empty windows as
/// zero), so sparklines keep their time axis.
fn contiguous_totals(counts: &qoserve_metrics::WindowedCounts) -> Vec<u64> {
    let Some((&first, _)) = counts.windows.first_key_value() else {
        return Vec::new();
    };
    let Some((&last, _)) = counts.windows.last_key_value() else {
        return Vec::new();
    };
    (first..=last)
        .map(|idx| counts.windows.get(&idx).map(|w| w.total).unwrap_or(0))
        .collect()
}

/// Renders one full dashboard frame from a cumulative snapshot.
pub fn render(s: &StatsSnapshot) -> String {
    let mut out = String::with_capacity(2_048);
    out.push_str(&format!(
        "qoservetop — sim {}  boundary #{}  {} events  {} evicted\n",
        fmt_time(s.upto_us),
        s.seq,
        s.frame.events,
        s.frame.dropped,
    ));
    out.push_str("\nSLO attainment by tier (bar: cumulative, spark: per window)\n");
    if s.frame.tiers.is_empty() {
        out.push_str("  (no completions yet)\n");
    }
    for (&tier, t) in &s.frame.tiers {
        out.push_str(&tier_line(tier, t));
        out.push('\n');
    }
    out.push_str("\nfleet\n");
    out.push_str(&fleet_lines(s));
    out.push('\n');
    let offenders = worst_offender_lines(&s.frame.replicas, 5);
    if !offenders.is_empty() {
        out.push_str("\nworst offenders (by SLO violations)\n");
        for line in offenders {
            out.push_str(&line);
            out.push('\n');
        }
    }
    let causes = cause_lines(s);
    if !causes.is_empty() {
        out.push_str("\nviolation causes (per window)\n");
        for line in causes {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_metrics::WindowedCounts;

    fn snapshot() -> StatsSnapshot {
        let mut s = StatsSnapshot {
            version: qoserve_stats::SNAPSHOT_SCHEMA_VERSION,
            seq: 3,
            upto_us: 180_000_000,
            ..StatsSnapshot::default()
        };
        let t = s.frame.tiers.entry(1).or_default();
        t.completed = 90;
        t.violated = 9;
        t.attainment = WindowedCounts::new(60_000_000);
        t.attainment.record(5_000_000, false);
        t.attainment.record(65_000_000, true);
        let r = s.frame.replicas.entry(0).or_default();
        r.completed = 90;
        r.violated = 9;
        r.lifecycle = Some("serving".to_owned());
        let r1 = s.frame.replicas.entry(1).or_default();
        r1.lifecycle = Some("draining".to_owned());
        s.frame.fleet.last_size = Some(2);
        s.frame.fleet.scale_ups = 1;
        *s.frame
            .causes
            .entry("queueing-delay".to_owned())
            .or_insert(0) = 9;
        let w = s
            .frame
            .cause_windows
            .entry("queueing-delay".to_owned())
            .or_insert_with(|| WindowedCounts::new(60_000_000));
        for _ in 0..9 {
            w.record(65_000_000, false);
        }
        s.frame.events = 250;
        s
    }

    #[test]
    fn bar_and_spark_shapes() {
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(-1.0, 4), "....");
        assert_eq!(bar(2.0, 4), "####");
        assert_eq!(spark(&[]), "");
        assert_eq!(spark(&[0, 0]), "▁▁");
        let s = spark(&[0, 5, 10]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
    }

    #[test]
    fn time_and_tier_labels() {
        assert_eq!(fmt_time(83_000_000), "83s");
        assert_eq!(fmt_time(723_000_000), "12m03s");
        assert_eq!(fmt_time(7_500_000_000), "2h05m");
        assert_eq!(tier_label(2), "Q2");
        assert_eq!(tier_label(RELEGATED_TIER), "best-effort");
    }

    #[test]
    fn render_covers_every_view() {
        let text = render(&snapshot());
        assert!(text.contains("boundary #3"), "{text}");
        assert!(text.contains("Q1"), "{text}");
        assert!(text.contains("90.0%"), "tier attainment\n{text}");
        assert!(
            text.contains("fleet [=d] size 2"),
            "lifecycle strip\n{text}"
        );
        assert!(text.contains("r0"), "worst offender\n{text}");
        assert!(text.contains("queueing-delay"), "cause view\n{text}");
        // Deterministic: same snapshot, same bytes.
        assert_eq!(text, render(&snapshot()));
    }

    #[test]
    fn empty_snapshot_renders_without_panicking() {
        let text = render(&StatsSnapshot::default());
        assert!(text.contains("no completions yet"), "{text}");
    }

    #[test]
    fn worst_offenders_rank_by_violations_with_id_ties() {
        let mut replicas: BTreeMap<u32, ReplicaStats> = BTreeMap::new();
        for (id, violated) in [(0u32, 3u64), (1, 7), (2, 7), (3, 0)] {
            let r = replicas.entry(id).or_default();
            r.violated = violated;
        }
        let lines = worst_offender_lines(&replicas, 2);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("r1"), "{lines:?}");
        assert!(lines[1].contains("r2"), "{lines:?}");
    }
}
