//! Determinism of the parallel experiment harness.
//!
//! The contract of `qoserve_sim::parallel` is that thread count affects
//! wall-clock only, never results: every parallelized search/sweep must
//! produce **bit-identical** output to its serial reference
//! implementation. These tests pin that contract at the integration
//! level, on real simulations.

use qoserve::experiments::{load_sweep, load_sweep_serial};
use qoserve::prelude::*;
use qoserve_cluster::max_goodput_serial;
use qoserve_sim::par_map_threads;

fn small_options() -> GoodputOptions {
    GoodputOptions {
        window: SimDuration::from_secs(90),
        resolution: 0.5,
        max_qps: 40.0,
        ..Default::default()
    }
}

#[test]
fn parallel_load_sweep_is_bit_identical_to_serial() {
    let dataset = Dataset::azure_conv();
    let hw = HardwareConfig::llama3_8b_a100_tp1();
    let schemes = [SchedulerSpec::sarathi_fcfs(), SchedulerSpec::qoserve()];
    let qps_list = [1.5, 3.0];
    let window = SimDuration::from_secs(60);
    let mix = TierMix::paper_equal();

    let parallel = load_sweep(&dataset, &hw, &schemes, &qps_list, window, &mix, 42);
    let serial = load_sweep_serial(&dataset, &hw, &schemes, &qps_list, window, &mix, 42);

    assert_eq!(parallel.len(), serial.len());
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.scheme, s.scheme);
        // Bit-level equality, not approximate.
        assert_eq!(p.qps.to_bits(), s.qps.to_bits(), "{}", p.scheme);
        assert_eq!(p.report, s.report, "{} @ {} qps", p.scheme, p.qps);
        assert_eq!(p.outcomes, s.outcomes, "{} @ {} qps", p.scheme, p.qps);
    }
}

#[test]
fn parallel_goodput_search_is_bit_identical_to_serial() {
    let dataset = Dataset::azure_conv();
    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let options = small_options();
    for (spec, seed) in [
        (SchedulerSpec::qoserve(), 11u64),
        (SchedulerSpec::sarathi_fcfs(), 12),
    ] {
        let parallel = max_goodput(&dataset, &spec, &config, &options, &SeedStream::new(seed));
        let serial = max_goodput_serial(&dataset, &spec, &config, &options, &SeedStream::new(seed));
        assert_eq!(
            parallel.to_bits(),
            serial.to_bits(),
            "{}: parallel {parallel} vs serial {serial}",
            spec.label()
        );
    }
}

#[test]
fn min_replicas_matches_exhaustive_serial_scan() {
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(6.0))
        .duration(SimDuration::from_secs(120))
        .tier_mix(TierMix::paper_equal())
        .build(&SeedStream::new(9));
    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let spec = SchedulerSpec::qoserve();
    let seeds = SeedStream::new(9);
    let max_replicas = 6;

    let got = min_replicas_for(&trace, &spec, &config, 1.0, max_replicas, &seeds);

    // Serial reference: smallest replica count that meets the bar.
    let threshold = trace.long_prompt_threshold();
    let want = (1..=max_replicas).find(|&replicas| {
        let outcomes = run_shared(&trace, replicas, &spec, &config, &seeds);
        SloReport::compute(&outcomes, threshold).meets_goodput_bar(1.0)
    });
    assert_eq!(got, want);
}

#[test]
fn thread_count_does_not_change_simulation_results() {
    let trace = TraceBuilder::new(Dataset::azure_code())
        .arrivals(ArrivalProcess::poisson(2.0))
        .duration(SimDuration::from_secs(45))
        .tier_mix(TierMix::paper_equal())
        .build(&SeedStream::new(5));
    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let schemes = vec![
        SchedulerSpec::sarathi_fcfs(),
        SchedulerSpec::sarathi_edf(),
        SchedulerSpec::qoserve(),
    ];

    let run_all = |threads: usize| {
        par_map_threads(threads, schemes.clone(), |_, spec| {
            run_shared(&trace, 1, &spec, &config, &SeedStream::new(5))
        })
    };
    let one = run_all(1);
    let four = run_all(4);
    assert_eq!(one, four);
}

/// Regression test for iteration-order nondeterminism: two identical
/// runs in the same process must produce bit-identical outcome
/// *sequences*, before any downstream sorting.
///
/// The engine and schedulers used to keep in-flight/queued jobs in
/// `HashMap`s whose per-instance `RandomState` makes drain order differ
/// between two map instances even within one process. That leak was
/// masked by `run_replicas` sorting outcomes by id; this test compares
/// the raw order out of the engine — on a truncated horizon, so
/// `finalize_unfinished` has to drain both the running set and the
/// scheduler queue while plenty of work is still outstanding.
#[test]
fn repeated_runs_emit_outcomes_in_identical_order() {
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(30.0)) // heavy overload: deep queues
        .duration(SimDuration::from_secs(30))
        .tier_mix(TierMix::paper_equal())
        .build(&SeedStream::new(7));
    let hw = HardwareConfig::llama3_8b_a100_tp1();

    for spec in [
        SchedulerSpec::qoserve(),
        SchedulerSpec::SlosServe {
            config: SlosServeConfig::default(),
        },
        SchedulerSpec::sarathi_edf(),
    ] {
        let run_once = || {
            let seeds = SeedStream::new(7);
            let config = ReplicaConfig::new(hw.clone()).with_horizon(SimTime::from_secs(10)); // cut off mid-flight
            let sched = spec.build(&hw, &seeds);
            let mut engine = ReplicaEngine::new(config, sched, &seeds);
            engine.run_trace(&trace)
        };
        let first = run_once();
        let second = run_once();
        assert!(
            first.iter().any(|o| !o.finished()),
            "{}: horizon must leave unfinished work or the drain path is untested",
            spec.label()
        );
        // Sequence equality — same outcomes in a different order fails.
        assert_eq!(
            first,
            second,
            "{}: outcome order must be reproducible",
            spec.label()
        );
    }
}
