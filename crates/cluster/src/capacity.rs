//! Goodput search and capacity planning.
//!
//! * [`max_goodput`] — the paper's per-replica goodput metric (§4.1.2):
//!   the maximum QPS at which at most 1 % of requests violate their
//!   deadlines, found by ramp-plus-bisection over full simulation runs.
//! * [`min_replicas_for`] — the capacity planner behind Table 4 and
//!   Fig. 15b: the smallest replica pool that serves a fixed-QPS trace
//!   within the violation bar.
//!
//! Both searches run their independent probe simulations on the
//! deterministic parallel harness (`qoserve_sim::parallel`): every probe
//! reconstructs its randomness from the probe parameters alone, so the
//! answers are bit-identical to the serial search regardless of
//! `QOSERVE_THREADS`.

use qoserve_metrics::{max_supported_load, SloReport};
use qoserve_sim::{par_map, par_max_passing, SeedStream, SimDuration};
use qoserve_workload::{ArrivalProcess, Dataset, TierMix, Trace, TraceBuilder};

use crate::deployment::{run_shared, ClusterConfig};
use crate::spec::SchedulerSpec;

/// Parameters of a goodput search.
#[derive(Debug, Clone)]
pub struct GoodputOptions {
    /// Arrival window simulated per probe (the paper runs 4 h; the
    /// default keeps experiment binaries fast while preserving trends —
    /// see EXPERIMENTS.md).
    pub window: SimDuration,
    /// Violation bar in percent (the paper allows 1 %).
    pub allowed_violation_pct: f64,
    /// QPS search range.
    pub min_qps: f64,
    /// Upper bound of the QPS search.
    pub max_qps: f64,
    /// Search resolution in QPS.
    pub resolution: f64,
    /// Tier mixture of the probe traces.
    pub mix: TierMix,
}

impl Default for GoodputOptions {
    fn default() -> Self {
        GoodputOptions {
            window: SimDuration::from_secs(900),
            allowed_violation_pct: 1.0,
            min_qps: 0.25,
            max_qps: 24.0,
            resolution: 0.1,
            mix: TierMix::paper_equal(),
        }
    }
}

/// Builds the probe trace for one goodput probe.
fn probe_trace(dataset: &Dataset, qps: f64, options: &GoodputOptions, seeds: &SeedStream) -> Trace {
    TraceBuilder::new(dataset.clone())
        .arrivals(ArrivalProcess::poisson(qps))
        .duration(options.window)
        .tier_mix(options.mix.clone())
        .build(seeds)
}

/// One goodput probe: does `scheduler` hold the violation bar at `qps`?
fn goodput_probe(
    dataset: &Dataset,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    options: &GoodputOptions,
    seeds: &SeedStream,
    qps: f64,
) -> bool {
    let trace = probe_trace(dataset, qps, options, &seeds.child("trace"));
    if trace.is_empty() {
        return true;
    }
    let outcomes = run_shared(&trace, 1, scheduler, config, seeds);
    SloReport::compute(&outcomes, trace.long_prompt_threshold())
        .meets_goodput_bar(options.allowed_violation_pct)
}

/// Maximum goodput (QPS per replica) of `scheduler` on `dataset`:
/// the largest arrival rate with at most `allowed_violation_pct`
/// violations. Returns 0 when even `min_qps` fails.
///
/// The coarse bracketing grid runs in parallel (every probe derives its
/// trace and noise purely from its QPS and `seeds`), then the bisection
/// refines serially — bit-identical to [`max_goodput_serial`] for any
/// `QOSERVE_THREADS`.
pub fn max_goodput(
    dataset: &Dataset,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    options: &GoodputOptions,
    seeds: &SeedStream,
) -> f64 {
    par_max_passing(
        options.min_qps,
        options.max_qps,
        options.resolution,
        |qps| goodput_probe(dataset, scheduler, config, options, seeds, qps),
    )
    .unwrap_or(0.0)
}

/// Single-threaded reference implementation of [`max_goodput`], kept for
/// the determinism tests that pin the parallel search to it.
pub fn max_goodput_serial(
    dataset: &Dataset,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    options: &GoodputOptions,
    seeds: &SeedStream,
) -> f64 {
    max_supported_load(
        options.min_qps,
        options.max_qps,
        options.resolution,
        |qps| goodput_probe(dataset, scheduler, config, options, seeds, qps),
    )
    .unwrap_or(0.0)
}

/// Smallest number of replicas that serves `trace` with at most
/// `allowed_violation_pct` violations; `None` if even `max_replicas` is
/// insufficient.
///
/// All candidate pool sizes `1..=max_replicas` are probed concurrently
/// and the smallest passing one wins. (The earlier implementation
/// bisected, which assumed the pass predicate is monotone in pool size;
/// exhaustive probing returns the true minimum even when a mid-size pool
/// happens to fail, and its answer is independent of thread count.)
pub fn min_replicas_for(
    trace: &Trace,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    allowed_violation_pct: f64,
    max_replicas: u32,
    seeds: &SeedStream,
) -> Option<u32> {
    assert!(max_replicas > 0, "max_replicas must be positive");
    let threshold = trace.long_prompt_threshold();
    let verdicts = par_map((1..=max_replicas).collect(), |_, replicas| {
        let outcomes = run_shared(trace, replicas, scheduler, config, seeds);
        SloReport::compute(&outcomes, threshold).meets_goodput_bar(allowed_violation_pct)
    });
    verdicts.iter().position(|&ok| ok).map(|i| i as u32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_perf::HardwareConfig;

    fn config() -> ClusterConfig {
        ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1())
    }

    fn fast_options() -> GoodputOptions {
        // Short probe window: Q2/Q3 TTLT violations (600s/1800s budgets)
        // cannot materialise in 120s, so only Q1 pressure binds and the
        // measured goodput sits well above the paper's 4h-window numbers.
        // That is fine for these bounded unit tests; the experiment
        // binaries use the honest default window.
        GoodputOptions {
            window: SimDuration::from_secs(120),
            resolution: 0.5,
            max_qps: 40.0,
            ..Default::default()
        }
    }

    #[test]
    fn goodput_is_positive_and_bounded() {
        let g = max_goodput(
            &Dataset::azure_conv(),
            &SchedulerSpec::qoserve(),
            &config(),
            &fast_options(),
            &SeedStream::new(1),
        );
        assert!(g > 0.5, "goodput {g}");
        assert!(g < 40.0, "goodput {g} hit the search ceiling");
    }

    #[test]
    fn qoserve_goodput_beats_fcfs() {
        // The paper's core claim at single-replica scale (Fig. 7).
        let seeds = SeedStream::new(2);
        let opts = fast_options();
        let fcfs = max_goodput(
            &Dataset::azure_conv(),
            &SchedulerSpec::sarathi_fcfs(),
            &config(),
            &opts,
            &seeds,
        );
        let qs = max_goodput(
            &Dataset::azure_conv(),
            &SchedulerSpec::qoserve(),
            &config(),
            &opts,
            &seeds,
        );
        assert!(
            qs > fcfs,
            "QoServe goodput {qs} should beat Sarathi-FCFS {fcfs}"
        );
    }

    #[test]
    fn min_replicas_finds_boundary() {
        let trace = probe_trace(
            &Dataset::azure_conv(),
            8.0,
            &fast_options(),
            &SeedStream::new(3),
        );
        let n = min_replicas_for(
            &trace,
            &SchedulerSpec::qoserve(),
            &config(),
            1.0,
            8,
            &SeedStream::new(3),
        )
        .expect("8 replicas must suffice for 8 QPS");
        assert!(n >= 1 && n <= 8);
        if n > 1 {
            // n-1 must fail (minimality).
            let outcomes = run_shared(
                &trace,
                n - 1,
                &SchedulerSpec::qoserve(),
                &config(),
                &SeedStream::new(3),
            );
            let report = SloReport::compute(&outcomes, trace.long_prompt_threshold());
            assert!(!report.meets_goodput_bar(1.0));
        }
    }

    #[test]
    fn min_replicas_none_when_infeasible() {
        // 30 QPS cannot fit on one replica.
        let trace = probe_trace(
            &Dataset::azure_code(),
            30.0,
            &fast_options(),
            &SeedStream::new(4),
        );
        assert_eq!(
            min_replicas_for(
                &trace,
                &SchedulerSpec::sarathi_fcfs(),
                &config(),
                1.0,
                1,
                &SeedStream::new(4),
            ),
            None
        );
    }
}
