//! §2.2's overload-management comparison: rate limiting vs short-request
//! prioritization vs eager relegation.
//!
//! The paper motivates QoServe by noting that production overload tools
//! are blunt: rate limiting "simply rejects excess requests without
//! considering their relative importance", and short-request
//! prioritization "unfairly disadvantages longer but potentially more
//! important queries". This binary quantifies both failure modes against
//! eager relegation on a sustained ~1.5x overload with 20 % free-tier
//! traffic.

use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results};

fn main() {
    banner(
        "overload_mgmt",
        "Rate limiting vs SRPF vs eager relegation under overload",
    );

    let trace = TraceBuilder::new(Dataset::azure_code())
        .arrivals(ArrivalProcess::poisson(9.0))
        .duration(SimDuration::from_secs(1_800))
        .paper_tier_mix()
        .low_priority_fraction(0.2)
        .build(&SeedStream::new(22));
    println!(
        "workload: {} requests at ~1.5x capacity, 20% free tier\n",
        trace.len()
    );

    let schemes: Vec<SchedulerSpec> = vec![
        // Naive throttling in front of the SOTA baseline: reject once the
        // backlog exceeds ~6s of prefill work.
        SchedulerSpec::RateLimited {
            inner: Box::new(SchedulerSpec::sarathi_fcfs()),
            max_backlog_tokens: 90_000,
        },
        // Short-request prioritization.
        SchedulerSpec::sarathi_srpf(),
        // Binary online/offline collocation (§5's ConServe).
        SchedulerSpec::ConServe { chunk: 256 },
        // QoServe's eager relegation (full system).
        SchedulerSpec::qoserve(),
    ];

    let hw = HardwareConfig::llama3_8b_a100_tp1();
    let config = ClusterConfig::new(hw);
    let threshold = trace.long_prompt_threshold();

    let mut table = Table::new(vec![
        "scheme",
        "violations",
        "important viol.",
        "long viol.",
        "unserved",
    ]);
    let mut rows = Vec::new();
    for spec in &schemes {
        let outcomes = run_shared(&trace, 1, spec, &config, &SeedStream::new(22));
        let report = SloReport::compute(&outcomes, threshold);
        let unserved = outcomes.iter().filter(|o| !o.finished()).count();
        let unserved_pct = 100.0 * unserved as f64 / outcomes.len() as f64;
        table.row(vec![
            spec.label(),
            format!("{:.1}%", report.violation_pct()),
            format!("{:.1}%", report.important_violation_pct()),
            format!("{:.1}%", report.long_violation_pct()),
            format!("{unserved_pct:.1}%"),
        ]);
        rows.push(serde_json::json!({
            "scheme": spec.label(),
            "violation_pct": report.violation_pct(),
            "important_violation_pct": report.important_violation_pct(),
            "long_violation_pct": report.long_violation_pct(),
            "unserved_pct": unserved_pct,
        }));
        eprintln!("  done: {}", spec.label());
    }
    print!("{table}");
    emit_results("overload_mgmt", &rows);
    println!(
        "\npaper (§2.2): rate limiting rejects without regard to importance; SRPF \
         sacrifices long requests; relegation degrades selectively — free tier \
         and hopeless work first — and still serves everything eventually."
    );
}
