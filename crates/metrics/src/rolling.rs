//! Time-windowed latency series (Fig. 13's rolling p99).

use qoserve_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::percentile::percentile;

/// A series of `(window_start_secs, value)` points computed over fixed
/// windows of a timestamped sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RollingSeries {
    /// Window length in seconds.
    pub window_secs: f64,
    /// `(window start in seconds, value)` pairs; windows with no samples
    /// are omitted.
    pub points: Vec<(f64, f64)>,
}

impl RollingSeries {
    /// Computes a rolling percentile over `(timestamp, latency_secs)`
    /// samples, bucketed by `window` (the paper uses 60 s windows keyed by
    /// arrival time).
    pub fn percentile_over(
        samples: &[(SimTime, f64)],
        window: SimDuration,
        p: f64,
    ) -> RollingSeries {
        let window_us = window.as_micros().max(1);
        let mut buckets: std::collections::BTreeMap<u64, Vec<f64>> = Default::default();
        for (t, v) in samples {
            buckets
                .entry(t.as_micros() / window_us)
                .or_default()
                .push(*v);
        }
        RollingSeries {
            window_secs: window.as_secs_f64(),
            points: buckets
                .into_iter()
                .filter_map(|(idx, vals)| {
                    percentile(&vals, p).map(|val| ((idx * window_us) as f64 / 1e6, val))
                })
                .collect(),
        }
    }

    /// The largest value in the series.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, v)| *v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Mean of the series values.
    pub fn mean_value(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }

    /// Values within `[from_secs, to_secs)` of window-start time.
    pub fn slice(&self, from_secs: f64, to_secs: f64) -> Vec<f64> {
        self.points
            .iter()
            .filter(|(t, _)| *t >= from_secs && *t < to_secs)
            .map(|(_, v)| *v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<(SimTime, f64)> {
        // Two windows: [0,60) holds 1..=10, [60,120) holds 100.
        let mut s: Vec<(SimTime, f64)> = (1..=10)
            .map(|i| (SimTime::from_secs(i as u64 * 5), i as f64))
            .collect();
        s.push((SimTime::from_secs(70), 100.0));
        s
    }

    #[test]
    fn buckets_by_window() {
        let series = RollingSeries::percentile_over(&samples(), SimDuration::from_secs(60), 0.5);
        assert_eq!(series.points.len(), 2);
        assert_eq!(series.points[0].0, 0.0);
        assert_eq!(series.points[0].1, 5.5); // median of 1..=10
        assert_eq!(series.points[1], (60.0, 100.0));
    }

    #[test]
    fn empty_windows_are_omitted() {
        let s = vec![(SimTime::from_secs(500), 1.0)];
        let series = RollingSeries::percentile_over(&s, SimDuration::from_secs(60), 0.99);
        assert_eq!(series.points.len(), 1);
        assert_eq!(series.points[0].0, 480.0);
    }

    #[test]
    fn max_and_mean() {
        let series = RollingSeries::percentile_over(&samples(), SimDuration::from_secs(60), 0.5);
        assert_eq!(series.max_value(), Some(100.0));
        assert_eq!(series.mean_value(), Some(52.75));
        let empty = RollingSeries::percentile_over(&[], SimDuration::from_secs(60), 0.5);
        assert_eq!(empty.max_value(), None);
        assert_eq!(empty.mean_value(), None);
    }

    #[test]
    fn slice_filters_by_time() {
        let series = RollingSeries::percentile_over(&samples(), SimDuration::from_secs(60), 0.5);
        assert_eq!(series.slice(0.0, 60.0), vec![5.5]);
        assert_eq!(series.slice(60.0, 120.0), vec![100.0]);
        assert!(series.slice(120.0, 240.0).is_empty());
    }

    #[test]
    fn edge_samples_land_in_the_later_window() {
        // Windows are half-open [start, start + w): a sample exactly on
        // the boundary belongs to the window that starts there, and the
        // last microsecond before it still belongs to the earlier one.
        let s = vec![
            (SimTime::from_micros(60_000_000 - 1), 1.0),
            (SimTime::from_micros(60_000_000), 2.0),
        ];
        let series = RollingSeries::percentile_over(&s, SimDuration::from_secs(60), 0.5);
        assert_eq!(series.points, vec![(0.0, 1.0), (60.0, 2.0)]);
    }

    #[test]
    fn gap_windows_mid_series_are_omitted() {
        // Windows 1 and 2 are empty; only windows 0 and 3 produce points.
        let s = vec![
            (SimTime::from_secs(10), 1.0),
            (SimTime::from_secs(190), 2.0),
        ];
        let series = RollingSeries::percentile_over(&s, SimDuration::from_secs(60), 0.5);
        assert_eq!(series.points, vec![(0.0, 1.0), (180.0, 2.0)]);
    }

    #[test]
    fn zero_length_window_degenerates_to_microsecond_buckets() {
        // The `.max(1)` guard turns a zero window into 1 us buckets
        // instead of dividing by zero.
        let s = vec![
            (SimTime::from_micros(5), 1.0),
            (SimTime::from_micros(5), 3.0),
            (SimTime::from_micros(6), 7.0),
        ];
        let series = RollingSeries::percentile_over(&s, SimDuration::ZERO, 0.5);
        assert_eq!(series.points.len(), 2);
        assert_eq!(series.points[0], (5e-6, 2.0));
        assert_eq!(series.points[1], (6e-6, 7.0));
    }

    #[test]
    fn slice_is_half_open_on_both_ends() {
        let series = RollingSeries::percentile_over(&samples(), SimDuration::from_secs(60), 0.5);
        // Degenerate range selects nothing; the `to` bound is exclusive
        // so a window starting exactly at `to` is left out.
        assert!(series.slice(60.0, 60.0).is_empty());
        assert_eq!(series.slice(0.0, 60.000001), vec![5.5, 100.0]);
        assert!(series.slice(0.0, 60.0).len() == 1);
    }
}
