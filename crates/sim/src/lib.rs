//! Discrete-event simulation kernel for the QoServe reproduction.
//!
//! This crate provides the time base, event queue, deterministic random
//! number streams, and online statistics shared by every other crate in the
//! workspace. Nothing in here knows about LLM serving; it is a small,
//! general-purpose simulation substrate.
//!
//! # Design
//!
//! * Time is an integer number of **microseconds** ([`SimTime`] /
//!   [`SimDuration`]). Integer ticks make event ordering total and runs
//!   bit-reproducible across platforms, which floating-point seconds would
//!   not.
//! * Randomness flows from a single `u64` seed through [`rng::SeedStream`],
//!   which derives independent ChaCha8 substreams by label. Two runs with
//!   the same seed produce identical traces, arrivals, and noise.
//! * [`events::EventQueue`] is a stable priority queue: events at the same
//!   timestamp pop in push order, so simulations never depend on heap
//!   tie-breaking.
//! * [`eventcore`] holds the hot-path variants: [`CalendarQueue`] (a
//!   bucketed timing wheel with a radix-heap overflow, totally ordered by
//!   `(time_us, sub, seq)` — the trace's canonical order) and [`JobSlab`]
//!   (a generation-checked slab arena for in-flight jobs). Both are
//!   pop-for-pop identical to their naive references; only the constant
//!   factors differ.
//! * [`faults::FaultSchedule`] materialises a seed-derived fault timeline
//!   (crashes, restarts, straggler and predictor-drift windows) a priori,
//!   so fault injection is data, not nondeterministic side effects.
//! * [`parallel::par_map`] runs independent seeded tasks across cores
//!   (`QOSERVE_THREADS` overrides the worker count) while keeping output
//!   order-preserving and bit-identical to serial execution.
//!
//! # Example
//!
//! ```
//! use qoserve_sim::{SimTime, SimDuration};
//!
//! let start = SimTime::ZERO;
//! let later = start + SimDuration::from_millis(50);
//! assert_eq!(later.signed_duration_since(start).as_millis_f64(), 50.0);
//! ```

pub mod eventcore;
pub mod events;
pub mod faults;
pub mod float;
pub mod nums;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod time;

pub use eventcore::{CalendarQueue, JobRef, JobSlab};
pub use events::EventQueue;
pub use faults::{
    CrashEvent, FaultConfig, FaultEvent, FaultKind, FaultSchedule, ReplicaFaultProfile, SlowWindow,
};
pub use float::{cmp_f64, priority_micros, sort_f64};
pub use parallel::{par_map, par_map_threads, par_max_passing, thread_limit};
pub use rng::SeedStream;
pub use stats::OnlineStats;
pub use time::{SimDuration, SimTime};
