//! Chaos sweep: faults and scale churn composed on the elastic runner.
//!
//! Runs the fault sweep's workload while a seed-derived schedule of
//! Add/Drain membership changes executes alongside the crash/straggler
//! timeline — the deterministic analogue of a chaos-testing harness.
//! Every run replays bit-identically from its seed, so a goodput
//! regression under chaos is a diff, not a flake. The elastic control
//! plane has to keep its promises here: no request lost or
//! double-completed, drained replicas never receiving new work, and
//! graceful drains migrating in-flight work instead of dropping it.

use qoserve::experiments::{chaos_sweep, scaled_window, ChaosSweepSetup, FaultSweepSetup};
use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results};

fn main() {
    banner("chaos_sweep", "Faults x scale churn on the elastic runner");

    let setup = ChaosSweepSetup {
        base: FaultSweepSetup {
            dataset: Dataset::azure_conv(),
            hardware: HardwareConfig::llama3_8b_a100_tp1(),
            replicas: 3,
            qps: 8.0,
            window: scaled_window(600),
            mix: TierMix::paper_equal(),
            low_priority_fraction: 0.2,
            plan: FaultPlan::with_faults(FaultConfig::moderate()),
            seed: 41,
        },
        churn: ScaleChurnConfig {
            events_per_hour: 30.0,
            max_events: 64,
        },
        lifecycle: LifecycleConfig {
            provision_delay: SimDuration::from_secs(5),
            warmup: SimDuration::from_secs(10),
            drain_grace: SimDuration::from_secs(20),
        },
        max_replicas: 5,
    };
    let schemes: Vec<SchedulerSpec> = vec![SchedulerSpec::qoserve(), SchedulerSpec::sarathi_fcfs()];
    let intensities = [0.0, 1.0, 2.0];

    println!(
        "workload: {} replicas (ceiling {}) at {} QPS, ~{:.0} scale events/h \
         composed with the moderate fault profile scaled by intensity\n",
        setup.base.replicas, setup.max_replicas, setup.base.qps, setup.churn.events_per_hour
    );

    let points = chaos_sweep(&setup, &schemes, &intensities);

    let mut table = Table::new(vec![
        "scheme",
        "intensity",
        "goodput",
        "crashes",
        "ups",
        "downs",
        "drain migr.",
        "redisp.",
        "shed",
        "replica-h",
    ]);
    let mut rows: Vec<serde_json::Value> = Vec::new();
    for p in &points {
        let goodput_pct = 100.0 - p.report.violation_pct();
        let replica_hours = p.replica_us as f64 / 3.6e9;
        table.row(vec![
            p.scheme.clone(),
            format!("{:.1}", p.intensity),
            format!("{goodput_pct:.1}%"),
            p.stats.crashes.to_string(),
            p.stats.scale_ups.to_string(),
            p.stats.scale_downs.to_string(),
            p.stats.drain_migrated.to_string(),
            p.stats.redispatches.to_string(),
            p.stats.shed.to_string(),
            format!("{replica_hours:.2}"),
        ]);
        rows.push(serde_json::json!({
            "scheme": p.scheme,
            "intensity": p.intensity,
            "goodput_pct": goodput_pct,
            "violation_pct": p.report.violation_pct(),
            "completion_fraction": p.recovery.overall.completion_fraction(),
            "scale_events": p.scale_events,
            "crashes": p.stats.crashes,
            "restarts": p.stats.restarts,
            "scale_ups": p.stats.scale_ups,
            "scale_downs": p.stats.scale_downs,
            "drain_migrated": p.stats.drain_migrated,
            "warmup_wasted_us": p.stats.warmup_wasted_us,
            "redispatches": p.stats.redispatches,
            "shed": p.stats.shed,
            "retry_exhausted": p.stats.retry_exhausted,
            "reprefill_tokens": p.stats.reprefill_tokens,
            "replica_hours": replica_hours,
        }));
        eprintln!("  done: {} @ intensity {:.1}", p.scheme, p.intensity);
    }
    print!("{table}");
    println!(
        "\nexpectation: membership churn alone (intensity 0) costs warm-up time \
         and drain migrations but loses nothing; composing crashes on top, \
         QoServe's tier-aware recovery sheds free-tier work first while the \
         importance-blind baseline degrades uniformly."
    );
    emit_results("chaos_sweep", &rows);
}
