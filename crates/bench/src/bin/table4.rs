//! Table 4: cluster-scale siloed vs shared serving.
//!
//! The paper serves Az-Code at 35 QPS (3 equal tiers, Llama3-8B) on a
//! 16-GPU cluster: the siloed SOTA needs (7,3,3) = 13 GPUs to meet SLOs;
//! shrinking it to the 10 GPUs QoServe uses — silo-(6,2,2) — explodes
//! violations to 60 %, while shared QoServe-(10) serves the whole load
//! with no violations. 23 % fewer GPUs at equal SLOs.

use qoserve::experiments::scaled_window;
use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results, overall_median_latency, overall_p95_latency};
use qoserve_metrics::SloReport;

fn main() {
    banner(
        "table4",
        "Cluster-scale: siloed vs QoServe shared (Az-Code @ 35 QPS)",
    );

    let hw = HardwareConfig::llama3_8b_a100_tp1();
    let window = scaled_window(3600);
    let trace = TraceBuilder::new(Dataset::azure_code())
        .arrivals(ArrivalProcess::poisson(35.0))
        .duration(window)
        .paper_tier_mix()
        .build(&SeedStream::new(4));
    println!("trace: {} requests over {window}", trace.len());

    let config = ClusterConfig::new(hw);
    let seeds = SeedStream::new(4);

    // Siloed groups: Q1 runs the TBT-safe 256 chunk; Q2/Q3 silos maximise
    // throughput with a 2k chunk (the paper's baseline configuration).
    let interactive = SchedulerSpec::Sarathi {
        policy: OrderPolicy::Fcfs,
        chunk: 256,
    };
    let batch = SchedulerSpec::Sarathi {
        policy: OrderPolicy::Fcfs,
        chunk: 2_048,
    };
    let silo = |q1: u32, q2: u32, q3: u32| {
        vec![
            SiloGroup::new(vec![TierId::Q1], q1, interactive.clone()),
            SiloGroup::new(vec![TierId::Q2], q2, batch.clone()),
            SiloGroup::new(vec![TierId::Q3], q3, batch.clone()),
        ]
    };

    // The three deployments are independent seeded simulations — run them
    // on the parallel harness (results are identical to running in order).
    let scenarios: Vec<(&str, u32, Option<Vec<SiloGroup>>)> = vec![
        ("Silo-(7,3,3)", 13, Some(silo(7, 3, 3))),
        ("Silo-(6,2,2)", 10, Some(silo(6, 2, 2))),
        ("QoServe-(10)", 10, None),
    ];
    let runs = par_map(scenarios, |_, (label, gpus, groups)| {
        let outcomes = match &groups {
            Some(groups) => run_siloed(&trace, groups, &config, &seeds),
            None => run_shared(&trace, gpus, &SchedulerSpec::qoserve(), &config, &seeds),
        };
        eprintln!("  done: {label}");
        (label, gpus, outcomes)
    });

    let mut table = Table::new(vec![
        "scheme",
        "GPUs",
        "Q1 p99 (6s)",
        "Q2 p99 (600s)",
        "Q3 p99 (1800s)",
        "overall violations",
    ]);
    let mut rows = Vec::new();
    for (label, gpus, outcomes) in &runs {
        let report = SloReport::compute(outcomes, trace.long_prompt_threshold());
        table.row(vec![
            (*label).to_owned(),
            gpus.to_string(),
            format!("{:.2}", report.tier_summary(TierId::Q1).p99),
            format!("{:.2}", report.tier_summary(TierId::Q2).p99),
            format!("{:.2}", report.tier_summary(TierId::Q3).p99),
            format!("{:.2}%", report.violation_pct()),
        ]);
        rows.push(serde_json::json!({
            "scheme": label,
            "gpus": gpus,
            "qps": 35.0,
            "violation_pct": report.violation_pct(),
            "p50_secs": overall_median_latency(outcomes),
            "p95_secs": overall_p95_latency(outcomes),
        }));
    }
    print!("{table}");
    emit_results("table4", &rows);

    println!();
    println!(
        "paper: Silo-(7,3,3)=13 GPUs meets SLOs (0.24% viol.); Silo-(6,2,2)=10 GPUs \
         collapses to 60.4%; QoServe-(10) meets SLOs with 0% — 23% fewer GPUs"
    );

    // How few replicas would QoServe actually need at this load?
    eprintln!("searching minimum QoServe replicas...");
    if let Some(n) = min_replicas_for(&trace, &SchedulerSpec::qoserve(), &config, 1.0, 13, &seeds) {
        println!(
            "capacity planner: QoServe meets all SLOs with {n} replicas \
             ({:.0}% fewer GPUs than the 13-GPU silo)",
            (1.0 - n as f64 / 13.0) * 100.0
        );
    }
}
