//! End-to-end tests over the seeded fixture workspace in
//! `tests/fixtures/ws`: every rule class must fire with an exact
//! diagnostic, waivers must suppress (or be reported when malformed or
//! unused), the per-family baseline must both gate and ratchet, and the
//! `--only` path filter must narrow the tree without changing any
//! surviving diagnostic.

use std::path::PathBuf;

use qoserve_lint::baseline::Baseline;
use qoserve_lint::rules::{
    RULE_ALLOC, RULE_CAST, RULE_COVERAGE, RULE_FLOAT, RULE_HASH, RULE_LOCK, RULE_OUTPUT,
    RULE_PANIC, RULE_SERDE, RULE_TIME, RULE_WAIVER,
};
use qoserve_lint::{lint_tree, lint_tree_filtered, load_baseline, summary, LintReport};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn report() -> LintReport {
    let root = fixture_root();
    let baseline = load_baseline(&root).expect("fixture baseline parses");
    lint_tree(&root, &baseline).expect("fixture tree lints")
}

#[test]
fn seeded_fixtures_produce_exact_diagnostics() {
    let r = report();
    let got: Vec<String> = r.diagnostics.iter().map(|d| d.to_string()).collect();
    let want = [
        "crates/core/src/clean.rs:5:1 bad-waiver unused waiver for `nondeterministic-time` — \
         no violation of the waived rule(s) fires on the covered lines; delete it so drift \
         cannot hide behind it",
        "crates/engine/src/debt.rs:4:16 panic-hygiene 3 panic site(s) in non-test code (first: \
         `.unwrap()`), baseline allows 2; handle the error or waive with a reason, never raise \
         the baseline",
        "crates/metrics/src/bad_float.rs:5:8 float-ordering `sort_by` comparator built on \
         `partial_cmp` is not a total order under NaN; use `f64::total_cmp` (see \
         `qoserve_sim::float`)",
        "crates/metrics/src/bad_float.rs:5:40 panic-hygiene 2 panic site(s) in non-test code \
         (first: `.unwrap()`), baseline allows 0; handle the error or waive with a reason, \
         never raise the baseline",
        "crates/metrics/src/bad_float.rs:10:7 float-ordering `partial_cmp(..).unwrap()` panics \
         on NaN; use `f64::total_cmp` (see `qoserve_sim::float`)",
        "crates/metrics/src/bad_serde.rs:6:9 serde-back-compat 1 persisted serde field(s) \
         without `#[serde(default)]` (first: ``Snap::count``), baseline allows 0; add \
         `#[serde(default)]` so old JSONL artifacts keep deserializing, or waive with a reason",
        "crates/sched/src/bad_hash.rs:10:14 hash-iteration iteration over hash container \
         `slots` (`.values()`) is order-nondeterministic; use `BTreeMap`/`BTreeSet` or a `Vec`",
        "crates/sched/src/bad_hash.rs:14:45 hash-iteration iteration over hash container \
         `slots` (`.drain()`) is order-nondeterministic; use `BTreeMap`/`BTreeSet` or a `Vec`",
        "crates/sched/src/bad_hash.rs:22:14 hash-iteration iteration over hash container `m` \
         (`.keys()`) is order-nondeterministic; use `BTreeMap`/`BTreeSet` or a `Vec`",
        "crates/sched/src/bad_output.rs:5:5 unstructured-output 3 unstructured output site(s) \
         in library code (first: `println!`), baseline allows 0; return data to the caller (or \
         use the trace layer) instead of printing, or waive with a reason",
        "crates/sched/src/bad_waiver.rs:6:5 bad-waiver missing mandatory reason: write \
         `allow(<rule>) -- <why this is safe>`",
        "crates/sched/src/bad_waiver.rs:7:5 hash-iteration iteration over hash container `m` \
         (`.values()`) is order-nondeterministic; use `BTreeMap`/`BTreeSet` or a `Vec`",
        "crates/sim/src/bad_cast.rs:5:8 lossy-cast 2 lossy integer cast(s) (first: ``as \
         u64``), baseline allows 0; use the checked conversions in `qoserve_sim::nums`, or \
         waive with a reason",
        "crates/sim/src/bad_lock.rs:14:38 lock-discipline `.lock()` taken while another guard \
         from the same statement is still live (in `fn merge`); bind the first guard, drop it, \
         then acquire the second, or waive with a reason",
        "crates/sim/src/bad_lock.rs:22:14 hot-path-alloc 1 allocation site(s) in hot-path code \
         (first: `.to_string()`), baseline allows 0; reuse a scratch buffer or slab slot (see \
         `qoserve_sim::eventcore`), or waive with a reason",
        "crates/sim/src/bad_lock.rs:26:35 lock-discipline `.lock()` in `fn tick` is reachable \
         from hot path `step` (call chain: step -> tick); per-iteration locking skews the \
         sharded==lockstep timing contract; hoist the lock out of the loop, or waive with a \
         reason",
        "crates/sim/src/bad_time.rs:4:24 nondeterministic-time `Instant::now` breaks replay \
         determinism; use `SimTime` from the event loop",
        "crates/sim/src/bad_time.rs:9:25 nondeterministic-time `thread_rng` is \
         nondeterministic; derive a stream from `SeedStream`",
        "crates/trace/src/export.rs:8:1 trace-coverage `TraceEvent::Dropped` is not handled in \
         the trace exporters (JSONL + Chrome); a `_` arm would silently swallow it — add an \
         explicit arm (or list it in an or-pattern), or waive with a reason",
    ];
    assert_eq!(got, want);
    assert!(!r.is_clean(), "seeded fixtures must make the tree dirty");
    assert_eq!(r.files_scanned, 15);
}

#[test]
fn every_rule_class_is_covered() {
    let r = report();
    for rule in [
        RULE_TIME,
        RULE_HASH,
        RULE_FLOAT,
        RULE_PANIC,
        RULE_OUTPUT,
        RULE_ALLOC,
        RULE_CAST,
        RULE_LOCK,
        RULE_COVERAGE,
        RULE_SERDE,
        RULE_WAIVER,
    ] {
        assert!(
            r.diagnostics.iter().any(|d| d.rule == rule),
            "no fixture fires `{rule}`"
        );
    }
}

#[test]
fn unexported_trace_variant_fails_coverage() {
    // The acceptance fixture: `TraceEvent` declares `Dropped`, the
    // exporter surface hides it behind `_` — the lint must fail.
    let r = report();
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.rule == RULE_COVERAGE)
        .expect("missing variant must fire trace-coverage");
    assert_eq!(d.path, "crates/trace/src/export.rs");
    assert!(d.message.contains("`TraceEvent::Dropped`"));
    // The handled variants do not fire.
    assert!(!r
        .diagnostics
        .iter()
        .any(|d| d.message.contains("`TraceEvent::Arrived`")
            || d.message.contains("`TraceEvent::Completed`")));
}

#[test]
fn waiver_with_reason_suppresses_and_is_marked_used() {
    let r = report();
    assert!(
        !r.diagnostics
            .iter()
            .any(|d| d.path == "crates/sched/src/waived.rs"),
        "waived file must produce no diagnostics"
    );
    let w = r
        .waivers
        .iter()
        .find(|w| w.path == "crates/sched/src/waived.rs")
        .expect("waiver is reported");
    assert!(w.used);
    assert_eq!(w.rules, vec!["hash-iteration".to_string()]);
    assert_eq!(w.reason, "count only; order never observed");

    // The lossy-cast waiver in bad_cast.rs absorbs its site: the count
    // diagnostic reports 2 sites, not 3.
    let cast_waiver = r
        .waivers
        .iter()
        .find(|w| w.path == "crates/sim/src/bad_cast.rs")
        .expect("cast waiver is reported");
    assert!(cast_waiver.used);
    assert_eq!(cast_waiver.rules, vec!["lossy-cast".to_string()]);
}

#[test]
fn unused_waiver_is_a_diagnostic() {
    let r = report();
    let unused = r
        .waivers
        .iter()
        .find(|w| w.path == "crates/core/src/clean.rs")
        .expect("unused waiver is still reported");
    assert!(!unused.used);
    assert!(summary(&r).contains("[unused]"));
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.path == "crates/core/src/clean.rs")
        .expect("unused waiver fires bad-waiver");
    assert_eq!(d.rule, RULE_WAIVER);
    assert_eq!(d.line, 5);
    assert!(d.message.contains("unused waiver"));
}

#[test]
fn baseline_gates_and_ratchets() {
    let r = report();
    // Below-ceiling files are ratchet candidates, not violations — for
    // both seeded ratcheted rules.
    assert_eq!(
        r.ratchet,
        vec![
            (RULE_PANIC, "crates/engine/src/ratchet.rs".to_string(), 1, 5),
            (
                RULE_OUTPUT,
                "crates/engine/src/ratchet.rs".to_string(),
                0,
                2
            ),
        ]
    );
    // What --fix-baseline would write: current counts, sorted, canonical,
    // one section per family.
    let rendered = r.counts.render();
    assert!(rendered.contains("\"crates/engine/src/debt.rs\" = 3"));
    assert!(rendered.contains("\"crates/engine/src/ratchet.rs\" = 1"));
    assert!(rendered.contains("\"crates/metrics/src/bad_float.rs\" = 2"));
    assert!(rendered.contains("[unstructured-output]"));
    assert!(rendered.contains("\"crates/sched/src/bad_output.rs\" = 3"));
    assert!(rendered.contains("[lossy-cast]"));
    assert!(rendered.contains("\"crates/sim/src/bad_cast.rs\" = 2"));
    assert!(rendered.contains("[hot-path-alloc]"));
    assert!(rendered.contains("\"crates/sim/src/bad_lock.rs\" = 1"));
    assert!(rendered.contains("[serde-back-compat]"));
    assert!(rendered.contains("\"crates/metrics/src/bad_serde.rs\" = 1"));
    let reparsed = Baseline::parse(&rendered).expect("rendered baseline reparses");
    assert_eq!(reparsed, r.counts);

    // Re-linting against the ratcheted baseline clears the candidates;
    // debt stays capped at its *new* count for every family. Only the
    // non-ratcheted rules (fix-or-waive) survive.
    let r2 = lint_tree(&fixture_root(), &reparsed).expect("relint");
    assert!(r2.ratchet.is_empty(), "freshly ratcheted baseline is tight");
    assert!(
        !r2.diagnostics
            .iter()
            .any(|d| qoserve_lint::baseline::family(d.rule).is_some()),
        "counts at the ceiling are allowed, never below it"
    );
    assert_eq!(reparsed.counts_of(RULE_CAST).len(), 1);
    assert_eq!(reparsed.counts_of(RULE_SERDE).len(), 1);
}

#[test]
fn clean_file_stays_clean() {
    let r = report();
    // The only diagnostic on clean.rs is its deliberately-unused waiver;
    // construction + point lookup + test-module iteration never fire.
    assert!(
        !r.diagnostics
            .iter()
            .any(|d| d.path == "crates/core/src/clean.rs" && d.rule != RULE_WAIVER),
        "construction + point lookup + test-module iteration must not fire"
    );
    for fam in qoserve_lint::baseline::FAMILIES {
        assert!(
            !r.counts
                .counts_of(fam.rule)
                .contains_key("crates/core/src/clean.rs"),
            "clean.rs must carry no `{}` debt",
            fam.rule
        );
    }
}

#[test]
fn bin_drivers_are_exempt_from_output_and_panic() {
    let r = report();
    assert!(
        !r.diagnostics
            .iter()
            .any(|d| d.path == "crates/sim/src/bin/driver.rs"),
        "drivers own the process streams and may unwrap"
    );
    assert!(!r
        .counts
        .counts_of(RULE_OUTPUT)
        .contains_key("crates/sim/src/bin/driver.rs"));
}

#[test]
fn only_filter_narrows_without_rewriting() {
    let root = fixture_root();
    let baseline = load_baseline(&root).expect("fixture baseline parses");
    let full = lint_tree(&root, &baseline).expect("full lint");
    let only = lint_tree_filtered(&root, &baseline, Some("crates/sched")).expect("filtered lint");
    assert_eq!(only.files_scanned, 4);
    assert!(only
        .diagnostics
        .iter()
        .all(|d| d.path.starts_with("crates/sched/")));
    // Every surviving diagnostic is byte-identical to its full-tree twin.
    let full_sched: Vec<String> = full
        .diagnostics
        .iter()
        .filter(|d| d.path.starts_with("crates/sched/"))
        .map(|d| d.to_string())
        .collect();
    let got: Vec<String> = only.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(got, full_sched);

    // Filtering away the trace crate removes the enum from view, so
    // trace-coverage goes inert instead of mis-firing on the surface.
    let sim_only = lint_tree_filtered(&root, &baseline, Some("crates/sim")).expect("sim-only lint");
    assert!(!sim_only.diagnostics.iter().any(|d| d.rule == RULE_COVERAGE));
    assert!(sim_only.diagnostics.iter().any(|d| d.rule == RULE_LOCK));
}
