//! The workspace symbol table and intra-workspace call graph.
//!
//! Built from the per-file [`crate::structure::FileStructure`] trees:
//! every non-test function becomes a node keyed by name (and owner type,
//! when inside an `impl`), every call name becomes an edge candidate.
//! Resolution is *name-based*: a call `x.pop()` links to every workspace
//! function named `pop`. That over-approximates — exactly the right bias
//! for a safety lint (a reachability claim can be waived; a missed lock
//! on the hot path cannot) — and it needs no type information, keeping
//! the linter dependency-free.

use std::collections::{BTreeMap, BTreeSet};

use crate::structure::FileStructure;

/// One function in the workspace table.
#[derive(Debug, Clone)]
pub struct FnSite {
    /// Index of the file (into the caller-supplied slice) it lives in.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Owning `impl`/`trait` type, if any.
    pub owner: Option<String>,
    /// 1-based line of the definition.
    pub line: u32,
    /// Names called from the body.
    pub calls: BTreeSet<String>,
    /// `.lock(` sites in the body: `(line, col)`.
    pub locks: Vec<(u32, u32)>,
    /// Same-statement second-lock sites: `(line, col)`.
    pub nested_locks: Vec<(u32, u32)>,
}

/// One enum in the workspace table.
#[derive(Debug, Clone)]
pub struct EnumSite {
    /// Index of the file it lives in.
    pub file: usize,
    /// Enum name.
    pub name: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// 1-based line of the definition.
    pub line: u32,
}

/// Workspace-wide symbol table over all scanned files.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All non-test functions, in `(file, line)` order.
    pub fns: Vec<FnSite>,
    /// All non-test enums, in `(file, line)` order.
    pub enums: Vec<EnumSite>,
    /// Function indices by name (for call resolution).
    by_name: BTreeMap<String, Vec<usize>>,
}

/// One step of a call chain, for diagnostics.
#[derive(Debug, Clone)]
pub struct Reach {
    /// Index into [`SymbolTable::fns`].
    pub site: usize,
    /// The chain of fn names from the hot root to this site, e.g.
    /// `["step", "emit"]`.
    pub chain: Vec<String>,
}

impl SymbolTable {
    /// Builds the table from per-file structures (iterated in file
    /// order). `is_test_line(file, line)` excludes functions defined
    /// inside `#[cfg(test)]` regions.
    pub fn build<'a, I>(structures: I, is_test_line: impl Fn(usize, u32) -> bool) -> SymbolTable
    where
        I: IntoIterator<Item = &'a FileStructure>,
    {
        let mut table = SymbolTable::default();
        for (file, s) in structures.into_iter().enumerate() {
            for f in &s.fns {
                if is_test_line(file, f.line) {
                    continue;
                }
                table
                    .by_name
                    .entry(f.name.clone())
                    .or_default()
                    .push(table.fns.len());
                table.fns.push(FnSite {
                    file,
                    name: f.name.clone(),
                    owner: f.owner.clone(),
                    line: f.line,
                    calls: f.calls.clone(),
                    locks: f.locks.clone(),
                    nested_locks: f.nested_locks.clone(),
                });
            }
            for e in &s.enums {
                if is_test_line(file, e.line) {
                    continue;
                }
                table.enums.push(EnumSite {
                    file,
                    name: e.name.clone(),
                    variants: e.variants.iter().map(|v| v.name.clone()).collect(),
                    line: e.line,
                });
            }
        }
        table
    }

    /// Function sites named `name`.
    pub fn fns_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], |v| v.as_slice())
    }

    /// The first enum named `name` (scan order: file, then line), if any.
    pub fn enum_named(&self, name: &str) -> Option<&EnumSite> {
        self.enums.iter().find(|e| e.name == name)
    }

    /// Every function reachable from the functions named in `roots`,
    /// following name-resolved call edges breadth-first. Each site is
    /// reported once, with the shortest (first-found) chain of fn names
    /// from its root. Traversal order is deterministic: roots in the
    /// given order, then `(file, line)` order within each BFS layer.
    pub fn reachable_from(&self, roots: &[&str]) -> Vec<Reach> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut out: Vec<Reach> = Vec::new();
        let mut frontier: Vec<Reach> = Vec::new();
        for root in roots {
            for &idx in self.fns_named(root) {
                if seen.insert(idx) {
                    frontier.push(Reach {
                        site: idx,
                        chain: vec![self.fns[idx].name.clone()],
                    });
                }
            }
        }
        while !frontier.is_empty() {
            out.extend(frontier.iter().cloned());
            let mut next: Vec<Reach> = Vec::new();
            for r in &frontier {
                let mut callees: Vec<usize> = Vec::new();
                for call in &self.fns[r.site].calls {
                    callees.extend_from_slice(self.fns_named(call));
                }
                callees.sort_by_key(|&i| (self.fns[i].file, self.fns[i].line));
                for idx in callees {
                    if seen.insert(idx) {
                        let mut chain = r.chain.clone();
                        chain.push(self.fns[idx].name.clone());
                        next.push(Reach { site: idx, chain });
                    }
                }
            }
            frontier = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, Tok, TokKind};
    use crate::structure::parse;

    fn structures(srcs: &[&str]) -> Vec<FileStructure> {
        srcs.iter()
            .map(|src| {
                let toks = lex(src);
                let code: Vec<&Tok> = toks
                    .iter()
                    .filter(|t| t.kind != TokKind::LineComment)
                    .collect();
                parse(&code)
            })
            .collect()
    }

    #[test]
    fn cross_file_reachability_finds_locks() {
        let s = structures(&[
            "impl Replica { fn step(&mut self) { self.tracer.emit(ev); } }",
            "impl Tracer { fn emit(&self, ev: E) { let Ok(mut g) = self.shared.lock() else { return }; g.push(ev); } }",
        ]);
        let table = SymbolTable::build(&s, |_, _| false);
        let reached = table.reachable_from(&["step"]);
        let emit = reached
            .iter()
            .find(|r| table.fns[r.site].name == "emit")
            .expect("emit reachable from step");
        assert_eq!(emit.chain, vec!["step".to_string(), "emit".to_string()]);
        assert_eq!(table.fns[emit.site].locks.len(), 1);
        assert_eq!(
            table.fns[emit.site].file, 1,
            "lock lives in the second file"
        );
    }

    #[test]
    fn unreachable_fns_stay_out() {
        let s = structures(&["fn step() { helper(); }\nfn helper() {}\nfn cold() { m.lock(); }"]);
        let table = SymbolTable::build(&s, |_, _| false);
        let reached = table.reachable_from(&["step"]);
        let names: Vec<&str> = reached
            .iter()
            .map(|r| table.fns[r.site].name.as_str())
            .collect();
        assert!(names.contains(&"helper"));
        assert!(!names.contains(&"cold"));
    }

    #[test]
    fn test_fns_are_excluded() {
        let s = structures(&["fn step() { probe(); }\nfn probe() {}"]);
        // Pretend line 2 (probe) is in a test region.
        let table = SymbolTable::build(&s, |_, line| line == 2);
        assert!(table.fns_named("probe").is_empty());
        assert_eq!(table.fns_named("step").len(), 1);
    }

    #[test]
    fn enum_lookup() {
        let s = structures(&["pub enum TraceEvent { A, B, C }"]);
        let table = SymbolTable::build(&s, |_, _| false);
        let e = table.enum_named("TraceEvent").expect("enum found");
        assert_eq!(e.variants, vec!["A", "B", "C"]);
        assert!(table.enum_named("Missing").is_none());
    }

    #[test]
    fn recursive_calls_terminate() {
        let s = structures(&["fn step() { step(); pop(); }\nfn pop() { step(); }"]);
        let table = SymbolTable::build(&s, |_, _| false);
        let reached = table.reachable_from(&["step", "pop"]);
        assert_eq!(reached.len(), 2, "each site reported exactly once");
    }
}
