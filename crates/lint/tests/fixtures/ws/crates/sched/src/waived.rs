//! Fixture: a correctly waived violation (reason present, marked used).
use std::collections::HashMap;

pub fn live_count(m: &HashMap<u32, u32>) -> usize {
    // qoserve-lint: allow(hash-iteration) -- count only; order never observed
    m.values().count()
}
