//! Fixture: lock-discipline — same-statement nested guards, plus a lock
//! reachable from the hot-fn set through the call graph (and one
//! hot-path allocation for `hot-path-alloc`).

use std::sync::Mutex;

pub struct Core {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Core {
    pub fn merge(&self) -> u32 {
        match (self.a.lock(), self.b.lock()) {
            (Ok(a), Ok(b)) => *a + *b,
            _ => 0,
        }
    }

    pub fn step(&mut self, name: &str) -> String {
        self.tick();
        name.to_string()
    }

    fn tick(&self) {
        if let Ok(mut g) = self.a.lock() {
            *g += 1;
        }
    }
}
