//! The in-process typed endpoint: `query(StatsQuery) -> StatsReply`.
//!
//! This is the scx_stats shape — a typed request/response pair over the
//! live aggregator — without the unix-socket transport: both ends live
//! in one process, so the "wire" is the serde schema itself. Both
//! [`StatsQuery`] and [`StatsReply`] are serde types; external tooling
//! that does want a byte transport can serialize them as JSON verbatim
//! (the integration tests pin that round trip).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::live::StatsHandle;
use crate::snapshot::{
    FleetStats, ReplicaStats, StatsDelta, StatsSnapshot, TierStats, SNAPSHOT_SCHEMA_VERSION,
};

/// A typed stats request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "query", rename_all = "snake_case")]
pub enum StatsQuery {
    /// Endpoint metadata: schema version, cadence, progress.
    Meta,
    /// The cumulative full snapshot.
    Full,
    /// All deltas with `seq >= since_seq` (pass 0 for everything); the
    /// incremental-consumer path.
    DeltasSince {
        /// First delta sequence number wanted.
        since_seq: u64,
    },
    /// One tier's cumulative stats.
    Tier {
        /// Raw tier id.
        tier: u8,
    },
    /// One replica's cumulative stats.
    Replica {
        /// Replica id.
        replica: u32,
    },
    /// Violation counts per lateness-cause label.
    Causes,
    /// Fleet-wide elastic accounting.
    Fleet,
}

/// Endpoint metadata.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct StatsMeta {
    /// Snapshot schema version served.
    pub version: u32,
    /// Cadence between boundaries, microseconds.
    pub cadence_us: u64,
    /// Boundaries folded so far.
    pub snapshots: u64,
    /// Whether the run has finished (final fold done).
    pub finished: bool,
}

/// A typed stats response; variants correspond one-to-one with
/// [`StatsQuery`] variants. Lookups for unknown tiers/replicas return
/// `None` payloads rather than erroring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "reply", content = "body", rename_all = "snake_case")]
pub enum StatsReply {
    /// Response to [`StatsQuery::Meta`].
    Meta(StatsMeta),
    /// Response to [`StatsQuery::Full`].
    Full(Box<StatsSnapshot>),
    /// Response to [`StatsQuery::DeltasSince`].
    Deltas(Vec<StatsDelta>),
    /// Response to [`StatsQuery::Tier`].
    Tier(Option<TierStats>),
    /// Response to [`StatsQuery::Replica`].
    Replica(Option<ReplicaStats>),
    /// Response to [`StatsQuery::Causes`].
    Causes(BTreeMap<String, u64>),
    /// Response to [`StatsQuery::Fleet`].
    Fleet(FleetStats),
}

/// The endpoint: a thin, cloneable view over a [`StatsHandle`]. Queries
/// are cheap (one lock, one clone of the requested slice) and safe to
/// issue while a run is in flight — they observe the last folded
/// boundary, never a half-folded window.
#[derive(Debug, Clone)]
pub struct StatsServer {
    handle: StatsHandle,
}

impl StatsServer {
    /// A server over `handle`.
    pub fn new(handle: StatsHandle) -> StatsServer {
        StatsServer { handle }
    }

    /// Answers one typed query.
    pub fn query(&self, query: &StatsQuery) -> StatsReply {
        match query {
            StatsQuery::Meta => {
                let full = self.handle.full();
                StatsReply::Meta(StatsMeta {
                    version: SNAPSHOT_SCHEMA_VERSION,
                    cadence_us: self.handle.cadence_us(),
                    snapshots: full.seq,
                    finished: self.handle.finished(),
                })
            }
            StatsQuery::Full => StatsReply::Full(Box::new(self.handle.full())),
            StatsQuery::DeltasSince { since_seq } => {
                StatsReply::Deltas(self.handle.deltas_since(*since_seq))
            }
            StatsQuery::Tier { tier } => {
                StatsReply::Tier(self.handle.full().frame.tiers.get(tier).cloned())
            }
            StatsQuery::Replica { replica } => {
                StatsReply::Replica(self.handle.full().frame.replicas.get(replica).cloned())
            }
            StatsQuery::Causes => StatsReply::Causes(self.handle.full().frame.causes),
            StatsQuery::Fleet => StatsReply::Fleet(self.handle.full().frame.fleet),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::StatsConfig;
    use qoserve_sim::{SimDuration, SimTime};
    use qoserve_trace::{ControlObserver, TraceEvent, TraceRecord};

    fn served_handle() -> StatsHandle {
        let stats = StatsHandle::new(StatsConfig::every(SimDuration::from_micros(100)));
        let mut sink = crate::live::stats_only_sink(&stats);
        sink.record(TraceRecord {
            time_us: 10,
            replica: 2,
            seq: 0,
            request: Some(1),
            event: TraceEvent::RequestArrived {
                prompt_tokens: 64,
                decode_tokens: 8,
                tier: 1,
                deadline_us: 50,
            },
        });
        sink.record(TraceRecord {
            time_us: 60,
            replica: 2,
            seq: 1,
            request: Some(1),
            event: TraceEvent::RequestCompleted {
                violated: true,
                worst_lateness_us: 10,
                max_tbt_us: 5,
                relegated: false,
            },
        });
        stats.boundary(SimTime::from_micros(100));
        stats
    }

    #[test]
    fn queries_answer_with_matching_variants() {
        let server = StatsServer::new(served_handle());
        let StatsReply::Meta(meta) = server.query(&StatsQuery::Meta) else {
            panic!("meta");
        };
        assert_eq!(meta.version, SNAPSHOT_SCHEMA_VERSION);
        assert_eq!(meta.cadence_us, 100);
        assert_eq!(meta.snapshots, 1);
        assert!(!meta.finished);
        let StatsReply::Full(full) = server.query(&StatsQuery::Full) else {
            panic!("full");
        };
        assert_eq!(full.frame.events, 2);
        let StatsReply::Tier(Some(t)) = server.query(&StatsQuery::Tier { tier: 1 }) else {
            panic!("tier");
        };
        assert_eq!(t.violated, 1);
        let StatsReply::Tier(None) = server.query(&StatsQuery::Tier { tier: 9 }) else {
            panic!("unknown tier is None");
        };
        let StatsReply::Replica(Some(r)) = server.query(&StatsQuery::Replica { replica: 2 }) else {
            panic!("replica");
        };
        assert_eq!(r.completed, 1);
        let StatsReply::Causes(causes) = server.query(&StatsQuery::Causes) else {
            panic!("causes");
        };
        assert_eq!(causes.get("queueing-delay"), Some(&1));
        let StatsReply::Deltas(deltas) = server.query(&StatsQuery::DeltasSince { since_seq: 0 })
        else {
            panic!("deltas");
        };
        assert_eq!(deltas.len(), 1);
        let StatsReply::Fleet(_) = server.query(&StatsQuery::Fleet) else {
            panic!("fleet");
        };
    }

    #[test]
    fn query_and_reply_serialize_as_a_typed_wire_schema() {
        let q = StatsQuery::DeltasSince { since_seq: 3 };
        let text = serde_json::to_string(&q).expect("query");
        assert_eq!(text, "{\"query\":\"deltas_since\",\"since_seq\":3}");
        assert_eq!(serde_json::from_str::<StatsQuery>(&text).expect("back"), q);
        let server = StatsServer::new(served_handle());
        let reply = server.query(&StatsQuery::Meta);
        let wire = serde_json::to_string(&reply).expect("reply");
        assert!(wire.starts_with("{\"reply\":\"meta\""), "{wire}");
        assert_eq!(
            serde_json::from_str::<StatsReply>(&wire).expect("round trip"),
            reply
        );
    }
}
