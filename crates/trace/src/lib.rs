//! `qoserve-trace` — deterministic iteration-level decision tracing.
//!
//! The QoServe reproduction's headline claims are *decision* claims:
//! dynamic chunking grows the prefill chunk into decode slack, hybrid
//! EDF↔SRPF prioritization reorders the queue, eager relegation demotes
//! about-to-miss requests, and the resilience layer rejects, diverts, and
//! re-dispatches work. Aggregate reports (`qoserve-metrics`) say *what*
//! happened; this crate records *why*: a closed [`TraceEvent`] enum over
//! the decision surface, stamped with simulated time and replica/request
//! ids, captured through a [`Tracer`] handle threaded into the scheduler,
//! engine, chunk-budget search, admission gate, circuit breakers, and the
//! recovery orchestrator.
//!
//! # Determinism contract
//!
//! Traces inherit the repo-wide replay contract:
//!
//! * events are stamped with [`SimTime`](qoserve_sim::SimTime) only —
//!   never wall clock (the `nondeterministic-time` lint applies here);
//! * every record carries a per-replica sequence number assigned in
//!   program order, and exports emit records in the canonical
//!   `(time_us, replica, seq)` order, so the serialized trace is
//!   byte-identical regardless of how replica threads interleave;
//! * the bounded [`RingSink`] keeps an *independent* ring per replica,
//!   so which events are evicted under overflow is a pure function of the
//!   per-replica event streams, not of thread scheduling.
//!
//! # Overhead model
//!
//! A disabled [`Tracer`] is a `None` check per call site: no lock, no
//! allocation, no formatting — instrumented hot paths cost one branch.
//! An enabled tracer takes one mutex lock per event; [`RingSink`]
//! pre-allocates each replica's ring on that replica's first event and
//! never allocates per event afterwards (records are `Copy`).

pub mod event;
pub mod export;
pub mod observe;
pub mod sink;
pub mod tracer;

pub use event::{
    canonical_sort, BreakerPhase, FaultKind, RelegationReason, ScaleDirection, TraceEvent,
    TraceRecord, RELEGATED_TIER,
};
pub use export::{from_jsonl, to_chrome_trace, to_jsonl, ParsedTrace};
pub use observe::ControlObserver;
pub use sink::{NullSink, RingSink, TraceSink, VecSink};
pub use tracer::Tracer;
