//! Scheduling policies for the QoServe reproduction.
//!
//! A scheduler decides, at every engine iteration, which prefill tokens to
//! run next to the always-included decode batch (the chunked-prefill model
//! of §2.1). This crate defines the [`Scheduler`] trait plus every policy
//! the paper evaluates:
//!
//! * [`SarathiScheduler`] — fixed chunk size with a pluggable prefill
//!   ordering ([`OrderPolicy`]: FCFS / SJF / SRPF / EDF), the paper's
//!   baselines.
//! * [`QoServeScheduler`] — Algorithm 1: hybrid prioritization (Eq. 4/5),
//!   dynamic chunking through the latency predictor, eager relegation with
//!   free/paid-tier hints, and selective preemption.
//! * [`MedhaScheduler`] — the concurrent-work comparison (§4.5.1):
//!   adaptive chunking that shrinks chunks as prompt context deepens to
//!   hold TBT constant, without any cross-request slack awareness.
//! * [`SlosServeScheduler`] — the §4.5.3 comparison: periodic
//!   dynamic-programming planning whose cost grows with queue depth.
//! * [`RateLimitScheduler`] — §2.2's production overload baseline:
//!   importance-blind rejection past a backlog cap.
//! * [`DeadlineAwareAdmission`] — the resilience layer's SLO-aware gate:
//!   rejects only requests that provably miss their deadline even if
//!   scheduled immediately, with the estimate tightened online by the
//!   adaptive misprediction tracker.
//! * [`ConServeScheduler`] — §5's binary online/offline collocation:
//!   interactive strictly first, offline harvests leftovers.
//!
//! The engine owns request execution and the KV cache; schedulers only see
//! [`PrefillJob`]s (which they own from arrival until the last prompt
//! token is scheduled) and per-iteration snapshots of the decode pool
//! ([`DecodeJob`]). The contract is pull-based: the engine calls
//! [`Scheduler::plan_batch`] with the decode snapshot and resource
//! [`Constraints`], and receives a [`BatchPlan`].

pub mod admission;
pub mod conserve;
pub mod deadline;
pub mod estimate;
pub mod job;
pub mod medha;
pub mod policy;
pub mod qoserve;
pub mod queue;
pub mod sarathi;
pub mod slos_serve;

pub use admission::RateLimitScheduler;
pub use conserve::ConServeScheduler;
pub use deadline::DeadlineAwareAdmission;
pub use estimate::ProcessingEstimator;
pub use job::{DecodeJob, PrefillJob};
pub use medha::{MedhaConfig, MedhaScheduler};
pub use policy::OrderPolicy;
pub use qoserve::{AlphaPolicy, QoServeConfig, QoServeScheduler};
pub use queue::JobQueue;
pub use sarathi::SarathiScheduler;
pub use slos_serve::{SlosServeConfig, SlosServeScheduler};

use qoserve_perf::BatchProfile;
use qoserve_sim::{SimDuration, SimTime};
use qoserve_trace::Tracer;
use qoserve_workload::{RequestId, RequestSpec};

/// Per-iteration resource limits the engine imposes on a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constraints {
    /// KV-cache headroom in tokens: the plan's total prefill tokens must
    /// not exceed this.
    pub kv_headroom_tokens: u64,
    /// When false, no new prefill work may be scheduled this iteration
    /// (e.g. the decode pool is at its batch-size cap).
    pub allow_prefill: bool,
    /// How many *new* requests (no prefill progress yet) may start this
    /// iteration — keeps the engine's running-sequence count under its
    /// batch-size cap even when a plan packs several small prompts.
    pub max_new_requests: usize,
}

impl Constraints {
    /// Unlimited constraints (tests and micro-benchmarks).
    pub fn unlimited() -> Self {
        Constraints {
            kv_headroom_tokens: u64::MAX,
            allow_prefill: true,
            max_new_requests: usize::MAX,
        }
    }
}

/// Prefill tokens assigned to one request within a batch plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillAssignment {
    /// The request receiving tokens.
    pub id: RequestId,
    /// Number of prompt tokens to process this iteration.
    pub tokens: u32,
    /// Prompt tokens of this request already processed (KV context depth
    /// of this chunk).
    pub context_before: u32,
    /// Whether the request finishes its prefill with this chunk (the
    /// engine emits the first output token at iteration end).
    pub completes_prefill: bool,
    /// Whether the scheduler has relegated this request.
    pub relegated: bool,
}

/// The scheduler's decision for one iteration. Decodes are implicit:
/// every request in the decode pool always participates (§3.1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchPlan {
    /// Prefill chunks to execute, in assignment order.
    pub prefill: Vec<PrefillAssignment>,
    /// The token budget the plan was filled against (diagnostic; equals
    /// the dynamic chunk size for QoServe, the fixed chunk for Sarathi).
    pub token_budget: u32,
}

impl BatchPlan {
    /// Total prefill tokens in the plan.
    pub fn prefill_tokens(&self) -> u32 {
        self.prefill.iter().map(|a| a.tokens).sum()
    }

    /// True when the plan schedules no prefill work.
    pub fn is_empty(&self) -> bool {
        self.prefill.is_empty()
    }
}

/// A prefill scheduling policy.
///
/// Lifecycle: the engine hands each arriving request to
/// [`on_arrival`](Scheduler::on_arrival); every iteration it calls
/// [`plan_batch`](Scheduler::plan_batch); when a request completes, it
/// reports the observed decode length via
/// [`on_completion`](Scheduler::on_completion) (food for the per-app
/// decode-length history behind Eq. 5).
pub trait Scheduler: Send {
    /// Short policy name for reports (e.g. `"Sarathi-EDF"`).
    fn name(&self) -> &str;

    /// Accepts a new request into the prefill queue.
    fn on_arrival(&mut self, job: PrefillJob, now: SimTime);

    /// Plans the prefill side of the next batch. `decodes` is the current
    /// decode pool snapshot; implementations must respect `constraints`.
    fn plan_batch(
        &mut self,
        now: SimTime,
        decodes: &[DecodeJob],
        constraints: Constraints,
    ) -> BatchPlan;

    /// Observes a completed request (default: ignored).
    fn on_completion(&mut self, _spec: &RequestSpec, _observed_decode_tokens: u32) {}

    /// Observes one executed iteration: the batch that ran and its
    /// *observed* execution time (default: ignored). Adaptive schedulers
    /// compare this against their own prediction of `batch` to track
    /// misprediction online; wrappers must forward it to their inner
    /// scheduler.
    fn on_iteration(&mut self, _batch: &BatchProfile, _observed: SimDuration, _now: SimTime) {}

    /// Installs a decision [`Tracer`] (default: ignored). Schedulers with
    /// traced decision points keep the handle and emit
    /// [`qoserve_trace::TraceEvent`]s through it; wrappers must forward
    /// the handle to their inner scheduler. With a disabled tracer —
    /// always the default — scheduling decisions are bit-identical to the
    /// untraced path.
    fn set_tracer(&mut self, _tracer: Tracer) {}

    /// Number of requests still waiting in the prefill queue.
    fn pending_prefills(&self) -> usize;

    /// Pending prompt tokens across the prefill queue (load signal).
    fn pending_prefill_tokens(&self) -> u64;

    /// Removes and returns every queued job (used when a simulation ends
    /// with work still pending, to account the jobs as unfinished).
    ///
    /// Note for admission-controlled schedulers: jobs bounced at admission
    /// that have not been claimed via
    /// [`drain_rejected`](Scheduler::drain_rejected) must still be
    /// included here, so that no accounting path can lose a request.
    fn drain_pending(&mut self) -> Vec<PrefillJob>;

    /// Removes and returns every job the scheduler *rejected at admission*
    /// (rate limiting), as opposed to jobs merely still queued. The engine
    /// calls this before [`drain_pending`](Scheduler::drain_pending) so
    /// rejections surface with a distinct outcome label instead of being
    /// folded into deadline-missed unfinished jobs. Default: no scheduler
    /// rejects, so this returns nothing.
    fn drain_rejected(&mut self) -> Vec<PrefillJob> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_plan_token_count() {
        let plan = BatchPlan {
            prefill: vec![
                PrefillAssignment {
                    id: RequestId(0),
                    tokens: 100,
                    context_before: 0,
                    completes_prefill: false,
                    relegated: false,
                },
                PrefillAssignment {
                    id: RequestId(1),
                    tokens: 56,
                    context_before: 20,
                    completes_prefill: true,
                    relegated: true,
                },
            ],
            token_budget: 256,
        };
        assert_eq!(plan.prefill_tokens(), 156);
        assert!(!plan.is_empty());
        assert!(BatchPlan::default().is_empty());
    }

    #[test]
    fn unlimited_constraints() {
        let c = Constraints::unlimited();
        assert!(c.allow_prefill);
        assert_eq!(c.kv_headroom_tokens, u64::MAX);
    }
}
