//! The prefill priority queue of Algorithm 1.
//!
//! Jobs are ordered by the comparator of Algorithm 1 (lines 26–33): all
//! non-relegated jobs sort before all relegated ones, then by a policy-
//! computed priority key (smaller = more urgent), with arrival sequence as
//! the final tie-break. Keys are computed when a job is (re-)inserted, so
//! a job whose key inputs changed (tokens consumed, relegation flipped)
//! must be popped and pushed back — exactly the access pattern of the
//! batch-filling loop.
//!
//! Re-keying a job that is still queued ([`JobQueue::reinsert`]) leaves
//! its old heap entry behind. Each queued job therefore remembers the
//! sequence number of its *current* entry, and `pop`/`peek` skip any
//! entry whose sequence no longer matches — a stale entry can never
//! resurface a job at an outdated priority. Skipping is cheap but stale
//! entries still occupy heap space, so the queue compacts (rebuilds the
//! heap from live entries) once they outnumber live jobs ~2×; long
//! overload runs keep `pop`/`peek` at their live-size cost.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use qoserve_workload::{RequestId, TierId};

use crate::job::PrefillJob;

/// Heap key: `(relegated, priority, seq)` ascending.
type Key = (bool, i64, u64);

/// Stale-entry floor below which compaction is never worth the rebuild.
const COMPACT_MIN_STALE: usize = 64;

/// A queued job plus the sequence number of its current heap entry (any
/// heap entry carrying another sequence for this id is stale).
#[derive(Debug, Clone)]
struct QueuedJob {
    job: PrefillJob,
    seq: u64,
}

/// A priority queue of [`PrefillJob`]s with explicit keys.
///
/// Side tables are `BTreeMap`, not `HashMap`: `drain`, `iter`, and
/// `rekey` walk them, and replay determinism requires that walk order be
/// a function of the keys alone (the `hash-iteration` lint enforces
/// this).
#[derive(Debug, Clone, Default)]
pub struct JobQueue {
    jobs: BTreeMap<RequestId, QueuedJob>,
    heap: BinaryHeap<Reverse<(Key, RequestId)>>,
    next_seq: u64,
    /// Number of dead heap entries (superseded by a reinsert and not yet
    /// skipped or compacted away).
    stale: usize,
    /// Remaining prompt tokens across all queued jobs (O(1) load signal).
    total_tokens: u64,
    /// Remaining prompt tokens across non-relegated queued jobs.
    live_tokens: u64,
    /// Per-tier live-token accounting: `(urgency SLO offset in µs,
    /// live tokens)` — lets the scheduler estimate the queue ahead of a
    /// job under deadline-dominated orderings.
    live_by_tier: BTreeMap<TierId, (i64, u64)>,
}

impl JobQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        JobQueue::default()
    }

    fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Inserts `job` with priority `key` (smaller = scheduled sooner).
    /// The job's `relegated` flag is folded into the ordering: relegated
    /// jobs always sort after non-relegated ones.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a job with the same id is already queued.
    pub fn push(&mut self, job: PrefillJob, key: i64) {
        debug_assert!(
            !self.jobs.contains_key(&job.id()),
            "job {} already queued",
            job.id()
        );
        let seq = self.alloc_seq();
        self.heap
            .push(Reverse(((job.relegated, key, seq), job.id())));
        self.account_insert(&job);
        self.jobs.insert(job.id(), QueuedJob { job, seq });
    }

    fn account_insert(&mut self, job: &PrefillJob) {
        let tokens = job.remaining_tokens() as u64;
        self.total_tokens += tokens;
        if !job.relegated {
            self.live_tokens += tokens;
            let entry = self
                .live_by_tier
                .entry(job.spec.tier())
                .or_insert((Self::slo_offset_us(job), 0));
            entry.1 += tokens;
        }
    }

    fn account_remove(&mut self, job: &PrefillJob) {
        let tokens = job.remaining_tokens() as u64;
        self.total_tokens -= tokens;
        if !job.relegated {
            self.live_tokens -= tokens;
            if let Some(entry) = self.live_by_tier.get_mut(&job.spec.tier()) {
                entry.1 -= tokens;
            }
        }
    }

    /// The urgency-deadline offset of a job's tier (TTFT for interactive,
    /// TTLT otherwise), in µs: the quantity that dominates deadline-based
    /// orderings.
    fn slo_offset_us(job: &PrefillJob) -> i64 {
        job.urgency_deadline()
            .signed_duration_since(job.spec.arrival)
            .as_micros()
    }

    /// Removes and returns the most urgent job.
    pub fn pop(&mut self) -> Option<PrefillJob> {
        while let Some(Reverse(((_, _, seq), id))) = self.heap.pop() {
            match self.jobs.remove(&id) {
                Some(queued) if queued.seq == seq => {
                    self.account_remove(&queued.job);
                    return Some(queued.job);
                }
                // Stale entry for a still-queued job (re-keyed since):
                // put the job back untouched and skip the entry.
                Some(queued) => {
                    self.jobs.insert(id, queued);
                    self.stale = self.stale.saturating_sub(1);
                }
                // Stale entry for a job that is already gone; skip.
                None => self.stale = self.stale.saturating_sub(1),
            }
        }
        None
    }

    /// The most urgent job without removing it.
    pub fn peek(&mut self) -> Option<&PrefillJob> {
        // Drop stale entries so the visible top is live.
        loop {
            let (seq, id) = match self.heap.peek() {
                Some(Reverse(((_, _, seq), id))) => (*seq, *id),
                None => return None,
            };
            if self.jobs.get(&id).is_some_and(|queued| queued.seq == seq) {
                return self.jobs.get(&id).map(|queued| &queued.job);
            }
            self.heap.pop();
            self.stale = self.stale.saturating_sub(1);
        }
    }

    /// Re-inserts a job that was popped (after progress or relegation)
    /// with a freshly computed key. Unlike [`push`](Self::push) this
    /// tolerates the id still being queued: the superseded heap entry is
    /// invalidated (never popped at its old key) and reclaimed by the next
    /// compaction.
    pub fn reinsert(&mut self, job: PrefillJob, key: i64) {
        if let Some(old) = self.jobs.remove(&job.id()) {
            self.account_remove(&old.job);
            // The heap entry carrying `old.seq` is now dead.
            self.stale += 1;
        }
        let seq = self.alloc_seq();
        self.heap
            .push(Reverse(((job.relegated, key, seq), job.id())));
        self.account_insert(&job);
        self.jobs.insert(job.id(), QueuedJob { job, seq });
        self.maybe_compact();
    }

    /// Rebuilds the heap without stale entries once they outnumber live
    /// jobs ~2× (and are past a fixed floor): O(heap) now, against stale
    /// entries taxing every later `pop`/`peek` sift.
    fn maybe_compact(&mut self) {
        if self.stale <= COMPACT_MIN_STALE || self.stale <= 2 * self.jobs.len() {
            return;
        }
        let jobs = &self.jobs;
        let live: Vec<_> = std::mem::take(&mut self.heap)
            .into_vec()
            .into_iter()
            .filter(|Reverse(((_, _, seq), id))| {
                jobs.get(id).is_some_and(|queued| queued.seq == *seq)
            })
            .collect();
        self.heap = BinaryHeap::from(live);
        self.stale = 0;
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Sum of remaining prompt tokens across queued jobs (O(1)).
    pub fn pending_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Remaining prompt tokens across non-relegated jobs (O(1)) — the
    /// live-backlog overload signal.
    pub fn live_tokens(&self) -> u64 {
        self.live_tokens
    }

    /// Estimated live tokens that will be served *before* `job` under a
    /// deadline-dominated ordering: all tokens of tiers with a stricter
    /// SLO offset, plus half of the job's own tier (expected position).
    pub fn live_tokens_ahead_of(&self, job: &PrefillJob) -> u64 {
        let own_offset = Self::slo_offset_us(job);
        let own_tier = job.spec.tier();
        self.live_by_tier
            .iter()
            .map(|(tier, (offset, tokens))| {
                if *tier == own_tier {
                    tokens / 2
                } else if *offset < own_offset {
                    *tokens
                } else {
                    0
                }
            })
            .sum()
    }

    /// Iterates over queued jobs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = &PrefillJob> {
        self.jobs.values().map(|queued| &queued.job)
    }

    /// Removes and returns every queued job in ascending id order. Used
    /// when a simulation ends with work still queued.
    pub fn drain(&mut self) -> Vec<PrefillJob> {
        self.heap.clear();
        self.stale = 0;
        self.total_tokens = 0;
        self.live_tokens = 0;
        self.live_by_tier.clear();
        std::mem::take(&mut self.jobs)
            .into_values()
            .map(|queued| queued.job)
            .collect()
    }

    /// Rebuilds every heap key via `key_of` — needed when a global input
    /// of the priority function changes (e.g. the load-adaptive α).
    pub fn rekey<F: FnMut(&PrefillJob) -> i64>(&mut self, mut key_of: F) {
        self.heap.clear();
        self.stale = 0;
        let mut seq = self.next_seq;
        for (id, queued) in self.jobs.iter_mut() {
            queued.seq = seq;
            self.heap.push(Reverse((
                (queued.job.relegated, key_of(&queued.job), seq),
                *id,
            )));
            seq += 1;
        }
        self.next_seq = seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_sim::SimTime;
    use qoserve_workload::{QosTier, RequestSpec, Slo};

    fn job(id: u64, relegated: bool) -> PrefillJob {
        let mut j = PrefillJob::new(RequestSpec {
            id: RequestId(id),
            arrival: SimTime::ZERO,
            prompt_tokens: 100,
            decode_tokens: 10,
            slo: Slo::of_tier(QosTier::paper_q1()),
            app_id: 0,
        });
        j.relegated = relegated;
        j
    }

    #[test]
    fn pops_in_key_order() {
        let mut q = JobQueue::new();
        q.push(job(1, false), 30);
        q.push(job(2, false), 10);
        q.push(job(3, false), 20);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|j| j.id().0)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn relegated_jobs_sort_last_regardless_of_key() {
        let mut q = JobQueue::new();
        q.push(job(1, true), -1_000_000); // relegated with tiny key
        q.push(job(2, false), 1_000_000); // live with huge key
        assert_eq!(q.pop().unwrap().id().0, 2);
        assert_eq!(q.pop().unwrap().id().0, 1);
    }

    #[test]
    fn equal_keys_are_fifo() {
        let mut q = JobQueue::new();
        for i in 0..10 {
            q.push(job(i, false), 5);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|j| j.id().0)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reinsert_updates_position() {
        let mut q = JobQueue::new();
        q.push(job(1, false), 10);
        q.push(job(2, false), 20);
        let j1 = q.pop().unwrap();
        assert_eq!(j1.id().0, 1);
        // Push it back relegated: it must now sort after job 2.
        let mut j1 = j1;
        j1.relegated = true;
        q.reinsert(j1, 10);
        assert_eq!(q.pop().unwrap().id().0, 2);
        assert_eq!(q.pop().unwrap().id().0, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn defensive_reinsert_uses_fresh_key() {
        let mut q = JobQueue::new();
        q.push(job(1, false), 10);
        q.push(job(2, false), 20);
        // Re-key job 1 to the back *without* popping it first. The old
        // key-10 heap entry must not resurrect job 1 ahead of job 2.
        q.reinsert(job(1, false), 30);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pending_tokens(), 200);
        assert_eq!(q.peek().unwrap().id().0, 2);
        assert_eq!(q.pop().unwrap().id().0, 2);
        assert_eq!(q.pop().unwrap().id().0, 1);
        assert!(q.pop().is_none());
        assert_eq!(q.pending_tokens(), 0);
    }

    #[test]
    fn stale_entries_are_compacted() {
        let mut q = JobQueue::new();
        for i in 0..40 {
            q.push(job(i, false), i as i64);
        }
        // Hammer in-place re-keys: each one deadens the previous entry.
        for round in 0..20i64 {
            for i in 0..40 {
                q.reinsert(job(i, false), i as i64 + round);
            }
        }
        assert_eq!(q.len(), 40);
        // 800 reinserts left 800 dead entries behind; compaction must have
        // kept the heap near the live size instead.
        assert!(
            q.heap.len() <= 40 + COMPACT_MIN_STALE + 2 * 40,
            "heap grew to {} entries for 40 live jobs",
            q.heap.len()
        );
        assert_eq!(q.pending_tokens(), 40 * 100);
        // Ordering and accounting survive compaction.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|j| j.id().0)).collect();
        assert_eq!(order, (0..40).collect::<Vec<_>>());
        assert_eq!(q.pending_tokens(), 0);
        assert_eq!(q.stale, 0);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = JobQueue::new();
        q.push(job(5, false), 50);
        q.push(job(6, false), 5);
        assert_eq!(q.peek().unwrap().id().0, 6);
        assert_eq!(q.pop().unwrap().id().0, 6);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pending_tokens_accumulates() {
        let mut q = JobQueue::new();
        q.push(job(1, false), 1);
        let mut j = job(2, false);
        j.prefill_done = 40;
        q.push(j, 2);
        assert_eq!(q.pending_tokens(), 100 + 60);
    }

    #[test]
    fn rekey_reorders() {
        let mut q = JobQueue::new();
        q.push(job(1, false), 1);
        q.push(job(2, false), 2);
        // Invert the ordering.
        q.rekey(|j| -(j.id().0 as i64));
        assert_eq!(q.pop().unwrap().id().0, 2);
        assert_eq!(q.pop().unwrap().id().0, 1);
    }

    #[test]
    fn rekey_discards_stale_entries() {
        let mut q = JobQueue::new();
        q.push(job(1, false), 1);
        q.push(job(2, false), 2);
        q.reinsert(job(1, false), 3); // one stale entry
        q.rekey(|j| j.id().0 as i64);
        assert_eq!(q.stale, 0);
        assert_eq!(q.heap.len(), 2);
        assert_eq!(q.pop().unwrap().id().0, 1);
        assert_eq!(q.pop().unwrap().id().0, 2);
    }

    #[test]
    fn nan_priority_cannot_corrupt_heap_order() {
        use qoserve_sim::float::priority_micros;
        // Before `priority_micros`, a NaN priority was cast with `as i64`
        // and landed at 0 — ahead of every normal deadline key. Now it
        // pins to i64::MAX: well-formed jobs keep their relative order
        // and the poisoned job drains last instead of starving them.
        let mut q = JobQueue::new();
        q.push(job(1, false), priority_micros(f64::NAN));
        q.push(job(2, false), priority_micros(20.0));
        q.push(job(3, false), priority_micros(10.0));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|j| j.id().0)).collect();
        assert_eq!(order, vec![3, 2, 1], "NaN job must sort last, not first");

        // Reinserting with a NaN key keeps the invariant under re-keying.
        let mut q = JobQueue::new();
        q.push(job(1, false), priority_micros(5.0));
        q.push(job(2, false), priority_micros(6.0));
        q.reinsert(job(1, false), priority_micros(f64::NAN));
        assert_eq!(q.pop().unwrap().id().0, 2);
        assert_eq!(q.pop().unwrap().id().0, 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = JobQueue::new();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(q.peek().is_none());
        assert_eq!(q.pending_tokens(), 0);
    }
}
