//! Adaptive resilience layer invariants, end to end.
//!
//! Three contracts are pinned here:
//!
//! 1. **Calm transparency**: with an all-zero fault configuration the
//!    full adaptive pipeline — online margin, deadline-aware admission,
//!    circuit breakers — is bit-identical to the static pipeline. The
//!    resilience layer may only act when mispredictions actually occur.
//! 2. **Determinism**: the `resilience_sweep` grid is bit-identical to
//!    its serial reference — including the serialized rows — for any
//!    thread count.
//! 3. **Conservation**: breakers steer re-dispatch but never strand it;
//!    every arrival ends in exactly one outcome under any fault schedule
//!    even while breakers are open.

use proptest::prelude::*;

use qoserve::experiments::{
    resilience_pipelines, resilience_sweep, resilience_sweep_serial, FaultSweepPoint,
    FaultSweepSetup,
};
use qoserve::prelude::*;
use qoserve_sim::par_map_threads;

fn small_setup(seed: u64) -> FaultSweepSetup {
    FaultSweepSetup {
        dataset: Dataset::azure_conv(),
        hardware: HardwareConfig::llama3_8b_a100_tp1(),
        replicas: 3,
        qps: 5.0,
        window: SimDuration::from_secs(45),
        mix: TierMix::paper_equal(),
        low_priority_fraction: 0.25,
        plan: FaultPlan::with_faults(FaultConfig::moderate()),
        seed,
    }
}

/// The machine-readable rows of the sweep, mirroring what the
/// `resilience_sweep` binary writes to `results/resilience_sweep.json`.
fn sweep_rows(points: &[FaultSweepPoint]) -> String {
    let rows: Vec<serde_json::Value> = points
        .iter()
        .map(|p| {
            serde_json::json!({
                "pipeline": p.scheme,
                "intensity": p.intensity,
                "violation_pct": p.report.violation_pct(),
                "tier_violation_pct": {
                    "q1": p.report.tier_violation_pct(TierId::Q1),
                    "q2": p.report.tier_violation_pct(TierId::Q2),
                    "q3": p.report.tier_violation_pct(TierId::Q3),
                },
                "stats": p.stats,
            })
        })
        .collect();
    serde_json::to_string_pretty(&serde_json::json!({ "rows": rows })).unwrap()
}

/// The full adaptive pipeline must be invisible while the system is calm:
/// zero faults means the margin never widens past its base, the estimator
/// never recalibrates, the gate rejects nothing feasible, and the
/// breakers never trip — so outcomes are bit-identical to static QoServe.
#[test]
fn adaptive_pipeline_is_bit_identical_to_static_without_faults() {
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(6.0))
        .duration(SimDuration::from_secs(60))
        .tier_mix(TierMix::paper_equal())
        .build(&SeedStream::new(51));
    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let static_run = run_shared_faulty(
        &trace,
        3,
        &SchedulerSpec::qoserve(),
        &config,
        &FaultPlan::none(),
        &SeedStream::new(51),
    )
    .expect("replicas > 0");
    let adaptive_run = run_shared_faulty(
        &trace,
        3,
        &SchedulerSpec::deadline_aware(SchedulerSpec::qoserve_adaptive()),
        &config,
        &FaultPlan::none().with_breaker(BreakerConfig::default()),
        &SeedStream::new(51),
    )
    .expect("replicas > 0");
    assert_eq!(
        adaptive_run.outcomes, static_run.outcomes,
        "a calm adaptive pipeline must match static bit for bit"
    );
    assert_eq!(adaptive_run.stats, FaultRunStats::default());
}

#[test]
fn resilience_sweep_is_bit_identical_to_serial_reference() {
    let setup = small_setup(52);
    let pipelines = resilience_pipelines();
    let intensities = [0.0, 1.0, 2.0];
    let parallel = resilience_sweep(&setup, &pipelines, &intensities);
    let serial = resilience_sweep_serial(&setup, &pipelines, &intensities);
    assert_eq!(parallel.len(), serial.len());
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.scheme, s.scheme);
        assert_eq!(p.intensity.to_bits(), s.intensity.to_bits());
        assert_eq!(p.report, s.report, "{} @ {}", p.scheme, p.intensity);
        assert_eq!(p.stats, s.stats, "{} @ {}", p.scheme, p.intensity);
        assert_eq!(p.outcomes, s.outcomes, "{} @ {}", p.scheme, p.intensity);
    }
    // The serialized artifact is byte-identical too — what
    // results/resilience_sweep.json pins across runs and thread counts.
    assert_eq!(sweep_rows(&parallel), sweep_rows(&serial));
}

#[test]
fn resilience_runs_are_thread_invariant() {
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(7.0))
        .duration(SimDuration::from_secs(45))
        .tier_mix(TierMix::paper_equal())
        .low_priority_fraction(0.3)
        .build(&SeedStream::new(53));
    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let plan = FaultPlan::with_faults(FaultConfig::moderate().scaled(2.0))
        .with_breaker(BreakerConfig::default());
    let schemes = vec![
        SchedulerSpec::qoserve_adaptive(),
        SchedulerSpec::deadline_aware(SchedulerSpec::qoserve_adaptive()),
    ];

    let run_all = |threads: usize| {
        par_map_threads(threads, schemes.clone(), |_, spec| {
            run_shared_faulty(&trace, 3, &spec, &config, &plan, &SeedStream::new(53))
                .expect("replicas > 0")
        })
    };
    let one = run_all(1);
    let four = run_all(4);
    assert_eq!(
        one, four,
        "thread count must never change adaptive fault runs"
    );
}

/// The sweep's zero-intensity column: both pipelines, same bits. This is
/// the same contract as the direct run above, but via the sweep harness
/// the binary actually uses.
#[test]
fn sweep_zero_intensity_pipelines_agree() {
    let setup = small_setup(54);
    let points = resilience_sweep(&setup, &resilience_pipelines(), &[0.0]);
    assert_eq!(points.len(), 2);
    assert_eq!(points[0].scheme, "static");
    assert_eq!(points[1].scheme, "adaptive");
    assert_eq!(points[0].outcomes, points[1].outcomes);
    assert_eq!(points[0].report, points[1].report);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Breakers may steer work away from straggling replicas, never
    /// strand it: under any fault schedule — including ones whose
    /// straggler pressure keeps breakers open for most of the run — every
    /// arrival still ends in exactly one outcome, and the run replays
    /// bit-identically.
    #[test]
    fn no_request_lost_while_breakers_are_open(
        seed in 0u64..1_000,
        n in 5usize..40,
        qps in 1.0f64..10.0,
        replicas in 1u32..4,
        crash_rate in 0.0f64..400.0,
        restart in proptest::bool::ANY,
        straggler_rate in 0.0f64..3_000.0,
        straggler_factor in 1.5f64..6.0,
    ) {
        let trace = TraceBuilder::new(Dataset::azure_conv())
            .arrivals(ArrivalProcess::poisson(qps))
            .num_requests(n)
            .tier_mix(TierMix::paper_equal())
            .low_priority_fraction(0.3)
            .build(&SeedStream::new(seed));
        let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
        let mut faults = FaultConfig::moderate();
        faults.crash_rate_per_hour = crash_rate;
        if !restart {
            faults.restart_downtime = None;
        }
        faults.straggler_rate_per_hour = straggler_rate;
        faults.straggler_factor = straggler_factor;
        let plan = FaultPlan::with_faults(faults).with_breaker(BreakerConfig::default());

        let run = || {
            run_shared_faulty(
                &trace,
                replicas,
                &SchedulerSpec::deadline_aware(SchedulerSpec::qoserve_adaptive()),
                &config,
                &plan,
                &SeedStream::new(seed),
            )
            .expect("replicas > 0")
        };
        let result = run();

        // Exactly one outcome per arrival, ordered by id — a breaker-open
        // period must delay dispatch, not lose it.
        prop_assert_eq!(result.outcomes.len(), trace.len());
        for (i, o) in result.outcomes.iter().enumerate() {
            prop_assert_eq!(o.spec.id.0, i as u64);
            prop_assert!(o.retries <= plan.max_retries + 1);
        }
        // Diversions only happen when breakers exist and some replica
        // was dispatchable: they are a subset of re-dispatches.
        prop_assert!(result.stats.breaker_diverted <= result.stats.redispatches);

        // Replay with the same seed is bit-identical.
        prop_assert_eq!(result, run());
    }
}
