//! Figure 5: eager relegation vs no relegation.
//!
//! Sweeps load just past the knee and reports the median latency of all
//! requests with relegation enabled vs disabled. Expected shape: without
//! relegation the median explodes (cascading violations) once the system
//! saturates; relegating a few percent of requests keeps the median flat.

use qoserve::experiments::{load_sweep, scaled_window};
use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results, overall_median_latency};

fn main() {
    banner(
        "fig5",
        "Eager relegation keeps the median stable under overload (Az-Code)",
    );

    // Ablate relegation on the deadline-ordered base (EDF + dynamic
    // chunking, as in Table 5's DC row) so the cascade is visible: with
    // hybrid prioritization active, short jobs keep the median low even
    // without relegation.
    let with_er = SchedulerSpec::qoserve_with(QoServeConfig::ablation_dc_er());
    let without_er = SchedulerSpec::qoserve_with(QoServeConfig::ablation_dc());

    let qps_list = [4.5, 5.0, 5.5, 6.0, 7.0, 8.0];
    let points = load_sweep(
        &Dataset::azure_code(),
        &HardwareConfig::llama3_8b_a100_tp1(),
        &[without_er, with_er],
        &qps_list,
        scaled_window(3600),
        &TierMix::paper_equal(),
        5,
    );

    let mut table = Table::new(vec![
        "qps",
        "scheme",
        "median latency (s)",
        "relegated",
        "violations",
    ]);
    let mut rows = Vec::new();
    for (i, p) in points.iter().enumerate() {
        // load_sweep interleaves schemes per QPS; relabel the ER-disabled
        // QoServe variant for readability.
        let label = if i % 2 == 0 {
            "No relegation"
        } else {
            "Eager relegation"
        };
        table.row(vec![
            format!("{:.2}", p.qps),
            label.to_owned(),
            overall_median_latency(&p.outcomes).map_or("-".into(), |v| format!("{v:.2}")),
            format!("{:.1}%", p.report.relegated_fraction * 100.0),
            format!("{:.1}%", p.report.violation_pct()),
        ]);
        rows.push(serde_json::json!({
            "qps": p.qps,
            "scheme": label,
            "median_latency_secs": overall_median_latency(&p.outcomes),
            "relegated_pct": p.report.relegated_fraction * 100.0,
            "violation_pct": p.report.violation_pct(),
        }));
    }
    print!("{table}");
    emit_results("fig5", &rows);

    println!();
    let last_qps = *qps_list.last().expect("non-empty");
    let median_of = |idx_offset: usize| {
        let p = &points[points.len() - 2 + idx_offset];
        assert!((p.qps - last_qps).abs() < 1e-9);
        overall_median_latency(&p.outcomes).unwrap_or(f64::INFINITY)
    };
    println!(
        "at {last_qps} QPS: median without relegation {:.1}s vs with {:.1}s \
         (paper: relegating ~5% keeps the median at SLO level)",
        median_of(0),
        median_of(1)
    );
}
