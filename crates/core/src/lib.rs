//! # QoServe — breaking the silos of LLM inference serving
//!
//! A full-system Rust reproduction of *QoServe: Breaking the Silos of LLM
//! Inference Serving* (ASPLOS 2026). QoServe co-schedules requests with
//! diverse QoS targets — interactive TTFT/TBT tiers next to batch TTLT
//! tiers — on shared replicas, using three techniques:
//!
//! 1. **Dynamic chunking**: grow the prefill chunk into the deadline slack
//!    of in-flight decodes, recovering the throughput that small fixed
//!    chunks sacrifice.
//! 2. **Hybrid prioritization**: smoothly interpolate between EDF and
//!    SRPF (`P = t_arrival + SLO + α · work`), getting EDF's low-load
//!    optimality and SRPF's overload robustness without SRPF's unfairness
//!    to long requests.
//! 3. **Eager relegation**: proactively demote requests that have missed
//!    (or provably will miss) their deadlines — low-priority/free-tier
//!    first — so overload degrades a small slice of traffic instead of
//!    cascading into everyone's SLOs.
//!
//! The GPU side is a calibrated discrete-event simulator (see `DESIGN.md`
//! for the substitution argument); every table and figure of the paper
//! has a regenerating binary in the `qoserve-bench` crate.
//!
//! ## Quickstart
//!
//! ```
//! use qoserve::prelude::*;
//!
//! // One A100 replica running the QoServe scheduler.
//! let mut server = QoServe::builder(HardwareConfig::llama3_8b_a100_tp1())
//!     .seed(42)
//!     .build();
//!
//! // An interactive chat request and a batch summarisation request
//! // sharing the same replica.
//! server.submit(
//!     Request::interactive(1_024, 200)
//!         .ttft_secs(6.0)
//!         .tbt_ms(50.0)
//!         .arriving_at_secs(0.1),
//! );
//! server.submit(
//!     Request::batch(8_192, 400)
//!         .ttlt_secs(600.0)
//!         .arriving_at_secs(0.2),
//! );
//!
//! let report = server.run();
//! assert_eq!(report.outcomes.len(), 2);
//! assert_eq!(report.slo.violations, 0);
//! ```

pub mod experiments;
pub mod server;

pub use server::{QoServe, QoServeBuilder, Request, RunReport};

/// Convenient re-exports of the whole workspace surface.
pub mod prelude {
    pub use crate::server::{QoServe, QoServeBuilder, Request, RunReport};

    pub use qoserve_cluster::{
        drain_victim, generate_scale_schedule, max_goodput, min_replicas_for, pick_target,
        run_shared, run_shared_elastic, run_shared_elastic_lockstep, run_shared_elastic_observed,
        run_shared_elastic_observed_lockstep, run_shared_elastic_traced, run_shared_faulty,
        run_shared_faulty_lockstep, run_shared_faulty_observed,
        run_shared_faulty_observed_lockstep, run_shared_faulty_traced, run_shared_traced,
        run_siloed, AutoscaleConfig, AutoscaleController, AutoscaleDecision, BreakerConfig,
        BreakerState, CircuitBreaker, ClusterConfig, ControlObservation, DrainCandidate,
        ElasticPlan, ElasticRunResult, FaultPlan, FaultRunResult, FaultRunStats, FleetRouter,
        GoodputOptions, LifecycleConfig, PickedTarget, Router, RouterError, ScaleAction,
        ScaleChurnConfig, ScaleEvent, SchedulerSpec, SiloGroup,
    };
    pub use qoserve_engine::{
        HealthSnapshot, ReplicaConfig, ReplicaEngine, ReplicaState, HEALTH_WINDOW,
    };
    pub use qoserve_metrics::{
        Disposition, LatencySummary, LogHistogram, RecoveryReport, RequestOutcome, RollingSeries,
        SloReport, Table,
    };
    pub use qoserve_perf::{
        AdaptiveMargin, AdaptiveMarginConfig, BatchProfile, ChunkBudget, ChunkLimits, ErrorTracker,
        HardwareConfig, LatencyModel, LatencyPredictor, PredictorKind,
    };
    pub use qoserve_sched::{
        AlphaPolicy, ConServeScheduler, DeadlineAwareAdmission, MedhaConfig, MedhaScheduler,
        OrderPolicy, ProcessingEstimator, QoServeConfig, QoServeScheduler, RateLimitScheduler,
        SarathiScheduler, Scheduler, SlosServeConfig, SlosServeScheduler,
    };
    pub use qoserve_sim::{
        par_map, par_max_passing, thread_limit, FaultConfig, FaultSchedule, SeedStream,
        SimDuration, SimTime,
    };
    pub use qoserve_workload::{
        ArrivalProcess, Dataset, Priority, QosClass, QosTier, RequestId, RequestSpec, Slo, TierId,
        TierMix, Trace, TraceBuilder,
    };
}
