//! Fixture: three panic sites against a baseline ceiling of two.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn last(v: &[u32]) -> u32 {
    *v.last().expect("non-empty")
}

pub fn boom() -> u32 {
    panic!("fixture")
}
