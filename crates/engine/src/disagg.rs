//! Prefill-decode disaggregation helpers (§4.1.3).
//!
//! In PD-disaggregated serving, prefill nodes never co-run decodes: a
//! request leaves the prefill node as soon as its prompt is processed, and
//! decoding happens on a separate fleet that the paper holds identical
//! across schemes. QoServe's hybrid prioritization and eager relegation
//! apply directly to the prefill nodes; dynamic chunking does not help
//! because there is no decode slack to exploit — the paper therefore uses
//! a large fixed 8 K chunk everywhere and still measures a prefill-goodput
//! win from prioritization and relegation.
//!
//! The reproduction models a prefill node as a
//! [`ReplicaEngine`](crate::ReplicaEngine) run over
//! a transformed trace whose requests complete at their first token.

use qoserve_perf::ChunkLimits;
use qoserve_workload::Trace;

/// The paper's default chunk size for disaggregated prefill nodes.
pub const DISAGG_CHUNK: u32 = 8_192;

/// Chunk-search limits for disaggregated prefill serving (up to the 8 K
/// chunk, since no TBT constrains the node).
pub fn disagg_chunk_limits() -> ChunkLimits {
    ChunkLimits {
        max_chunk: DISAGG_CHUNK,
        step: 64,
    }
}

/// Transforms a trace for prefill-node serving: every request completes at
/// its first output token (`decode_tokens = 1`), so TTFT/TTLT are judged
/// at prefill completion and no decode pool ever forms.
pub fn to_prefill_only_trace(trace: &Trace) -> Trace {
    let requests = trace
        .requests()
        .iter()
        .map(|r| {
            let mut spec = *r;
            spec.decode_tokens = 1;
            spec
        })
        .collect();
    Trace::from_requests(&format!("{} (prefill-only)", trace.dataset_name), requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_sim::SeedStream;
    use qoserve_workload::{ArrivalProcess, Dataset, TraceBuilder};

    #[test]
    fn transform_keeps_everything_but_decode() {
        let trace = TraceBuilder::new(Dataset::azure_conv())
            .arrivals(ArrivalProcess::poisson(2.0))
            .num_requests(50)
            .build(&SeedStream::new(1));
        let prefill_only = to_prefill_only_trace(&trace);
        assert_eq!(prefill_only.len(), trace.len());
        for (a, b) in trace.requests().iter().zip(prefill_only.requests()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.prompt_tokens, b.prompt_tokens);
            assert_eq!(a.slo, b.slo);
            assert_eq!(b.decode_tokens, 1);
        }
        assert!(prefill_only.dataset_name.contains("prefill-only"));
    }

    #[test]
    fn disagg_limits_reach_8k() {
        let l = disagg_chunk_limits();
        assert_eq!(l.max_chunk, 8_192);
        assert!(l.step > 0);
    }
}
