//! SLO forensics: replays a decision trace and explains, per violated
//! request, where the lateness came from — queueing delay, chunk-induced
//! decode stretching, or an injected fault.
//!
//! Usage:
//!
//! * `trace_explain <TRACE.jsonl>` — explain a trace captured earlier
//!   (e.g. by `trace_capture`).
//! * `trace_explain` — run a faulted fault_sweep-style sample in process
//!   (Az-Conv, 4 replicas, moderate faults at intensity 1.0, seed 31)
//!   and explain its violations.
//!
//! Every line of the output derives from deterministic simulated-time
//! stamps, so the same `(seed, config)` always prints the same report.

use std::fs;

use qoserve::prelude::*;
use qoserve_bench::emit_results;
use qoserve_bench::forensics::TraceForensics;
use qoserve_trace::{from_jsonl, ParsedTrace, Tracer};

fn main() {
    let parsed = match std::env::args().nth(1) {
        Some(path) => load_trace(&path),
        None => run_sample(),
    };

    let forensics = TraceForensics::build(&parsed.records);
    let total = forensics.requests().count();
    let violated: Vec<_> = forensics.violations().collect();

    println!("================================================================");
    println!(
        "trace_explain: {} events ({} evicted), {} requests, {} violated",
        parsed.records.len(),
        parsed.dropped,
        total,
        violated.len()
    );
    if parsed.dropped > 0 {
        println!(
            "note: {} events were evicted from the ring; early-run timelines may be partial",
            parsed.dropped
        );
    }
    println!("================================================================");

    if violated.is_empty() {
        println!("no SLO violations in this trace — nothing to explain");
        return;
    }

    let mut table = Table::new(vec!["cause", "violations"]);
    let mut rows = Vec::new();
    for (label, count) in forensics.cause_summary() {
        table.row(vec![label.to_owned(), count.to_string()]);
        rows.push(serde_json::json!({"cause": label, "violations": count}));
    }
    print!("{table}");
    emit_results("trace_explain", &rows);
    println!();

    for f in &violated {
        print!("{}", forensics.timeline(f));
        println!();
    }
}

/// Loads and parses a JSONL trace, exiting with a message on failure.
fn load_trace(path: &str) -> ParsedTrace {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match from_jsonl(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {path} is not a qoserve trace: {e}");
            std::process::exit(1);
        }
    }
}

/// One traced cell of the fault_sweep experiment: QoServe under moderate
/// faults at intensity 1.0 (see `src/bin/fault_sweep.rs`), with a short
/// window so the report stays readable.
fn run_sample() -> ParsedTrace {
    let setup_seed = 31;
    let seeds = SeedStream::new(setup_seed);
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(10.0))
        .duration(qoserve::experiments::scaled_window(120))
        .tier_mix(TierMix::paper_equal())
        .low_priority_fraction(0.2)
        .build(&seeds);
    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let plan = FaultPlan::with_faults(FaultConfig::moderate());

    // Captured events scale with request count (arrival + completion +
    // per-iteration records); 16x is a comfortable pre-size.
    let tracer = Tracer::unbounded_with_capacity(trace.len() * 16);
    let result = run_shared_faulty_traced(
        &trace,
        4,
        &SchedulerSpec::qoserve(),
        &config,
        &plan,
        &seeds,
        &tracer,
    );
    let Ok(result) = result else {
        eprintln!("error: sample run failed to route requests");
        std::process::exit(1);
    };

    let report = SloReport::compute(&result.outcomes, trace.long_prompt_threshold());
    println!(
        "sample run: {} requests, {:.1}% violations, {} crashes, {} re-dispatches",
        result.outcomes.len(),
        report.violation_pct(),
        result.stats.crashes,
        result.stats.redispatches
    );

    ParsedTrace {
        records: tracer.snapshot(),
        dropped: tracer.dropped(),
    }
}
