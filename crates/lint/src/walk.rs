//! Deterministic workspace traversal.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "results", "node_modules"];

/// Collects every `.rs` file under `root`, returning workspace-relative
/// paths with `/` separators, sorted — so diagnostics and baselines are
/// byte-stable across platforms and runs.
pub fn rust_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    collect(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(relative(root, &path));
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated.
pub fn relative(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_this_crate_sorted() {
        let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = rust_files(manifest).unwrap();
        assert!(files.iter().any(|f| f == "src/walk.rs"));
        assert!(files.iter().any(|f| f == "src/lexer.rs"));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }

    #[test]
    fn relative_uses_forward_slashes() {
        let root = Path::new("/a/b");
        assert_eq!(relative(root, Path::new("/a/b/c/d.rs")), "c/d.rs");
    }
}
