//! SLO forensics: replaying a decision trace into per-request timelines.
//!
//! A captured [`qoserve_trace`] stream records every decision the stack
//! made — admission, prioritization, chunk sizing, relegation, faults,
//! re-dispatch — with deterministic simulated-time stamps. This module
//! folds that stream into one [`RequestForensics`] per request and
//! answers the operator question behind the trace layer: *why did request
//! N violate its SLO?* Each violated request gets a primary
//! [`LatenessCause`]:
//!
//! * **queueing-delay** — the first token already missed its deadline:
//!   the time was lost waiting for service, not executing it.
//! * **chunk-induced** — the first token met its deadline but a later
//!   token (or the completion) violated: lateness accrued during decode,
//!   i.e. co-scheduled prefill chunks stretched iterations past the TBT
//!   budget.
//! * **fault-induced** — the request overlapped an injected fault: it was
//!   orphaned and re-dispatched after a crash, or shared a replica with
//!   an active crash/slowdown between arrival and completion.
//! * **scale-induced** — the request shared a replica with an elastic
//!   control-plane action (a drain or scale decision) between arrival
//!   and completion: it was migrated off a draining replica, or its
//!   replica was retired under it.
//!
//! The attribution is a deterministic function of the trace alone, so the
//! same `(seed, config)` always explains its violations identically.

use std::collections::BTreeMap;

use qoserve_trace::{TraceEvent, TraceRecord};

/// Primary attribution for one violated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LatenessCause {
    /// Lateness was already locked in before the first token: queueing.
    QueueingDelay,
    /// TTFT met, later tokens violated: chunking stretched the decode.
    ChunkInduced,
    /// The request overlapped a crash or slowdown window.
    FaultInduced,
    /// The request overlapped an elastic scale event (drain/retire) on
    /// its replica.
    ScaleInduced,
}

impl LatenessCause {
    /// Stable report label.
    pub fn label(&self) -> &'static str {
        match self {
            LatenessCause::QueueingDelay => "queueing-delay",
            LatenessCause::ChunkInduced => "chunk-induced",
            LatenessCause::FaultInduced => "fault-induced",
            LatenessCause::ScaleInduced => "scale-induced",
        }
    }
}

/// Everything the trace knows about one request.
#[derive(Debug, Clone, Default)]
pub struct RequestForensics {
    /// The request id.
    pub request: u64,
    /// Every replica that stamped an event for this request, in first-seen
    /// order (re-dispatched requests list each generation's host).
    pub replicas: Vec<u32>,
    /// First arrival stamp (re-dispatch re-arrivals keep the original).
    pub arrived_us: Option<u64>,
    /// Urgency deadline from the arrival event.
    pub deadline_us: Option<u64>,
    /// First-token stamp.
    pub first_token_us: Option<u64>,
    /// Completion stamp.
    pub completed_us: Option<u64>,
    /// SLO verdict from the completion event.
    pub violated: bool,
    /// Whether eager relegation (or a relegated re-dispatch) demoted it.
    pub relegated: bool,
    /// Whether the admission gate bounced it.
    pub rejected: bool,
    /// Worst per-token lateness from the completion event.
    pub worst_lateness_us: i64,
    /// Largest observed time-between-tokens from the completion event.
    pub max_tbt_us: u64,
    /// Crash-orphan re-dispatches this request survived.
    pub redispatches: u32,
    /// The request's own events, in canonical trace order.
    pub events: Vec<TraceRecord>,
}

impl RequestForensics {
    /// Arrived but never completed: stranded at the horizon, shed, or
    /// retry-exhausted — an SLO violation with no completion event.
    pub fn unfinished(&self) -> bool {
        self.arrived_us.is_some() && self.completed_us.is_none() && !self.rejected
    }

    /// Whether this request should be explained: a violated completion or
    /// an unfinished request.
    pub fn needs_explanation(&self) -> bool {
        self.violated || self.unfinished()
    }
}

/// A folded trace: per-request timelines plus the global fault timeline.
#[derive(Debug, Clone, Default)]
pub struct TraceForensics {
    requests: BTreeMap<u64, RequestForensics>,
    /// Every `FaultInjected` event (crashes and slowdowns), per replica.
    faults: Vec<TraceRecord>,
    /// Every elastic control-plane event (scale decisions, drain
    /// start/finish, warm-up completions), per replica.
    scaling: Vec<TraceRecord>,
}

impl TraceForensics {
    /// Folds canonical-order records into per-request forensics.
    pub fn build(records: &[TraceRecord]) -> Self {
        let mut requests: BTreeMap<u64, RequestForensics> = BTreeMap::new();
        let mut faults: Vec<TraceRecord> = Vec::new();
        let mut scaling: Vec<TraceRecord> = Vec::new();
        for r in records {
            if matches!(r.event, TraceEvent::FaultInjected { .. }) {
                faults.push(*r);
            }
            if matches!(
                r.event,
                TraceEvent::ScaleDecision { .. }
                    | TraceEvent::DrainStarted { .. }
                    | TraceEvent::DrainFinished { .. }
            ) {
                scaling.push(*r);
            }
            let Some(id) = r.request else {
                continue;
            };
            let f = requests.entry(id).or_insert_with(|| RequestForensics {
                request: id,
                worst_lateness_us: i64::MIN,
                ..RequestForensics::default()
            });
            if !f.replicas.contains(&r.replica) {
                f.replicas.push(r.replica);
            }
            match r.event {
                TraceEvent::RequestArrived { deadline_us, .. } => {
                    if f.arrived_us.is_none() {
                        f.arrived_us = Some(r.time_us);
                        f.deadline_us = Some(deadline_us);
                    }
                }
                TraceEvent::FirstToken => {
                    if f.first_token_us.is_none() {
                        f.first_token_us = Some(r.time_us);
                    }
                }
                TraceEvent::RequestCompleted {
                    violated,
                    worst_lateness_us,
                    max_tbt_us,
                    relegated,
                } => {
                    f.completed_us = Some(r.time_us);
                    f.violated = violated;
                    f.worst_lateness_us = worst_lateness_us;
                    f.max_tbt_us = max_tbt_us;
                    f.relegated |= relegated;
                }
                TraceEvent::Relegated { .. } => f.relegated = true,
                TraceEvent::AdmissionRejected { .. } => f.rejected = true,
                TraceEvent::OrphanRedispatched { .. } => f.redispatches += 1,
                // Decision and replica-level events update no summary
                // field; they still land in the request's raw timeline
                // below. Spelled out (not `_`) so adding a TraceEvent
                // variant forces a decision here; `trace-coverage`
                // enforces this.
                TraceEvent::ChunkBudgetChosen { .. }
                | TraceEvent::PriorityScored { .. }
                | TraceEvent::BreakerTransition { .. }
                | TraceEvent::MarginAdjusted { .. }
                | TraceEvent::FaultInjected { .. }
                | TraceEvent::ScaleDecision { .. }
                | TraceEvent::DrainStarted { .. }
                | TraceEvent::DrainFinished { .. }
                | TraceEvent::WarmupComplete { .. }
                | TraceEvent::IterationExecuted { .. } => {}
            }
            f.events.push(*r);
        }
        TraceForensics {
            requests,
            faults,
            scaling,
        }
    }

    /// All requests, in id order.
    pub fn requests(&self) -> impl Iterator<Item = &RequestForensics> {
        self.requests.values()
    }

    /// One request by id.
    pub fn get(&self, request: u64) -> Option<&RequestForensics> {
        self.requests.get(&request)
    }

    /// Every request needing an explanation (violated or unfinished), in
    /// id order.
    pub fn violations(&self) -> impl Iterator<Item = &RequestForensics> {
        self.requests.values().filter(|f| f.needs_explanation())
    }

    /// Primary lateness attribution; `None` for requests that met their
    /// SLO (or were rejected at admission — the client saw an immediate
    /// answer, not a late one).
    pub fn cause_of(&self, f: &RequestForensics) -> Option<LatenessCause> {
        if !f.needs_explanation() {
            return None;
        }
        let span_end = f.completed_us.unwrap_or(u64::MAX);
        let overlaps = |ev: &TraceRecord| {
            f.replicas.contains(&ev.replica)
                && f.arrived_us.is_some_and(|a| ev.time_us >= a)
                && ev.time_us <= span_end
        };
        // A fault on the request's own replica wins attribution; an
        // elastic scale event (drain/retire) comes next; a re-dispatch
        // with neither in the span is still fault-induced (the request
        // was orphaned before it even arrived at the crashed replica).
        if self.faults.iter().any(overlaps) {
            return Some(LatenessCause::FaultInduced);
        }
        if self.scaling.iter().any(overlaps) {
            return Some(LatenessCause::ScaleInduced);
        }
        if f.redispatches > 0 {
            return Some(LatenessCause::FaultInduced);
        }
        match (f.first_token_us, f.deadline_us) {
            (Some(ft), Some(d)) if ft <= d => Some(LatenessCause::ChunkInduced),
            _ => Some(LatenessCause::QueueingDelay),
        }
    }

    /// Violation counts per cause label, in label order.
    pub fn cause_summary(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for f in self.violations() {
            if let Some(cause) = self.cause_of(f) {
                *counts.entry(cause.label()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// The per-request forensic timeline as display text.
    pub fn timeline(&self, f: &RequestForensics) -> String {
        let mut out = String::new();
        let verdict = match self.cause_of(f) {
            Some(cause) => format!("VIOLATED ({})", cause.label()),
            None if f.rejected => "REJECTED at admission".to_owned(),
            None => "met SLO".to_owned(),
        };
        out.push_str(&format!(
            "request {} [replica{} {}] — {}\n",
            f.request,
            if f.replicas.len() > 1 { "s" } else { "" },
            f.replicas
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(","),
            verdict
        ));
        for ev in &f.events {
            out.push_str(&format!(
                "  {:>10.3}s  {}\n",
                ev.time_us as f64 / 1e6,
                describe(ev, f)
            ));
        }
        if f.unfinished() {
            out.push_str("      (no completion event: stranded, shed, or retry-exhausted)\n");
        }
        out
    }
}

/// One human line per event, with the derived quantities an operator
/// wants next to it (TTFT vs deadline, lateness, TBT).
fn describe(r: &TraceRecord, f: &RequestForensics) -> String {
    match r.event {
        TraceEvent::RequestArrived {
            prompt_tokens,
            decode_tokens,
            tier,
            deadline_us,
        } => format!(
            "arrived (tier Q{tier}, {prompt_tokens} prompt + {decode_tokens} decode tokens, \
             deadline {:.3}s)",
            deadline_us as f64 / 1e6
        ),
        TraceEvent::PriorityScored {
            edf_term,
            srpf_term,
            alpha,
        } => format!(
            "priority scored (edf {:.3}s + srpf {:.3}s, alpha {alpha:.1} us/token)",
            edf_term / 1e6,
            srpf_term / 1e6
        ),
        TraceEvent::AdmissionRejected {
            estimated_service_us,
            deadline_us,
        } => format!(
            "rejected at admission (estimated service {:.3}s provably misses deadline {:.3}s)",
            estimated_service_us as f64 / 1e6,
            deadline_us as f64 / 1e6
        ),
        TraceEvent::Relegated {
            from_tier, reason, ..
        } => format!("relegated from tier Q{from_tier} ({reason:?})"),
        TraceEvent::FirstToken => {
            let ttft = match f.arrived_us {
                Some(a) => format!("TTFT {:.3}s", r.time_us.saturating_sub(a) as f64 / 1e6),
                None => "TTFT unknown".to_owned(),
            };
            let met = match f.deadline_us {
                Some(d) if r.time_us <= d => ", met deadline",
                Some(_) => ", MISSED deadline",
                None => "",
            };
            format!("first token ({ttft}{met})")
        }
        TraceEvent::OrphanRedispatched {
            from_replica,
            to_replica,
            attempt,
        } => format!(
            "re-dispatched after crash (replica {from_replica} -> {to_replica}, attempt {attempt})"
        ),
        TraceEvent::RequestCompleted {
            violated,
            worst_lateness_us,
            max_tbt_us,
            relegated,
        } => format!(
            "completed ({}, worst lateness {:+.3}s, max TBT {:.3}s{})",
            if violated { "violated" } else { "in SLO" },
            worst_lateness_us as f64 / 1e6,
            max_tbt_us as f64 / 1e6,
            if relegated { ", relegated" } else { "" }
        ),
        other => other.name().to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_trace::{FaultKind, RelegationReason, RELEGATED_TIER};

    fn rec(
        time_us: u64,
        replica: u32,
        seq: u64,
        request: Option<u64>,
        event: TraceEvent,
    ) -> TraceRecord {
        TraceRecord {
            time_us,
            replica,
            seq,
            request,
            event,
        }
    }

    fn arrived(time_us: u64, replica: u32, seq: u64, id: u64, deadline_us: u64) -> TraceRecord {
        rec(
            time_us,
            replica,
            seq,
            Some(id),
            TraceEvent::RequestArrived {
                prompt_tokens: 800,
                decode_tokens: 40,
                tier: 1,
                deadline_us,
            },
        )
    }

    fn completed(time_us: u64, replica: u32, seq: u64, id: u64, violated: bool) -> TraceRecord {
        rec(
            time_us,
            replica,
            seq,
            Some(id),
            TraceEvent::RequestCompleted {
                violated,
                worst_lateness_us: if violated { 2_000 } else { -5_000 },
                max_tbt_us: 90_000,
                relegated: false,
            },
        )
    }

    #[test]
    fn queueing_delay_when_first_token_is_late() {
        // Deadline 1s, first token at 2s: the lateness predates decode.
        let records = vec![
            arrived(0, 0, 0, 7, 1_000_000),
            rec(2_000_000, 0, 1, Some(7), TraceEvent::FirstToken),
            completed(3_000_000, 0, 2, 7, true),
        ];
        let fx = TraceForensics::build(&records);
        let f = fx.get(7).expect("request folded");
        assert_eq!(fx.cause_of(f), Some(LatenessCause::QueueingDelay));
        assert_eq!(fx.cause_summary().get("queueing-delay"), Some(&1));
    }

    #[test]
    fn chunk_induced_when_ttft_met_but_still_violated() {
        // First token inside the deadline; the violation came later.
        let records = vec![
            arrived(0, 0, 0, 8, 1_000_000),
            rec(500_000, 0, 1, Some(8), TraceEvent::FirstToken),
            completed(4_000_000, 0, 2, 8, true),
        ];
        let fx = TraceForensics::build(&records);
        let f = fx.get(8).expect("request folded");
        assert_eq!(fx.cause_of(f), Some(LatenessCause::ChunkInduced));
    }

    #[test]
    fn fault_induced_beats_other_causes() {
        // Same shape as the chunk-induced case, but a slowdown window hit
        // the request's replica mid-flight — the fault wins attribution.
        let records = vec![
            arrived(0, 0, 0, 9, 1_000_000),
            rec(
                400_000,
                0,
                1,
                None,
                TraceEvent::FaultInjected {
                    kind: FaultKind::Slowdown,
                    slowdown: 2.5,
                },
            ),
            rec(500_000, 0, 2, Some(9), TraceEvent::FirstToken),
            completed(4_000_000, 0, 3, 9, true),
        ];
        let fx = TraceForensics::build(&records);
        let f = fx.get(9).expect("request folded");
        assert_eq!(fx.cause_of(f), Some(LatenessCause::FaultInduced));
    }

    #[test]
    fn redispatch_marks_fault_induced_across_replicas() {
        let records = vec![
            arrived(0, 0, 0, 4, 1_000_000),
            rec(
                900_000,
                1,
                0,
                Some(4),
                TraceEvent::OrphanRedispatched {
                    from_replica: 0,
                    to_replica: 1,
                    attempt: 1,
                },
            ),
            arrived(1_000_000, 1, 1, 4, 1_000_000),
            rec(1_500_000, 1, 2, Some(4), TraceEvent::FirstToken),
            completed(2_000_000, 1, 3, 4, true),
        ];
        let fx = TraceForensics::build(&records);
        let f = fx.get(4).expect("request folded");
        assert_eq!(f.redispatches, 1);
        assert_eq!(f.replicas, vec![0, 1]);
        // First arrival wins: the SLO clock starts at the original stamp.
        assert_eq!(f.arrived_us, Some(0));
        assert_eq!(fx.cause_of(f), Some(LatenessCause::FaultInduced));
    }

    #[test]
    fn fault_on_another_replica_does_not_contaminate() {
        let records = vec![
            arrived(0, 0, 0, 5, 1_000_000),
            rec(
                400_000,
                3,
                0,
                None,
                TraceEvent::FaultInjected {
                    kind: FaultKind::Crash,
                    slowdown: 1.0,
                },
            ),
            rec(500_000, 0, 1, Some(5), TraceEvent::FirstToken),
            completed(4_000_000, 0, 2, 5, true),
        ];
        let fx = TraceForensics::build(&records);
        let f = fx.get(5).expect("request folded");
        assert_eq!(fx.cause_of(f), Some(LatenessCause::ChunkInduced));
    }

    #[test]
    fn non_violating_and_rejected_requests_get_no_cause() {
        let records = vec![
            arrived(0, 0, 0, 1, 9_000_000),
            rec(100_000, 0, 1, Some(1), TraceEvent::FirstToken),
            completed(200_000, 0, 2, 1, false),
            arrived(0, 1, 0, 2, 1_000),
            rec(
                0,
                1,
                1,
                Some(2),
                TraceEvent::AdmissionRejected {
                    estimated_service_us: 5_000_000,
                    deadline_us: 1_000,
                },
            ),
        ];
        let fx = TraceForensics::build(&records);
        let ok = fx.get(1).expect("request folded");
        assert_eq!(fx.cause_of(ok), None);
        let rejected = fx.get(2).expect("request folded");
        assert!(rejected.rejected);
        assert!(!rejected.needs_explanation(), "a 429 is not a late answer");
        assert_eq!(fx.cause_of(rejected), None);
        assert_eq!(fx.violations().count(), 0);
    }

    #[test]
    fn unfinished_requests_are_explained() {
        // Arrived, never completed (stranded at horizon / shed).
        let records = vec![arrived(0, 0, 0, 3, 1_000_000)];
        let fx = TraceForensics::build(&records);
        let f = fx.get(3).expect("request folded");
        assert!(f.unfinished());
        assert_eq!(fx.cause_of(f), Some(LatenessCause::QueueingDelay));
        assert_eq!(fx.violations().count(), 1);
    }

    #[test]
    fn drain_overlap_marks_scale_induced() {
        // TTFT met, but the request's replica started draining mid-flight
        // and the request was migrated — scaling owns the violation.
        let records = vec![
            arrived(0, 0, 0, 11, 1_000_000),
            rec(
                400_000,
                0,
                1,
                None,
                TraceEvent::DrainStarted {
                    deadline_us: 900_000,
                },
            ),
            rec(
                900_000,
                1,
                0,
                Some(11),
                TraceEvent::OrphanRedispatched {
                    from_replica: 0,
                    to_replica: 1,
                    attempt: 1,
                },
            ),
            rec(1_500_000, 1, 1, Some(11), TraceEvent::FirstToken),
            completed(2_000_000, 1, 2, 11, true),
        ];
        let fx = TraceForensics::build(&records);
        let f = fx.get(11).expect("request folded");
        assert_eq!(fx.cause_of(f), Some(LatenessCause::ScaleInduced));
        assert_eq!(fx.cause_summary().get("scale-induced"), Some(&1));
    }

    #[test]
    fn fault_overlap_beats_scale_overlap() {
        // Both a crash and a drain touched the replica mid-flight: the
        // fault wins attribution (it precedes scaling in precedence).
        let records = vec![
            arrived(0, 0, 0, 12, 1_000_000),
            rec(
                300_000,
                0,
                1,
                None,
                TraceEvent::FaultInjected {
                    kind: FaultKind::Slowdown,
                    slowdown: 2.0,
                },
            ),
            rec(
                400_000,
                0,
                2,
                None,
                TraceEvent::DrainStarted {
                    deadline_us: 900_000,
                },
            ),
            rec(500_000, 0, 3, Some(12), TraceEvent::FirstToken),
            completed(4_000_000, 0, 4, 12, true),
        ];
        let fx = TraceForensics::build(&records);
        let f = fx.get(12).expect("request folded");
        assert_eq!(fx.cause_of(f), Some(LatenessCause::FaultInduced));
    }

    #[test]
    fn scale_event_on_another_replica_does_not_contaminate() {
        let records = vec![
            arrived(0, 0, 0, 13, 1_000_000),
            rec(
                400_000,
                2,
                0,
                None,
                TraceEvent::ScaleDecision {
                    direction: qoserve_trace::ScaleDirection::Down,
                    fleet_before: 3,
                    fleet_after: 2,
                },
            ),
            rec(500_000, 0, 1, Some(13), TraceEvent::FirstToken),
            completed(4_000_000, 0, 2, 13, true),
        ];
        let fx = TraceForensics::build(&records);
        let f = fx.get(13).expect("request folded");
        assert_eq!(fx.cause_of(f), Some(LatenessCause::ChunkInduced));
    }

    #[test]
    fn timeline_renders_every_event_with_a_verdict() {
        let records = vec![
            arrived(0, 0, 0, 6, 1_000_000),
            rec(
                100,
                0,
                1,
                Some(6),
                TraceEvent::Relegated {
                    from_tier: 1,
                    to_tier: RELEGATED_TIER,
                    reason: RelegationReason::Hopeless,
                },
            ),
            rec(2_000_000, 0, 2, Some(6), TraceEvent::FirstToken),
            completed(3_000_000, 0, 3, 6, true),
        ];
        let fx = TraceForensics::build(&records);
        let f = fx.get(6).expect("request folded");
        let text = fx.timeline(f);
        assert!(text.contains("request 6"), "{text}");
        assert!(text.contains("VIOLATED (queueing-delay)"), "{text}");
        assert!(text.contains("relegated from tier Q1"), "{text}");
        assert!(text.contains("MISSED deadline"), "{text}");
        assert!(text.contains("worst lateness +0.002s"), "{text}");
        assert_eq!(text.lines().count(), 1 + f.events.len());
    }
}
