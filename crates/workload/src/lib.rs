//! Workload substrate for the QoServe reproduction.
//!
//! The paper evaluates on ShareGPT and two Azure production traces with
//! Poisson arrivals, split into three QoS tiers (Tables 2 and 3). The real
//! traces are not redistributable, so this crate synthesises statistically
//! equivalent workloads: per-dataset prompt/decode token distributions are
//! log-normals fitted to the published p50/p90 values, arrivals come from
//! Poisson or diurnal square-wave processes, and tier/priority tagging
//! follows the paper's composition rules.
//!
//! * [`qos`] — QoS classes, SLOs, tiers, and the deadline equations
//!   (Eq. 1–3 of §3.2).
//! * [`request`] — [`RequestSpec`], one request of a trace.
//! * [`dataset`] — token-length samplers for ShareGPT / Azure-Conv /
//!   Azure-Code plus custom datasets.
//! * [`arrivals`] — Poisson, diurnal square-wave (Fig. 12), and fixed-rate
//!   arrival processes.
//! * [`trace`] — [`TraceBuilder`]: dataset × arrivals × tier mix × priority
//!   tagging → a reproducible [`Trace`].
//!
//! # Example
//!
//! ```
//! use qoserve_sim::SeedStream;
//! use qoserve_workload::{ArrivalProcess, Dataset, TraceBuilder};
//!
//! let trace = TraceBuilder::new(Dataset::azure_code())
//!     .arrivals(ArrivalProcess::poisson(3.0))
//!     .num_requests(100)
//!     .paper_tier_mix()
//!     .build(&SeedStream::new(7));
//! assert_eq!(trace.len(), 100);
//! ```

pub mod arrivals;
pub mod dataset;
pub mod qos;
pub mod request;
pub mod trace;

pub use arrivals::ArrivalProcess;
pub use dataset::{Dataset, LengthProfile};
pub use qos::{Priority, QosClass, QosTier, Slo, TierId};
pub use request::{RequestId, RequestSpec};
pub use trace::{TierMix, Trace, TraceBuilder};
