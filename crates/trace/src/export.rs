//! Deterministic serializers: JSONL for diffing and forensic replay,
//! Chrome-trace-event JSON for Perfetto.
//!
//! Both exporters require records in canonical order (as produced by
//! [`TraceSink::snapshot`](crate::TraceSink::snapshot)) and emit keys in
//! sorted order (`serde_json`'s default map), so output bytes are a pure
//! function of the record list.

use serde_json::{json, Value};

use crate::event::{TraceEvent, TraceRecord};

/// Serializes records as JSONL: a header object followed by one record
/// per line.
///
/// The header carries the retained-record and evicted-record counts so a
/// forensic reader knows whether the window is complete:
///
/// ```text
/// {"dropped":0,"events":2,"trace":"qoserve","version":1}
/// {"time_us":0,"replica":0,"seq":0,"request":7,"type":"first_token"}
/// ```
pub fn to_jsonl(records: &[TraceRecord], dropped: u64) -> String {
    // One pre-sized output buffer plus a single reused per-record
    // scratch: exporting a million-record trace performs a handful of
    // allocations, not one per line. `to_writer` produces exactly the
    // bytes `to_string` would, so output stays byte-identical.
    let mut out = String::with_capacity(64 + records.len() * 96);
    let header = json!({
        "trace": "qoserve",
        "version": 1,
        "events": records.len(),
        "dropped": dropped,
    });
    out.push_str(&header.to_string());
    out.push('\n');
    let mut scratch: Vec<u8> = Vec::with_capacity(160);
    for r in records {
        scratch.clear();
        if serde_json::to_writer(&mut scratch, r).is_err() {
            // Unreachable for these plain-data types; skipping keeps the
            // exporter panic-free.
            continue;
        }
        // serde_json always writes valid UTF-8.
        let Ok(line) = std::str::from_utf8(&scratch) else {
            continue;
        };
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// A parsed JSONL trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedTrace {
    /// Records in file order.
    pub records: Vec<TraceRecord>,
    /// Evicted-record count from the header (0 when absent).
    pub dropped: u64,
}

/// Parses a JSONL trace produced by [`to_jsonl`]. The header line is
/// optional; malformed lines are reported with their 1-based number.
pub fn from_jsonl(text: &str) -> Result<ParsedTrace, String> {
    let mut trace = ParsedTrace::default();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if idx == 0 {
            if let Ok(header) = serde_json::from_str::<Value>(line) {
                if header.get("trace").and_then(Value::as_str) == Some("qoserve") {
                    trace.dropped = header.get("dropped").and_then(Value::as_u64).unwrap_or(0);
                    continue;
                }
            }
        }
        match serde_json::from_str::<TraceRecord>(line) {
            Ok(r) => trace.records.push(r),
            Err(e) => return Err(format!("line {}: {e}", idx + 1)),
        }
    }
    Ok(trace)
}

/// Serializes records as Chrome trace-event JSON (openable in Perfetto
/// or `chrome://tracing`).
///
/// Layout: one track (`tid`) per replica under a single process,
/// iterations as complete (`X`) slices, decision events as thread-scoped
/// instants (`i`), and one async span (`b`/`e`, `cat: "request"`) per
/// request from arrival through first token to completion.
pub fn to_chrome_trace(records: &[TraceRecord]) -> String {
    let mut events: Vec<Value> = Vec::new();
    let mut replicas: Vec<u32> = records.iter().map(|r| r.replica).collect();
    replicas.sort_unstable();
    replicas.dedup();
    for replica in &replicas {
        events.push(json!({
            "ph": "M",
            "name": "thread_name",
            "pid": 0,
            "tid": replica,
            "args": {"name": format!("replica-{replica}")},
        }));
    }
    for r in records {
        events.push(chrome_event(r));
    }
    json!({"traceEvents": events, "displayTimeUnit": "ms"}).to_string()
}

fn chrome_event(r: &TraceRecord) -> Value {
    let args = serde_json::to_value(r.event).unwrap_or(Value::Null);
    match r.event {
        TraceEvent::IterationExecuted { observed_us, .. } => json!({
            "ph": "X",
            "name": "iteration",
            "pid": 0,
            "tid": r.replica,
            "ts": r.time_us,
            "dur": observed_us,
            "args": args,
        }),
        TraceEvent::RequestArrived { .. } => json!({
            "ph": "b",
            "cat": "request",
            "id": r.request.unwrap_or(0),
            "name": span_name(r),
            "pid": 0,
            "tid": r.replica,
            "ts": r.time_us,
            "args": args,
        }),
        TraceEvent::FirstToken => json!({
            "ph": "n",
            "cat": "request",
            "id": r.request.unwrap_or(0),
            "name": span_name(r),
            "pid": 0,
            "tid": r.replica,
            "ts": r.time_us,
        }),
        TraceEvent::RequestCompleted { .. } => json!({
            "ph": "e",
            "cat": "request",
            "id": r.request.unwrap_or(0),
            "name": span_name(r),
            "pid": 0,
            "tid": r.replica,
            "ts": r.time_us,
            "args": args,
        }),
        // Decision events render as thread-scoped instants. Spelled out
        // variant-by-variant (not `_`) so adding a TraceEvent variant
        // forces a decision here; `trace-coverage` enforces this.
        TraceEvent::ChunkBudgetChosen { .. }
        | TraceEvent::PriorityScored { .. }
        | TraceEvent::Relegated { .. }
        | TraceEvent::AdmissionRejected { .. }
        | TraceEvent::BreakerTransition { .. }
        | TraceEvent::MarginAdjusted { .. }
        | TraceEvent::FaultInjected { .. }
        | TraceEvent::OrphanRedispatched { .. }
        | TraceEvent::ScaleDecision { .. }
        | TraceEvent::DrainStarted { .. }
        | TraceEvent::DrainFinished { .. }
        | TraceEvent::WarmupComplete { .. } => json!({
            "ph": "i",
            "s": "t",
            "name": r.event.name(),
            "pid": 0,
            "tid": r.replica,
            "ts": r.time_us,
            "args": args,
        }),
    }
}

/// Async-span name: all three phases of a request's span must share it.
fn span_name(r: &TraceRecord) -> String {
    match r.request {
        Some(id) => format!("request-{id}"),
        None => "request".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::canonical_sort;

    fn sample() -> Vec<TraceRecord> {
        let mut v = vec![
            TraceRecord {
                time_us: 0,
                replica: 0,
                seq: 0,
                request: Some(7),
                event: TraceEvent::RequestArrived {
                    prompt_tokens: 100,
                    decode_tokens: 10,
                    tier: 1,
                    deadline_us: 6_000_000,
                },
            },
            TraceRecord {
                time_us: 1_000,
                replica: 0,
                seq: 1,
                request: None,
                event: TraceEvent::IterationExecuted {
                    batch_tokens: 132,
                    prefill_tokens: 100,
                    num_decodes: 32,
                    observed_us: 950,
                },
            },
            TraceRecord {
                time_us: 1_950,
                replica: 0,
                seq: 2,
                request: Some(7),
                event: TraceEvent::FirstToken,
            },
            TraceRecord {
                time_us: 3_000,
                replica: 1,
                seq: 0,
                request: Some(7),
                event: TraceEvent::RequestCompleted {
                    violated: true,
                    worst_lateness_us: 1_500,
                    max_tbt_us: 400,
                    relegated: false,
                },
            },
        ];
        canonical_sort(&mut v);
        v
    }

    #[test]
    fn jsonl_round_trips() {
        let records = sample();
        let text = to_jsonl(&records, 3);
        let parsed = from_jsonl(&text).unwrap();
        assert_eq!(parsed.dropped, 3);
        assert_eq!(parsed.records, records);
    }

    #[test]
    fn jsonl_without_header_still_parses() {
        let records = sample();
        let text = to_jsonl(&records, 0);
        let body: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
        let parsed = from_jsonl(&body).unwrap();
        assert_eq!(parsed.records, records);
        assert_eq!(parsed.dropped, 0);
    }

    #[test]
    fn jsonl_reports_malformed_lines() {
        let err = from_jsonl("{\"not\": \"a record\"}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn jsonl_is_deterministic() {
        let records = sample();
        assert_eq!(to_jsonl(&records, 0), to_jsonl(&records, 0));
    }

    #[test]
    fn chrome_trace_has_tracks_slices_and_spans() {
        let text = to_chrome_trace(&sample());
        let v: Value = serde_json::from_str(&text).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        // 2 replica-name metadata events + 4 records.
        assert_eq!(events.len(), 6);
        let phases: Vec<&str> = events.iter().map(|e| e["ph"].as_str().unwrap()).collect();
        assert_eq!(phases, vec!["M", "M", "b", "X", "n", "e"]);
        // The request span shares id and name across b/n/e.
        for e in events.iter().filter(|e| e["cat"] == "request") {
            assert_eq!(e["id"], 7);
            assert_eq!(e["name"], "request-7");
        }
        // The iteration slice carries its duration.
        let x = events.iter().find(|e| e["ph"] == "X").unwrap();
        assert_eq!(x["dur"], 950);
        assert_eq!(x["tid"], 0);
    }
}
