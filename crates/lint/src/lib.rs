//! `qoserve-lint` — workspace-specific static analysis.
//!
//! The QoServe reproduction's headline results are discrete-event
//! simulations whose validity rests on strict determinism (the test suite
//! pins `parallel == serial` bit-for-bit). This crate makes that contract
//! *machine-enforced* rather than conventional: a zero-dependency linter
//! that walks every `.rs` file in the workspace and rejects
//!
//! * wall-clock / entropy sources in simulation crates
//!   (`nondeterministic-time`),
//! * iteration over `HashMap`/`HashSet` in simulation crates
//!   (`hash-iteration` — construction and point lookup stay legal;
//!   `BTreeMap` is the sanctioned ordered alternative),
//! * NaN-unsafe float comparisons anywhere (`float-ordering` — the job
//!   heaps order by floating-point priority, Eq. 4/5),
//! * panic sites in library code above a ratcheting per-file baseline
//!   (`panic-hygiene`, `lint-baseline.toml`),
//! * `println!`-family output in library code above its own ratcheting
//!   baseline (`unstructured-output` — library code returns data or
//!   emits trace events; only `src/bin/` drivers and `src/main.rs`
//!   print),
//! * allocation churn (`Box::new`, `.to_string()`, `.clone()`, …) inside
//!   hot-path function bodies (`step`, `on_iteration`, the event-loop
//!   kernels) of determinism crates, above its own ratcheting baseline
//!   (`hot-path-alloc` — hot paths reuse scratch buffers and slab
//!   slots; allocation belongs in setup code).
//!
//! Violations can be waived inline with a mandatory reason:
//! `// qoserve-lint: allow(<rule>) -- <reason>`. See [`rules`] for the
//! scoping table and DESIGN.md for the workflow.

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod waiver;
pub mod walk;

use std::fs;
use std::path::{Path, PathBuf};

use baseline::Baseline;
use rules::{analyze, scope_for, Diagnostic, RULE_ALLOC, RULE_OUTPUT, RULE_PANIC};

/// Name of the baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.toml";

/// One applied waiver, for the run summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverNote {
    /// File the waiver sits in.
    pub path: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// Rules it covers.
    pub rules: Vec<String>,
    /// The stated reason.
    pub reason: String,
    /// Whether it actually suppressed anything this run.
    pub used: bool,
}

/// Outcome of linting a tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All violations (every rule, baseline overflows included), sorted by
    /// `(path, line, col)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Every waiver encountered.
    pub waivers: Vec<WaiverNote>,
    /// `(rule, path, current, allowed)` for files whose ratcheted-rule
    /// count sits *below* their baseline ceiling — ratchet candidates.
    pub ratchet: Vec<(&'static str, String, u32, u32)>,
    /// Current per-file counts for the ratcheted rules (what
    /// `--fix-baseline` writes).
    pub counts: Baseline,
    /// Files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints every `.rs` file under `root` against `baseline`.
pub fn lint_tree(root: &Path, baseline: &Baseline) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    for rel in walk::rust_files(root)? {
        let scope = scope_for(&rel);
        if !scope.any() {
            continue;
        }
        report.files_scanned += 1;
        let src = fs::read_to_string(root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR)))?;
        let analysis = analyze(&rel, &src, scope);
        report.diagnostics.extend(analysis.diagnostics);

        let count = analysis.panic_sites.len() as u32;
        let allowed = baseline.allowed_for(&rel);
        if count > 0 {
            report.counts.allowed.insert(rel.clone(), count);
        }
        if count > allowed {
            // Anchor the diagnostic at the first panic site so the report
            // is clickable even though the violation is file-level.
            let (line, col, ref what) = analysis.panic_sites[0];
            report.diagnostics.push(Diagnostic {
                path: rel.clone(),
                line,
                col,
                rule: RULE_PANIC,
                message: format!(
                    "{count} panic site(s) in non-test code (first: `{what}`), baseline allows \
                     {allowed}; handle the error or waive with a reason, never raise the baseline"
                ),
            });
        } else if count < allowed {
            report
                .ratchet
                .push((RULE_PANIC, rel.clone(), count, allowed));
        }

        let count = analysis.output_sites.len() as u32;
        let allowed = baseline.output_allowed_for(&rel);
        if count > 0 {
            report.counts.output_allowed.insert(rel.clone(), count);
        }
        if count > allowed {
            let (line, col, ref what) = analysis.output_sites[0];
            report.diagnostics.push(Diagnostic {
                path: rel.clone(),
                line,
                col,
                rule: RULE_OUTPUT,
                message: format!(
                    "{count} unstructured output site(s) in library code (first: `{what}`), \
                     baseline allows {allowed}; return data to the caller (or use the trace \
                     layer) instead of printing, or waive with a reason"
                ),
            });
        } else if count < allowed {
            report
                .ratchet
                .push((RULE_OUTPUT, rel.clone(), count, allowed));
        }

        let count = analysis.alloc_sites.len() as u32;
        let allowed = baseline.alloc_allowed_for(&rel);
        if count > 0 {
            report.counts.alloc_allowed.insert(rel.clone(), count);
        }
        if count > allowed {
            let (line, col, ref what) = analysis.alloc_sites[0];
            report.diagnostics.push(Diagnostic {
                path: rel.clone(),
                line,
                col,
                rule: RULE_ALLOC,
                message: format!(
                    "{count} allocation site(s) in hot-path code (first: `{what}`), baseline \
                     allows {allowed}; reuse a scratch buffer or slab slot (see \
                     `qoserve_sim::eventcore`), or waive with a reason"
                ),
            });
        } else if count < allowed {
            report
                .ratchet
                .push((RULE_ALLOC, rel.clone(), count, allowed));
        }

        for w in &analysis.waivers {
            report.waivers.push(WaiverNote {
                path: rel.clone(),
                line: w.line,
                rules: w.rules.clone(),
                reason: w.reason.clone(),
                used: w.used.get(),
            });
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(report)
}

/// Loads the baseline from `root`, tolerating a missing file (empty
/// baseline) but not a malformed one.
pub fn load_baseline(root: &Path) -> Result<Baseline, String> {
    let path: PathBuf = root.join(BASELINE_FILE);
    match fs::read_to_string(&path) {
        Ok(text) => Baseline::parse(&text).map_err(|e| e.to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Renders the human-readable run summary.
pub fn summary(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "qoserve-lint: {} file(s) scanned, {} violation(s)\n",
        report.files_scanned,
        report.diagnostics.len()
    ));
    if !report.waivers.is_empty() {
        out.push_str(&format!("  {} waiver(s):\n", report.waivers.len()));
        for w in &report.waivers {
            out.push_str(&format!(
                "    {}:{} allow({}) -- {}{}\n",
                w.path,
                w.line,
                w.rules.join(", "),
                w.reason,
                if w.used { "" } else { "  [unused]" }
            ));
        }
    }
    if !report.ratchet.is_empty() {
        out.push_str("  ratchet opportunities (run with --fix-baseline to lock in):\n");
        for (rule, path, now, allowed) in &report.ratchet {
            out.push_str(&format!(
                "    {path}: {now} {rule} site(s), baseline allows {allowed}\n"
            ));
        }
    }
    out
}
