//! Capture backends: null, bounded per-replica rings, unbounded vector.

use std::collections::BTreeMap;

use crate::event::{canonical_sort, TraceRecord};

/// Where captured records go. Implementations must be `Send`: replica
/// threads share one sink behind the [`Tracer`](crate::Tracer) mutex.
pub trait TraceSink: Send {
    /// Whether this sink captures anything. A `false` sink is mapped to
    /// the fully-disabled tracer at construction, so `record` is never
    /// reached on the hot path.
    fn enabled(&self) -> bool {
        true
    }

    /// Accepts one record. Stamps (`time_us`, `replica`, `seq`) are
    /// already assigned by the tracer.
    fn record(&mut self, record: TraceRecord);

    /// All retained records in canonical `(time_us, replica, seq)` order.
    fn snapshot(&self) -> Vec<TraceRecord>;

    /// Records evicted due to capacity limits.
    fn dropped(&self) -> u64 {
        0
    }

    /// Evicted-record counts keyed by replica, omitting replicas with no
    /// drops. Sinks without per-replica accounting return an empty map
    /// even when [`dropped`](TraceSink::dropped) is non-zero.
    fn dropped_by_replica(&self) -> BTreeMap<u32, u64> {
        BTreeMap::new()
    }
}

/// The zero-overhead default: capture disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _record: TraceRecord) {}

    fn snapshot(&self) -> Vec<TraceRecord> {
        Vec::new()
    }
}

/// One replica's bounded ring. The buffer is allocated once at the
/// replica's first event and then overwritten in place.
#[derive(Debug, Clone)]
struct Ring {
    buf: Vec<TraceRecord>,
    /// Next overwrite position once the buffer is full.
    head: usize,
    /// Records this ring has evicted.
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            buf: Vec::with_capacity(capacity),
            head: 0,
            dropped: 0,
        }
    }

    /// Pushes a record, returning `true` when an older record was evicted.
    fn push(&mut self, record: TraceRecord, capacity: usize) -> bool {
        if self.buf.len() < capacity {
            self.buf.push(record);
            false
        } else {
            self.buf[self.head] = record;
            self.head = (self.head + 1) % capacity;
            true
        }
    }

    /// Retained records oldest-first.
    fn in_order(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

/// Bounded capture: a fixed-capacity ring *per replica*, oldest records
/// evicted first.
///
/// Keeping the rings per replica (rather than one shared ring) is what
/// makes eviction deterministic: each replica's stream arrives in
/// program order, so the retained window per replica is a pure function
/// of the simulation — never of thread interleaving.
#[derive(Debug)]
pub struct RingSink {
    per_replica: usize,
    rings: BTreeMap<u32, Ring>,
    dropped: u64,
}

impl RingSink {
    /// A sink retaining at most `per_replica` records per replica.
    /// A zero capacity is clamped to 1 so the sink stays well-formed.
    pub fn new(per_replica: usize) -> RingSink {
        RingSink {
            per_replica: per_replica.max(1),
            rings: BTreeMap::new(),
            dropped: 0,
        }
    }

    /// The per-replica capacity.
    pub fn capacity_per_replica(&self) -> usize {
        self.per_replica
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, record: TraceRecord) {
        let capacity = self.per_replica;
        let ring = self
            .rings
            .entry(record.replica)
            .or_insert_with(|| Ring::new(capacity));
        if ring.push(record, capacity) {
            ring.dropped += 1;
            self.dropped += 1;
        }
    }

    fn snapshot(&self) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = self
            .rings
            .values()
            .flat_map(|r| r.in_order().copied())
            .collect();
        canonical_sort(&mut out);
        out
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn dropped_by_replica(&self) -> BTreeMap<u32, u64> {
        self.rings
            .iter()
            .filter(|(_, ring)| ring.dropped > 0)
            .map(|(&replica, ring)| (replica, ring.dropped))
            .collect()
    }
}

/// Unbounded capture, for tests and short forensic runs.
#[derive(Debug, Default)]
pub struct VecSink {
    records: Vec<TraceRecord>,
}

impl VecSink {
    /// An empty unbounded sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// An empty sink pre-sized for `capacity` records, so capturing a
    /// run whose event count is known up front (roughly proportional to
    /// the trace's request count) never regrows the buffer mid-run.
    pub fn with_capacity(capacity: usize) -> VecSink {
        VecSink {
            records: Vec::with_capacity(capacity),
        }
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    fn snapshot(&self) -> Vec<TraceRecord> {
        let mut out = self.records.clone();
        canonical_sort(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn rec(time_us: u64, replica: u32, seq: u64) -> TraceRecord {
        TraceRecord {
            time_us,
            replica,
            seq,
            request: None,
            event: TraceEvent::FirstToken,
        }
    }

    #[test]
    fn null_sink_is_disabled_and_empty() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(rec(1, 0, 0));
        assert!(s.snapshot().is_empty());
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_per_replica() {
        let mut s = RingSink::new(3);
        for seq in 0..5 {
            s.record(rec(seq * 10, 0, seq));
        }
        // Replica 1 stays under capacity: nothing dropped there.
        s.record(rec(7, 1, 0));
        let snap = s.snapshot();
        assert_eq!(s.dropped(), 2);
        let kept: Vec<(u32, u64)> = snap.iter().map(|r| (r.replica, r.seq)).collect();
        // Replica 0 keeps its three *newest* records (seq 2, 3, 4).
        assert_eq!(kept, vec![(1, 0), (0, 2), (0, 3), (0, 4)]);
    }

    #[test]
    fn ring_drop_counts_are_per_replica() {
        let mut s = RingSink::new(2);
        // Replica 0 overflows by 3, replica 2 by 1, replica 1 not at all.
        for seq in 0..5 {
            s.record(rec(seq, 0, seq));
        }
        for seq in 0..2 {
            s.record(rec(seq, 1, seq));
        }
        for seq in 0..3 {
            s.record(rec(seq, 2, seq));
        }
        assert_eq!(s.dropped(), 4);
        let by_replica = s.dropped_by_replica();
        assert_eq!(by_replica.get(&0), Some(&3));
        assert_eq!(by_replica.get(&2), Some(&1));
        // Replicas without drops are omitted, not reported as zero.
        assert!(!by_replica.contains_key(&1));
        // Sinks without per-replica accounting report an empty map.
        let mut v = VecSink::new();
        v.record(rec(0, 0, 0));
        assert!(v.dropped_by_replica().is_empty());
    }

    #[test]
    fn ring_never_reallocates_after_warmup() {
        let mut s = RingSink::new(4);
        s.record(rec(0, 0, 0));
        let ptr_before = s.rings[&0].buf.as_ptr();
        let cap_before = s.rings[&0].buf.capacity();
        for seq in 1..50 {
            s.record(rec(seq, 0, seq));
        }
        assert_eq!(s.rings[&0].buf.as_ptr(), ptr_before);
        assert_eq!(s.rings[&0].buf.capacity(), cap_before);
    }

    #[test]
    fn snapshot_is_canonically_ordered_across_replicas() {
        let mut s = VecSink::new();
        s.record(rec(50, 1, 0));
        s.record(rec(10, 1, 1)); // out-of-order stamp still sorts by time
        s.record(rec(50, 0, 0));
        let snap = s.snapshot();
        let key: Vec<(u64, u32)> = snap.iter().map(|r| (r.time_us, r.replica)).collect();
        assert_eq!(key, vec![(10, 1), (50, 0), (50, 1)]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut s = RingSink::new(0);
        assert_eq!(s.capacity_per_replica(), 1);
        s.record(rec(1, 0, 0));
        s.record(rec(2, 0, 1));
        assert_eq!(s.snapshot().len(), 1);
        assert_eq!(s.dropped(), 1);
    }
}
