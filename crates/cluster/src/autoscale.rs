//! SLO-feedback autoscaling: a hysteresis controller on windowed
//! per-tier attainment and queue pressure.
//!
//! The paper's diurnal experiment (fig12) runs a *fixed* fleet sized for
//! peak load; the elastic control plane instead sizes the fleet from two
//! deterministic signals sampled every [`AutoscaleConfig::control_interval`]:
//!
//! * **attainment** — the worst per-tier fraction of requests that
//!   completed inside their SLO over the trailing
//!   [`AutoscaleConfig::window`]. The *minimum* across tiers is used so
//!   a fleet that serves paid tiers while starving the free tier still
//!   reads as under-provisioned — pooling capacity across QoS classes is
//!   the whole point of breaking the silos.
//! * **queue pressure** — mean queued tokens per serving replica, a
//!   leading indicator that fires before attainment degrades (attainment
//!   is a trailing, windowed signal).
//!
//! # Hysteresis contract
//!
//! Scale-up pressure (`attainment < scale_up_below` **or**
//! `queue > queue_high_tokens`) and scale-down calm
//! (`attainment > scale_down_above` **and** `queue < queue_low_tokens`)
//! are *mutually exclusive by construction*: [`AutoscaleConfig::normalized`]
//! clamps `scale_up_below <= scale_down_above` and
//! `queue_low_tokens <= queue_high_tokens`, so no single observation can
//! argue both directions. On top of that, decisions require a streak of
//! consecutive agreeing observations (`up_streak` / `down_streak`) and
//! respect a post-action `cooldown`, so a constant load can never make
//! the controller flap — a property pinned by proptest below.
//!
//! The controller is a pure state machine over explicit
//! [`ControlObservation`]s: it never reads a clock or RNG, so autoscale
//! decisions replay bit-identically inside the deterministic sim.

use qoserve_sim::{SimDuration, SimTime};

/// Autoscaler thresholds and cadence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// How often the controller samples signals and may act.
    pub control_interval: SimDuration,
    /// Trailing window over which per-tier attainment is computed.
    pub window: SimDuration,
    /// Fleet floor: scale-down never drains below this many serving
    /// replicas.
    pub min_replicas: u32,
    /// Fleet ceiling: scale-up never provisions beyond this.
    pub max_replicas: u32,
    /// Scale up when the worst per-tier attainment falls below this.
    pub scale_up_below: f64,
    /// Scale down only when the worst per-tier attainment is above this
    /// (must be `>= scale_up_below`; [`normalized`](Self::normalized)
    /// enforces it).
    pub scale_down_above: f64,
    /// Scale up when queued tokens per serving replica exceed this.
    pub queue_high_tokens: u64,
    /// Scale down only when queued tokens per serving replica are below
    /// this (must be `<= queue_high_tokens`).
    pub queue_low_tokens: u64,
    /// Consecutive pressured observations required before scaling up.
    pub up_streak: u32,
    /// Consecutive calm observations required before scaling down
    /// (larger than `up_streak` by default: adding capacity is cheap,
    /// removing it risks SLOs).
    pub down_streak: u32,
    /// Minimum simulated time between consecutive scale actions.
    pub cooldown: SimDuration,
    /// Replicas added or drained per action.
    pub step: u32,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            control_interval: SimDuration::from_secs(15),
            window: SimDuration::from_secs(60),
            min_replicas: 1,
            max_replicas: 8,
            scale_up_below: 0.97,
            scale_down_above: 0.995,
            queue_high_tokens: 40_000,
            queue_low_tokens: 8_000,
            up_streak: 2,
            down_streak: 4,
            cooldown: SimDuration::from_secs(60),
            step: 1,
        }
    }
}

impl AutoscaleConfig {
    /// Returns a copy with the hysteresis invariants enforced:
    /// `scale_up_below <= scale_down_above`,
    /// `queue_low_tokens <= queue_high_tokens`, `min <= max`, and
    /// streaks/step at least 1. All controller entry points normalize, so
    /// a hand-built config can never make pressure and calm overlap.
    pub fn normalized(mut self) -> Self {
        if self.scale_down_above < self.scale_up_below {
            self.scale_down_above = self.scale_up_below;
        }
        if self.queue_low_tokens > self.queue_high_tokens {
            self.queue_low_tokens = self.queue_high_tokens;
        }
        if self.max_replicas < self.min_replicas {
            self.max_replicas = self.min_replicas;
        }
        self.min_replicas = self.min_replicas.max(1);
        self.max_replicas = self.max_replicas.max(self.min_replicas);
        self.up_streak = self.up_streak.max(1);
        self.down_streak = self.down_streak.max(1);
        self.step = self.step.max(1);
        self
    }
}

/// One sampled control-plane observation, taken at a controller tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlObservation {
    /// Worst per-tier SLO attainment over the trailing window, in
    /// `[0, 1]`. Windows with no completions report `1.0` (no evidence
    /// of trouble is not evidence of trouble).
    pub attainment: f64,
    /// Mean queued tokens per serving replica.
    pub queue_tokens_per_replica: u64,
    /// Total queued tokens across the fleet. The controller compares
    /// consecutive totals to tell a backlog that is already draining
    /// (queue high but shrinking — capacity is adequate, adding more
    /// would idle) from genuine under-capacity (queue high and not
    /// shrinking).
    pub queue_tokens: u64,
    /// Replicas currently serving.
    pub serving: u32,
    /// Replicas currently provisioning or warming (counted as incoming
    /// capacity so the controller does not double-scale while waiting
    /// for warm-up).
    pub warming: u32,
}

/// What the controller decided at a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutoscaleDecision {
    /// No action this tick.
    Hold,
    /// Provision this many new replicas.
    Up(u32),
    /// Gracefully drain this many serving replicas.
    Down(u32),
}

/// The hysteresis controller. Feed it one [`ControlObservation`] per
/// control interval via [`tick`](Self::tick); it returns an
/// [`AutoscaleDecision`].
#[derive(Debug, Clone)]
pub struct AutoscaleController {
    config: AutoscaleConfig,
    pressured: u32,
    calm: u32,
    last_action_at: Option<SimTime>,
    last_queue: Option<u64>,
}

impl AutoscaleController {
    /// Builds a controller; the config is [`normalized`](AutoscaleConfig::normalized).
    pub fn new(config: AutoscaleConfig) -> Self {
        AutoscaleController {
            config: config.normalized(),
            pressured: 0,
            calm: 0,
            last_action_at: None,
            last_queue: None,
        }
    }

    /// The (normalized) config this controller runs.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.config
    }

    /// Whether this observation argues for more capacity. A high queue
    /// only counts while it is not shrinking: a backlog left over from a
    /// burst already absorbed by a previous scale-up drains monotonically
    /// and must not trigger a second, idle-bound replica.
    fn pressure(&self, obs: &ControlObservation, queue_growing: bool) -> bool {
        obs.attainment < self.config.scale_up_below
            || (obs.queue_tokens_per_replica > self.config.queue_high_tokens && queue_growing)
    }

    /// Whether this observation argues capacity is safely excess.
    fn is_calm(&self, obs: &ControlObservation) -> bool {
        obs.attainment > self.config.scale_down_above
            && obs.queue_tokens_per_replica < self.config.queue_low_tokens
    }

    /// Processes one observation taken at `now`; returns the decision.
    ///
    /// Streak counters reset whenever the signal flips direction, and a
    /// decision other than [`AutoscaleDecision::Hold`] resets both
    /// streaks and starts the cooldown clock.
    pub fn tick(&mut self, now: SimTime, obs: &ControlObservation) -> AutoscaleDecision {
        let queue_growing = self.last_queue.is_none_or(|prev| obs.queue_tokens >= prev);
        self.last_queue = Some(obs.queue_tokens);
        let pressure = self.pressure(obs, queue_growing);
        let calm = self.is_calm(obs);
        debug_assert!(
            !(pressure && calm),
            "normalized thresholds make pressure and calm exclusive"
        );
        if pressure {
            self.pressured += 1;
            self.calm = 0;
        } else if calm {
            self.calm += 1;
            self.pressured = 0;
        } else {
            self.pressured = 0;
            self.calm = 0;
        }
        if let Some(at) = self.last_action_at {
            if now.duration_since(at) < self.config.cooldown {
                return AutoscaleDecision::Hold;
            }
        }
        // Provisioning/warming replicas count as incoming capacity so a
        // pressured window does not trigger a second scale-up while the
        // first is still warming.
        let incoming = obs.serving.saturating_add(obs.warming);
        if self.pressured >= self.config.up_streak && incoming < self.config.max_replicas {
            let step = self
                .config
                .step
                .min(self.config.max_replicas.saturating_sub(incoming));
            self.pressured = 0;
            self.calm = 0;
            self.last_action_at = Some(now);
            return AutoscaleDecision::Up(step);
        }
        if self.calm >= self.config.down_streak && obs.serving > self.config.min_replicas {
            let step = self
                .config
                .step
                .min(obs.serving.saturating_sub(self.config.min_replicas));
            self.pressured = 0;
            self.calm = 0;
            self.last_action_at = Some(now);
            return AutoscaleDecision::Down(step);
        }
        AutoscaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(attainment: f64, queue: u64, serving: u32, warming: u32) -> ControlObservation {
        ControlObservation {
            attainment,
            queue_tokens_per_replica: queue,
            // A flat repeated total reads as "not shrinking", so constant
            // pressure sequences exercise the up path.
            queue_tokens: queue.saturating_mul(u64::from(serving.max(1))),
            serving,
            warming,
        }
    }

    fn ticked(
        c: &mut AutoscaleController,
        ticks: u32,
        o: ControlObservation,
    ) -> Vec<AutoscaleDecision> {
        let interval = c.config().control_interval;
        (0..ticks)
            .map(|i| c.tick(SimTime::ZERO + interval * ((i + 1) as u64), &o))
            .collect()
    }

    #[test]
    fn scales_up_after_streak_of_pressure() {
        let mut c = AutoscaleController::new(AutoscaleConfig::default());
        let bad = obs(0.90, 0, 2, 0);
        let decisions = ticked(&mut c, 2, bad);
        assert_eq!(
            decisions,
            vec![AutoscaleDecision::Hold, AutoscaleDecision::Up(1)],
            "second pressured tick fires the scale-up"
        );
    }

    #[test]
    fn queue_pressure_alone_scales_up() {
        let mut c = AutoscaleController::new(AutoscaleConfig::default());
        let queued = obs(1.0, 100_000, 2, 0);
        assert_eq!(
            ticked(&mut c, 2, queued).last(),
            Some(&AutoscaleDecision::Up(1))
        );
    }

    #[test]
    fn scales_down_after_longer_calm_streak() {
        let mut c = AutoscaleController::new(AutoscaleConfig::default());
        let idle = obs(1.0, 0, 4, 0);
        let decisions = ticked(&mut c, 4, idle);
        assert_eq!(decisions[..3], vec![AutoscaleDecision::Hold; 3]);
        assert_eq!(decisions[3], AutoscaleDecision::Down(1));
    }

    #[test]
    fn respects_fleet_bounds() {
        let mut c = AutoscaleController::new(AutoscaleConfig {
            min_replicas: 2,
            max_replicas: 3,
            ..AutoscaleConfig::default()
        });
        // Already at the ceiling (serving + warming): no scale-up.
        assert!(ticked(&mut c, 4, obs(0.5, 100_000, 2, 1))
            .iter()
            .all(|d| *d == AutoscaleDecision::Hold));
        // At the floor: no scale-down.
        let mut c = AutoscaleController::new(AutoscaleConfig {
            min_replicas: 2,
            max_replicas: 3,
            ..AutoscaleConfig::default()
        });
        assert!(ticked(&mut c, 8, obs(1.0, 0, 2, 0))
            .iter()
            .all(|d| *d == AutoscaleDecision::Hold));
    }

    #[test]
    fn cooldown_blocks_back_to_back_actions() {
        let config = AutoscaleConfig::default();
        let mut c = AutoscaleController::new(config);
        let interval = config.control_interval;
        let bad = obs(0.5, 0, 1, 0);
        assert_eq!(
            c.tick(SimTime::ZERO + interval, &bad),
            AutoscaleDecision::Hold
        );
        assert_eq!(
            c.tick(SimTime::ZERO + interval * 2, &bad),
            AutoscaleDecision::Up(1)
        );
        // Still inside the 60s cooldown at t=45/60s: streaks accumulate
        // but no action fires.
        assert_eq!(
            c.tick(SimTime::ZERO + interval * 3, &bad),
            AutoscaleDecision::Hold
        );
        assert_eq!(
            c.tick(SimTime::ZERO + interval * 4, &bad),
            AutoscaleDecision::Hold
        );
        // Cooldown elapsed and the streak is satisfied again.
        assert_eq!(
            c.tick(SimTime::ZERO + interval * 6, &bad),
            AutoscaleDecision::Up(1)
        );
    }

    #[test]
    fn warming_capacity_suppresses_double_scale_up() {
        let mut c = AutoscaleController::new(AutoscaleConfig {
            max_replicas: 3,
            ..AutoscaleConfig::default()
        });
        // 2 serving + 1 warming == 3 incoming == max: hold even under
        // sustained pressure.
        assert!(ticked(&mut c, 6, obs(0.5, 100_000, 2, 1))
            .iter()
            .all(|d| *d == AutoscaleDecision::Hold));
    }

    #[test]
    fn draining_backlog_never_triggers_second_up() {
        // The growth gate's defining behaviour: a queue above the high
        // watermark that shrinks tick over tick is a draining backlog,
        // not pressure — the controller must hold.
        let mut c = AutoscaleController::new(AutoscaleConfig {
            queue_high_tokens: 10_000,
            up_streak: 1,
            cooldown: SimDuration::ZERO,
            max_replicas: 8,
            ..AutoscaleConfig::default()
        });
        let mut now = SimTime::ZERO;
        let interval = c.config().control_interval;
        let mut queue_total: u64 = 400_000;
        // First tick: no previous sample, so a high queue counts as
        // growing and fires the up path.
        now += interval;
        let first = c.tick(
            now,
            &ControlObservation {
                attainment: 1.0,
                queue_tokens_per_replica: queue_total / 2,
                queue_tokens: queue_total,
                serving: 2,
                warming: 0,
            },
        );
        assert!(matches!(first, AutoscaleDecision::Up(_)));
        // Strictly shrinking afterwards: always Hold, however high the
        // level still is.
        for _ in 0..20 {
            now += interval;
            queue_total -= 15_000;
            let d = c.tick(
                now,
                &ControlObservation {
                    attainment: 1.0,
                    queue_tokens_per_replica: queue_total / 3,
                    queue_tokens: queue_total,
                    serving: 3,
                    warming: 0,
                },
            );
            assert_eq!(
                d,
                AutoscaleDecision::Hold,
                "draining backlog must not scale up"
            );
        }
    }

    #[test]
    fn normalized_clamps_inverted_thresholds() {
        let c = AutoscaleConfig {
            scale_up_below: 0.99,
            scale_down_above: 0.90,
            queue_high_tokens: 10,
            queue_low_tokens: 100,
            min_replicas: 5,
            max_replicas: 2,
            up_streak: 0,
            down_streak: 0,
            step: 0,
            ..AutoscaleConfig::default()
        }
        .normalized();
        assert!(c.scale_down_above >= c.scale_up_below);
        assert!(c.queue_low_tokens <= c.queue_high_tokens);
        assert!(c.max_replicas >= c.min_replicas);
        assert!(c.up_streak >= 1 && c.down_streak >= 1 && c.step >= 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Hysteresis stability: under any *constant* observation the
            /// controller never emits both an Up and a Down over a long
            /// run — constant load cannot make the fleet flap.
            #[test]
            fn constant_load_never_flaps(
                attainment in 0.0f64..=1.0,
                queue in 0u64..200_000,
                serving in 1u32..16,
                warming in 0u32..4,
                up_below in 0.5f64..=1.0,
                down_above in 0.5f64..=1.0,
                q_hi in 0u64..100_000,
                q_lo in 0u64..100_000,
            ) {
                let config = AutoscaleConfig {
                    scale_up_below: up_below,
                    scale_down_above: down_above,
                    queue_high_tokens: q_hi,
                    queue_low_tokens: q_lo,
                    max_replicas: 32,
                    ..AutoscaleConfig::default()
                };
                let mut c = AutoscaleController::new(config);
                let o = ControlObservation {
                    attainment,
                    queue_tokens_per_replica: queue,
                    queue_tokens: queue.saturating_mul(u64::from(serving.max(1))),
                    serving,
                    warming,
                };
                let interval = c.config().control_interval;
                let mut saw_up = false;
                let mut saw_down = false;
                let mut now = SimTime::ZERO;
                for _ in 0..200 {
                    now += interval;
                    match c.tick(now, &o) {
                        AutoscaleDecision::Up(_) => saw_up = true,
                        AutoscaleDecision::Down(_) => saw_down = true,
                        AutoscaleDecision::Hold => {}
                    }
                }
                prop_assert!(
                    !(saw_up && saw_down),
                    "constant observation produced both scale directions"
                );
            }

            /// Decisions never violate the configured fleet bounds.
            #[test]
            fn steps_respect_bounds(
                serving in 1u32..16,
                warming in 0u32..4,
                min in 1u32..4,
                max in 4u32..16,
                step in 1u32..8,
            ) {
                let config = AutoscaleConfig {
                    min_replicas: min,
                    max_replicas: max,
                    step,
                    up_streak: 1,
                    down_streak: 1,
                    cooldown: SimDuration::ZERO,
                    ..AutoscaleConfig::default()
                };
                let mut up_c = AutoscaleController::new(config);
                let pressured = ControlObservation {
                    attainment: 0.0,
                    queue_tokens_per_replica: u64::MAX,
                    queue_tokens: u64::MAX,
                    serving,
                    warming,
                };
                if let AutoscaleDecision::Up(n) =
                    up_c.tick(SimTime::from_secs(15), &pressured)
                {
                    prop_assert!(serving + warming + n <= up_c.config().max_replicas);
                }
                let mut down_c = AutoscaleController::new(config);
                let idle = ControlObservation {
                    attainment: 1.0,
                    queue_tokens_per_replica: 0,
                    queue_tokens: 0,
                    serving,
                    warming,
                };
                if let AutoscaleDecision::Down(n) =
                    down_c.tick(SimTime::from_secs(15), &idle)
                {
                    prop_assert!(serving - n >= down_c.config().min_replicas);
                }
            }
        }
    }
}
