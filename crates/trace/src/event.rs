//! The closed event taxonomy and the canonical record order.

use serde::{Deserialize, Serialize};

/// Sentinel tier id for the relegation target: relegated work forfeits
/// its deadlines and runs best-effort, which no real QoS tier models.
pub const RELEGATED_TIER: u8 = u8::MAX;

/// Why eager relegation demoted a request (§3.4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RelegationReason {
    /// The urgency deadline already passed (or passes this iteration).
    DeadlinePassed,
    /// Hopeless even if scheduled immediately with the whole budget.
    Hopeless,
    /// Low-priority work shed under overload to protect important jobs.
    OverloadShed,
}

/// Circuit-breaker phases (mirrors `BreakerState` in `qoserve-cluster`;
/// duplicated here as plain data so the trace crate stays a leaf).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum BreakerPhase {
    /// Healthy: re-dispatches flow to the replica.
    Closed,
    /// Unhealthy: re-dispatches are diverted.
    Open,
    /// Cooldown matured: one probe window decides close vs re-open.
    HalfProbe,
}

/// What kind of fault fired.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultKind {
    /// The replica crashed (KV state lost, running work orphaned).
    Crash,
    /// A slowdown window inflated this iteration's latency.
    Slowdown,
}

/// Which way a scale decision moved the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ScaleDirection {
    /// Provision a new replica.
    Up,
    /// Drain and retire a replica.
    Down,
}

/// One decision or lifecycle event. `Copy` by construction — no payload
/// allocates, so ring capture is allocation-free after warm-up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum TraceEvent {
    /// A request was delivered to the scheduler.
    RequestArrived {
        /// Prompt length.
        prompt_tokens: u32,
        /// Expected decode length.
        decode_tokens: u32,
        /// QoS tier id.
        tier: u8,
        /// Absolute urgency deadline (TTFT for interactive tiers).
        deadline_us: u64,
    },
    /// The request's prefill completed (first token emitted).
    FirstToken,
    /// The request finished; payload carries the SLO verdict so forensic
    /// replay needs no side-channel outcome file.
    RequestCompleted {
        /// Whether the request violated its SLO.
        violated: bool,
        /// Worst per-token lateness (negative = always early).
        worst_lateness_us: i64,
        /// Largest observed time-between-tokens.
        max_tbt_us: u64,
        /// Whether the request was relegated along the way.
        relegated: bool,
    },
    /// Dynamic chunking picked this iteration's prefill token budget.
    ChunkBudgetChosen {
        /// The chosen budget in tokens.
        budget: u32,
        /// Raw (unmargined) predicted iteration latency at that budget.
        predicted_us: f64,
        /// Safety margin the search applied.
        margin: f64,
        /// Whether the search was served entirely from the memo cache.
        cache_hit: bool,
    },
    /// Hybrid EDF↔SRPF prioritization scored an arriving request (Eq. 4/5).
    PriorityScored {
        /// Deadline term (absolute urgency deadline, µs).
        edf_term: f64,
        /// Remaining-work term (α · work tokens, µs).
        srpf_term: f64,
        /// The blending coefficient α (µs per token).
        alpha: f64,
    },
    /// Eager relegation demoted a request to best-effort.
    Relegated {
        /// Tier the request held before demotion.
        from_tier: u8,
        /// Always [`RELEGATED_TIER`]: deadlines forfeit, best-effort.
        to_tier: u8,
        /// Which relegation predicate fired.
        reason: RelegationReason,
    },
    /// The deadline-aware admission gate bounced a provably-late request.
    AdmissionRejected {
        /// Estimated service time under current drift conditions.
        estimated_service_us: u64,
        /// The deadline the estimate provably overshoots.
        deadline_us: u64,
    },
    /// A replica circuit breaker changed state.
    BreakerTransition {
        /// Phase before.
        from: BreakerPhase,
        /// Phase after.
        to: BreakerPhase,
    },
    /// The adaptive controller moved the chunk-budget safety margin.
    MarginAdjusted {
        /// The new margin.
        margin: f64,
        /// Whether the sticky forest→analytical fallback is engaged.
        fallback: bool,
    },
    /// A scheduled fault fired.
    FaultInjected {
        /// Crash or slowdown.
        kind: FaultKind,
        /// Latency multiplier (1.0 for crashes).
        slowdown: f64,
    },
    /// The recovery orchestrator re-dispatched crash-orphaned work.
    OrphanRedispatched {
        /// Replica the work died on.
        from_replica: u32,
        /// Replica it was re-submitted to.
        to_replica: u32,
        /// 1-based re-dispatch attempt.
        attempt: u32,
    },
    /// The elastic control plane changed the provisioned fleet size
    /// (stamped on the replica being added or drained).
    ScaleDecision {
        /// Up (provision) or down (drain).
        direction: ScaleDirection,
        /// Provisioned replicas before the decision.
        fleet_before: u32,
        /// Provisioned replicas after the decision.
        fleet_after: u32,
    },
    /// A graceful drain began: admission stopped on this replica.
    DrainStarted {
        /// Absolute deadline by which running work must finish.
        deadline_us: u64,
    },
    /// A graceful drain finished; unfinished work was handed to the
    /// orphan re-dispatch path.
    DrainFinished {
        /// Requests migrated off the replica.
        migrated: u32,
        /// Whether the deadline fired with work still running (KV state
        /// of in-flight requests was discarded, costing re-prefill).
        deadline_hit: bool,
    },
    /// A provisioned replica finished model-load warm-up and joined the
    /// serving set.
    WarmupComplete {
        /// Provision + warm-up time spent before the first request.
        warmup_us: u64,
    },
    /// One engine iteration ran (stamped at the iteration's *start*).
    IterationExecuted {
        /// Total scheduled tokens (prefill chunk + decodes).
        batch_tokens: u32,
        /// Prefill tokens in the batch.
        prefill_tokens: u32,
        /// Decode requests in the batch.
        num_decodes: u32,
        /// Observed (noised, possibly degraded) execution time.
        observed_us: u64,
    },
}

impl TraceEvent {
    /// Stable lowercase name matching the serialized `type` tag.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::RequestArrived { .. } => "request_arrived",
            TraceEvent::FirstToken => "first_token",
            TraceEvent::RequestCompleted { .. } => "request_completed",
            TraceEvent::ChunkBudgetChosen { .. } => "chunk_budget_chosen",
            TraceEvent::PriorityScored { .. } => "priority_scored",
            TraceEvent::Relegated { .. } => "relegated",
            TraceEvent::AdmissionRejected { .. } => "admission_rejected",
            TraceEvent::BreakerTransition { .. } => "breaker_transition",
            TraceEvent::MarginAdjusted { .. } => "margin_adjusted",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::OrphanRedispatched { .. } => "orphan_redispatched",
            TraceEvent::ScaleDecision { .. } => "scale_decision",
            TraceEvent::DrainStarted { .. } => "drain_started",
            TraceEvent::DrainFinished { .. } => "drain_finished",
            TraceEvent::WarmupComplete { .. } => "warmup_complete",
            TraceEvent::IterationExecuted { .. } => "iteration_executed",
        }
    }
}

/// One captured event with its deterministic stamps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulated time in microseconds (never wall clock).
    pub time_us: u64,
    /// Replica the event belongs to (orchestrator events use the replica
    /// they act on).
    pub replica: u32,
    /// Per-replica sequence number, assigned in program order — the
    /// tie-breaker that makes the canonical order total.
    pub seq: u64,
    /// Request id, when the event concerns a single request.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub request: Option<u64>,
    /// The event payload.
    #[serde(flatten)]
    pub event: TraceEvent,
}

/// Sorts records into the canonical `(time_us, replica, seq)` order.
///
/// Per-replica streams are emitted in deterministic program order with
/// nondecreasing stamps, so this total order is independent of how
/// replica threads interleaved their writes into a shared sink.
pub fn canonical_sort(records: &mut [TraceRecord]) {
    records.sort_unstable_by_key(|r| (r.time_us, r.replica, r.seq));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(time_us: u64, replica: u32, seq: u64) -> TraceRecord {
        TraceRecord {
            time_us,
            replica,
            seq,
            request: None,
            event: TraceEvent::FirstToken,
        }
    }

    #[test]
    fn canonical_order_is_time_then_replica_then_seq() {
        let mut v = vec![rec(5, 1, 0), rec(5, 0, 1), rec(1, 2, 0), rec(5, 0, 0)];
        canonical_sort(&mut v);
        let key: Vec<(u64, u32, u64)> = v.iter().map(|r| (r.time_us, r.replica, r.seq)).collect();
        assert_eq!(key, vec![(1, 2, 0), (5, 0, 0), (5, 0, 1), (5, 1, 0)]);
    }

    #[test]
    fn events_are_copy_and_small() {
        // The ring pre-allocates `TraceRecord`s; keep them registers-cheap.
        assert!(std::mem::size_of::<TraceRecord>() <= 96);
        let e = TraceEvent::FirstToken;
        let _copy1 = e;
        let _copy2 = e;
    }

    #[test]
    fn serde_round_trips_with_type_tag() {
        let r = TraceRecord {
            time_us: 1_500,
            replica: 3,
            seq: 7,
            request: Some(42),
            event: TraceEvent::ChunkBudgetChosen {
                budget: 1024,
                predicted_us: 2_500.0,
                margin: 0.06,
                cache_hit: true,
            },
        };
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"type\":\"chunk_budget_chosen\""), "{json}");
        assert!(json.contains("\"request\":42"), "{json}");
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // `request: None` is omitted entirely, and round-trips.
        let r2 = TraceRecord { request: None, ..r };
        let json2 = serde_json::to_string(&r2).unwrap();
        assert!(!json2.contains("request"), "{json2}");
        assert_eq!(serde_json::from_str::<TraceRecord>(&json2).unwrap(), r2);
    }

    #[test]
    fn names_match_serialized_tags() {
        for (event, name) in [
            (TraceEvent::FirstToken, "first_token"),
            (
                TraceEvent::Relegated {
                    from_tier: 1,
                    to_tier: RELEGATED_TIER,
                    reason: RelegationReason::Hopeless,
                },
                "relegated",
            ),
            (
                TraceEvent::BreakerTransition {
                    from: BreakerPhase::Closed,
                    to: BreakerPhase::Open,
                },
                "breaker_transition",
            ),
            (
                TraceEvent::ScaleDecision {
                    direction: ScaleDirection::Up,
                    fleet_before: 2,
                    fleet_after: 3,
                },
                "scale_decision",
            ),
            (
                TraceEvent::DrainStarted {
                    deadline_us: 30_000_000,
                },
                "drain_started",
            ),
            (
                TraceEvent::DrainFinished {
                    migrated: 4,
                    deadline_hit: true,
                },
                "drain_finished",
            ),
            (
                TraceEvent::WarmupComplete {
                    warmup_us: 30_000_000,
                },
                "warmup_complete",
            ),
        ] {
            assert_eq!(event.name(), name);
            let json = serde_json::to_string(&event).unwrap();
            assert!(json.contains(&format!("\"type\":\"{name}\"")), "{json}");
        }
    }
}
