//! Autoscale sweep: fixed-for-peak vs elastic fleet on the fig12 diurnal
//! wave.
//!
//! Replays the fig12 workload (3 ↔ 8 QPS square wave, Az-Code, 20 %
//! low-priority) against three fleets: a fixed fleet sized for the peak,
//! a fixed fleet sized for the trough, and an elastic fleet driven by the
//! SLO-feedback autoscaler. The comparison the control plane has to win:
//! match the peak fleet's per-tier SLO attainment while spending
//! meaningfully fewer replica-hours, where the trough fleet shows what
//! those saved hours would cost without elasticity.

use qoserve::experiments::scale_factor;
use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results};
use qoserve_metrics::SloReport;

/// Per-tier SLO attainment (fraction in [0, 1]) of one run's outcomes.
fn tier_attainment(report: &SloReport, tier: TierId) -> f64 {
    1.0 - report.tier_violation_pct(tier) / 100.0
}

fn main() {
    banner(
        "autoscale_sweep",
        "Fixed vs elastic fleet on the diurnal wave (Az-Code, Llama3-8B)",
    );

    // The fig12 workload, verbatim (same shape, same seed).
    let scale = scale_factor();
    let half_period = SimDuration::from_secs_f64(900.0 * scale.clamp(0.2, 1.0));
    let total = half_period * 8;
    let trace = TraceBuilder::new(Dataset::azure_code())
        .arrivals(ArrivalProcess::DiurnalSquare {
            low_qps: 3.0,
            high_qps: 8.0,
            half_period,
        })
        .duration(total)
        .paper_tier_mix()
        .low_priority_fraction(0.2)
        .build(&SeedStream::new(12));
    println!(
        "trace: {} requests over {} (8 phases of {})\n",
        trace.len(),
        total,
        half_period
    );

    let hw = HardwareConfig::llama3_8b_a100_tp1();
    let config = ClusterConfig::new(hw.clone());
    let scheme = SchedulerSpec::qoserve();
    let threshold = trace.long_prompt_threshold();
    // One replica serves ~5.5-6 QPS, so the 8-QPS peak needs 2 replicas
    // and the 3-QPS trough needs 1 — the elasticity headroom is a factor
    // of two, same as the paper's peak-to-trough capacity argument.
    let peak_fleet = 2u32;
    let trough_fleet = 1u32;

    // Responsive control loop: queue pressure (a leading signal — it
    // fires within one tick of a burst) does the scale-up work; the
    // calm streak does conservative scale-down in the troughs. The
    // watermarks are sized in whole prompts: Az-Code prompts run to
    // several thousand tokens each, so a high watermark of a couple of
    // prompts would fire on one unlucky arrival, and a low watermark
    // below one prompt would reset the calm streak every time a single
    // request happens to be queued at the sample instant.
    let autoscale = AutoscaleConfig {
        control_interval: SimDuration::from_secs(15),
        window: SimDuration::from_secs(60),
        min_replicas: trough_fleet,
        max_replicas: peak_fleet + 1,
        queue_high_tokens: 12_000,
        queue_low_tokens: 3_000,
        up_streak: 2,
        down_streak: 4,
        cooldown: SimDuration::from_secs(45),
        ..AutoscaleConfig::default()
    };
    let elastic = ElasticPlan {
        lifecycle: LifecycleConfig {
            provision_delay: SimDuration::from_secs(5),
            warmup: SimDuration::from_secs(10),
            drain_grace: SimDuration::from_secs(30),
        },
        max_replicas: peak_fleet + 1,
        schedule: Vec::new(),
        autoscale: Some(autoscale),
    };

    let total_hours = total.as_secs_f64() / 3_600.0;
    let mut table = Table::new(vec![
        "fleet",
        "replica-hours",
        "overall viol.",
        "Q1 att.",
        "Q2 att.",
        "Q3 att.",
        "scale ups",
        "scale downs",
        "drain migr.",
        "warmup (s)",
    ]);
    let mut rows: Vec<serde_json::Value> = Vec::new();
    let mut record = |label: &str,
                      outcomes: &[RequestOutcome],
                      stats: &FaultRunStats,
                      replica_hours: f64,
                      fleet_log: Option<&[(SimTime, u32)]>| {
        let report = SloReport::compute(outcomes, threshold);
        let atts: Vec<f64> = [TierId::Q1, TierId::Q2, TierId::Q3]
            .iter()
            .map(|&t| tier_attainment(&report, t))
            .collect();
        table.row(vec![
            label.to_owned(),
            format!("{replica_hours:.2}"),
            format!("{:.2}%", report.violation_pct()),
            format!("{:.3}", atts[0]),
            format!("{:.3}", atts[1]),
            format!("{:.3}", atts[2]),
            stats.scale_ups.to_string(),
            stats.scale_downs.to_string(),
            stats.drain_migrated.to_string(),
            format!("{:.0}", stats.warmup_wasted_us as f64 / 1e6),
        ]);
        rows.push(serde_json::json!({
            "fleet": label,
            "replica_hours": replica_hours,
            "violation_pct": report.violation_pct(),
            "important_violation_pct": report.important_violation_pct(),
            "q1_attainment": atts[0],
            "q2_attainment": atts[1],
            "q3_attainment": atts[2],
            "scale_ups": stats.scale_ups,
            "scale_downs": stats.scale_downs,
            "drain_migrated": stats.drain_migrated,
            "warmup_wasted_us": stats.warmup_wasted_us,
            "fleet_steps": fleet_log.map(|log| {
                log.iter()
                    .map(|(at, size)| serde_json::json!([at.as_micros(), size]))
                    .collect::<Vec<_>>()
            }),
        }));
        eprintln!("  done: {label}");
        atts.iter().cloned().fold(f64::INFINITY, f64::min)
    };

    // Fixed fleets run the plain fault path (no faults injected); their
    // replica-hours are simply size x wall time.
    for (label, replicas) in [("fixed-peak", peak_fleet), ("fixed-trough", trough_fleet)] {
        let result = run_shared_faulty(
            &trace,
            replicas,
            &scheme,
            &config,
            &FaultPlan::none(),
            &SeedStream::new(12),
        )
        .expect("fixed fleet run");
        record(
            label,
            &result.outcomes,
            &result.stats,
            replicas as f64 * total_hours,
            None,
        );
    }

    let result = run_shared_elastic(
        &trace,
        peak_fleet,
        &scheme,
        &config,
        &FaultPlan::none(),
        &elastic,
        &SeedStream::new(12),
    )
    .expect("elastic fleet run");
    let elastic_hours = result.replica_us as f64 / 3.6e9;
    let worst = record(
        "elastic",
        &result.outcomes,
        &result.stats,
        elastic_hours,
        Some(&result.fleet),
    );

    print!("{table}");
    println!(
        "\nexpectation: the elastic fleet drains to {trough_fleet} replica in every \
         trough and re-provisions ahead of each burst, holding every tier at \
         >= 99% attainment (worst tier here: {worst:.3}) on ~{:.0}% of the \
         fixed-for-peak replica-hours; the fixed-trough fleet shows the \
         violation cliff those saved hours would otherwise cost.",
        100.0 * elastic_hours / (peak_fleet as f64 * total_hours),
    );
    emit_results("autoscale_sweep", &rows);
}
