//! Token-granular KV-cache accounting.
//!
//! QoServe never preempts decoding requests (§3.4) — once a request enters
//! the decode phase its KV must stay resident until completion. The cache
//! therefore tracks two quantities per request: tokens *used* (already
//! written) and tokens *reserved* (guaranteed future decode growth). New
//! prefill work is admitted only against `capacity − used − reserved`, so
//! a decode can always grow.

use std::collections::HashMap;

use qoserve_workload::RequestId;

/// KV-cache budget of one replica, in tokens.
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    capacity: u64,
    used: u64,
    reserved: u64,
    per_request: HashMap<RequestId, Allocation>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Allocation {
    used: u64,
    reserved: u64,
}

impl KvCache {
    /// Creates a cache holding `capacity_tokens` KV tokens.
    pub fn new(capacity_tokens: u64) -> Self {
        KvCache {
            capacity: capacity_tokens,
            ..Default::default()
        }
    }

    /// Total capacity in tokens.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Tokens currently written.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Tokens reserved for future decode growth.
    pub fn reserved(&self) -> u64 {
        self.reserved
    }

    /// Tokens available for *new* prefill admission.
    pub fn headroom(&self) -> u64 {
        self.capacity.saturating_sub(self.used + self.reserved)
    }

    /// Registers a request with a guaranteed future decode growth of
    /// `decode_reserve` tokens. Idempotent per id.
    pub fn admit(&mut self, id: RequestId, decode_reserve: u64) {
        let entry = self.per_request.entry(id).or_default();
        let delta = decode_reserve.saturating_sub(entry.reserved);
        entry.reserved += delta;
        self.reserved += delta;
    }

    /// Writes `tokens` of prompt KV for `id` (prefill progress). The
    /// caller must have checked [`headroom`](Self::headroom); this method
    /// tracks even over-subscription so invariants remain auditable.
    pub fn write_prefill(&mut self, id: RequestId, tokens: u64) {
        let entry = self.per_request.entry(id).or_default();
        entry.used += tokens;
        self.used += tokens;
    }

    /// Converts one token of reservation into use (a decode step).
    pub fn write_decode(&mut self, id: RequestId) {
        let entry = self.per_request.entry(id).or_default();
        entry.used += 1;
        self.used += 1;
        let consumed = entry.reserved.min(1);
        entry.reserved -= consumed;
        self.reserved -= consumed;
    }

    /// Releases everything held by `id`. Safe to call for unknown ids.
    pub fn release(&mut self, id: RequestId) {
        if let Some(a) = self.per_request.remove(&id) {
            self.used -= a.used;
            self.reserved -= a.reserved;
        }
    }

    /// Releases every allocation at once, keeping the capacity. Models a
    /// replica crash: the cache contents die with the process.
    pub fn clear(&mut self) {
        self.per_request.clear();
        self.used = 0;
        self.reserved = 0;
    }

    /// Number of requests currently holding KV.
    pub fn resident_requests(&self) -> usize {
        self.per_request.len()
    }

    /// Tokens held (used) by one request.
    pub fn used_by(&self, id: RequestId) -> u64 {
        self.per_request.get(&id).map_or(0, |a| a.used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_accounting() {
        let mut kv = KvCache::new(10_000);
        assert_eq!(kv.headroom(), 10_000);
        kv.admit(RequestId(1), 500);
        assert_eq!(kv.headroom(), 9_500);
        kv.write_prefill(RequestId(1), 2_000);
        assert_eq!(kv.used(), 2_000);
        assert_eq!(kv.headroom(), 7_500);
    }

    #[test]
    fn decode_consumes_reservation() {
        let mut kv = KvCache::new(1_000);
        kv.admit(RequestId(1), 10);
        kv.write_prefill(RequestId(1), 100);
        let headroom_before = kv.headroom();
        kv.write_decode(RequestId(1));
        // One reserved token became a used token: headroom unchanged.
        assert_eq!(kv.headroom(), headroom_before);
        assert_eq!(kv.used(), 101);
        assert_eq!(kv.reserved(), 9);
    }

    #[test]
    fn decode_beyond_reservation_still_tracks() {
        let mut kv = KvCache::new(1_000);
        kv.admit(RequestId(1), 1);
        kv.write_prefill(RequestId(1), 10);
        kv.write_decode(RequestId(1));
        kv.write_decode(RequestId(1)); // reservation exhausted
        assert_eq!(kv.used(), 12);
        assert_eq!(kv.reserved(), 0);
    }

    #[test]
    fn release_returns_everything() {
        let mut kv = KvCache::new(5_000);
        kv.admit(RequestId(1), 200);
        kv.write_prefill(RequestId(1), 1_000);
        kv.write_decode(RequestId(1));
        kv.admit(RequestId(2), 300);
        kv.write_prefill(RequestId(2), 500);

        kv.release(RequestId(1));
        assert_eq!(kv.used(), 500);
        assert_eq!(kv.reserved(), 300);
        assert_eq!(kv.resident_requests(), 1);

        kv.release(RequestId(2));
        assert_eq!(kv.headroom(), 5_000);
        assert_eq!(kv.resident_requests(), 0);
    }

    #[test]
    fn clear_releases_everything_but_keeps_capacity() {
        let mut kv = KvCache::new(5_000);
        kv.admit(RequestId(1), 200);
        kv.write_prefill(RequestId(1), 1_000);
        kv.write_prefill(RequestId(2), 500);
        kv.clear();
        assert_eq!(kv.used(), 0);
        assert_eq!(kv.reserved(), 0);
        assert_eq!(kv.resident_requests(), 0);
        assert_eq!(kv.headroom(), 5_000);
    }

    #[test]
    fn release_unknown_id_is_noop() {
        let mut kv = KvCache::new(100);
        kv.release(RequestId(99));
        assert_eq!(kv.headroom(), 100);
    }

    #[test]
    fn admit_is_idempotent() {
        let mut kv = KvCache::new(1_000);
        kv.admit(RequestId(1), 100);
        kv.admit(RequestId(1), 100);
        assert_eq!(kv.reserved(), 100);
        // Raising the reservation adds only the delta.
        kv.admit(RequestId(1), 150);
        assert_eq!(kv.reserved(), 150);
    }

    #[test]
    fn used_by_reports_per_request() {
        let mut kv = KvCache::new(1_000);
        kv.write_prefill(RequestId(3), 42);
        assert_eq!(kv.used_by(RequestId(3)), 42);
        assert_eq!(kv.used_by(RequestId(4)), 0);
    }
}
