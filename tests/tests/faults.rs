//! Fault-injection and recovery invariants, end to end.
//!
//! Three contracts are pinned here:
//!
//! 1. **Zero-fault transparency**: an all-zero fault configuration is
//!    bit-identical to the plain no-fault cluster path — the fault
//!    machinery must be invisible when disabled.
//! 2. **Determinism**: the same seed and configuration replays
//!    bit-identically — including the serialized `fault_sweep` rows —
//!    for any thread count.
//! 3. **Conservation**: no fault schedule may lose a request; every
//!    arrival ends in exactly one outcome.

use proptest::prelude::*;

use qoserve::experiments::{fault_sweep, fault_sweep_serial, FaultSweepSetup};
use qoserve::prelude::*;
use qoserve_metrics::RecoveryReport;
use qoserve_sim::par_map_threads;

fn small_setup(seed: u64) -> FaultSweepSetup {
    FaultSweepSetup {
        dataset: Dataset::azure_conv(),
        hardware: HardwareConfig::llama3_8b_a100_tp1(),
        replicas: 3,
        qps: 5.0,
        window: SimDuration::from_secs(45),
        mix: TierMix::paper_equal(),
        low_priority_fraction: 0.25,
        plan: FaultPlan::with_faults(FaultConfig::moderate()),
        seed,
    }
}

/// The machine-readable row of one sweep point, mirroring what the
/// `fault_sweep` binary writes to `results/fault_sweep.json`.
fn sweep_rows(points: &[qoserve::experiments::FaultSweepPoint]) -> String {
    let rows: Vec<serde_json::Value> = points
        .iter()
        .map(|p| {
            serde_json::json!({
                "scheme": p.scheme,
                "intensity": p.intensity,
                "violation_pct": p.report.violation_pct(),
                "stats": p.stats,
                "completion_fraction": p.recovery.overall.completion_fraction(),
            })
        })
        .collect();
    serde_json::to_string_pretty(&serde_json::json!({ "rows": rows })).unwrap()
}

#[test]
fn zero_fault_cluster_is_bit_identical_to_run_shared() {
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(6.0))
        .duration(SimDuration::from_secs(60))
        .tier_mix(TierMix::paper_equal())
        .build(&SeedStream::new(21));
    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    for (spec, replicas) in [
        (SchedulerSpec::qoserve(), 3u32),
        (SchedulerSpec::sarathi_fcfs(), 2),
        (
            SchedulerSpec::RateLimited {
                inner: Box::new(SchedulerSpec::sarathi_fcfs()),
                max_backlog_tokens: 20_000,
            },
            2,
        ),
    ] {
        let plain = run_shared(&trace, replicas, &spec, &config, &SeedStream::new(21));
        let faulty = run_shared_faulty(
            &trace,
            replicas,
            &spec,
            &config,
            &FaultPlan::none(),
            &SeedStream::new(21),
        )
        .expect("replicas > 0");
        assert_eq!(
            faulty.outcomes,
            plain,
            "{}: disabled faults must be invisible",
            spec.label()
        );
        assert_eq!(faulty.stats, FaultRunStats::default(), "{}", spec.label());
    }
}

#[test]
fn fault_sweep_is_bit_identical_to_serial_reference() {
    let setup = small_setup(33);
    let schemes = [SchedulerSpec::qoserve(), SchedulerSpec::sarathi_fcfs()];
    let intensities = [0.0, 1.0, 2.0];
    let parallel = fault_sweep(&setup, &schemes, &intensities);
    let serial = fault_sweep_serial(&setup, &schemes, &intensities);
    assert_eq!(parallel.len(), serial.len());
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.scheme, s.scheme);
        assert_eq!(p.intensity.to_bits(), s.intensity.to_bits());
        assert_eq!(p.report, s.report, "{} @ {}", p.scheme, p.intensity);
        assert_eq!(p.stats, s.stats, "{} @ {}", p.scheme, p.intensity);
        assert_eq!(p.outcomes, s.outcomes, "{} @ {}", p.scheme, p.intensity);
    }
    // The serialized artifact is byte-identical too — what
    // results/fault_sweep.json pins across runs and thread counts.
    assert_eq!(sweep_rows(&parallel), sweep_rows(&serial));
}

#[test]
fn fault_runs_are_thread_invariant() {
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(7.0))
        .duration(SimDuration::from_secs(45))
        .tier_mix(TierMix::paper_equal())
        .low_priority_fraction(0.3)
        .build(&SeedStream::new(34));
    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let plan = FaultPlan::with_faults(FaultConfig::moderate().scaled(2.0));
    let schemes = vec![SchedulerSpec::qoserve(), SchedulerSpec::sarathi_fcfs()];

    let run_all = |threads: usize| {
        par_map_threads(threads, schemes.clone(), |_, spec| {
            run_shared_faulty(&trace, 3, &spec, &config, &plan, &SeedStream::new(34))
                .expect("replicas > 0")
        })
    };
    let one = run_all(1);
    let four = run_all(4);
    assert_eq!(one, four, "thread count must never change fault runs");
}

#[test]
fn recovery_report_tallies_fault_run() {
    let setup = small_setup(35);
    let schemes = [SchedulerSpec::qoserve()];
    let points = fault_sweep(&setup, &schemes, &[3.0]);
    let p = &points[0];
    let recomputed = RecoveryReport::compute(&p.outcomes);
    assert_eq!(p.recovery, recomputed);
    assert_eq!(recomputed.overall.total, p.outcomes.len());
    // `relegated_completed` is a subset of `completed`, so the completed
    // tally alone must match the finished count exactly.
    let finished = p.outcomes.iter().filter(|o| o.finished()).count();
    assert_eq!(recomputed.overall.completed, finished);
    assert!(recomputed.overall.relegated_completed <= recomputed.overall.completed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under any fault schedule, no request is lost: every arrival ends in
    /// exactly one outcome, retries respect the budget, and the same seed
    /// replays bit-identically.
    #[test]
    fn no_request_lost_under_any_fault_schedule(
        seed in 0u64..1_000,
        n in 5usize..40,
        qps in 1.0f64..10.0,
        replicas in 1u32..4,
        crash_rate in 0.0f64..400.0,
        restart in proptest::bool::ANY,
        straggler_rate in 0.0f64..60.0,
    ) {
        let trace = TraceBuilder::new(Dataset::azure_conv())
            .arrivals(ArrivalProcess::poisson(qps))
            .num_requests(n)
            .tier_mix(TierMix::paper_equal())
            .low_priority_fraction(0.3)
            .build(&SeedStream::new(seed));
        let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
        let mut faults = FaultConfig::moderate();
        faults.crash_rate_per_hour = crash_rate;
        if !restart {
            faults.restart_downtime = None;
        }
        faults.straggler_rate_per_hour = straggler_rate;
        let plan = FaultPlan::with_faults(faults);

        let run = || {
            run_shared_faulty(
                &trace,
                replicas,
                &SchedulerSpec::qoserve(),
                &config,
                &plan,
                &SeedStream::new(seed),
            )
            .expect("replicas > 0")
        };
        let result = run();

        // Exactly one outcome per arrival, ordered by id.
        prop_assert_eq!(result.outcomes.len(), trace.len());
        for (i, o) in result.outcomes.iter().enumerate() {
            prop_assert_eq!(o.spec.id.0, i as u64);
            // Finished <=> Completed disposition.
            prop_assert_eq!(o.finished(), o.disposition == Disposition::Completed);
            // The retry budget bounds total attempts (the final attempt
            // may be the one that exhausts the budget).
            prop_assert!(o.retries <= plan.max_retries + 1);
            // Re-prefill is only paid by requests that were re-dispatched
            // or dropped after crashes.
            if o.reprefill_tokens > 0 {
                prop_assert!(o.retries > 0);
            }
        }

        // Replay with the same seed is bit-identical.
        prop_assert_eq!(result, run());
    }
}
