//! Fixture: waiver missing its mandatory reason — reported as
//! `bad-waiver` AND the underlying violation still fires.
use std::collections::HashMap;

pub fn live_count(m: &HashMap<u32, u32>) -> usize {
    // qoserve-lint: allow(hash-iteration)
    m.values().count()
}
