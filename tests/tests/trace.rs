//! Determinism contract of the decision-trace layer.
//!
//! Two pins, mirroring DESIGN.md's trace section:
//!
//! 1. **Tracing never perturbs the simulation.** A disabled tracer is
//!    the seed behaviour by construction (every emission site is gated
//!    on `enabled()`); an *enabled* tracer only observes, so outcomes
//!    must stay bit-identical either way.
//! 2. **Trace bytes are a pure function of `(seed, config)`.** The
//!    exported JSONL must be byte-identical across repeated runs and —
//!    the hard part — across execution modes: one crossbeam thread per
//!    replica (`run_shared_traced`) vs the single-threaded lockstep
//!    recovery runner with a zero-fault plan
//!    (`run_shared_faulty_traced`). Canonical `(time_us, replica, seq)`
//!    ordering in the sink is what erases thread interleaving.

use qoserve::prelude::*;
use qoserve_trace::{to_chrome_trace, to_jsonl, TraceEvent, Tracer};

fn small_trace(seed: u64) -> Trace {
    TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(6.0))
        .duration(SimDuration::from_secs(45))
        .tier_mix(TierMix::paper_equal())
        .build(&SeedStream::new(seed))
}

#[test]
fn disabled_tracer_is_bit_identical_to_plain_entry_points() {
    let trace = small_trace(21);
    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let spec = SchedulerSpec::qoserve();
    let seeds = SeedStream::new(21);

    let plain = run_shared(&trace, 2, &spec, &config, &seeds);
    let traced = run_shared_traced(&trace, 2, &spec, &config, &seeds, &Tracer::disabled());
    assert_eq!(plain, traced);

    let plan = FaultPlan::with_faults(FaultConfig::moderate());
    let plain = run_shared_faulty(&trace, 2, &spec, &config, &plan, &seeds)
        .expect("plain faulty run routes");
    let traced = run_shared_faulty_traced(
        &trace,
        2,
        &spec,
        &config,
        &plan,
        &seeds,
        &Tracer::disabled(),
    )
    .expect("traced faulty run routes");
    assert_eq!(plain.outcomes, traced.outcomes);
    assert_eq!(plain.stats, traced.stats);
}

#[test]
fn enabled_tracer_observes_without_perturbing_outcomes() {
    let trace = small_trace(22);
    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let spec = SchedulerSpec::qoserve();
    let seeds = SeedStream::new(22);

    let plain = run_shared(&trace, 2, &spec, &config, &seeds);
    let tracer = Tracer::unbounded();
    let traced = run_shared_traced(&trace, 2, &spec, &config, &seeds, &tracer);

    assert_eq!(plain, traced, "tracing must be a pure observer");
    let records = tracer.snapshot();
    assert!(!records.is_empty(), "an enabled tracer must capture events");
    // Every request that arrived has an arrival event, and every
    // finished outcome a completion event.
    let arrivals = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::RequestArrived { .. }))
        .count();
    let completions = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::RequestCompleted { .. }))
        .count();
    assert_eq!(arrivals, trace.requests().len());
    assert_eq!(completions, plain.iter().filter(|o| o.finished()).count());
}

#[test]
fn trace_bytes_are_reproducible_across_repeated_runs() {
    let trace = small_trace(23);
    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let spec = SchedulerSpec::qoserve();

    let run_once = || {
        let tracer = Tracer::ring(1 << 14);
        let _ = run_shared_traced(&trace, 3, &spec, &config, &SeedStream::new(23), &tracer);
        (
            to_jsonl(&tracer.snapshot(), tracer.dropped()),
            tracer.dropped(),
        )
    };
    let (first, dropped_first) = run_once();
    let (second, dropped_second) = run_once();
    assert_eq!(
        dropped_first, dropped_second,
        "eviction must be deterministic"
    );
    assert_eq!(first, second, "exported JSONL must be byte-identical");
}

#[test]
fn parallel_and_serial_lockstep_traces_match_byte_for_byte() {
    let trace = small_trace(24);
    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let spec = SchedulerSpec::qoserve();

    // Parallel: one crossbeam thread per replica, racing emissions into
    // the shared sink.
    let parallel = Tracer::unbounded();
    let outcomes_parallel =
        run_shared_traced(&trace, 3, &spec, &config, &SeedStream::new(24), &parallel);

    // Serial: the lockstep recovery runner with a zero-fault plan is the
    // single-threaded reference (pinned elsewhere to match run_shared
    // bit-for-bit on outcomes).
    let serial = Tracer::unbounded();
    let result = run_shared_faulty_traced(
        &trace,
        3,
        &spec,
        &config,
        &FaultPlan::none(),
        &SeedStream::new(24),
        &serial,
    )
    .expect("lockstep run routes");

    let mut outcomes_serial = result.outcomes;
    outcomes_serial.sort_by_key(|o| o.spec.id);
    let mut outcomes_parallel = outcomes_parallel;
    outcomes_parallel.sort_by_key(|o| o.spec.id);
    assert_eq!(outcomes_parallel, outcomes_serial);

    let jsonl_parallel = to_jsonl(&parallel.snapshot(), parallel.dropped());
    let jsonl_serial = to_jsonl(&serial.snapshot(), serial.dropped());
    assert_eq!(
        jsonl_parallel, jsonl_serial,
        "execution mode must not leak into trace bytes"
    );

    // The Chrome export is a pure function of the records, so it
    // inherits the same invariance.
    assert_eq!(
        to_chrome_trace(&parallel.snapshot()),
        to_chrome_trace(&serial.snapshot())
    );
}

#[test]
fn faulted_runs_trace_crashes_and_redispatches() {
    let trace = small_trace(25);
    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let spec = SchedulerSpec::qoserve();
    let plan = FaultPlan::with_faults(FaultConfig::moderate());

    let tracer = Tracer::unbounded();
    let result = run_shared_faulty_traced(
        &trace,
        3,
        &spec,
        &config,
        &plan,
        &SeedStream::new(25),
        &tracer,
    )
    .expect("faulty run routes");

    let records = tracer.snapshot();
    let faults = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::FaultInjected { .. }))
        .count() as u64;
    let redispatches = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::OrphanRedispatched { .. }))
        .count() as u64;
    assert!(
        faults >= result.stats.crashes,
        "every crash must appear in the trace ({faults} fault events, {} crashes)",
        result.stats.crashes
    );
    assert_eq!(
        redispatches, result.stats.redispatches,
        "re-dispatch events must match the recovery counters"
    );
}
