//! Figure 7: maximum goodput per replica on a shared cluster.
//!
//! For every (model × dataset) pair of Tables 1–2, finds the maximum QPS
//! one replica sustains with ≤ 1 % violations under Sarathi-FCFS,
//! Sarathi-EDF, and QoServe. Expected shape: QoServe 1.5–2.4x over FCFS
//! and 20–40 % over EDF, with the biggest wins on prefill-heavy traces.

use qoserve::experiments::scaled_window;
use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results};

fn main() {
    banner(
        "fig7",
        "Max goodput per replica (shared cluster, PD colocation)",
    );

    let schemes = [
        SchedulerSpec::sarathi_fcfs(),
        SchedulerSpec::sarathi_edf(),
        SchedulerSpec::qoserve(),
    ];
    let options = GoodputOptions {
        window: scaled_window(2400),
        resolution: 0.1,
        ..Default::default()
    };

    let mut table = Table::new(vec![
        "model",
        "dataset",
        "Sarathi-FCFS",
        "Sarathi-EDF",
        "QoServe",
        "QoServe/FCFS",
        "QoServe/EDF",
    ]);

    let mut rows = Vec::new();
    for hw in HardwareConfig::paper_configs() {
        let config = ClusterConfig::new(hw.clone());
        for dataset in Dataset::paper_datasets() {
            let seeds = SeedStream::new(7);
            let goodputs: Vec<f64> = schemes
                .iter()
                .map(|s| max_goodput(&dataset, s, &config, &options, &seeds))
                .collect();
            table.row(vec![
                hw.label(),
                dataset.name.clone(),
                format!("{:.1}", goodputs[0]),
                format!("{:.1}", goodputs[1]),
                format!("{:.1}", goodputs[2]),
                format!("{:.2}x", goodputs[2] / goodputs[0].max(1e-9)),
                format!("{:.2}x", goodputs[2] / goodputs[1].max(1e-9)),
            ]);
            rows.push(serde_json::json!({
                "model": hw.label(),
                "dataset": dataset.name,
                "sarathi_fcfs_qps": goodputs[0],
                "sarathi_edf_qps": goodputs[1],
                "qoserve_qps": goodputs[2],
            }));
            eprintln!("  done: {} x {}", hw.label(), dataset.name);
        }
    }
    print!("{table}");
    emit_results("fig7", &rows);
    println!();
    println!("paper: QoServe achieves 1.5-2.4x over Sarathi-FCFS and 20-40% over Sarathi-EDF");
}
