//! `--explain <rule>`: the rule book, embedded in the binary.
//!
//! One entry per rule: what fires, why the invariant matters to the
//! QoServe reproduction, and the sanctioned fix. `--explain` keeps the
//! contract discoverable without leaving the terminal; DESIGN.md carries
//! the long-form rationale.

use crate::rules::{
    RULE_ALLOC, RULE_CAST, RULE_COVERAGE, RULE_FLOAT, RULE_HASH, RULE_LOCK, RULE_OUTPUT,
    RULE_PANIC, RULE_SERDE, RULE_TIME, RULE_WAIVER,
};

/// `(rule, explanation)` for every rule, in display order.
pub const EXPLANATIONS: &[(&str, &str)] = &[
    (
        RULE_TIME,
        "Wall-clock and OS-entropy sources (`Instant::now`, `SystemTime`, `thread_rng`, \
         `from_entropy`) in determinism-crate library code.\n\
         Why: every headline result is a replayed discrete-event simulation; the test suite \
         pins parallel==serial and sharded==lockstep bit-for-bit, which any ambient time or \
         randomness breaks.\n\
         Fix: take simulated time from the event loop (`SimTime`) and randomness from a \
         `SeedStream`-derived stream.",
    ),
    (
        RULE_HASH,
        "Iteration over `HashMap`/`HashSet` (`.iter()`, `.values()`, `.drain()`, bare `for`) \
         in determinism-crate library code. Construction and point lookup stay legal.\n\
         Why: hash iteration order varies per process, so any decision made while iterating \
         diverges between replays.\n\
         Fix: use `BTreeMap`/`BTreeSet` or an explicitly ordered `Vec`.",
    ),
    (
        RULE_FLOAT,
        "NaN-unsafe float comparisons: `partial_cmp(..).unwrap()` and sort/min/max \
         comparators built on `partial_cmp`.\n\
         Why: the job heaps order by floating-point priority (Eq. 4/5); `partial_cmp` is not \
         a total order under NaN, so a single bad sample can panic or reorder the heap \
         nondeterministically.\n\
         Fix: route comparisons through `f64::total_cmp` (see `qoserve_sim::float`).",
    ),
    (
        RULE_PANIC,
        "Panic sites (`.unwrap()`, `.expect()`, `panic!`, `todo!`) in non-test library code, \
         above the per-file ceiling in `lint-baseline.toml` (ratcheted: counts only go \
         down).\n\
         Why: a mid-sweep panic discards hours of simulation; library code must surface \
         errors as values.\n\
         Fix: return `Result`/`Option`, or waive with a reason when infallibility is \
         locally provable.",
    ),
    (
        RULE_OUTPUT,
        "`println!`-family output (`println!`, `eprintln!`, `print!`, `eprint!`, `dbg!`) in \
         library code, above the ratcheted baseline. `src/bin/` drivers and `src/main.rs` \
         are exempt.\n\
         Why: results are machine-consumed (JSONL, CSV); stray prints corrupt piped output \
         and hide real reporting paths.\n\
         Fix: return data to the caller or emit a trace event.",
    ),
    (
        RULE_ALLOC,
        "Allocation churn (`Box::new`, `.to_string()`, `.clone()`, `.to_owned()`, \
         `.to_vec()`) inside hot-path fn bodies (`step`, `on_iteration`, `advance_replica`, \
         `run_faulty_inner`, `pop`, `pop_due`) of determinism crates, above the ratcheted \
         baseline.\n\
         Why: these functions run once per simulated event; allocator traffic there \
         dominates wall-clock time and destroys the perf headroom the sharded core bought.\n\
         Fix: reuse scratch buffers and slab slots (see `qoserve_sim::eventcore`).",
    ),
    (
        RULE_CAST,
        "Truncating / sign-changing integer `as` casts (`as u64`, `as i32`, `as usize`, …) \
         in sim/engine/sched/cluster/perf library code, above the ratcheted baseline. \
         `as f64` is out of scope; `crates/sim/src/nums.rs` is the sanctioned helper and is \
         exempt.\n\
         Why: simulated time is integer microseconds and token budgets are integer counts; \
         an `as` cast silently truncates (`u128 as u64`), wraps (`i64 as u64`), or clamps \
         (`f64 as u64`) — corrupting time arithmetic with no panic to point at the site.\n\
         Fix: use the checked/saturating conversions in `qoserve_sim::nums`, which make the \
         policy explicit and debug-assert on real information loss.",
    ),
    (
        RULE_LOCK,
        "Lock hygiene in determinism-crate library code, via the workspace call graph: \
         (1) a second `.lock()` taken in the same statement as an earlier one, and (2) any \
         `.lock()` site inside a function reachable from the hot-fn set (`step`, \
         `advance_replica`, `pop_due`, …). Name-resolved reachability over-approximates by \
         design.\n\
         Why: same-statement guards overlap in scheduler-chosen order (deadlock and replay \
         hazard); per-iteration locking skews the sharded==lockstep timing contract.\n\
         Fix: bind and drop the first guard before the second acquisition; hoist hot-path \
         locks out of the loop, or waive with a proof the path never locks (e.g. a \
         disabled tracer handle).",
    ),
    (
        RULE_COVERAGE,
        "Cross-file exhaustiveness: every variant of the workspace `TraceEvent` enum must \
         be mentioned (as a `TraceEvent::Variant` path in non-test code) in each export \
         surface — the trace exporters (`crates/trace/src/export.rs`), forensics \
         attribution (`crates/bench/src/forensics.rs`), and the live-stats aggregator \
         (`crates/stats/src/aggregate.rs`).\n\
         Why: a `_` arm silently swallows variants added later, so a new event would ship \
         without Chrome-trace, forensics, or live-stats wiring and the gap would surface \
         as missing data months later.\n\
         Fix: add an explicit arm (or list the variant in an or-pattern) per surface; the \
         rule is inert when no `TraceEvent` enum is in the scanned set.",
    ),
    (
        RULE_SERDE,
        "Fields of `#[derive(Serialize, Deserialize)]` structs in metrics/trace/stats \
         library code without `#[serde(default)]`, above the ratcheted baseline. Container-level \
         `#[serde(default)]`/`#[serde(transparent)]` satisfies the rule; `#[serde(skip)]` \
         and `#[serde(flatten)]` fields are exempt.\n\
         Why: metrics snapshots and trace records are persisted JSONL that outlives the \
         binary; a field without a default makes every old artifact unreadable the moment \
         the struct grows.\n\
         Fix: add `#[serde(default)]` to the field (the convention PRs 3–5 followed by \
         hand).",
    ),
    (
        RULE_WAIVER,
        "Waiver comments (`// qoserve-lint: allow(<rule>) -- <reason>`) that are malformed \
         (missing the mandatory reason) or *unused* (no diagnostic of the waived rule fires \
         on the covered lines).\n\
         Why: a waiver is a standing exception to an invariant; without a reason it cannot \
         be audited, and once stale it hides the next real violation at that site.\n\
         Fix: add the reason after `--`, or delete the waiver once the code it excused is \
         gone.",
    ),
];

/// The explanation for `rule`, if it exists.
pub fn explain(rule: &str) -> Option<&'static str> {
    EXPLANATIONS
        .iter()
        .find(|(r, _)| *r == rule)
        .map(|(_, text)| *text)
}

/// Every rule name, in display order.
pub fn rule_names() -> Vec<&'static str> {
    EXPLANATIONS.iter().map(|(r, _)| *r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_an_explanation() {
        for rule in [
            RULE_TIME,
            RULE_HASH,
            RULE_FLOAT,
            RULE_PANIC,
            RULE_OUTPUT,
            RULE_ALLOC,
            RULE_CAST,
            RULE_LOCK,
            RULE_COVERAGE,
            RULE_SERDE,
            RULE_WAIVER,
        ] {
            let text = explain(rule).unwrap_or_else(|| panic!("no explanation for {rule}"));
            assert!(text.contains("Why:"), "{rule} explains the invariant");
            assert!(text.contains("Fix:"), "{rule} names the sanctioned fix");
        }
        assert!(explain("no-such-rule").is_none());
        assert_eq!(rule_names().len(), 11);
    }
}
