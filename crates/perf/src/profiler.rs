//! Vidur-like profiling harness.
//!
//! The paper collects latency profiles "of MLP and attention operation ...
//! at varying chunk sizes, batch sizes as well as context lengths" through
//! a lightweight harness exposed by the Vidur simulator, once per (model,
//! hardware, parallelism) configuration (§3.6.1). This module is that
//! harness for the reproduction: it sweeps the batch-profile space, labels
//! each point with the ground-truth analytical model plus multiplicative
//! measurement noise, and hands the samples to the forest trainer.

use rand::Rng;
use serde::{Deserialize, Serialize};

use qoserve_sim::rng::sample_standard_normal;
use qoserve_sim::SeedStream;

use crate::analytical::LatencyModel;
use crate::batch::BatchProfile;
use crate::hardware::HardwareConfig;

/// One labelled profiling observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileSample {
    /// The batch that was "measured".
    pub batch: BatchProfile,
    /// Observed iteration latency in microseconds.
    pub latency_us: f64,
}

/// Sweep ranges for the profiling run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfilerConfig {
    /// Number of samples to collect.
    pub num_samples: usize,
    /// Largest prefill chunk to measure.
    pub max_chunk: u32,
    /// Largest per-request prompt context to measure.
    pub max_context: u32,
    /// Largest decode batch to measure.
    pub max_decodes: u32,
    /// Largest mean decode context length.
    pub max_decode_context: u32,
    /// Multiplicative measurement-noise sigma (e.g. 0.02 for 2 %).
    pub noise_sigma: f64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            num_samples: 6_000,
            max_chunk: 4_096,
            max_context: 16_384,
            max_decodes: 200,
            max_decode_context: 4_096,
            noise_sigma: 0.02,
        }
    }
}

/// The profiling harness for one hardware configuration.
///
/// # Example
///
/// ```
/// use qoserve_perf::{HardwareConfig, Profiler, ProfilerConfig};
/// use qoserve_sim::SeedStream;
///
/// let profiler = Profiler::new(
///     HardwareConfig::llama3_8b_a100_tp1(),
///     ProfilerConfig { num_samples: 100, ..Default::default() },
/// );
/// let samples = profiler.collect(&SeedStream::new(7));
/// assert_eq!(samples.len(), 100);
/// assert!(samples.iter().all(|s| s.latency_us > 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct Profiler {
    model: LatencyModel,
    config: ProfilerConfig,
}

impl Profiler {
    /// Creates a harness for `hw` with the given sweep configuration.
    pub fn new(hw: HardwareConfig, config: ProfilerConfig) -> Self {
        Profiler {
            model: LatencyModel::new(&hw),
            config,
        }
    }

    /// Runs the sweep, returning `num_samples` labelled observations.
    ///
    /// A third of the samples are decode-only batches, a third prefill-only,
    /// and a third mixed — mirroring the operating points a chunked-prefill
    /// engine actually visits.
    pub fn collect(&self, seeds: &SeedStream) -> Vec<ProfileSample> {
        let mut rng = seeds.derive("profiler");
        let mut samples = Vec::with_capacity(self.config.num_samples);
        for i in 0..self.config.num_samples {
            let batch = match i % 3 {
                0 => self.sample_decode_only(&mut rng),
                1 => self.sample_prefill_only(&mut rng),
                _ => self.sample_mixed(&mut rng),
            };
            let clean = self.model.iteration_time_us(&batch);
            let noise = 1.0 + self.config.noise_sigma * sample_standard_normal(&mut rng);
            samples.push(ProfileSample {
                batch,
                latency_us: clean * noise.max(0.5),
            });
        }
        samples
    }

    /// Splits samples into `(features, labels)` arrays for forest training.
    pub fn to_training_set(samples: &[ProfileSample]) -> (Vec<[f64; 4]>, Vec<f64>) {
        let rows = samples.iter().map(|s| s.batch.features()).collect();
        let labels = samples.iter().map(|s| s.latency_us).collect();
        (rows, labels)
    }

    fn sample_decode_only<R: Rng>(&self, rng: &mut R) -> BatchProfile {
        let n = rng.gen_range(1..=self.config.max_decodes);
        let mean_ctx = rng.gen_range(16..=self.config.max_decode_context) as u64;
        BatchProfile::builder()
            .decodes(n, n as u64 * mean_ctx)
            .build()
    }

    fn sample_prefill_only<R: Rng>(&self, rng: &mut R) -> BatchProfile {
        let chunk = rng.gen_range(16..=self.config.max_chunk);
        let ctx = rng.gen_range(0..=self.config.max_context);
        BatchProfile::builder().prefill_chunk(chunk, ctx).build()
    }

    fn sample_mixed<R: Rng>(&self, rng: &mut R) -> BatchProfile {
        let chunk = rng.gen_range(16..=self.config.max_chunk);
        let ctx = rng.gen_range(0..=self.config.max_context);
        let n = rng.gen_range(1..=self.config.max_decodes);
        let mean_ctx = rng.gen_range(16..=self.config.max_decode_context) as u64;
        BatchProfile::builder()
            .prefill_chunk(chunk, ctx)
            .decodes(n, n as u64 * mean_ctx)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{RandomForest, RandomForestConfig};

    fn small_profiler() -> Profiler {
        Profiler::new(
            HardwareConfig::llama3_8b_a100_tp1(),
            ProfilerConfig {
                num_samples: 1_500,
                ..Default::default()
            },
        )
    }

    #[test]
    fn collect_is_deterministic_per_seed() {
        let p = small_profiler();
        let a = p.collect(&SeedStream::new(1));
        let b = p.collect(&SeedStream::new(1));
        assert_eq!(a, b);
        let c = p.collect(&SeedStream::new(2));
        assert_ne!(a, c);
    }

    #[test]
    fn samples_cover_all_batch_shapes() {
        let samples = small_profiler().collect(&SeedStream::new(3));
        let decode_only = samples
            .iter()
            .filter(|s| s.batch.prefill.is_empty() && s.batch.num_decodes > 0)
            .count();
        let prefill_only = samples
            .iter()
            .filter(|s| !s.batch.prefill.is_empty() && s.batch.num_decodes == 0)
            .count();
        let mixed = samples
            .iter()
            .filter(|s| !s.batch.prefill.is_empty() && s.batch.num_decodes > 0)
            .count();
        assert!(decode_only > 100 && prefill_only > 100 && mixed > 100);
    }

    #[test]
    fn noise_stays_close_to_ground_truth() {
        let p = small_profiler();
        let model = LatencyModel::new(&HardwareConfig::llama3_8b_a100_tp1());
        for s in p.collect(&SeedStream::new(5)) {
            let clean = model.iteration_time_us(&s.batch);
            let rel = (s.latency_us - clean).abs() / clean;
            assert!(rel < 0.15, "noise too large: {rel}");
        }
    }

    /// The paper claims < 10 % error for the trained predictor; verify the
    /// whole pipeline (profile -> train -> holdout eval) achieves that.
    #[test]
    fn trained_forest_meets_paper_error_bound() {
        let p = Profiler::new(
            HardwareConfig::llama3_8b_a100_tp1(),
            ProfilerConfig {
                num_samples: 4_000,
                ..Default::default()
            },
        );
        let samples = p.collect(&SeedStream::new(11));
        let (train, test) = samples.split_at(3_200);
        let (rows, labels) = Profiler::to_training_set(train);
        let mut rng = SeedStream::new(12).derive("fit");
        let forest =
            RandomForest::fit(&rows, &labels, RandomForestConfig::default(), &mut rng).unwrap();
        let (test_rows, test_labels) = Profiler::to_training_set(test);
        let mape = forest.mape(&test_rows, &test_labels);
        assert!(
            mape < 0.10,
            "holdout MAPE should be < 10% per the paper, got {:.1}%",
            mape * 100.0
        );
    }
}
