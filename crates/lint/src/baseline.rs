//! The ratcheting baselines (`lint-baseline.toml`).
//!
//! Existing rule debt in library code is frozen per file for the three
//! ratcheted rules — `panic-hygiene` (`unwrap()`/`expect()`/`panic!`),
//! `unstructured-output` (`println!`-family macros), and
//! `hot-path-alloc` (allocation churn inside hot-path fn bodies): a file
//! may never *gain* sites, and when it sheds some, `--fix-baseline`
//! rewrites the file so the new, lower count becomes the ceiling. The
//! format is a deliberately tiny TOML subset — known sections,
//! quoted-path keys, integer values — parsed by hand so the linter stays
//! dependency-free:
//!
//! ```toml
//! [panic-hygiene]
//! "crates/sched/src/queue.rs" = 14
//!
//! [unstructured-output]
//! "crates/bench/src/lib.rs" = 6
//!
//! [hot-path-alloc]
//! "crates/sched/src/qoserve.rs" = 2
//! ```

use std::collections::BTreeMap;

/// Per-file allowed site counts for the ratcheted rules, keyed by
/// workspace-relative path (always with `/` separators, so baselines are
/// portable across hosts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `panic-hygiene`: file path -> allowed panic-site count.
    pub allowed: BTreeMap<String, u32>,
    /// `unstructured-output`: file path -> allowed output-site count.
    pub output_allowed: BTreeMap<String, u32>,
    /// `hot-path-alloc`: file path -> allowed hot-path allocation count.
    pub alloc_allowed: BTreeMap<String, u32>,
}

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line of the problem.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint-baseline.toml:{}: {}", self.line, self.message)
    }
}

/// Which section of the baseline a line belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Panic,
    Output,
    Alloc,
}

impl Baseline {
    /// Allowed panic-site count for `path` (0 when not listed).
    pub fn allowed_for(&self, path: &str) -> u32 {
        self.allowed.get(path).copied().unwrap_or(0)
    }

    /// Allowed output-site count for `path` (0 when not listed).
    pub fn output_allowed_for(&self, path: &str) -> u32 {
        self.output_allowed.get(path).copied().unwrap_or(0)
    }

    /// Allowed hot-path allocation count for `path` (0 when not listed).
    pub fn alloc_allowed_for(&self, path: &str) -> u32 {
        self.alloc_allowed.get(path).copied().unwrap_or(0)
    }

    /// Parses the baseline file contents.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut baseline = Baseline::default();
        let mut section: Option<Section> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = match name.trim() {
                    "panic-hygiene" => Some(Section::Panic),
                    "unstructured-output" => Some(Section::Output),
                    "hot-path-alloc" => Some(Section::Alloc),
                    other => {
                        return Err(BaselineError {
                            line: lineno,
                            message: format!("unknown section `[{other}]`"),
                        })
                    }
                };
                continue;
            }
            let Some(section) = section else {
                return Err(BaselineError {
                    line: lineno,
                    message: "entry before a `[panic-hygiene]`, `[unstructured-output]`, or \
                              `[hot-path-alloc]` section"
                        .to_string(),
                });
            };
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("expected `\"path\" = count`, found `{line}`"),
                });
            };
            let key = key.trim();
            let Some(path) = key
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .filter(|p| !p.is_empty())
            else {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("path must be double-quoted, found `{key}`"),
                });
            };
            let count: u32 = value.trim().parse().map_err(|_| BaselineError {
                line: lineno,
                message: format!(
                    "count must be a non-negative integer, found `{}`",
                    value.trim()
                ),
            })?;
            let map = match section {
                Section::Panic => &mut baseline.allowed,
                Section::Output => &mut baseline.output_allowed,
                Section::Alloc => &mut baseline.alloc_allowed,
            };
            map.insert(path.to_string(), count);
        }
        Ok(baseline)
    }

    /// Renders the baseline back to its canonical on-disk form (sorted,
    /// zero-count entries dropped, empty sections omitted — except
    /// `[panic-hygiene]`, which is always present as the file anchor).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# Ratcheting lint baselines, maintained by `qoserve-lint`.\n\
             # Counts may only go DOWN: fix the sites, then run\n\
             # `cargo run -p qoserve-lint -- --fix-baseline` to lower the ceiling.\n\
             \n[panic-hygiene]\n",
        );
        for (path, count) in &self.allowed {
            if *count > 0 {
                out.push_str(&format!("\"{path}\" = {count}\n"));
            }
        }
        if self.output_allowed.values().any(|c| *c > 0) {
            out.push_str("\n[unstructured-output]\n");
            for (path, count) in &self.output_allowed {
                if *count > 0 {
                    out.push_str(&format!("\"{path}\" = {count}\n"));
                }
            }
        }
        if self.alloc_allowed.values().any(|c| *c > 0) {
            out.push_str("\n[hot-path-alloc]\n");
            for (path, count) in &self.alloc_allowed {
                if *count > 0 {
                    out.push_str(&format!("\"{path}\" = {count}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_queries() {
        let b = Baseline::parse(
            "# comment\n\n[panic-hygiene]\n\"crates/a/src/x.rs\" = 14\n\"crates/b/src/y.rs\" = 3\n",
        )
        .unwrap();
        assert_eq!(b.allowed_for("crates/a/src/x.rs"), 14);
        assert_eq!(b.allowed_for("crates/b/src/y.rs"), 3);
        assert_eq!(b.allowed_for("crates/never/seen.rs"), 0);
        assert_eq!(b.output_allowed_for("crates/a/src/x.rs"), 0);
    }

    #[test]
    fn parses_both_sections_independently() {
        let b = Baseline::parse(
            "[panic-hygiene]\n\"crates/a/src/x.rs\" = 2\n\n\
             [unstructured-output]\n\"crates/bench/src/lib.rs\" = 6\n\"crates/a/src/x.rs\" = 1\n",
        )
        .unwrap();
        assert_eq!(b.allowed_for("crates/a/src/x.rs"), 2);
        assert_eq!(b.output_allowed_for("crates/a/src/x.rs"), 1);
        assert_eq!(b.output_allowed_for("crates/bench/src/lib.rs"), 6);
        assert_eq!(b.allowed_for("crates/bench/src/lib.rs"), 0);
    }

    #[test]
    fn parses_alloc_section() {
        let b = Baseline::parse(
            "[panic-hygiene]\n\"crates/a/src/x.rs\" = 2\n\n\
             [hot-path-alloc]\n\"crates/sched/src/qoserve.rs\" = 3\n",
        )
        .unwrap();
        assert_eq!(b.alloc_allowed_for("crates/sched/src/qoserve.rs"), 3);
        assert_eq!(b.alloc_allowed_for("crates/a/src/x.rs"), 0);
        assert_eq!(b.allowed_for("crates/a/src/x.rs"), 2);
    }

    #[test]
    fn empty_file_is_empty_baseline() {
        let b = Baseline::parse("").unwrap();
        assert!(b.allowed.is_empty());
        assert!(b.output_allowed.is_empty());
        assert!(b.alloc_allowed.is_empty());
        assert_eq!(b.allowed_for("anything"), 0);
    }

    #[test]
    fn render_roundtrips_sorted_without_zeros() {
        let mut b = Baseline::default();
        b.allowed.insert("z.rs".into(), 2);
        b.allowed.insert("a.rs".into(), 7);
        b.allowed.insert("gone.rs".into(), 0);
        b.output_allowed.insert("out.rs".into(), 4);
        b.alloc_allowed.insert("hot.rs".into(), 9);
        let text = b.render();
        let reparsed = Baseline::parse(&text).unwrap();
        assert_eq!(reparsed.allowed_for("a.rs"), 7);
        assert_eq!(reparsed.allowed_for("z.rs"), 2);
        assert_eq!(reparsed.output_allowed_for("out.rs"), 4);
        assert_eq!(reparsed.alloc_allowed_for("hot.rs"), 9);
        assert!(!text.contains("gone.rs"));
        let a = text.find("a.rs").unwrap();
        let z = text.find("z.rs").unwrap();
        assert!(a < z, "entries must be sorted");
        let section = text.find("[unstructured-output]").unwrap();
        assert!(z < section, "output section comes after panic entries");
        let alloc = text.find("[hot-path-alloc]").unwrap();
        assert!(section < alloc, "alloc section comes last");
    }

    #[test]
    fn empty_output_section_is_omitted_from_render() {
        let mut b = Baseline::default();
        b.allowed.insert("a.rs".into(), 1);
        let text = b.render();
        assert!(!text.contains("[unstructured-output]"));
        assert!(!text.contains("[hot-path-alloc]"));
        assert_eq!(Baseline::parse(&text).unwrap(), b);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Baseline::parse("[panic-hygiene]\nnot an entry\n").is_err());
        assert!(Baseline::parse("[panic-hygiene]\nbare/path.rs = 1\n").is_err());
        assert!(Baseline::parse("[panic-hygiene]\n\"x.rs\" = -2\n").is_err());
        assert!(Baseline::parse("[panic-hygiene]\n\"x.rs\" = lots\n").is_err());
        assert!(Baseline::parse("[unstructured-output]\n\"x.rs\" = ??\n").is_err());
        assert!(Baseline::parse("[hot-path-alloc]\n\"x.rs\" = many\n").is_err());
        assert!(
            Baseline::parse("\"x.rs\" = 1\n").is_err(),
            "entry before section"
        );
        let err = Baseline::parse("[other-section]\n").unwrap_err();
        assert!(err.message.contains("unknown section"));
        assert_eq!(err.line, 1);
    }
}
