//! Cluster-scale simulation for the QoServe reproduction.
//!
//! The paper's headline result (Fig. 1, Table 4) is a *deployment*
//! argument: a shared QoServe cluster needs 23 % fewer GPUs than the
//! state-of-the-art siloed deployment at the same load and SLOs. This
//! crate provides the machinery behind every cluster-scale number:
//!
//! * [`spec`] — [`SchedulerSpec`], a buildable description of a scheduler
//!   (so each replica can own a fresh instance).
//! * [`router`] — request routing across replicas (round-robin, as in the
//!   paper's experiments, plus a least-work router).
//! * [`deployment`] — shared vs siloed deployments and their execution;
//!   replicas run in parallel threads, each bit-reproducible.
//! * [`recovery`] — fault-injected deployments: sharded epoch stepping
//!   (replica-local advancement between fault events, lockstep around
//!   crashes), crash-orphan re-dispatch with bounded retries and
//!   deterministic backoff, re-prefill accounting, and tier-aware
//!   shedding when surviving capacity is insufficient.
//! * [`breaker`] — per-replica circuit breakers
//!   (Closed → Open → HalfProbe) thresholding the engines' rolling
//!   health snapshots, so straggling-but-alive replicas stop receiving
//!   re-dispatched work until they recover.
//! * [`capacity`] — goodput search ("max QPS with ≤ 1 % violations") and
//!   the minimum-replica capacity planner behind Table 4 and Fig. 15b.

pub mod breaker;
pub mod capacity;
pub mod deployment;
pub mod recovery;
pub mod router;
pub mod spec;

pub use breaker::{pick_target, BreakerConfig, BreakerState, CircuitBreaker, PickedTarget};
pub use capacity::{max_goodput, max_goodput_serial, min_replicas_for, GoodputOptions};
pub use deployment::{run_shared, run_shared_traced, run_siloed, ClusterConfig, SiloGroup};
pub use recovery::{
    run_shared_faulty, run_shared_faulty_lockstep, run_shared_faulty_traced, FaultPlan,
    FaultRunResult, FaultRunStats,
};
pub use router::{Router, RouterError};
pub use spec::SchedulerSpec;
