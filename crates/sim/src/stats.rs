//! Online statistics (Welford) used across the workspace.
//!
//! QoServe's non-interactive priority term needs a *running* per-application
//! estimate of decode length (`mean + 2σ`, §3.4 of the paper); this module
//! provides the numerically stable accumulator behind it.

use serde::{Deserialize, Serialize};

/// Numerically stable online mean/variance accumulator (Welford's method).
///
/// # Example
///
/// ```
/// use qoserve_sim::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`); zero when fewer than two
    /// observations.
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`); zero when fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// The paper's over-approximation for unknown decode length:
    /// `mean + 2 * σ` (population), or `fallback` when empty.
    pub fn mean_plus_two_sigma_or(&self, fallback: f64) -> f64 {
        if self.count == 0 {
            fallback
        } else {
            self.mean + 2.0 * self.population_std_dev()
        }
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean_plus_two_sigma_or(42.0), 42.0);
    }

    #[test]
    fn single_observation() {
        let s: OnlineStats = [5.0].into_iter().collect();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn known_variance() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.mean(), 5.0);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn mean_plus_two_sigma() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean_plus_two_sigma_or(0.0) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let seq: OnlineStats = xs.iter().copied().collect();
        let mut a: OnlineStats = xs[..37].iter().copied().collect();
        let b: OnlineStats = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.population_variance() - seq.population_variance()).abs() < 1e-9);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    proptest! {
        #[test]
        fn variance_is_never_negative(xs in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
            let s: OnlineStats = xs.iter().copied().collect();
            prop_assert!(s.population_variance() >= 0.0);
            prop_assert!(s.sample_variance() >= 0.0);
        }

        #[test]
        fn mean_within_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s: OnlineStats = xs.iter().copied().collect();
            let min = s.min().unwrap();
            let max = s.max().unwrap();
            prop_assert!(s.mean() >= min - 1e-9);
            prop_assert!(s.mean() <= max + 1e-9);
        }

        #[test]
        fn merge_is_order_insensitive(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
            ys in proptest::collection::vec(-1e3f64..1e3, 1..100),
        ) {
            let sa: OnlineStats = xs.iter().copied().collect();
            let sb: OnlineStats = ys.iter().copied().collect();
            let mut ab = sa; ab.merge(&sb);
            let mut ba = sb; ba.merge(&sa);
            prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
            prop_assert!((ab.population_variance() - ba.population_variance()).abs() < 1e-6);
        }
    }
}
