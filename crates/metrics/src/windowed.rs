//! Fixed-window streaming aggregates with *exact* merges.
//!
//! The live-stats layer (`qoserve-stats`) folds trace events into
//! per-window aggregates and publishes them as delta snapshots whose
//! left-fold merge must reproduce the full snapshot bit-for-bit. That
//! rules out anything order-sensitive per window: these helpers keep only
//! integer counts/sums/extrema per fixed window, so merging two disjoint
//! windows' worth of data is associative and exact regardless of how the
//! stream was cut into deltas.
//!
//! Windows are half-open `[k·w, (k+1)·w)` keyed by index `k`, matching
//! [`RollingSeries`](crate::RollingSeries) bucketing; empty windows are
//! omitted.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::rolling::RollingSeries;

/// One window's pass/fail tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct WindowCount {
    /// Samples recorded in the window.
    pub total: u64,
    /// Samples recorded with the flag set (e.g. SLO-violating requests).
    pub flagged: u64,
}

/// Pass/fail tallies over fixed windows (SLO attainment, cause counts).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct WindowedCounts {
    /// Window length in microseconds (≥ 1).
    pub window_us: u64,
    /// Non-empty windows keyed by window index.
    pub windows: BTreeMap<u64, WindowCount>,
}

impl WindowedCounts {
    /// An empty tally over `window_us`-wide windows (clamped to ≥ 1 µs).
    pub fn new(window_us: u64) -> WindowedCounts {
        WindowedCounts {
            window_us: window_us.max(1),
            windows: BTreeMap::new(),
        }
    }

    /// Tallies one sample at `time_us`.
    pub fn record(&mut self, time_us: u64, flagged: bool) {
        let w = self
            .windows
            .entry(time_us / self.window_us.max(1))
            .or_default();
        w.total += 1;
        if flagged {
            w.flagged += 1;
        }
    }

    /// Adds `other`'s tallies into `self` (exact: per-window addition).
    /// An empty `self` adopts `other`'s window length.
    pub fn merge(&mut self, other: &WindowedCounts) {
        if self.windows.is_empty() && self.window_us <= 1 {
            self.window_us = other.window_us;
        }
        for (&idx, count) in &other.windows {
            let w = self.windows.entry(idx).or_default();
            w.total += count.total;
            w.flagged += count.flagged;
        }
    }

    /// Total samples across all windows.
    pub fn total(&self) -> u64 {
        self.windows.values().map(|w| w.total).sum()
    }

    /// Flagged samples across all windows.
    pub fn flagged(&self) -> u64 {
        self.windows.values().map(|w| w.flagged).sum()
    }

    /// Per-window attainment (fraction of samples *not* flagged) as a
    /// [`RollingSeries`] point per non-empty window.
    pub fn attainment_series(&self) -> RollingSeries {
        let window_us = self.window_us.max(1);
        RollingSeries {
            window_secs: window_us as f64 / 1e6,
            points: self
                .windows
                .iter()
                .filter(|(_, w)| w.total > 0)
                .map(|(&idx, w)| {
                    let start_secs = (idx * window_us) as f64 / 1e6;
                    let attained = 1.0 - w.flagged as f64 / w.total as f64;
                    (start_secs, attained)
                })
                .collect(),
        }
    }
}

/// One window's integer-sample aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct WindowAgg {
    /// Samples recorded in the window.
    pub count: u64,
    /// Sum of sample values.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl WindowAgg {
    fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    fn merge(&mut self, other: &WindowAgg) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean sample value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// Integer-valued sample aggregates over fixed windows (queue depth,
/// chunk budget, iteration latency).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct WindowedSamples {
    /// Window length in microseconds (≥ 1).
    pub window_us: u64,
    /// Non-empty windows keyed by window index.
    pub windows: BTreeMap<u64, WindowAgg>,
}

impl WindowedSamples {
    /// An empty aggregate over `window_us`-wide windows (clamped to ≥ 1 µs).
    pub fn new(window_us: u64) -> WindowedSamples {
        WindowedSamples {
            window_us: window_us.max(1),
            windows: BTreeMap::new(),
        }
    }

    /// Records one sample at `time_us`.
    pub fn record(&mut self, time_us: u64, value: u64) {
        self.windows
            .entry(time_us / self.window_us.max(1))
            .or_default()
            .record(value);
    }

    /// Adds `other`'s windows into `self` (exact: integer count/sum and
    /// extrema merges). An empty `self` adopts `other`'s window length.
    pub fn merge(&mut self, other: &WindowedSamples) {
        if self.windows.is_empty() && self.window_us <= 1 {
            self.window_us = other.window_us;
        }
        for (&idx, agg) in &other.windows {
            self.windows.entry(idx).or_default().merge(agg);
        }
    }

    /// Total samples across all windows.
    pub fn count(&self) -> u64 {
        self.windows.values().map(|w| w.count).sum()
    }

    /// Largest sample across all windows, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.windows
            .values()
            .filter(|w| w.count > 0)
            .map(|w| w.max)
            .max()
    }

    /// Per-window mean as a [`RollingSeries`] point per non-empty window.
    pub fn mean_series(&self) -> RollingSeries {
        let window_us = self.window_us.max(1);
        RollingSeries {
            window_secs: window_us as f64 / 1e6,
            points: self
                .windows
                .iter()
                .filter_map(|(&idx, w)| w.mean().map(|m| ((idx * window_us) as f64 / 1e6, m)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_bucket_half_open_and_merge_exactly() {
        let mut a = WindowedCounts::new(10);
        a.record(0, false);
        a.record(9, true);
        a.record(10, false); // boundary sample lands in the next window
        let mut b = WindowedCounts::new(10);
        b.record(9, true);
        b.record(25, false);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.total(), 5);
        assert_eq!(merged.flagged(), 2);
        assert_eq!(
            merged.windows[&0],
            WindowCount {
                total: 3,
                flagged: 2
            }
        );
        assert_eq!(
            merged.windows[&1],
            WindowCount {
                total: 1,
                flagged: 0
            }
        );
        assert_eq!(
            merged.windows[&2],
            WindowCount {
                total: 1,
                flagged: 0
            }
        );
        // Merge order does not matter.
        let mut other_way = b.clone();
        other_way.merge(&a);
        assert_eq!(merged, other_way);
    }

    #[test]
    fn attainment_series_matches_window_tallies() {
        let mut c = WindowedCounts::new(1_000_000);
        for i in 0..4 {
            c.record(100, i == 0); // window 0: 4 samples, 1 flagged
        }
        c.record(2_500_000, false); // window 2: all attained
        let series = c.attainment_series();
        assert_eq!(series.window_secs, 1.0);
        assert_eq!(series.points, vec![(0.0, 0.75), (2.0, 1.0)]);
    }

    #[test]
    fn samples_track_extrema_and_merge_exactly() {
        let mut a = WindowedSamples::new(10);
        a.record(1, 5);
        a.record(2, 15);
        let mut b = WindowedSamples::new(10);
        b.record(3, 2);
        b.record(11, 40);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.max(), Some(40));
        assert_eq!(
            merged.windows[&0],
            WindowAgg {
                count: 3,
                sum: 22,
                min: 2,
                max: 15
            }
        );
        let mut other_way = b;
        other_way.merge(&a);
        assert_eq!(merged, other_way);
    }

    #[test]
    fn empty_aggregates_adopt_window_length_on_merge() {
        let mut empty = WindowedCounts::default();
        let mut full = WindowedCounts::new(500);
        full.record(600, true);
        empty.merge(&full);
        assert_eq!(empty, full);
        let mut empty_s = WindowedSamples::default();
        let mut full_s = WindowedSamples::new(500);
        full_s.record(600, 9);
        empty_s.merge(&full_s);
        assert_eq!(empty_s, full_s);
    }

    #[test]
    fn mean_series_omits_empty_windows() {
        let mut s = WindowedSamples::new(1_000_000);
        s.record(0, 10);
        s.record(1, 20);
        s.record(3_000_000, 7);
        let series = s.mean_series();
        assert_eq!(series.points, vec![(0.0, 15.0), (3.0, 7.0)]);
    }

    #[test]
    fn serde_round_trips_with_defaults() {
        let mut c = WindowedCounts::new(60_000_000);
        c.record(1, true);
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<WindowedCounts>(&json).unwrap(), c);
        // Missing fields default (back-compat with older snapshots).
        let old: WindowedCounts = serde_json::from_str("{}").unwrap();
        assert_eq!(old, WindowedCounts::default());
    }
}
