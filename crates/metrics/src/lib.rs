//! Metrics layer for the QoServe reproduction.
//!
//! Everything the paper's evaluation section reports is computed here:
//! TTFT / TBT / TTLT latency distributions (§2.1), deadline-violation
//! percentages split by tier, request length, and importance (Fig. 11,
//! Fig. 12), rolling tail-latency series (Fig. 13), and the goodput search
//! ("maximum QPS with ≤ 1 % violations", §4.1.2).
//!
//! * [`outcome`] — [`RequestOutcome`], the per-request measurement record
//!   emitted by the engine.
//! * [`percentile()`] — interpolated percentiles and latency summaries.
//! * [`histogram`] — streaming log-bucketed histogram for online
//!   monitoring at constant memory.
//! * [`slo`] — [`SloReport`]: violation accounting over outcome sets.
//! * [`recovery`] — [`RecoveryReport`]: per-tier availability/retry/
//!   re-prefill accounting for fault-injected runs.
//! * [`rolling`] — time-windowed percentile series.
//! * [`windowed`] — fixed-window streaming aggregates with exact merges
//!   (the building block of `qoserve-stats` delta snapshots).
//! * [`goodput`] — monotone boundary search used for capacity numbers.
//! * [`report`] — plain-text table rendering for the experiment binaries.

pub mod goodput;
pub mod histogram;
pub mod outcome;
pub mod percentile;
pub mod recovery;
pub mod report;
pub mod rolling;
pub mod slo;
pub mod windowed;

pub use goodput::{max_supported_load, try_max_supported_load, SearchRangeError};
pub use histogram::{LogHistogram, MergeError, ResolutionError};
pub use outcome::{Disposition, RequestOutcome};
pub use percentile::{percentile, LatencySummary};
pub use recovery::{RecoveryCounts, RecoveryReport};
pub use report::Table;
pub use rolling::RollingSeries;
pub use slo::SloReport;
pub use windowed::{WindowAgg, WindowCount, WindowedCounts, WindowedSamples};
