//! Medha-style adaptive chunking (the §4.5.1 comparison).
//!
//! Medha [Agrawal et al. 2025] starts long prefills with large chunks and
//! progressively shrinks them so the iteration latency — which grows with
//! prompt context because chunk attention is quadratic — stays at a fixed
//! TBT target. Crucially it is *per-request*: it never looks at the slack
//! accumulated by the other requests in the batch, which is exactly the
//! opportunity QoServe's dynamic chunking exploits (Fig. 15a).
//!
//! The implementation reuses the latency predictor: the chunk for the head
//! request is the largest one whose predicted iteration latency stays
//! within the (constant) TBT target, given the request's current context
//! depth and the decode pool.

use qoserve_perf::{ChunkBudget, ChunkLimits, LatencyPredictor};
use qoserve_sim::{SimDuration, SimTime};
use qoserve_workload::RequestSpec;

use crate::job::{DecodeJob, PrefillJob};
use crate::policy::OrderPolicy;
use crate::queue::JobQueue;
use crate::{BatchPlan, Constraints, PrefillAssignment, Scheduler};

/// Configuration of [`MedhaScheduler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MedhaConfig {
    /// The constant TBT target the chunk is sized against.
    pub tbt_target: SimDuration,
    /// Chunk search bounds.
    pub limits: ChunkLimits,
}

impl Default for MedhaConfig {
    fn default() -> Self {
        MedhaConfig {
            tbt_target: SimDuration::from_millis(50),
            limits: ChunkLimits::default(),
        }
    }
}

/// Adaptive-chunking FCFS scheduler modelling Medha.
#[derive(Debug, Clone)]
pub struct MedhaScheduler {
    config: MedhaConfig,
    queue: JobQueue,
    budget: ChunkBudget,
    last_chunk: u32,
}

impl MedhaScheduler {
    /// Creates the scheduler around a latency predictor.
    pub fn new(config: MedhaConfig, predictor: LatencyPredictor) -> Self {
        MedhaScheduler {
            config,
            queue: JobQueue::new(),
            budget: ChunkBudget::new(predictor, config.limits),
            last_chunk: 0,
        }
    }

    /// Chunk size chosen by the most recent batch (Fig. 15a traces).
    pub fn last_chunk(&self) -> u32 {
        self.last_chunk
    }
}

impl Scheduler for MedhaScheduler {
    fn name(&self) -> &str {
        "Medha"
    }

    fn on_arrival(&mut self, job: PrefillJob, _now: SimTime) {
        let key = OrderPolicy::Fcfs.key(&job);
        self.queue.push(job, key);
    }

    fn plan_batch(
        &mut self,
        _now: SimTime,
        decodes: &[DecodeJob],
        constraints: Constraints,
    ) -> BatchPlan {
        let mut plan = BatchPlan::default();
        if !constraints.allow_prefill {
            return plan;
        }
        let mut job = match self.queue.pop() {
            Some(j) => j,
            None => return plan,
        };
        if job.prefill_done == 0 && constraints.max_new_requests == 0 {
            let key = OrderPolicy::Fcfs.key(&job);
            self.queue.reinsert(job, key);
            return plan;
        }

        // Chunk against the fixed TBT target at the request's current
        // context depth — slack-unaware by design.
        let ctx_total: u64 = decodes.iter().map(|d| d.context_len as u64).sum();
        let chunk = self.budget.prefill_budget(
            decodes.len() as u32,
            ctx_total,
            job.prefill_done,
            Some(self.config.tbt_target),
        );
        let take = chunk
            .min(job.remaining_tokens())
            .min(constraints.kv_headroom_tokens.min(u32::MAX as u64) as u32);
        self.last_chunk = take;
        plan.token_budget = chunk;
        if take == 0 {
            let key = OrderPolicy::Fcfs.key(&job);
            self.queue.reinsert(job, key);
            return plan;
        }
        let context_before = job.prefill_done;
        job.prefill_done += take;
        plan.prefill.push(PrefillAssignment {
            id: job.id(),
            tokens: take,
            context_before,
            completes_prefill: job.is_complete(),
            relegated: false,
        });
        if !job.is_complete() {
            let key = OrderPolicy::Fcfs.key(&job);
            self.queue.reinsert(job, key);
        }
        plan
    }

    fn on_completion(&mut self, _spec: &RequestSpec, _observed_decode_tokens: u32) {}

    fn pending_prefills(&self) -> usize {
        self.queue.len()
    }

    fn pending_prefill_tokens(&self) -> u64 {
        self.queue.pending_tokens()
    }

    fn drain_pending(&mut self) -> Vec<PrefillJob> {
        self.queue.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_perf::HardwareConfig;
    use qoserve_workload::{QosTier, RequestId, Slo};

    fn sched() -> MedhaScheduler {
        MedhaScheduler::new(
            MedhaConfig::default(),
            LatencyPredictor::analytical(&HardwareConfig::llama3_8b_a100_tp1()),
        )
    }

    fn long_spec(prompt: u32) -> RequestSpec {
        RequestSpec {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            prompt_tokens: prompt,
            decode_tokens: 500,
            slo: Slo::of_tier(QosTier::paper_q1()),
            app_id: 0,
        }
    }

    #[test]
    fn chunks_shrink_as_context_deepens() {
        // The signature Medha behaviour: process a very long prompt and
        // watch the chunk sizes decay.
        let mut s = sched();
        s.on_arrival(PrefillJob::new(long_spec(400_000)), SimTime::ZERO);
        let mut chunks = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..40 {
            let plan = s.plan_batch(now, &[], Constraints::unlimited());
            if plan.is_empty() {
                break;
            }
            chunks.push(plan.prefill[0].tokens);
            now += SimDuration::from_millis(50);
        }
        assert!(chunks.len() >= 10);
        let first = chunks.first().copied().unwrap();
        let last = chunks.last().copied().unwrap();
        assert!(
            last < first,
            "chunks should shrink with depth: first {first}, last {last}"
        );
        // And the sequence is (weakly) decreasing throughout.
        for w in chunks.windows(2) {
            assert!(w[1] <= w[0], "chunk grew from {} to {}", w[0], w[1]);
        }
    }

    #[test]
    fn serves_fcfs_order() {
        let mut s = sched();
        let mut a = long_spec(100);
        a.id = RequestId(1);
        a.arrival = SimTime::from_secs(1);
        let mut b = long_spec(100);
        b.id = RequestId(2);
        b.arrival = SimTime::from_secs(2);
        s.on_arrival(PrefillJob::new(b), SimTime::from_secs(2));
        s.on_arrival(PrefillJob::new(a), SimTime::from_secs(1));
        let plan = s.plan_batch(SimTime::from_secs(3), &[], Constraints::unlimited());
        assert_eq!(plan.prefill[0].id, RequestId(1));
    }

    #[test]
    fn one_request_per_batch() {
        // Medha chunks a single prefill at a time (no packing).
        let mut s = sched();
        for i in 0..3 {
            let mut sp = long_spec(10);
            sp.id = RequestId(i);
            s.on_arrival(PrefillJob::new(sp), SimTime::ZERO);
        }
        let plan = s.plan_batch(SimTime::ZERO, &[], Constraints::unlimited());
        assert_eq!(plan.prefill.len(), 1);
        assert_eq!(s.pending_prefills(), 2);
    }

    #[test]
    fn respects_constraints() {
        let mut s = sched();
        s.on_arrival(PrefillJob::new(long_spec(10_000)), SimTime::ZERO);
        let blocked = s.plan_batch(
            SimTime::ZERO,
            &[],
            Constraints {
                kv_headroom_tokens: u64::MAX,
                allow_prefill: false,
                max_new_requests: usize::MAX,
            },
        );
        assert!(blocked.is_empty());
        let capped = s.plan_batch(
            SimTime::ZERO,
            &[],
            Constraints {
                kv_headroom_tokens: 128,
                allow_prefill: true,
                max_new_requests: usize::MAX,
            },
        );
        assert_eq!(capped.prefill_tokens(), 128);
    }
}
