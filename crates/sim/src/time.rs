//! Integer simulated time.
//!
//! [`SimTime`] is an instant measured in microseconds since the start of a
//! simulation; [`SimDuration`] is a non-negative span between instants.
//! Signed arithmetic (needed for *slack*, which can be negative once a
//! deadline has passed) goes through [`SimTime::signed_duration_since`],
//! which returns plain `i64` microseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::nums;

/// An instant in simulated time, in microseconds since simulation start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. It only
/// supports adding/subtracting [`SimDuration`]; subtracting two instants
/// yields a `SimDuration` and saturates at zero (use
/// [`signed_duration_since`](SimTime::signed_duration_since) when the result
/// may be negative).
///
/// # Example
///
/// ```
/// use qoserve_sim::{SimTime, SimDuration};
/// let t = SimTime::from_secs_f64(1.5);
/// assert_eq!(t.as_micros(), 1_500_000);
/// assert_eq!(t + SimDuration::from_millis(500), SimTime::from_secs_f64(2.0));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A non-negative span of simulated time, in microseconds.
///
/// # Example
///
/// ```
/// use qoserve_sim::SimDuration;
/// let d = SimDuration::from_millis(50) * 3;
/// assert_eq!(d.as_secs_f64(), 0.15);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from whole milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(nums::f64_round_to_u64(secs * 1e6))
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Span since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Signed span since `other`, in microseconds. Positive when `self`
    /// is later than `other`. This is the primitive used to compute deadline
    /// slack, which may be negative.
    #[inline]
    pub fn signed_duration_since(self, other: SimTime) -> SignedDuration {
        SignedDuration(nums::u64_delta_i64(self.0, other.0))
    }

    /// Saturating subtraction of a duration (clamps at time zero).
    #[inline]
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span from whole milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(nums::f64_round_to_u64(secs * 1e6))
    }

    /// Creates a span from fractional milliseconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_millis_f64(millis: f64) -> Self {
        SimDuration(nums::f64_round_to_u64(millis * 1e3))
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This span as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True when the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a non-negative float, rounding to a whole microsecond.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration(nums::f64_round_to_u64(self.0 as f64 * factor.max(0.0)))
    }

    /// Returns the larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

/// A signed span of simulated time in microseconds, produced by
/// [`SimTime::signed_duration_since`]. Deadline slack uses this type:
/// negative means the deadline has already passed.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SignedDuration(i64);

impl SignedDuration {
    /// The zero span.
    pub const ZERO: SignedDuration = SignedDuration(0);

    /// Creates a signed span from raw microseconds.
    #[inline]
    pub const fn from_micros(micros: i64) -> Self {
        SignedDuration(micros)
    }

    /// Raw signed microsecond count.
    #[inline]
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// This span as fractional seconds (may be negative).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This span as fractional milliseconds (may be negative).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True when the span is negative (deadline passed).
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Clamps a negative span to zero and converts to [`SimDuration`].
    #[inline]
    pub fn clamp_non_negative(self) -> SimDuration {
        SimDuration(nums::i64_clamp_u64(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl fmt::Display for SignedDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl From<SimDuration> for SignedDuration {
    fn from(d: SimDuration) -> Self {
        SignedDuration(nums::u64_clamp_i64(d.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs_f64(0.25).as_secs_f64(), 0.25);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d).as_secs_f64(), 14.0);
        assert_eq!((t - d).as_secs_f64(), 6.0);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
        assert_eq!(late.duration_since(early), SimDuration::from_secs(4));
    }

    #[test]
    fn signed_duration_for_slack() {
        let deadline = SimTime::from_secs(2);
        let now = SimTime::from_secs(3);
        let slack = deadline.signed_duration_since(now);
        assert!(slack.is_negative());
        assert_eq!(slack.as_micros(), -1_000_000);
        assert_eq!(slack.clamp_non_negative(), SimDuration::ZERO);

        let positive = now.signed_duration_since(deadline);
        assert_eq!(positive.clamp_non_negative(), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(25));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        let max = SimTime::MAX;
        assert_eq!(max + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000000s");
    }

    #[test]
    fn serde_round_trip() {
        let t = SimTime::from_micros(123_456);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, "123456");
        let back: SimTime = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_secs(1);
        let db = SimDuration::from_secs(2);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }
}
