//! The event core: a calendar-queue scheduler and a slab arena for
//! in-flight jobs.
//!
//! Both structures exist to make big simulations (hundreds of replicas,
//! millions of requests) cheap without giving up one bit of determinism:
//!
//! * [`CalendarQueue`] is a bucketed timing wheel with a monotone
//!   radix-heap overflow, ordered by the total key
//!   `(time_us, sub, seq)` — the same total order the decision trace is
//!   canonicalised by (`sub` carries the replica index there). Events at
//!   the same `(time, sub)` pop in push order (the monotone `seq`), so a
//!   calendar queue is a drop-in replacement for
//!   [`EventQueue`](crate::EventQueue) wherever a secondary key is
//!   threaded through. Pops are O(bucket) instead of O(log n), and the
//!   common simulation pattern — pushes clustered a few iterations ahead
//!   of the pop frontier — stays inside the wheel entirely.
//! * [`JobSlab`] is a free-list arena handing out generation-checked
//!   [`JobRef`] indices. Hot loops index jobs in O(1) without hashing or
//!   per-job boxing, and a stale reference (use after free / after slot
//!   reuse) is *detected* — `get` returns `None` instead of silently
//!   reading another job's state.
//!
//! # Determinism contract
//!
//! Every operation is a pure function of the operation sequence: the
//! wheel/overflow/past partition is an implementation detail that never
//! leaks into pop order, which equals a [`std::collections::BinaryHeap`]
//! over `(time_us, sub, seq)` exactly (property-tested against that
//! reference model in `tests/tests/eventcore.rs`). The slab's free list
//! is LIFO, so slot reuse is deterministic too.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::nums;
use crate::time::SimTime;

/// Number of wheel buckets. Power of two so slot math stays shift/mask.
const WHEEL_BUCKETS: usize = 256;
/// Width of one wheel bucket in microseconds (~33 ms — a few typical
/// serving iterations). The wheel spans ~8.6 simulated seconds; events
/// beyond that wait in the radix-heap overflow.
const BUCKET_WIDTH_US: u64 = 1 << 15;
/// Total span of the wheel window.
const WHEEL_SPAN_US: u64 = nums::usize_to_u64(WHEEL_BUCKETS) * BUCKET_WIDTH_US;

#[derive(Debug, Clone)]
struct Entry<T> {
    time: SimTime,
    sub: u64,
    seq: u64,
    payload: T,
}

impl<T> Entry<T> {
    #[inline]
    fn key(&self) -> (u64, u64, u64) {
        (self.time.as_micros(), self.sub, self.seq)
    }
}

/// Wrapper giving the *past* heap min-first ordering on the total key.
#[derive(Debug, Clone)]
struct PastEntry<T>(Entry<T>);

impl<T> PartialEq for PastEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}

impl<T> Eq for PastEntry<T> {}

impl<T> PartialOrd for PastEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for PastEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest key wins.
        other.0.key().cmp(&self.0.key())
    }
}

/// A monotone radix heap over `u64` microsecond keys.
///
/// Classic structure: bucket `0` holds keys equal to `last` (the largest
/// key ever extracted); bucket `i > 0` holds keys whose most significant
/// bit differing from `last` is bit `i - 1`. Pushes must be `>= last`
/// (guaranteed here: the overflow only receives keys at or beyond the
/// wheel window, and the window's base never retreats). The minimum key
/// always lives in the first non-empty bucket; extraction re-buckets that
/// bucket against the new `last`, moving every entry to a strictly lower
/// bucket — amortised O(bits) per entry over its lifetime.
#[derive(Debug, Clone)]
struct RadixHeap<T> {
    buckets: Vec<Vec<(u64, T)>>,
    last: u64,
    len: usize,
}

#[inline]
fn radix_bucket(key: u64, last: u64) -> usize {
    if key == last {
        0
    } else {
        64 - nums::u32_to_usize((key ^ last).leading_zeros())
    }
}

impl<T> RadixHeap<T> {
    fn new() -> Self {
        RadixHeap {
            buckets: (0..65).map(|_| Vec::new()).collect(),
            last: 0,
            len: 0,
        }
    }

    fn push(&mut self, key: u64, value: T) {
        debug_assert!(key >= self.last, "radix heap requires monotone pushes");
        self.buckets[radix_bucket(key, self.last)].push((key, value));
        self.len += 1;
    }

    /// The smallest key currently stored, without normalising.
    fn min_key(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let i = self.buckets.iter().position(|b| !b.is_empty())?;
        if i == 0 {
            Some(self.last)
        } else {
            self.buckets[i].iter().map(|(k, _)| *k).min()
        }
    }

    /// Moves the minimum-key group into bucket 0 (setting `last` to it).
    fn normalize(&mut self) {
        let Some(i) = self.buckets.iter().position(|b| !b.is_empty()) else {
            return;
        };
        if i == 0 {
            return;
        }
        let drained = std::mem::take(&mut self.buckets[i]);
        // The minimum of the first non-empty bucket is the global minimum.
        self.last = drained.iter().map(|(k, _)| *k).min().unwrap_or(self.last);
        for (k, v) in drained {
            self.buckets[radix_bucket(k, self.last)].push((k, v));
        }
    }

    /// Pops every entry with key `< bound`, in nondecreasing key order
    /// (ties in their bucket insertion order), into `f`.
    fn drain_below(&mut self, bound: u64, mut f: impl FnMut(T)) {
        while self.len > 0 {
            match self.min_key() {
                Some(m) if m < bound => {}
                _ => break,
            }
            self.normalize();
            let group = std::mem::take(&mut self.buckets[0]);
            self.len -= group.len();
            for (_, v) in group {
                f(v);
            }
        }
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.last = 0;
        self.len = 0;
    }
}

/// A calendar queue: bucketed timing wheel + radix-heap overflow, totally
/// ordered by `(time_us, sub, seq)` with `seq` assigned monotonically at
/// push. `sub` is a caller-chosen secondary key (the replica index in the
/// cluster runner; zero when unused), matching the decision trace's
/// canonical record order.
///
/// # Example
///
/// ```
/// use qoserve_sim::{CalendarQueue, SimTime};
///
/// let mut q = CalendarQueue::new();
/// q.push(SimTime::from_secs(2), 1, "b");
/// q.push(SimTime::from_secs(1), 9, "a");
/// q.push(SimTime::from_secs(2), 0, "c");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), 9, "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), 0, "c")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), 1, "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    /// The wheel: `WHEEL_BUCKETS` unsorted buckets of `BUCKET_WIDTH_US`
    /// each, covering `[base_us, base_us + WHEEL_SPAN_US)`.
    wheel: Vec<Vec<Entry<T>>>,
    wheel_len: usize,
    /// Index of the bucket whose window starts at `base_us`.
    cursor: usize,
    /// Low edge of the cursor bucket's window (multiple of the width).
    base_us: u64,
    /// Entries pushed behind `base_us` (the wheel never retreats); kept in
    /// an ordinary heap so arbitrary interleavings stay exact.
    past: BinaryHeap<PastEntry<T>>,
    /// Entries at or beyond the wheel window.
    overflow: RadixHeap<Entry<T>>,
    next_seq: u64,
    len: usize,
}

#[inline]
fn slot_of(time_us: u64) -> usize {
    nums::u64_to_usize(time_us / BUCKET_WIDTH_US) % WHEEL_BUCKETS
}

#[inline]
fn align_down(time_us: u64) -> u64 {
    time_us - (time_us % BUCKET_WIDTH_US)
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue anchored at time zero.
    pub fn new() -> Self {
        CalendarQueue {
            wheel: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            wheel_len: 0,
            cursor: 0,
            base_us: 0,
            past: BinaryHeap::new(),
            overflow: RadixHeap::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// [`new`](Self::new) with per-bucket capacity pre-reserved for about
    /// `capacity` total events spread over the wheel.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = CalendarQueue::new();
        let per_bucket = (capacity / WHEEL_BUCKETS).min(1 << 16);
        if per_bucket > 0 {
            for b in &mut q.wheel {
                b.reserve(per_bucket);
            }
        }
        q
    }

    /// Schedules `payload` at `(time, sub)`. Ties on both pop in push
    /// order.
    pub fn push(&mut self, time: SimTime, sub: u64, payload: T) {
        let entry = Entry {
            time,
            sub,
            seq: self.next_seq,
            payload,
        };
        self.next_seq += 1;
        self.len += 1;
        let t = time.as_micros();
        if t < self.base_us {
            self.past.push(PastEntry(entry));
        } else if t < self.base_us + WHEEL_SPAN_US {
            self.wheel[slot_of(t)].push(entry);
            self.wheel_len += 1;
        } else {
            self.overflow.push(t, entry);
        }
    }

    /// Removes and returns the earliest event by `(time_us, sub, seq)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        // Past entries are strictly behind every wheel/overflow entry
        // (they were pushed behind a base that never retreats), so the
        // heap's min is the global min whenever it is non-empty.
        if let Some(PastEntry(e)) = self.past.pop() {
            return Some((e.time, e.sub, e.payload));
        }
        if self.wheel_len == 0 {
            self.refill_from_overflow();
        }
        // Advance the cursor to the first occupied bucket. Each bucket
        // holds one window of the current span, so the first occupied one
        // contains the global minimum.
        while self.wheel[self.cursor].is_empty() {
            self.cursor = (self.cursor + 1) % WHEEL_BUCKETS;
            self.base_us += BUCKET_WIDTH_US;
        }
        let bucket = &mut self.wheel[self.cursor];
        let mut min_i = 0;
        for i in 1..bucket.len() {
            if bucket[i].key() < bucket[min_i].key() {
                min_i = i;
            }
        }
        let e = bucket.swap_remove(min_i);
        self.wheel_len -= 1;
        Some((e.time, e.sub, e.payload))
    }

    /// Re-anchors the empty wheel at the overflow's minimum and pulls in
    /// every overflow entry that now fits the window.
    fn refill_from_overflow(&mut self) {
        debug_assert_eq!(self.wheel_len, 0);
        let Some(m) = self.overflow.min_key() else {
            return;
        };
        self.base_us = align_down(m);
        self.cursor = slot_of(m);
        let bound = self.base_us + WHEEL_SPAN_US;
        let wheel = &mut self.wheel;
        let mut moved = 0;
        self.overflow.drain_below(bound, |e| {
            wheel[slot_of(e.time.as_micros())].push(e);
            moved += 1;
        });
        self.wheel_len += moved;
    }

    /// The earliest scheduled time, without removing anything.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(PastEntry(e)) = self.past.peek() {
            return Some(e.time);
        }
        if self.wheel_len > 0 {
            // Non-mutating cursor scan.
            let mut cursor = self.cursor;
            loop {
                if let Some(min) = self.wheel[cursor].iter().map(|e| e.time).min() {
                    return Some(min);
                }
                cursor = (cursor + 1) % WHEEL_BUCKETS;
            }
        }
        self.overflow.min_key().map(SimTime::from_micros)
    }

    /// Pops the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, u64, T)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every event and re-anchors at time zero. Sequence numbers
    /// keep counting, so FIFO stability spans a clear.
    pub fn clear(&mut self) {
        for b in &mut self.wheel {
            b.clear();
        }
        self.wheel_len = 0;
        self.cursor = 0;
        self.base_us = 0;
        self.past.clear();
        self.overflow.clear();
        self.len = 0;
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<T> Extend<(SimTime, u64, T)> for CalendarQueue<T> {
    fn extend<I: IntoIterator<Item = (SimTime, u64, T)>>(&mut self, iter: I) {
        for (time, sub, payload) in iter {
            self.push(time, sub, payload);
        }
    }
}

impl<T> FromIterator<(SimTime, u64, T)> for CalendarQueue<T> {
    fn from_iter<I: IntoIterator<Item = (SimTime, u64, T)>>(iter: I) -> Self {
        let mut q = CalendarQueue::new();
        q.extend(iter);
        q
    }
}

/// A generation-checked handle into a [`JobSlab`].
///
/// Indices are reused after removal, but every reuse bumps the slot's
/// generation, so a `JobRef` held across its job's removal resolves to
/// `None` rather than aliasing the slot's next occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobRef {
    index: u32,
    generation: u32,
}

#[derive(Debug, Clone)]
struct SlabSlot<T> {
    generation: u32,
    value: Option<T>,
}

/// A slab arena for in-flight jobs: O(1) insert/lookup/remove with LIFO
/// slot reuse and generation-checked references.
///
/// # Example
///
/// ```
/// use qoserve_sim::JobSlab;
///
/// let mut slab = JobSlab::new();
/// let a = slab.insert("job a");
/// assert_eq!(slab.get(a), Some(&"job a"));
/// assert_eq!(slab.remove(a), Some("job a"));
/// // The handle is dead: the slot may be reused, but `a` cannot see it.
/// let b = slab.insert("job b");
/// assert_eq!(slab.get(a), None);
/// assert_eq!(slab.get(b), Some(&"job b"));
/// ```
#[derive(Debug, Clone)]
pub struct JobSlab<T> {
    slots: Vec<SlabSlot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> JobSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        JobSlab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty slab with room for `capacity` jobs.
    pub fn with_capacity(capacity: usize) -> Self {
        JobSlab {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Stores `value`, returning its handle.
    pub fn insert(&mut self, value: T) -> JobRef {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[nums::u32_to_usize(index)];
            debug_assert!(slot.value.is_none());
            slot.value = Some(value);
            JobRef {
                index,
                generation: slot.generation,
            }
        } else {
            let index = u32::try_from(self.slots.len()).unwrap_or_else(|_| {
                // qoserve-lint: allow(panic-hygiene) -- 4 billion live jobs means the simulation itself is broken
                panic!("JobSlab overflow")
            });
            self.slots.push(SlabSlot {
                generation: 0,
                value: Some(value),
            });
            JobRef {
                index,
                generation: 0,
            }
        }
    }

    /// The job behind `r`, or `None` if it was removed (or `r` belongs to
    /// a previous occupant of a reused slot).
    pub fn get(&self, r: JobRef) -> Option<&T> {
        let slot = self.slots.get(nums::u32_to_usize(r.index))?;
        if slot.generation != r.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutable access to the job behind `r`, with the same staleness
    /// checks as [`get`](Self::get).
    pub fn get_mut(&mut self, r: JobRef) -> Option<&mut T> {
        let slot = self.slots.get_mut(nums::u32_to_usize(r.index))?;
        if slot.generation != r.generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// Removes and returns the job behind `r`; the slot's generation is
    /// bumped so stale copies of `r` die with it. Removing twice returns
    /// `None`.
    pub fn remove(&mut self, r: JobRef) -> Option<T> {
        let slot = self.slots.get_mut(nums::u32_to_usize(r.index))?;
        if slot.generation != r.generation {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(r.index);
        self.len -= 1;
        Some(value)
    }

    /// Number of live jobs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live jobs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every job. Generations of occupied slots are bumped, so
    /// handles from before the clear are all stale.
    pub fn clear(&mut self) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.value.take().is_some() {
                slot.generation = slot.generation.wrapping_add(1);
                self.free.push(nums::usize_to_u32(i));
            }
        }
        self.len = 0;
    }
}

impl<T> Default for JobSlab<T> {
    fn default() -> Self {
        JobSlab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_sub_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(t(500), 2, "late-sub2");
        q.push(t(500), 1, "late-sub1");
        q.push(t(100), 0, "early");
        q.push(t(500), 1, "late-sub1-second");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((t(100), 0, "early")));
        assert_eq!(q.pop(), Some((t(500), 1, "late-sub1")));
        assert_eq!(q.pop(), Some((t(500), 1, "late-sub1-second")));
        assert_eq!(q.pop(), Some((t(500), 2, "late-sub2")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_route_through_the_overflow_heap() {
        let mut q = CalendarQueue::new();
        // Far beyond the wheel span: must land in (and return from) the
        // radix-heap overflow.
        let horizon = WHEEL_SPAN_US * 40;
        for i in (0..100u64).rev() {
            q.push(t(i * horizon / 100), i, i);
        }
        let mut last = None;
        for _ in 0..100 {
            let (time, sub, _) = q.pop().expect("100 events");
            let key = (time.as_micros(), sub);
            assert!(last.map_or(true, |l| l <= key), "nondecreasing pops");
            last = Some(key);
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pushes_behind_the_wheel_base_still_pop_first() {
        let mut q = CalendarQueue::new();
        q.push(t(WHEEL_SPAN_US * 3), 0, "far");
        // Popping nothing yet; draining the wheel forward happens on pop.
        q.push(t(10), 0, "near");
        assert_eq!(q.pop(), Some((t(10), 0, "near")));
        // The wheel has re-anchored at the far event; a push behind the
        // new base must still pop before it.
        q.push(t(WHEEL_SPAN_US * 3), 0, "far-tie");
        let _ = q.pop(); // "far" or re-anchor; order pinned below
                         // Now the base sits at the far window. Push something earlier.
        q.push(t(20), 0, "behind-base");
        assert_eq!(q.pop(), Some((t(20), 0, "behind-base")));
        assert_eq!(q.pop(), Some((t(WHEEL_SPAN_US * 3), 0, "far-tie")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = CalendarQueue::new();
        q.push(t(1_000), 0, "a");
        q.push(t(2_000), 0, "b");
        assert_eq!(q.pop_due(t(500)), None);
        assert_eq!(q.pop_due(t(1_000)), Some((t(1_000), 0, "a")));
        assert_eq!(q.pop_due(t(1_000)), None);
        assert_eq!(q.peek_time(), Some(t(2_000)));
        assert_eq!(q.pop_due(t(5_000)), Some((t(2_000), 0, "b")));
    }

    #[test]
    fn clear_empties_and_reanchors() {
        let mut q = CalendarQueue::new();
        q.push(t(WHEEL_SPAN_US * 7), 0, 1u32);
        q.push(t(5), 0, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(t(3), 0, 3);
        assert_eq!(q.pop(), Some((t(3), 0, 3)));
    }

    #[test]
    fn matches_event_queue_order_with_zero_sub() {
        use crate::EventQueue;
        let times = [7u64, 7, 3, 900_000, 7, 3, 12_000_000, 0, 900_000];
        let mut cq = CalendarQueue::new();
        let mut eq = EventQueue::new();
        for (i, &us) in times.iter().enumerate() {
            cq.push(t(us), 0, i);
            eq.push(t(us), i);
        }
        loop {
            let a = cq.pop().map(|(time, _, v)| (time, v));
            let b = eq.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn slab_inserts_and_lookups() {
        let mut slab = JobSlab::with_capacity(4);
        let a = slab.insert(10);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&10));
        *slab.get_mut(b).unwrap() += 1;
        assert_eq!(slab.get(b), Some(&21));
    }

    #[test]
    fn slab_detects_stale_refs_after_reuse() {
        let mut slab = JobSlab::new();
        let a = slab.insert("a");
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.remove(a), None, "double remove is detected");
        let b = slab.insert("b"); // reuses slot 0
        assert_eq!(slab.get(a), None, "stale ref must not alias");
        assert_eq!(slab.get_mut(a), None);
        assert_eq!(slab.get(b), Some(&"b"));
    }

    #[test]
    fn slab_clear_invalidates_everything() {
        let mut slab = JobSlab::new();
        let refs: Vec<JobRef> = (0..5).map(|i| slab.insert(i)).collect();
        slab.clear();
        assert!(slab.is_empty());
        for r in refs {
            assert_eq!(slab.get(r), None);
        }
        let again = slab.insert(99);
        assert_eq!(slab.get(again), Some(&99));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn slab_free_list_reuse_is_deterministic() {
        let mut slab = JobSlab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        slab.remove(a);
        slab.remove(b);
        // LIFO reuse: most recently freed slot first.
        let c = slab.insert(3);
        let d = slab.insert(4);
        assert_eq!(slab.get(c), Some(&3));
        assert_eq!(slab.get(d), Some(&4));
        assert_eq!(slab.len(), 2);
    }
}
