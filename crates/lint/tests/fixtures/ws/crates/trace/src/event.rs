//! Fixture: the trace taxonomy — three variants, one of which the
//! exporter next door forgets.

pub enum TraceEvent {
    Arrived,
    Completed,
    Dropped,
}
