//! Scheduler-side request state.

use qoserve_sim::time::SignedDuration;
use qoserve_sim::SimTime;
use qoserve_workload::{Priority, RequestId, RequestSpec};

/// A request waiting in (or partially through) the prefill phase, owned by
/// the scheduler from arrival until its last prompt token is scheduled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefillJob {
    /// The underlying request.
    pub spec: RequestSpec,
    /// Prompt tokens already scheduled in earlier iterations.
    pub prefill_done: u32,
    /// Whether eager relegation has demoted this job.
    pub relegated: bool,
}

impl PrefillJob {
    /// Wraps a freshly arrived request.
    pub fn new(spec: RequestSpec) -> Self {
        PrefillJob {
            spec,
            prefill_done: 0,
            relegated: false,
        }
    }

    /// Request identity.
    pub fn id(&self) -> RequestId {
        self.spec.id
    }

    /// Prompt tokens still to process.
    pub fn remaining_tokens(&self) -> u32 {
        self.spec.prompt_tokens.saturating_sub(self.prefill_done)
    }

    /// True when every prompt token has been scheduled.
    pub fn is_complete(&self) -> bool {
        self.remaining_tokens() == 0
    }

    /// The deadline that decides this job's urgency: TTFT for interactive
    /// requests, TTLT otherwise (Eq. 1 / Eq. 3).
    pub fn urgency_deadline(&self) -> SimTime {
        self.spec.first_token_deadline()
    }

    /// Importance hint.
    pub fn priority(&self) -> Priority {
        self.spec.priority()
    }
}

/// Snapshot of one decoding request, taken by the engine each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeJob {
    /// The request.
    pub id: RequestId,
    /// Tokens currently in the KV cache for this request (prompt plus
    /// generated so far) — the decode-attention read cost.
    pub context_len: u32,
    /// Absolute deadline of the *next* token (Eq. 2 for interactive,
    /// Eq. 3 for non-interactive).
    pub next_token_deadline: SimTime,
    /// Whether the request was relegated during its prefill (its deadlines
    /// are already forfeit, so it must not constrain the batch's slack).
    pub relegated: bool,
}

impl DecodeJob {
    /// Signed slack of the next token at `now`; negative when the token is
    /// already late.
    pub fn slack(&self, now: SimTime) -> SignedDuration {
        self.next_token_deadline.signed_duration_since(now)
    }

    /// True when this decode should bound the batch's latency budget:
    /// relegated requests and requests that are already hopelessly late do
    /// not constrain the chunk (they would freeze the whole replica at a
    /// zero budget — the cascade the paper's relegation exists to stop).
    pub fn constrains_slack(&self, now: SimTime) -> bool {
        !self.relegated && !self.slack(now).is_negative()
    }
}

/// Minimum positive slack across the decode pool at `now`; `None` when no
/// decode constrains the batch (then the chunk budget is unconstrained).
pub fn min_decode_slack(decodes: &[DecodeJob], now: SimTime) -> Option<qoserve_sim::SimDuration> {
    decodes
        .iter()
        .filter(|d| d.constrains_slack(now))
        .map(|d| d.slack(now).clamp_non_negative())
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_sim::SimDuration;
    use qoserve_workload::{QosTier, Slo};

    fn spec(prompt: u32) -> RequestSpec {
        RequestSpec {
            id: RequestId(1),
            arrival: SimTime::from_secs(10),
            prompt_tokens: prompt,
            decode_tokens: 50,
            slo: Slo::of_tier(QosTier::paper_q1()),
            app_id: 0,
        }
    }

    #[test]
    fn prefill_progress() {
        let mut j = PrefillJob::new(spec(1_000));
        assert_eq!(j.remaining_tokens(), 1_000);
        assert!(!j.is_complete());
        j.prefill_done = 600;
        assert_eq!(j.remaining_tokens(), 400);
        j.prefill_done = 1_000;
        assert!(j.is_complete());
    }

    #[test]
    fn urgency_deadline_is_ttft_for_interactive() {
        let j = PrefillJob::new(spec(100));
        assert_eq!(j.urgency_deadline(), SimTime::from_secs(16));
    }

    #[test]
    fn decode_slack_signs() {
        let d = DecodeJob {
            id: RequestId(0),
            context_len: 500,
            next_token_deadline: SimTime::from_secs(20),
            relegated: false,
        };
        assert_eq!(
            d.slack(SimTime::from_secs(18)).clamp_non_negative(),
            SimDuration::from_secs(2)
        );
        assert!(d.slack(SimTime::from_secs(21)).is_negative());
        assert!(d.constrains_slack(SimTime::from_secs(19)));
        assert!(!d.constrains_slack(SimTime::from_secs(21)));
    }

    #[test]
    fn relegated_decode_never_constrains() {
        let d = DecodeJob {
            id: RequestId(0),
            context_len: 500,
            next_token_deadline: SimTime::from_secs(100),
            relegated: true,
        };
        assert!(!d.constrains_slack(SimTime::ZERO));
    }

    #[test]
    fn min_slack_over_pool() {
        let now = SimTime::from_secs(10);
        let mk = |deadline_secs: u64, relegated: bool| DecodeJob {
            id: RequestId(0),
            context_len: 1,
            next_token_deadline: SimTime::from_secs(deadline_secs),
            relegated,
        };
        // Tightest non-relegated, non-late decode wins.
        let pool = vec![mk(30, false), mk(12, false), mk(11, true), mk(5, false)];
        assert_eq!(
            min_decode_slack(&pool, now),
            Some(SimDuration::from_secs(2))
        );
        // Empty / all-relegated pools are unconstrained.
        assert_eq!(min_decode_slack(&[], now), None);
        assert_eq!(min_decode_slack(&[mk(50, true)], now), None);
    }
}
