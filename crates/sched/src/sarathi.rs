//! Sarathi-style fixed-chunk scheduling (the paper's baselines).
//!
//! Sarathi-Serve executes every iteration with a fixed *token budget*: all
//! in-flight decodes plus prefill tokens pulled from the queue head until
//! the budget fills (§2.1). The paper derives its baselines by swapping
//! the queue order: Sarathi-FCFS, Sarathi-SJF, Sarathi-SRPF, Sarathi-EDF
//! (§4, Fig. 2). None of them relegate or adapt the chunk.

use qoserve_sim::SimTime;
use qoserve_workload::RequestSpec;

use crate::job::{DecodeJob, PrefillJob};
use crate::policy::OrderPolicy;
use crate::queue::JobQueue;
use crate::{BatchPlan, Constraints, PrefillAssignment, Scheduler};

/// Fixed-chunk scheduler with a pluggable prefill ordering.
///
/// # Example
///
/// ```
/// use qoserve_sched::{OrderPolicy, SarathiScheduler, Scheduler};
///
/// let sched = SarathiScheduler::new(OrderPolicy::Edf, 256);
/// assert_eq!(sched.name(), "Sarathi-EDF");
/// ```
#[derive(Debug, Clone)]
pub struct SarathiScheduler {
    name: String,
    policy: OrderPolicy,
    chunk_size: u32,
    queue: JobQueue,
}

impl SarathiScheduler {
    /// Creates a scheduler with the given ordering and per-iteration token
    /// budget (the paper's shared-cluster baselines use 256 to satisfy the
    /// strictest 50 ms TBT tier; throughput-oriented silos use 2048).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn new(policy: OrderPolicy, chunk_size: u32) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        SarathiScheduler {
            name: format!("Sarathi-{}", policy.label()),
            policy,
            chunk_size,
            queue: JobQueue::new(),
        }
    }

    /// The fixed token budget.
    pub fn chunk_size(&self) -> u32 {
        self.chunk_size
    }

    /// The ordering policy.
    pub fn policy(&self) -> OrderPolicy {
        self.policy
    }
}

impl Scheduler for SarathiScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_arrival(&mut self, job: PrefillJob, _now: SimTime) {
        let key = self.policy.key(&job);
        self.queue.push(job, key);
    }

    fn plan_batch(
        &mut self,
        _now: SimTime,
        decodes: &[DecodeJob],
        constraints: Constraints,
    ) -> BatchPlan {
        // Sarathi's token budget covers decode tokens too: each decoding
        // request consumes one slot of the chunk.
        let budget = self.chunk_size.saturating_sub(decodes.len() as u32);
        let mut plan = BatchPlan {
            prefill: Vec::new(),
            token_budget: budget,
        };
        if !constraints.allow_prefill {
            return plan;
        }

        let mut remaining_budget = budget;
        let mut kv_left = constraints.kv_headroom_tokens;
        let mut new_started = 0usize;
        while remaining_budget > 0 && kv_left > 0 {
            let mut job = match self.queue.pop() {
                Some(j) => j,
                None => break,
            };
            let is_new = job.prefill_done == 0;
            if is_new && new_started >= constraints.max_new_requests {
                let key = self.policy.key(&job);
                self.queue.reinsert(job, key);
                break;
            }
            if is_new {
                new_started += 1;
            }
            let take = remaining_budget
                .min(job.remaining_tokens())
                .min(kv_left.min(u32::MAX as u64) as u32);
            if take == 0 {
                let key = self.policy.key(&job);
                self.queue.reinsert(job, key);
                break;
            }
            let context_before = job.prefill_done;
            job.prefill_done += take;
            remaining_budget -= take;
            kv_left -= take as u64;
            plan.prefill.push(PrefillAssignment {
                id: job.id(),
                tokens: take,
                context_before,
                completes_prefill: job.is_complete(),
                relegated: false,
            });
            if !job.is_complete() {
                let key = self.policy.key(&job);
                self.queue.reinsert(job, key);
            }
        }
        plan
    }

    fn on_completion(&mut self, _spec: &RequestSpec, _observed_decode_tokens: u32) {}

    fn pending_prefills(&self) -> usize {
        self.queue.len()
    }

    fn pending_prefill_tokens(&self) -> u64 {
        self.queue.pending_tokens()
    }

    fn drain_pending(&mut self) -> Vec<PrefillJob> {
        self.queue.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_workload::{QosTier, RequestId, Slo};

    fn spec(id: u64, arrival_secs: u64, prompt: u32, tier: QosTier) -> RequestSpec {
        RequestSpec {
            id: RequestId(id),
            arrival: SimTime::from_secs(arrival_secs),
            prompt_tokens: prompt,
            decode_tokens: 10,
            slo: Slo::of_tier(tier),
            app_id: 0,
        }
    }

    fn arrive(s: &mut SarathiScheduler, specs: &[RequestSpec]) {
        for &sp in specs {
            s.on_arrival(PrefillJob::new(sp), sp.arrival);
        }
    }

    #[test]
    fn fills_fixed_budget_from_queue_head() {
        let mut s = SarathiScheduler::new(OrderPolicy::Fcfs, 256);
        arrive(
            &mut s,
            &[
                spec(0, 1, 200, QosTier::paper_q1()),
                spec(1, 2, 500, QosTier::paper_q1()),
            ],
        );
        let plan = s.plan_batch(SimTime::from_secs(3), &[], Constraints::unlimited());
        // 200 from request 0 (completing it) + 56 from request 1.
        assert_eq!(plan.prefill_tokens(), 256);
        assert_eq!(plan.prefill.len(), 2);
        assert_eq!(plan.prefill[0].id, RequestId(0));
        assert!(plan.prefill[0].completes_prefill);
        assert_eq!(plan.prefill[1].tokens, 56);
        assert!(!plan.prefill[1].completes_prefill);
        assert_eq!(s.pending_prefills(), 1);
        assert_eq!(s.pending_prefill_tokens(), 444);
    }

    #[test]
    fn decodes_consume_budget() {
        let mut s = SarathiScheduler::new(OrderPolicy::Fcfs, 256);
        arrive(&mut s, &[spec(0, 1, 1_000, QosTier::paper_q1())]);
        let decodes: Vec<DecodeJob> = (0..56)
            .map(|i| DecodeJob {
                id: RequestId(1_000 + i),
                context_len: 100,
                next_token_deadline: SimTime::from_secs(100),
                relegated: false,
            })
            .collect();
        let plan = s.plan_batch(SimTime::from_secs(2), &decodes, Constraints::unlimited());
        assert_eq!(plan.prefill_tokens(), 200);
        assert_eq!(plan.token_budget, 200);
    }

    #[test]
    fn srpf_reorders_after_progress() {
        let mut s = SarathiScheduler::new(OrderPolicy::Srpf, 100);
        arrive(
            &mut s,
            &[
                spec(0, 1, 150, QosTier::paper_q1()),
                spec(1, 2, 120, QosTier::paper_q1()),
            ],
        );
        // First batch: request 1 (120 remaining) beats request 0 (150).
        let p1 = s.plan_batch(SimTime::from_secs(3), &[], Constraints::unlimited());
        assert_eq!(p1.prefill[0].id, RequestId(1));
        // Request 1 now has 20 remaining; it still wins the next batch and
        // completes, then request 0 starts.
        let p2 = s.plan_batch(SimTime::from_secs(4), &[], Constraints::unlimited());
        assert_eq!(p2.prefill[0].id, RequestId(1));
        assert!(p2.prefill[0].completes_prefill);
        assert_eq!(p2.prefill[1].id, RequestId(0));
        assert_eq!(p2.prefill[1].tokens, 80);
    }

    #[test]
    fn edf_prefers_interactive_over_earlier_batch() {
        let mut s = SarathiScheduler::new(OrderPolicy::Edf, 64);
        arrive(
            &mut s,
            &[
                spec(0, 0, 500, QosTier::paper_q3()),  // deadline 1800s
                spec(1, 50, 500, QosTier::paper_q1()), // deadline 56s
            ],
        );
        let plan = s.plan_batch(SimTime::from_secs(51), &[], Constraints::unlimited());
        assert_eq!(plan.prefill[0].id, RequestId(1));
    }

    #[test]
    fn respects_kv_headroom() {
        let mut s = SarathiScheduler::new(OrderPolicy::Fcfs, 256);
        arrive(&mut s, &[spec(0, 1, 1_000, QosTier::paper_q1())]);
        let plan = s.plan_batch(
            SimTime::from_secs(2),
            &[],
            Constraints {
                kv_headroom_tokens: 100,
                allow_prefill: true,
                max_new_requests: usize::MAX,
            },
        );
        assert_eq!(plan.prefill_tokens(), 100);
        // Nothing is lost: the rest stays queued.
        assert_eq!(s.pending_prefill_tokens(), 900);
    }

    #[test]
    fn prefill_gate_blocks_everything() {
        let mut s = SarathiScheduler::new(OrderPolicy::Fcfs, 256);
        arrive(&mut s, &[spec(0, 1, 100, QosTier::paper_q1())]);
        let plan = s.plan_batch(
            SimTime::from_secs(2),
            &[],
            Constraints {
                kv_headroom_tokens: u64::MAX,
                allow_prefill: false,
                max_new_requests: usize::MAX,
            },
        );
        assert!(plan.is_empty());
        assert_eq!(s.pending_prefills(), 1);
    }

    #[test]
    fn empty_queue_empty_plan() {
        let mut s = SarathiScheduler::new(OrderPolicy::Fcfs, 256);
        let plan = s.plan_batch(SimTime::ZERO, &[], Constraints::unlimited());
        assert!(plan.is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let _ = SarathiScheduler::new(OrderPolicy::Fcfs, 0);
    }
}
