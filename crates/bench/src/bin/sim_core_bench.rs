//! Simulation-core throughput benchmark and perf ratchet.
//!
//! Measures end-to-end simulated-requests/sec of the cluster runner on a
//! replicas × requests grid, comparing the sharded event-core kernel
//! (`run_shared_faulty`) against the pre-event-core min-now lockstep
//! reference (`run_shared_faulty_lockstep`). Both kernels are pinned
//! bit-identical by the test suite, so the only thing this binary can
//! observe is speed.
//!
//! Modes:
//!
//! * default — measure the full grid (scaled by `QOSERVE_SCALE`), print
//!   a table, append the measured series point to
//!   `results/BENCH_sim_core.json`, and ratchet the check floor upward
//!   (never downward) to 85% of the measured check-point speedup.
//! * `--check` — the CI perf gate: measure the small fixed check point
//!   and fail (exit 1) when its sharded-vs-lockstep speedup falls below
//!   the committed floor, i.e. regresses by more than 15% against the
//!   best recorded measurement.
//!
//! Raw requests/sec depends on the host, so the ratchet gates on the
//! *speedup ratio* — dimensionless and machine-portable. `QOSERVE_THREADS`
//! is forced to 1 so the ratio reflects the kernel's algorithmic win
//! (no O(replicas) min-scan, per-replica cache locality, slab/scratch
//! reuse), not thread-count luck; multi-core parallelism in the sharded
//! kernel is upside on top.

use std::time::Instant;

use qoserve::prelude::*;
use qoserve_bench::banner;
use serde_json::{json, Value};

/// Grid measured by the default mode, before `QOSERVE_SCALE`.
const REPLICA_GRID: [u32; 3] = [8, 64, 256];
const REQUEST_GRID: [usize; 3] = [10_000, 100_000, 1_000_000];

/// Fixed check point for `--check`: small enough for CI, large enough
/// for a stable ratio. Deliberately *not* scaled by `QOSERVE_SCALE` —
/// the committed floor only makes sense against a fixed workload.
const CHECK_REPLICAS: u32 = 64;
const CHECK_REQUESTS: usize = 20_000;

/// Regression tolerance: fail when speedup drops below 85% of the best
/// recorded check-point speedup.
const RATCHET_FRACTION: f64 = 0.85;

const RESULTS_PATH: &str = "results/BENCH_sim_core.json";

struct Point {
    replicas: u32,
    requests: usize,
    lockstep_secs: f64,
    sharded_secs: f64,
}

impl Point {
    fn lockstep_rps(&self) -> f64 {
        self.requests as f64 / self.lockstep_secs.max(1e-9)
    }

    fn sharded_rps(&self) -> f64 {
        self.requests as f64 / self.sharded_secs.max(1e-9)
    }

    fn speedup(&self) -> f64 {
        self.sharded_rps() / self.lockstep_rps().max(1e-9)
    }

    fn row(&self) -> Value {
        json!({
            "replicas": self.replicas,
            "requests": self.requests,
            "lockstep_reqs_per_sec": round2(self.lockstep_rps()),
            "sharded_reqs_per_sec": round2(self.sharded_rps()),
            "speedup": round2(self.speedup()),
        })
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Runs one grid point through both kernels and cross-checks their
/// outcomes bit-for-bit (a free differential test on every benchmark
/// run).
fn measure_point(replicas: u32, requests: usize) -> Point {
    // Constant per-replica offered load, so scaling the replica count
    // scales work instead of idling the fleet.
    let qps = 2.0 * replicas as f64;
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(qps))
        .num_requests(requests)
        .paper_tier_mix()
        .build(&SeedStream::new(4_242));
    let spec = SchedulerSpec::qoserve();
    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let plan = FaultPlan::none();

    let t0 = Instant::now();
    let lockstep = run_shared_faulty_lockstep(
        &trace,
        replicas,
        &spec,
        &config,
        &plan,
        &SeedStream::new(4_242),
    )
    .expect("lockstep run routes");
    let lockstep_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let sharded = run_shared_faulty(
        &trace,
        replicas,
        &spec,
        &config,
        &plan,
        &SeedStream::new(4_242),
    )
    .expect("sharded run routes");
    let sharded_secs = t1.elapsed().as_secs_f64();

    assert_eq!(
        lockstep, sharded,
        "kernels diverged at {replicas} replicas x {requests} requests"
    );

    Point {
        replicas,
        requests,
        lockstep_secs,
        sharded_secs,
    }
}

fn load_results() -> Option<Value> {
    let text = std::fs::read_to_string(RESULTS_PATH).ok()?;
    serde_json::from_str(&text).ok()
}

fn committed_floor(doc: &Value) -> Option<f64> {
    doc.get("check")?.get("min_speedup")?.as_f64()
}

fn run_check() -> i32 {
    let Some(doc) = load_results() else {
        eprintln!("error: {RESULTS_PATH} is missing; run sim_core_bench once to create it");
        return 2;
    };
    let Some(floor) = committed_floor(&doc) else {
        eprintln!("error: {RESULTS_PATH} has no check.min_speedup field");
        return 2;
    };
    let p = measure_point(CHECK_REPLICAS, CHECK_REQUESTS);
    let speedup = p.speedup();
    println!(
        "check point: {} replicas x {} requests -> lockstep {:.0} req/s, sharded {:.0} req/s, speedup {:.2}x (floor {:.2}x)",
        CHECK_REPLICAS,
        CHECK_REQUESTS,
        p.lockstep_rps(),
        p.sharded_rps(),
        speedup,
        floor,
    );
    if speedup < floor {
        eprintln!(
            "PERF REGRESSION: sharded/lockstep speedup {speedup:.2}x fell below the committed floor {floor:.2}x \
             (>15% below the best recorded measurement)"
        );
        return 1;
    }
    println!("perf ratchet OK");
    0
}

fn run_measure() {
    let scale = qoserve::experiments::scale_factor();
    let mut points: Vec<Point> = Vec::new();
    println!("replicas  requests   lockstep req/s   sharded req/s   speedup");
    for &replicas in &REPLICA_GRID {
        for &base in &REQUEST_GRID {
            let requests = ((base as f64 * scale).round() as usize).max(500);
            let p = measure_point(replicas, requests);
            println!(
                "{replicas:>8}  {requests:>8}   {:>14.0}   {:>13.0}   {:>6.2}x",
                p.lockstep_rps(),
                p.sharded_rps(),
                p.speedup(),
            );
            points.push(p);
        }
    }

    // The check-point ratio this machine would gate on (measured
    // explicitly so the floor is anchored to the exact check workload).
    let check = measure_point(CHECK_REPLICAS, CHECK_REQUESTS);
    let check_speedup = check.speedup();
    println!(
        "check point ({CHECK_REPLICAS} replicas x {CHECK_REQUESTS} requests): speedup {check_speedup:.2}x"
    );

    let mut doc = load_results().unwrap_or_else(|| {
        json!({
            "id": "BENCH_sim_core",
            "what": "End-to-end simulated-requests/sec: sharded event-core kernel vs min-now lockstep reference, zero-fault shared deployment, QOSERVE_THREADS=1",
            "series": [],
            "check": {
                "replicas": CHECK_REPLICAS,
                "requests": CHECK_REQUESTS,
                "min_speedup": 1.0,
            },
        })
    });

    let rows: Vec<Value> = points.iter().map(Point::row).collect();
    let entry = json!({
        "scale": scale,
        "check_speedup": round2(check_speedup),
        "grid": rows,
    });
    if let Some(series) = doc.get_mut("series").and_then(Value::as_array_mut) {
        series.push(entry);
    }
    // Ratchet the floor upward only: a slow machine must not lower the
    // bar a fast machine set. 85% of the measured ratio tolerates run
    // noise; anything below it is a real regression.
    let measured_floor = round2(check_speedup * RATCHET_FRACTION);
    if let Some(check_obj) = doc.get_mut("check") {
        let old = check_obj
            .get("min_speedup")
            .and_then(Value::as_f64)
            .unwrap_or(1.0);
        if measured_floor > old {
            check_obj["min_speedup"] = json!(measured_floor);
        }
    }

    match serde_json::to_string_pretty(&doc) {
        Ok(body) => {
            if std::fs::create_dir_all("results")
                .and_then(|()| std::fs::write(RESULTS_PATH, body + "\n"))
                .is_ok()
            {
                println!("series updated: {RESULTS_PATH}");
            } else {
                eprintln!("warning: could not write {RESULTS_PATH}");
            }
        }
        Err(err) => eprintln!("warning: could not serialize results: {err}"),
    }
}

fn main() {
    banner(
        "sim_core_bench",
        "simulation-core throughput: sharded event core vs lockstep reference",
    );
    // Machine-portable ratios: measure the kernel's algorithmic win at a
    // fixed worker count. Thread-count invariance of the *results* is
    // pinned elsewhere; here it only stabilizes timing.
    std::env::set_var("QOSERVE_THREADS", "1");
    let check = std::env::args().any(|a| a == "--check");
    if check {
        std::process::exit(run_check());
    }
    run_measure();
}
