//! Shared helpers for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
//! paper-vs-measured numbers). Run them with
//! `cargo run --release -p qoserve-bench --bin <id>`; set
//! `QOSERVE_SCALE` to stretch measurement windows toward paper scale.

use qoserve::prelude::*;

/// Prints the standard experiment header.
pub fn banner(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!(
        "scale factor {} (set QOSERVE_SCALE to change)",
        qoserve::experiments::scale_factor()
    );
    println!("================================================================");
}

/// Formats an optional latency in seconds.
pub fn secs(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "-".to_owned(),
    }
}

/// Formats a `LatencySummary` percentile pair as `p50/p95`.
pub fn p50_p95(s: &LatencySummary) -> String {
    if s.count == 0 {
        "-".to_owned()
    } else {
        format!("{:.2}/{:.2}", s.p50, s.p95)
    }
}

/// The three per-tier violation percentages as table cells.
pub fn tier_violation_cells(report: &SloReport) -> Vec<String> {
    [TierId::Q1, TierId::Q2, TierId::Q3]
        .iter()
        .map(|t| format!("{:.1}%", report.tier_violation_pct(*t)))
        .collect()
}

/// Median of the tier-judged latency over all finished requests, seconds.
pub fn overall_median_latency(outcomes: &[RequestOutcome]) -> Option<f64> {
    let secs: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.tier_latency())
        .map(|d| d.as_secs_f64())
        .collect();
    qoserve_metrics::percentile(&secs, 0.5)
}

/// p99 of the tier-judged latency over all finished requests, seconds.
pub fn overall_p99_latency(outcomes: &[RequestOutcome]) -> Option<f64> {
    let secs: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.tier_latency())
        .map(|d| d.as_secs_f64())
        .collect();
    qoserve_metrics::percentile(&secs, 0.99)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(None), "-");
        assert_eq!(secs(Some(1.234)), "1.23");
        assert_eq!(p50_p95(&LatencySummary::default()), "-");
    }
}
