//! From-scratch random-forest regression (CART + bagging).
//!
//! The paper trains "a lightweight random forest model which predicts the
//! execution time of a given batch" (§3.6.1) on profiles collected through
//! Vidur's harness. This module implements that learner from first
//! principles: variance-reduction CART trees grown on bootstrap resamples
//! with per-split feature subsampling, averaged at prediction time.
//!
//! The implementation is generic over feature dimension at runtime (rows
//! are `&[f64]` slices) so it can be reused beyond the 4-feature batch
//! profile.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`RandomForest::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees in the ensemble.
    pub num_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_leaf: usize,
    /// Number of candidate features tried at each split (`<= num features`);
    /// 0 means "all features".
    pub features_per_split: usize,
    /// Number of candidate thresholds per feature per split.
    pub thresholds_per_feature: usize,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            num_trees: 24,
            max_depth: 12,
            min_leaf: 4,
            features_per_split: 0,
            thresholds_per_feature: 16,
        }
    }
}

/// A trained random-forest regressor.
///
/// # Example
///
/// ```
/// use qoserve_perf::{RandomForest, RandomForestConfig};
/// use rand::SeedableRng;
///
/// // y = 3x (one feature); the forest should interpolate well in-range.
/// let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0]).collect();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let forest = RandomForest::fit(&xs, &ys, RandomForestConfig::default(), &mut rng).unwrap();
/// let pred = forest.predict(&[100.0]);
/// assert!((pred - 300.0).abs() < 30.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<Tree>,
    num_features: usize,
}

/// Errors from forest training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// No training rows were supplied.
    EmptyTrainingSet,
    /// Rows have inconsistent feature counts, or labels don't match rows.
    ShapeMismatch {
        /// What was expected.
        expected: usize,
        /// What was found.
        found: usize,
    },
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::EmptyTrainingSet => write!(f, "training set is empty"),
            FitError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for FitError {}

/// One CART regression tree stored as a flat node array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Tree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    /// Internal split: go left when `features[feature] <= threshold`.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Terminal node predicting the mean of its training labels.
    Leaf { value: f64 },
}

impl Tree {
    fn predict(&self, features: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn depth_from(&self, idx: usize) -> usize {
        match &self.nodes[idx] {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => {
                1 + self.depth_from(*left).max(self.depth_from(*right))
            }
        }
    }
}

impl RandomForest {
    /// Trains a forest on `rows` (each a feature slice) against `labels`.
    ///
    /// # Errors
    ///
    /// Returns [`FitError::EmptyTrainingSet`] when `rows` is empty and
    /// [`FitError::ShapeMismatch`] when row lengths differ from each other
    /// or `labels.len() != rows.len()`.
    pub fn fit<R: Rng + ?Sized, Row: AsRef<[f64]>>(
        rows: &[Row],
        labels: &[f64],
        config: RandomForestConfig,
        rng: &mut R,
    ) -> Result<RandomForest, FitError> {
        if rows.is_empty() {
            return Err(FitError::EmptyTrainingSet);
        }
        if labels.len() != rows.len() {
            return Err(FitError::ShapeMismatch {
                expected: rows.len(),
                found: labels.len(),
            });
        }
        let num_features = rows[0].as_ref().len();
        for row in rows {
            if row.as_ref().len() != num_features {
                return Err(FitError::ShapeMismatch {
                    expected: num_features,
                    found: row.as_ref().len(),
                });
            }
        }

        let features_per_split = if config.features_per_split == 0 {
            num_features
        } else {
            config.features_per_split.min(num_features)
        };

        let mut trees = Vec::with_capacity(config.num_trees);
        for _ in 0..config.num_trees {
            // Bootstrap resample.
            let indices: Vec<usize> = (0..rows.len())
                .map(|_| rng.gen_range(0..rows.len()))
                .collect();
            let mut builder = TreeBuilder {
                rows,
                labels,
                config,
                features_per_split,
                num_features,
                nodes: Vec::new(),
            };
            builder.grow(indices, 0, rng);
            trees.push(Tree {
                nodes: builder.nodes,
            });
        }

        Ok(RandomForest {
            trees,
            num_features,
        })
    }

    /// Ensemble prediction: mean of all trees.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training feature count.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.num_features,
            "feature count mismatch: trained on {}, got {}",
            self.num_features,
            features.len()
        );
        let sum: f64 = self.trees.iter().map(|t| t.predict(features)).sum();
        sum / self.trees.len() as f64
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Feature dimensionality the forest was trained with.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Maximum depth over all trees (diagnostic).
    pub fn max_depth(&self) -> usize {
        self.trees
            .iter()
            .map(|t| t.depth_from(0))
            .max()
            .unwrap_or(0)
    }

    /// Mean absolute percentage error on a labelled evaluation set; skips
    /// rows whose label is ~0.
    pub fn mape<Row: AsRef<[f64]>>(&self, rows: &[Row], labels: &[f64]) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (row, &y) in rows.iter().zip(labels) {
            if y.abs() < 1e-9 {
                continue;
            }
            total += ((self.predict(row.as_ref()) - y) / y).abs();
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

struct TreeBuilder<'a, Row: AsRef<[f64]>> {
    rows: &'a [Row],
    labels: &'a [f64],
    config: RandomForestConfig,
    features_per_split: usize,
    num_features: usize,
    nodes: Vec<Node>,
}

impl<'a, Row: AsRef<[f64]>> TreeBuilder<'a, Row> {
    /// Grows a subtree over `indices`; returns the node index.
    fn grow<R: Rng + ?Sized>(&mut self, indices: Vec<usize>, depth: usize, rng: &mut R) -> usize {
        let mean = self.mean_label(&indices);

        if depth >= self.config.max_depth
            || indices.len() < 2 * self.config.min_leaf
            || self.is_pure(&indices)
        {
            return self.push(Node::Leaf { value: mean });
        }

        match self.best_split(&indices, rng) {
            None => self.push(Node::Leaf { value: mean }),
            Some((feature, threshold)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .into_iter()
                    .partition(|&i| self.rows[i].as_ref()[feature] <= threshold);
                if left_idx.len() < self.config.min_leaf || right_idx.len() < self.config.min_leaf {
                    return self.push(Node::Leaf { value: mean });
                }
                // Reserve the split slot before growing children so child
                // indices are known.
                let slot = self.push(Node::Leaf { value: mean });
                let left = self.grow(left_idx, depth + 1, rng);
                let right = self.grow(right_idx, depth + 1, rng);
                self.nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn mean_label(&self, indices: &[usize]) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        indices.iter().map(|&i| self.labels[i]).sum::<f64>() / indices.len() as f64
    }

    fn is_pure(&self, indices: &[usize]) -> bool {
        let first = self.labels[indices[0]];
        indices
            .iter()
            .all(|&i| (self.labels[i] - first).abs() < 1e-12)
    }

    /// Finds the (feature, threshold) minimizing weighted child SSE over a
    /// random subset of features and sampled thresholds.
    fn best_split<R: Rng + ?Sized>(&self, indices: &[usize], rng: &mut R) -> Option<(usize, f64)> {
        let mut candidate_features: Vec<usize> = (0..self.num_features).collect();
        candidate_features.shuffle(rng);
        candidate_features.truncate(self.features_per_split);

        let parent_sse = self.sse(indices);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)

        for &feature in &candidate_features {
            let mut values: Vec<f64> = indices
                .iter()
                .map(|&i| self.rows[i].as_ref()[feature])
                .collect();
            qoserve_sim::float::sort_f64(&mut values);
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            let step = (values.len() / self.config.thresholds_per_feature).max(1);
            for w in values.windows(2).step_by(step) {
                let threshold = (w[0] + w[1]) / 2.0;
                let sse = self.split_sse(indices, feature, threshold);
                if sse < best.map_or(parent_sse, |(_, _, s)| s) {
                    best = Some((feature, threshold, sse));
                }
            }
        }

        best.map(|(f, t, _)| (f, t))
    }

    fn sse(&self, indices: &[usize]) -> f64 {
        let mean = self.mean_label(indices);
        indices
            .iter()
            .map(|&i| (self.labels[i] - mean).powi(2))
            .sum()
    }

    fn split_sse(&self, indices: &[usize], feature: usize, threshold: f64) -> f64 {
        let mut left = SseAcc::default();
        let mut right = SseAcc::default();
        for &i in indices {
            if self.rows[i].as_ref()[feature] <= threshold {
                left.push(self.labels[i]);
            } else {
                right.push(self.labels[i]);
            }
        }
        left.sse() + right.sse()
    }
}

/// Single-pass SSE accumulator (Welford).
#[derive(Default)]
struct SseAcc {
    n: f64,
    mean: f64,
    m2: f64,
}

impl SseAcc {
    fn push(&mut self, x: f64) {
        self.n += 1.0;
        let d = x - self.mean;
        self.mean += d / self.n;
        self.m2 += d * (x - self.mean);
    }

    fn sse(&self) -> f64 {
        self.m2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn fit_rejects_empty() {
        let rows: Vec<Vec<f64>> = vec![];
        let err = RandomForest::fit(&rows, &[], RandomForestConfig::default(), &mut rng());
        assert_eq!(err.unwrap_err(), FitError::EmptyTrainingSet);
    }

    #[test]
    fn fit_rejects_label_mismatch() {
        let rows = vec![vec![1.0], vec![2.0]];
        let err = RandomForest::fit(&rows, &[1.0], RandomForestConfig::default(), &mut rng());
        assert!(matches!(err.unwrap_err(), FitError::ShapeMismatch { .. }));
    }

    #[test]
    fn fit_rejects_ragged_rows() {
        let rows = vec![vec![1.0], vec![2.0, 3.0]];
        let err = RandomForest::fit(
            &rows,
            &[1.0, 2.0],
            RandomForestConfig::default(),
            &mut rng(),
        );
        assert!(matches!(err.unwrap_err(), FitError::ShapeMismatch { .. }));
    }

    #[test]
    fn constant_labels_predict_constant() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let labels = vec![7.5; 50];
        let f =
            RandomForest::fit(&rows, &labels, RandomForestConfig::default(), &mut rng()).unwrap();
        assert!((f.predict(&[25.0]) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn learns_linear_function() {
        let rows: Vec<Vec<f64>> = (0..500).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 10.0).collect();
        let f =
            RandomForest::fit(&rows, &labels, RandomForestConfig::default(), &mut rng()).unwrap();
        for x in [50.0, 123.0, 250.0, 444.0] {
            let pred = f.predict(&[x]);
            let truth = 2.0 * x + 10.0;
            assert!(
                (pred - truth).abs() / truth < 0.10,
                "x={x}: predicted {pred}, truth {truth}"
            );
        }
    }

    #[test]
    fn learns_multivariate_interaction() {
        let mut r = rng();
        let rows: Vec<Vec<f64>> = (0..2000)
            .map(|_| vec![r.gen_range(0.0..10.0), r.gen_range(0.0..10.0)])
            .collect();
        let labels: Vec<f64> = rows.iter().map(|x| x[0] * x[1] + 5.0).collect();
        let f =
            RandomForest::fit(&rows, &labels, RandomForestConfig::default(), &mut rng()).unwrap();
        let mape = f.mape(&rows, &labels);
        assert!(mape < 0.10, "in-sample MAPE should be small, got {mape}");
    }

    #[test]
    fn respects_max_depth() {
        let rows: Vec<Vec<f64>> = (0..1000).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let config = RandomForestConfig {
            max_depth: 3,
            ..Default::default()
        };
        let f = RandomForest::fit(&rows, &labels, config, &mut rng()).unwrap();
        assert!(f.max_depth() <= 4, "depth {} exceeds limit", f.max_depth());
    }

    #[test]
    fn deterministic_given_same_rng_seed() {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![i as f64, (i * 7 % 13) as f64])
            .collect();
        let labels: Vec<f64> = rows.iter().map(|r| r[0] + r[1]).collect();
        let f1 =
            RandomForest::fit(&rows, &labels, RandomForestConfig::default(), &mut rng()).unwrap();
        let f2 =
            RandomForest::fit(&rows, &labels, RandomForestConfig::default(), &mut rng()).unwrap();
        assert_eq!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn predict_panics_on_wrong_arity() {
        let rows = vec![vec![1.0, 2.0]; 20];
        let labels = vec![1.0; 20];
        let f =
            RandomForest::fit(&rows, &labels, RandomForestConfig::default(), &mut rng()).unwrap();
        let _ = f.predict(&[1.0]);
    }

    #[test]
    fn serde_round_trip() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = rows.iter().map(|r| r[0] * 3.0).collect();
        let f =
            RandomForest::fit(&rows, &labels, RandomForestConfig::default(), &mut rng()).unwrap();
        let json = serde_json::to_string(&f).unwrap();
        let back: RandomForest = serde_json::from_str(&json).unwrap();
        // serde_json float parsing may be off by 1 ULP without the
        // `float_roundtrip` feature; compare behaviour, not bits.
        assert_eq!(back.num_trees(), f.num_trees());
        for x in [0.0, 10.5, 25.0, 49.0] {
            let d = (back.predict(&[x]) - f.predict(&[x])).abs();
            assert!(d < 1e-9, "round-tripped forest diverged by {d} at x={x}");
        }
    }

    #[test]
    fn num_trees_matches_config() {
        let rows = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![0.0, 1.0, 2.0, 3.0];
        let config = RandomForestConfig {
            num_trees: 7,
            ..Default::default()
        };
        let f = RandomForest::fit(&rows, &labels, config, &mut rng()).unwrap();
        assert_eq!(f.num_trees(), 7);
        assert_eq!(f.num_features(), 1);
    }
}
