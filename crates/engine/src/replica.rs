//! The replica engine: one simulated serving instance.
//!
//! The engine advances in *iterations*, exactly like a chunked-prefill
//! serving loop (§3.1): each iteration batches every in-flight decode with
//! the prefill chunks the scheduler selected, executes the batch against
//! the calibrated latency model (plus noise), and moves simulated time
//! forward by the observed latency. Requests flow prefill queue → decode
//! pool → completion; the KV cache bounds admission.

use std::collections::{BTreeMap, HashMap, HashSet};

use qoserve_metrics::RequestOutcome;
use qoserve_perf::{BatchProfile, HardwareConfig, LatencyModel, PrefillChunkProfile};
use qoserve_sched::{Constraints, DecodeJob, PrefillJob, Scheduler};
use qoserve_sim::faults::ReplicaFaultProfile;
use qoserve_sim::nums;
use qoserve_sim::time::SignedDuration;
use qoserve_sim::{CalendarQueue, JobRef, JobSlab, SeedStream, SimDuration, SimTime};
use qoserve_trace::{FaultKind, TraceEvent, Tracer};
use qoserve_workload::{RequestId, RequestSpec, Trace};

use crate::health::{HealthRing, HealthSample, HealthSnapshot};
use crate::kv::KvCache;
use crate::noise::ExecutionNoise;

/// Availability of a replica, covering both the recovery story
/// (`Up → Degraded → Down → Restarting`) and the elastic control plane's
/// lifecycle (`Provisioning → Warming → Up → Draining → Down`). The
/// engine itself reports `Up`/`Degraded`/`Down`/`Draining`;
/// `Restarting`, `Provisioning`, and `Warming` are the cluster layer's
/// view of replicas that have no live engine generation yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicaState {
    /// Scale-up decided; the instance is being allocated (model weights
    /// not loaded yet). Accepts no work.
    Provisioning,
    /// Model load / cache warm-up in progress. Accepts no work.
    Warming,
    /// Serving normally.
    Up,
    /// Serving inside a straggler/drift window (latency inflated).
    Degraded,
    /// Graceful drain: admission stopped, running decodes finishing to a
    /// deadline. Accepts no *new* work.
    Draining,
    /// Crashed (in-flight and queued work must be re-dispatched), or
    /// scaled down / never provisioned.
    Down,
    /// Waiting out the post-crash downtime before restarting empty.
    Restarting,
}

impl ReplicaState {
    /// Whether a router/dispatcher may send *new* work to a replica in
    /// this state. `Restarting` counts: the crash downtime is modelled by
    /// the fault schedule's up-set, and re-dispatch to a restarting slot
    /// is exactly how orphans revive it.
    pub fn accepts_work(&self) -> bool {
        matches!(
            self,
            ReplicaState::Up | ReplicaState::Degraded | ReplicaState::Restarting
        )
    }
}

/// A request stranded by a replica crash, surfaced to the cluster layer
/// for re-dispatch. Its KV state died with the replica: a re-dispatched
/// request starts prefill from zero (`prefill_done` here records the lost
/// progress, i.e. the re-prefill cost).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrphanedJob {
    /// The stranded request.
    pub spec: RequestSpec,
    /// Prompt tokens whose KV state was lost with the crash.
    pub prefill_done: u32,
    /// Whether eager relegation had demoted the request on the dead
    /// replica.
    pub relegated: bool,
}

/// Configuration of one replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Model/GPU/parallelism served by this replica.
    pub hardware: HardwareConfig,
    /// Maximum concurrent decoding requests (vLLM's `max_num_seqs`);
    /// prefill admission pauses when the pool is full.
    pub max_decode_batch: usize,
    /// Relative execution-noise sigma (0 disables noise).
    pub noise_sigma: f64,
    /// Replica identity recorded into outcomes.
    pub replica_id: u32,
    /// Optional simulated-time cutoff: the run stops here and everything
    /// unfinished is recorded as violated.
    pub horizon: Option<SimTime>,
    /// Record per-batch diagnostics (chunk budgets, latencies) — Fig. 9
    /// and Fig. 15a read these.
    pub record_batches: bool,
    /// Injected-fault timeline for this replica generation: at most one
    /// upcoming crash plus any latency-inflation windows. Healthy by
    /// default, in which case behaviour is bit-identical to the
    /// pre-fault-model engine.
    pub faults: ReplicaFaultProfile,
}

impl ReplicaConfig {
    /// Defaults for `hardware`: TBT-sustainable decode pool (see
    /// [`sustainable_decode_batch`]), 2 % noise, no horizon, no batch
    /// recording.
    pub fn new(hardware: HardwareConfig) -> Self {
        let max_decode_batch = sustainable_decode_batch(&hardware);
        ReplicaConfig {
            hardware,
            max_decode_batch,
            noise_sigma: 0.02,
            replica_id: 0,
            horizon: None,
            record_batches: false,
            faults: ReplicaFaultProfile::healthy(),
        }
    }

    /// Sets the replica id.
    pub fn with_replica_id(mut self, id: u32) -> Self {
        self.replica_id = id;
        self
    }

    /// Sets the injected-fault timeline for this replica generation.
    pub fn with_faults(mut self, faults: ReplicaFaultProfile) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the simulated-time cutoff.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Enables per-batch diagnostics.
    pub fn with_batch_recording(mut self) -> Self {
        self.record_batches = true;
        self
    }
}

/// The default decode-pool cap for a hardware configuration: the largest
/// pool whose *decode-only* iteration stays within a 40 ms budget at a
/// representative 2.5 k-token context per request.
///
/// This is the simulator's analogue of tuning vLLM's `max_num_seqs` per
/// model: a pool so deep that even a decode-only iteration exceeds the
/// strictest TBT makes the 50 ms tier physically unservable no matter what
/// the scheduler does — MHA models (4x the KV traffic of GQA) need a much
/// shallower pool than GQA models.
pub fn sustainable_decode_batch(hw: &HardwareConfig) -> usize {
    const BUDGET_MS: f64 = 40.0;
    const CTX_PER_DECODE: u64 = 2_500;
    let model = LatencyModel::new(hw);
    let fits = |n: u64| {
        let batch = BatchProfile::builder()
            .decodes(nums::u64_to_u32(n), n * CTX_PER_DECODE)
            .build();
        model.iteration_time_us(&batch) / 1e3 <= BUDGET_MS
    };
    let (mut lo, mut hi) = (8u64, 256u64);
    if !fits(lo) {
        return nums::u64_to_usize(lo);
    }
    if fits(hi) {
        return nums::u64_to_usize(hi);
    }
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    nums::u64_to_usize(lo)
}

/// Per-batch diagnostic record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchRecord {
    /// Iteration start time.
    pub start: SimTime,
    /// Observed execution latency.
    pub exec: SimDuration,
    /// The scheduler's token budget for this batch (the dynamic chunk
    /// size in QoServe).
    pub token_budget: u32,
    /// Prefill tokens actually scheduled.
    pub prefill_tokens: u32,
    /// Decode-pool size during the batch.
    pub num_decodes: u32,
}

/// Runtime state of one admitted request.
#[derive(Debug, Clone)]
struct Running {
    spec: RequestSpec,
    prefill_done: u32,
    generated: u32,
    first_token: Option<SimTime>,
    last_token: SimTime,
    max_tbt: SimDuration,
    worst_lateness_us: i64,
    relegated: bool,
}

impl Running {
    fn new(spec: RequestSpec) -> Self {
        Running {
            spec,
            prefill_done: 0,
            generated: 0,
            first_token: None,
            last_token: SimTime::ZERO,
            max_tbt: SimDuration::ZERO,
            worst_lateness_us: i64::MIN,
            relegated: false,
        }
    }

    /// Records the emission of the next output token at `at`.
    fn emit_token(&mut self, at: SimTime) {
        self.generated += 1;
        if self.generated == 1 {
            self.first_token = Some(at);
        } else {
            let gap = at.duration_since(self.last_token);
            self.max_tbt = self.max_tbt.max(gap);
        }
        let deadline = self.spec.token_deadline(self.generated);
        let lateness = at.signed_duration_since(deadline).as_micros();
        self.worst_lateness_us = self.worst_lateness_us.max(lateness);
        self.last_token = at;
    }

    fn is_done(&self) -> bool {
        self.generated >= self.spec.decode_tokens.max(1)
    }

    fn into_outcome(self, replica: u32) -> RequestOutcome {
        RequestOutcome {
            spec: self.spec,
            first_token: self.first_token,
            completion: Some(self.last_token),
            max_tbt: self.max_tbt,
            worst_token_lateness: SignedDuration::from_micros(self.worst_lateness_us),
            relegated: self.relegated,
            replica,
            disposition: qoserve_metrics::Disposition::Completed,
            retries: 0,
            reprefill_tokens: 0,
            drain_migrations: 0,
        }
    }
}

/// One simulated serving replica.
///
/// # Example
///
/// ```
/// use qoserve_engine::{ReplicaConfig, ReplicaEngine};
/// use qoserve_perf::{HardwareConfig, LatencyPredictor};
/// use qoserve_sched::{QoServeConfig, QoServeScheduler};
/// use qoserve_sim::SeedStream;
/// use qoserve_workload::{ArrivalProcess, Dataset, TraceBuilder};
///
/// let hw = HardwareConfig::llama3_8b_a100_tp1();
/// let seeds = SeedStream::new(1);
/// let sched = QoServeScheduler::new(
///     QoServeConfig::default(),
///     LatencyPredictor::analytical(&hw),
/// );
/// let mut engine = ReplicaEngine::new(ReplicaConfig::new(hw), Box::new(sched), &seeds);
/// let trace = TraceBuilder::new(Dataset::azure_conv())
///     .arrivals(ArrivalProcess::poisson(2.0))
///     .num_requests(20)
///     .build(&seeds);
/// let outcomes = engine.run_trace(&trace);
/// assert_eq!(outcomes.len(), 20);
/// ```
pub struct ReplicaEngine {
    config: ReplicaConfig,
    model: LatencyModel,
    noise: ExecutionNoise,
    scheduler: Box<dyn Scheduler>,
    arrivals: CalendarQueue<RequestSpec>,
    /// Specs of every request that has arrived (engine-side copy; the
    /// scheduler owns the live prefill job until completion).
    known_specs: HashMap<RequestId, RequestSpec>,
    /// In-flight request state, slab-allocated so the per-iteration hot
    /// loops index it in O(1) through [`JobRef`]s.
    jobs: JobSlab<Running>,
    /// Index of in-flight requests. Ordered map, not `HashMap`:
    /// `finalize_unfinished` drains it into the outcome list, and that
    /// walk order must be a function of request ids alone for replays to
    /// be bit-identical (`known_specs` above is point-lookup only, so it
    /// may stay hashed).
    running: BTreeMap<RequestId, JobRef>,
    decode_pool: Vec<(RequestId, JobRef)>,
    /// Iteration-scoped scratch (decode snapshot, finished list, batch
    /// profile), kept across steps so the hot loop never reallocates.
    decode_scratch: Vec<DecodeJob>,
    finished_scratch: Vec<RequestId>,
    profile_scratch: BatchProfile,
    kv: KvCache,
    now: SimTime,
    outcomes: Vec<RequestOutcome>,
    iterations: u64,
    batch_log: Vec<BatchRecord>,
    /// Consecutive iterations that made no progress (deadlock guard).
    stall_streak: u32,
    /// Set once the configured crash time is reached; the engine refuses
    /// further work and the cluster layer collects orphans.
    crashed: bool,
    /// Graceful-drain deadline. While set, the scheduler's constraints
    /// pin `max_new_requests` to zero (admitted work keeps chunking, new
    /// work is never admitted) and the engine halts once the running set
    /// empties or the deadline passes.
    draining: Option<SimTime>,
    /// Iterations executed inside a straggler/drift slowdown window.
    degraded_iterations: u64,
    /// Rolling per-iteration health samples backing [`health`](Self::health).
    health: HealthRing,
    /// Decision tracer, pre-bound to this replica's id. Disabled by
    /// default: every emission site is a no-op and behaviour is
    /// bit-identical to the untraced engine.
    tracer: Tracer,
}

impl ReplicaEngine {
    /// Builds an engine around a scheduler.
    pub fn new(config: ReplicaConfig, scheduler: Box<dyn Scheduler>, seeds: &SeedStream) -> Self {
        let model = LatencyModel::new(&config.hardware);
        let kv = KvCache::new(config.hardware.kv_token_capacity());
        let noise = ExecutionNoise::new(seeds, config.replica_id, config.noise_sigma);
        ReplicaEngine {
            config,
            model,
            noise,
            scheduler,
            arrivals: CalendarQueue::new(),
            known_specs: HashMap::new(),
            jobs: JobSlab::new(),
            running: BTreeMap::new(),
            decode_pool: Vec::new(),
            decode_scratch: Vec::new(),
            finished_scratch: Vec::new(),
            profile_scratch: BatchProfile::default(),
            kv,
            now: SimTime::ZERO,
            outcomes: Vec::new(),
            iterations: 0,
            batch_log: Vec::new(),
            stall_streak: 0,
            crashed: false,
            draining: None,
            degraded_iterations: 0,
            health: HealthRing::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a decision tracer. The engine binds the handle to its own
    /// replica id and forwards a clone to the scheduler, so every event —
    /// engine lifecycle or scheduler decision — lands on this replica's
    /// deterministic stream.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        let tracer = tracer.for_replica(self.config.replica_id);
        self.scheduler.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Queues a request for arrival at `spec.arrival`.
    pub fn submit(&mut self, spec: RequestSpec) {
        self.arrivals.push(spec.arrival, 0, spec);
    }

    /// Queues a request for delivery at `at`, independent of
    /// `spec.arrival`. Used for post-crash re-dispatch: the request
    /// reaches the replacement replica only at the re-dispatch time, but
    /// its SLO clock (deadlines derived from `spec.arrival`) keeps
    /// running from the original arrival — a recovered request that blew
    /// its deadline while stranded still counts as violated.
    pub fn submit_at(&mut self, spec: RequestSpec, at: SimTime) {
        self.arrivals.push(at.max(spec.arrival), 0, spec);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// The scheduler's display name.
    pub fn scheduler_name(&self) -> &str {
        self.scheduler.name()
    }

    /// Recorded batch diagnostics (empty unless enabled in the config).
    pub fn batch_log(&self) -> &[BatchRecord] {
        &self.batch_log
    }

    /// Submits every request of `trace` and runs to completion.
    pub fn run_trace(&mut self, trace: &Trace) -> Vec<RequestOutcome> {
        for spec in trace {
            self.submit(*spec);
        }
        self.run()
    }

    /// Runs until all submitted work completes (or the horizon / deadlock
    /// guard fires), returning one outcome per submitted request, ordered
    /// by request id.
    pub fn run(&mut self) -> Vec<RequestOutcome> {
        while self.step() {}
        self.finish()
    }

    /// Finalizes a halted engine: accounts everything still in
    /// flight/queued/unarrived (rejections with their own label, the rest
    /// as unfinished) and returns every outcome, ordered by request id.
    /// Used directly by the fault-aware cluster driver, which steps
    /// engines manually instead of calling [`run`](Self::run).
    pub fn finish(&mut self) -> Vec<RequestOutcome> {
        self.finalize_unfinished();
        let mut outcomes = std::mem::take(&mut self.outcomes);
        outcomes.sort_by_key(|o| o.spec.id);
        outcomes
    }

    /// Executes one engine step. Returns `false` when no work remains (or
    /// the horizon was reached).
    pub fn step(&mut self) -> bool {
        if let Some(h) = self.config.horizon {
            if self.now >= h {
                return false;
            }
        }
        // Crash check: once simulated time reaches the injected crash, the
        // replica does no further work. The cluster layer distinguishes
        // this halt from a drained engine via [`crashed`](Self::crashed)
        // and collects the stranded jobs with
        // [`take_orphans`](Self::take_orphans).
        if let Some(crash) = self.config.faults.crash_at {
            if self.crashed || self.now >= crash {
                self.crashed = true;
                return false;
            }
        }
        // Drain halt: once everything admitted has completed (or the
        // grace deadline passed with work still in flight), the engine
        // stops and the cluster layer hands the rest over via
        // [`take_orphans`](Self::take_orphans).
        if let Some(deadline) = self.draining {
            if self.running.is_empty() || self.now >= deadline {
                return false;
            }
        }
        // Safety net: a scheduler bug that never makes progress would
        // otherwise spin forever.
        if self.stall_streak > 10_000 {
            return false;
        }

        // 1. Deliver due arrivals.
        self.tracer.set_now(self.now);
        while let Some((_, _, spec)) = self.arrivals.pop_due(self.now) {
            self.known_specs.insert(spec.id, spec);
            if self.tracer.enabled() {
                self.tracer.emit(
                    Some(spec.id.0),
                    TraceEvent::RequestArrived {
                        prompt_tokens: spec.prompt_tokens,
                        decode_tokens: spec.decode_tokens,
                        tier: spec.tier().0,
                        deadline_us: spec.first_token_deadline().as_micros(),
                    },
                );
            }
            self.scheduler.on_arrival(PrefillJob::new(spec), self.now);
        }

        // 2. Snapshot the decode pool into the reused scratch buffer —
        // slab lookups through the pool's `JobRef`s, no per-step
        // allocation.
        self.decode_scratch.clear();
        for &(id, job) in &self.decode_pool {
            let Some(r) = self.jobs.get(job) else {
                if cfg!(debug_assertions) {
                    unreachable!("decode {id} is not running");
                }
                continue;
            };
            self.decode_scratch.push(DecodeJob {
                id,
                context_len: r.prefill_done + r.generated,
                next_token_deadline: r.spec.token_deadline(r.generated + 1),
                relegated: r.relegated,
            });
        }

        // 3. Ask the scheduler for the prefill side.
        let total_running = self.running.len();
        let constraints = Constraints {
            kv_headroom_tokens: self.kv.headroom(),
            allow_prefill: total_running < self.config.max_decode_batch,
            // Draining stops *admission* only: every scheduler gates fresh
            // jobs on `max_new_requests` but keeps chunking jobs it
            // already admitted, so running prefills still finish.
            max_new_requests: if self.draining.is_some() {
                0
            } else {
                self.config.max_decode_batch.saturating_sub(total_running)
            },
        };
        let plan = self
            .scheduler
            .plan_batch(self.now, &self.decode_scratch, constraints);

        // 4. Idle handling: nothing runnable this instant.
        if plan.is_empty() && self.decode_scratch.is_empty() {
            if let Some(next) = self.arrivals.peek_time() {
                // Jump to the next arrival.
                self.now = self.now.max(next);
                self.stall_streak = 0;
                return true;
            }
            if self.scheduler.pending_prefills() > 0 {
                // Queued work that cannot be scheduled right now (e.g. KV
                // exhausted); nudge time forward and retry.
                self.now += SimDuration::from_millis(10);
                self.stall_streak += 1;
                return true;
            }
            return false; // fully drained
        }
        self.stall_streak = 0;

        // 5. Execute the mixed batch (profile rebuilt in place, reusing
        // its chunk buffer).
        self.profile_scratch.prefill.clear();
        for a in &plan.prefill {
            self.profile_scratch
                .prefill
                .push(PrefillChunkProfile::new(a.tokens, a.context_before));
        }
        self.profile_scratch.num_decodes = nums::usize_to_u32(self.decode_scratch.len());
        self.profile_scratch.decode_context_total = self
            .decode_scratch
            .iter()
            .map(|d| u64::from(d.context_len))
            .sum();

        let clean = self.model.iteration_time(&self.profile_scratch);
        let mut exec = self.noise.apply(clean);
        // Straggler/drift windows inflate the iteration latency by the
        // product of the factors of every window containing the iteration
        // start. With no active window the multiplier is exactly 1.0 and
        // `exec` is untouched, keeping fault-free runs bit-identical.
        let slowdown = self.config.faults.slowdown_at(self.now);
        let degraded = slowdown > 1.0;
        if degraded {
            exec = exec.mul_f64(slowdown);
            self.degraded_iterations += 1;
            if self.tracer.enabled() {
                self.tracer.emit(
                    None,
                    TraceEvent::FaultInjected {
                        kind: FaultKind::Slowdown,
                        slowdown,
                    },
                );
            }
        }
        if self.tracer.enabled() {
            self.tracer.emit(
                None,
                TraceEvent::IterationExecuted {
                    batch_tokens: plan.prefill_tokens()
                        + nums::usize_to_u32(self.decode_scratch.len()),
                    prefill_tokens: plan.prefill_tokens(),
                    num_decodes: nums::usize_to_u32(self.decode_scratch.len()),
                    observed_us: exec.as_micros(),
                },
            );
        }
        self.now += exec;
        self.tracer.set_now(self.now);
        self.iterations += 1;
        self.health.record(HealthSample {
            degraded,
            ratio: exec.as_micros() as f64 / clean.as_micros().max(1) as f64,
            tokens: u64::from(plan.prefill_tokens())
                + nums::usize_to_u64(self.decode_scratch.len()),
            exec_us: exec.as_micros(),
        });
        // Close the observe→adapt loop: the scheduler sees the batch it
        // planned together with the *observed* execution latency (a no-op
        // for static schedulers).
        self.scheduler
            .on_iteration(&self.profile_scratch, exec, self.now);
        if self.config.record_batches {
            self.batch_log.push(BatchRecord {
                start: self.now - exec,
                exec,
                token_budget: plan.token_budget,
                prefill_tokens: plan.prefill_tokens(),
                num_decodes: nums::usize_to_u32(self.decode_scratch.len()),
            });
        }

        // 6. Decode side: each pooled request emits one token. The pool
        // itself only changes in `complete`, deferred until after the
        // walk, so iterating it directly matches the snapshot exactly.
        self.finished_scratch.clear();
        for i in 0..self.decode_pool.len() {
            let (id, job) = self.decode_pool[i];
            let Some(r) = self.jobs.get_mut(job) else {
                // Scheduler/engine contract breach: loud in debug builds
                // (where the test suite runs), a defensive skip in release.
                if cfg!(debug_assertions) {
                    unreachable!("decode {id} is not running");
                }
                continue;
            };
            r.emit_token(self.now);
            self.kv.write_decode(id);
            if r.is_done() {
                self.finished_scratch.push(id);
            }
        }
        let finished = std::mem::take(&mut self.finished_scratch);
        for &id in &finished {
            self.complete(id);
        }
        self.finished_scratch = finished;

        // 7. Prefill side: apply progress; completions emit their first
        // token and join the decode pool.
        for a in &plan.prefill {
            if !self.running.contains_key(&a.id) {
                // Fresh admission: reserve the decode growth up front so
                // the pooled decode can never be evicted (§3.4: decodes
                // are not preempted).
                let Some(&spec) = self.known_specs.get(&a.id) else {
                    if cfg!(debug_assertions) {
                        unreachable!("scheduler planned unknown request {}", a.id);
                    }
                    continue;
                };
                self.kv
                    .admit(a.id, u64::from(spec.decode_tokens.saturating_sub(1)));
                let job = self.jobs.insert(Running::new(spec));
                self.running.insert(a.id, job);
            }
            // Present unless the unknown-request guard above skipped the
            // admission for this assignment.
            let Some(&job) = self.running.get(&a.id) else {
                continue;
            };
            let Some(entry) = self.jobs.get_mut(job) else {
                continue;
            };
            entry.prefill_done += a.tokens;
            entry.relegated |= a.relegated;
            self.kv.write_prefill(a.id, u64::from(a.tokens));
            if a.completes_prefill {
                entry.emit_token(self.now);
                if self.tracer.enabled() {
                    self.tracer.emit(Some(a.id.0), TraceEvent::FirstToken);
                }
                if entry.is_done() {
                    self.complete(a.id);
                } else {
                    self.decode_pool.push((a.id, job));
                }
            }
        }

        true
    }

    fn complete(&mut self, id: RequestId) {
        let Some(job) = self.running.remove(&id) else {
            if cfg!(debug_assertions) {
                unreachable!("completing unknown request {id}");
            }
            return;
        };
        let Some(r) = self.jobs.remove(job) else {
            if cfg!(debug_assertions) {
                unreachable!("completing stale job for request {id}");
            }
            return;
        };
        self.decode_pool.retain(|(d, _)| *d != id);
        self.kv.release(id);
        self.scheduler.on_completion(&r.spec, r.generated);
        if self.tracer.enabled() {
            self.tracer.emit(
                Some(id.0),
                TraceEvent::RequestCompleted {
                    violated: r.worst_lateness_us > 0,
                    worst_lateness_us: r.worst_lateness_us,
                    max_tbt_us: r.max_tbt.as_micros(),
                    relegated: r.relegated,
                },
            );
        }
        self.outcomes.push(r.into_outcome(self.config.replica_id));
    }

    /// Marks everything still in flight/queued/unarrived as unfinished,
    /// with admission-rejected jobs (rate limiting) carrying their own
    /// distinct label.
    fn finalize_unfinished(&mut self) {
        let replica = self.config.replica_id;
        let mut accounted: std::collections::HashSet<RequestId> = HashSet::new();
        // Index order (by request id), not slab order — pinned by replay
        // bit-identity tests.
        for (id, job) in std::mem::take(&mut self.running) {
            accounted.insert(id);
            let Some(r) = self.jobs.remove(job) else {
                continue;
            };
            self.outcomes
                .push(RequestOutcome::unfinished(r.spec, r.relegated, replica));
        }
        self.decode_pool.clear();
        // Rejections first, so they get the `Rejected` disposition rather
        // than riding along with `drain_pending` as plain unfinished.
        for job in self.scheduler.drain_rejected() {
            if accounted.insert(job.spec.id) {
                self.outcomes
                    .push(RequestOutcome::rejected(job.spec, replica));
            }
        }
        for job in self.scheduler.drain_pending() {
            // Skip jobs that are also in `running` (partially prefilled) —
            // those were already accounted above.
            if accounted.insert(job.spec.id) {
                self.outcomes
                    .push(RequestOutcome::unfinished(job.spec, job.relegated, replica));
            }
        }
        while let Some((_, _, spec)) = self.arrivals.pop() {
            self.outcomes
                .push(RequestOutcome::unfinished(spec, false, replica));
        }
        self.known_specs.clear();
    }

    /// Whether the injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Current availability: `Down` after the crash fires, `Draining`
    /// while a graceful drain is in progress, `Degraded` inside an active
    /// slowdown window, `Up` otherwise. (`Restarting`, `Provisioning`,
    /// and `Warming` are reported by the cluster layer, which owns those
    /// clocks.)
    pub fn state(&self) -> ReplicaState {
        if self.crashed {
            ReplicaState::Down
        } else if self.draining.is_some() {
            ReplicaState::Draining
        } else if self.config.faults.slowdown_at(self.now) > 1.0 {
            ReplicaState::Degraded
        } else {
            ReplicaState::Up
        }
    }

    /// Starts a graceful drain: admission stops immediately, running work
    /// keeps executing until it completes or `deadline` passes, and the
    /// engine then halts (without [`crashed`](Self::crashed)) so the
    /// cluster layer can migrate the leftovers via
    /// [`take_orphans`](Self::take_orphans).
    pub fn begin_drain(&mut self, deadline: SimTime) {
        self.draining = Some(deadline);
    }

    /// Whether a graceful drain is in progress.
    pub fn draining(&self) -> bool {
        self.draining.is_some()
    }

    /// Removes and returns every request still sitting in the arrival
    /// queue (undelivered), in delivery order. The elastic dispatcher
    /// calls this when fleet membership first changes: statically
    /// pre-assigned future arrivals are recalled and re-routed over the
    /// live membership instead. Requests the scheduler already owns are
    /// untouched.
    pub fn take_unarrived(&mut self) -> Vec<RequestSpec> {
        let mut recalled = Vec::new();
        while let Some((_, _, spec)) = self.arrivals.pop() {
            recalled.push(spec);
        }
        recalled
    }

    /// Whether any work remains (queued arrivals, in-flight requests, or
    /// pending prefills). Used by the lockstep cluster driver to tell an
    /// idle-but-alive replica from a drained one.
    pub fn has_work(&self) -> bool {
        !self.arrivals.is_empty()
            || !self.running.is_empty()
            || self.scheduler.pending_prefills() > 0
    }

    /// Iterations executed inside a slowdown window so far.
    pub fn degraded_iterations(&self) -> u64 {
        self.degraded_iterations
    }

    /// Point-in-time health of this replica: rolling degraded-iteration
    /// fraction, observed/clean latency ratio, queue-drain velocity, and
    /// queue depth. A pure read — taking snapshots never perturbs the
    /// replica's own timeline, so health-driven dispatch leaves fault-free
    /// runs bit-identical.
    pub fn health(&self) -> HealthSnapshot {
        HealthSnapshot::from_ring(
            &self.health,
            self.config.replica_id,
            self.state(),
            self.iterations,
            self.scheduler.pending_prefill_tokens(),
            self.scheduler.pending_prefills(),
        )
    }

    /// Takes the outcomes recorded so far (completions plus any rejected
    /// outcomes surfaced by [`take_orphans`](Self::take_orphans)),
    /// unsorted. The fault-aware driver calls this after a crash; callers
    /// of [`run`](Self::run)/[`finish`](Self::finish) never need it.
    pub fn take_outcomes(&mut self) -> Vec<RequestOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// Empties a crashed replica: every in-flight and queued request is
    /// returned as an [`OrphanedJob`] for the cluster layer to
    /// re-dispatch, while admission-rejected jobs are recorded as
    /// `Rejected` outcomes (a 429 happened before the crash; the client
    /// already saw it). Call this *before*
    /// [`take_outcomes`](Self::take_outcomes) so those rejections are
    /// included.
    ///
    /// Orphans are produced in request-id order (in-flight first, then
    /// queued, then unarrived) so recovery replays are bit-identical.
    pub fn take_orphans(&mut self) -> Vec<OrphanedJob> {
        let replica = self.config.replica_id;
        let mut accounted: HashSet<RequestId> = HashSet::new();
        let mut orphans: Vec<OrphanedJob> = Vec::new();
        for (id, job) in std::mem::take(&mut self.running) {
            accounted.insert(id);
            let Some(r) = self.jobs.remove(job) else {
                continue;
            };
            orphans.push(OrphanedJob {
                spec: r.spec,
                prefill_done: r.prefill_done,
                relegated: r.relegated,
            });
        }
        self.decode_pool.clear();
        self.kv.clear();
        for job in self.scheduler.drain_rejected() {
            if accounted.insert(job.spec.id) {
                self.outcomes
                    .push(RequestOutcome::rejected(job.spec, replica));
            }
        }
        for job in self.scheduler.drain_pending() {
            if accounted.insert(job.spec.id) {
                orphans.push(OrphanedJob {
                    spec: job.spec,
                    prefill_done: job.prefill_done,
                    relegated: job.relegated,
                });
            }
        }
        while let Some((_, _, spec)) = self.arrivals.pop() {
            if accounted.insert(spec.id) {
                orphans.push(OrphanedJob {
                    spec,
                    prefill_done: 0,
                    relegated: false,
                });
            }
        }
        self.known_specs.clear();
        orphans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_metrics::Disposition;
    use qoserve_sched::{OrderPolicy, RateLimitScheduler, SarathiScheduler};
    use qoserve_sim::faults::SlowWindow;
    use qoserve_workload::{QosTier, Slo};

    fn spec(id: u64, arrival_ms: u64, prompt: u32, decode: u32) -> RequestSpec {
        RequestSpec {
            id: RequestId(id),
            arrival: SimTime::from_millis(arrival_ms),
            prompt_tokens: prompt,
            decode_tokens: decode,
            slo: Slo::of_tier(QosTier::paper_q1()),
            app_id: 0,
        }
    }

    fn engine_with(config: ReplicaConfig) -> ReplicaEngine {
        let sched = SarathiScheduler::new(OrderPolicy::Fcfs, 256);
        ReplicaEngine::new(config, Box::new(sched), &SeedStream::new(7))
    }

    fn base_config() -> ReplicaConfig {
        let mut c = ReplicaConfig::new(HardwareConfig::llama3_8b_a100_tp1());
        c.noise_sigma = 0.0;
        c
    }

    #[test]
    fn healthy_profile_is_bit_identical_to_default() {
        let mut plain = engine_with(base_config());
        let mut explicit = engine_with(base_config().with_faults(ReplicaFaultProfile::healthy()));
        for e in [&mut plain, &mut explicit] {
            for i in 0..8 {
                e.submit(spec(i, i * 50, 800, 40));
            }
        }
        assert_eq!(plain.run(), explicit.run());
    }

    #[test]
    fn crash_halts_engine_and_orphans_conserve_requests() {
        let crash = SimTime::from_secs(1);
        let mut e = engine_with(base_config().with_faults(ReplicaFaultProfile {
            crash_at: Some(crash),
            windows: Vec::new(),
        }));
        let ids: Vec<u64> = (0..20).collect();
        for &i in &ids {
            // Arrivals straddle the crash: some complete, some strand
            // in-flight/queued, some never arrive.
            e.submit(spec(i, i * 150, 2_000, 100));
        }
        while e.step() {}
        assert!(e.crashed());
        assert_eq!(e.state(), ReplicaState::Down);

        let orphans = e.take_orphans();
        let outcomes = e.take_outcomes();
        assert!(!orphans.is_empty(), "a 1 s crash must strand work");
        let mut seen: Vec<u64> = outcomes
            .iter()
            .map(|o| o.spec.id.0)
            .chain(orphans.iter().map(|j| j.spec.id.0))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, ids, "every request is either accounted or orphaned");
        for o in &outcomes {
            assert_eq!(o.disposition, Disposition::Completed);
            assert!(o.completion.is_some());
        }
    }

    #[test]
    fn crash_before_any_work_orphans_everything() {
        let mut e = engine_with(base_config().with_faults(ReplicaFaultProfile {
            crash_at: Some(SimTime::ZERO),
            windows: Vec::new(),
        }));
        for i in 0..5 {
            e.submit(spec(i, 10 + i, 500, 20));
        }
        assert!(!e.step());
        assert!(e.crashed());
        let orphans = e.take_orphans();
        assert_eq!(orphans.len(), 5);
        assert!(orphans.iter().all(|j| j.prefill_done == 0 && !j.relegated));
        assert!(e.take_outcomes().is_empty());
        assert!(!e.has_work());
    }

    #[test]
    fn slowdown_window_inflates_latency_and_reports_degraded() {
        let window = SlowWindow {
            start: SimTime::ZERO,
            end: SimTime::from_secs(100_000),
            factor: 2.0,
            drift: false,
        };
        let mut healthy = engine_with(base_config());
        let mut slow = engine_with(base_config().with_faults(ReplicaFaultProfile {
            crash_at: None,
            windows: vec![window],
        }));
        assert_eq!(slow.state(), ReplicaState::Degraded);
        for e in [&mut healthy, &mut slow] {
            for i in 0..6 {
                e.submit(spec(i, 0, 1_500, 60));
            }
        }
        let fast = healthy.run();
        let degraded = slow.run();
        assert_eq!(slow.degraded_iterations(), slow.iterations());
        let end = |outs: &[RequestOutcome]| {
            outs.iter()
                .filter_map(|o| o.completion)
                .max()
                .expect("completions")
        };
        assert!(
            end(&degraded) > end(&fast),
            "a 2x straggler window must slow the run down"
        );
    }

    #[test]
    fn health_snapshot_tracks_slowdown_window() {
        let window = SlowWindow {
            start: SimTime::ZERO,
            end: SimTime::from_secs(100_000),
            factor: 1.8,
            drift: false,
        };
        let mut healthy = engine_with(base_config());
        let mut slow = engine_with(base_config().with_faults(ReplicaFaultProfile {
            crash_at: None,
            windows: vec![window],
        }));
        for e in [&mut healthy, &mut slow] {
            for i in 0..6 {
                e.submit(spec(i, 0, 1_500, 60));
            }
            let _ = e.run();
        }
        let good = healthy.health();
        let bad = slow.health();
        assert_eq!(good.degraded_fraction, 0.0);
        assert!((good.mean_latency_ratio - 1.0).abs() < 1e-9, "no noise");
        assert_eq!(good.score(), 1.0);
        assert_eq!(bad.degraded_fraction, 1.0);
        assert!(
            (bad.mean_latency_ratio - 1.8).abs() < 1e-3,
            "ratio must reflect the 1.8x window (up to µs rounding), got {}",
            bad.mean_latency_ratio
        );
        assert!(bad.score() < 0.5, "degraded replica must score low");
        assert!(
            bad.drain_velocity_tokens_per_sec < good.drain_velocity_tokens_per_sec,
            "a straggler drains slower"
        );
        assert_eq!(bad.window as u64, bad.iterations.min(32));
    }

    #[test]
    fn health_snapshot_before_any_iteration_is_nominal() {
        let e = engine_with(base_config().with_replica_id(9));
        let snap = e.health();
        assert_eq!(snap.replica_id, 9);
        assert_eq!(snap.window, 0);
        assert_eq!(snap.score(), 1.0);
        assert_eq!(snap.queue_tokens, 0);
        assert_eq!(snap.pending_prefills, 0);
    }

    #[test]
    fn drain_stops_admission_but_finishes_running_work() {
        let mut e = engine_with(base_config());
        // Two early requests get admitted; the late ones are still queued
        // or unarrived when the drain begins.
        for i in 0..2 {
            e.submit(spec(i, 0, 1_200, 40));
        }
        for i in 2..6 {
            e.submit(spec(i, 5_000 + i * 10, 1_200, 40));
        }
        for _ in 0..3 {
            assert!(e.step());
        }
        e.begin_drain(SimTime::from_secs(600));
        assert_eq!(e.state(), ReplicaState::Draining);
        assert!(e.draining());
        while e.step() {}
        assert!(!e.crashed());

        let orphans = e.take_orphans();
        let outcomes = e.take_outcomes();
        assert!(
            outcomes.iter().any(|o| o.finished()),
            "admitted work must run to completion under drain"
        );
        assert!(
            orphans.iter().all(|j| j.prefill_done == 0),
            "with a generous deadline only never-admitted work is handed over"
        );
        let mut seen: Vec<u64> = outcomes
            .iter()
            .map(|o| o.spec.id.0)
            .chain(orphans.iter().map(|j| j.spec.id.0))
            .collect();
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..6).collect::<Vec<u64>>(),
            "drain conserves requests"
        );
    }

    #[test]
    fn drain_deadline_cuts_running_work_loose() {
        let mut e = engine_with(base_config());
        for i in 0..8 {
            e.submit(spec(i, 0, 4_000, 4_000));
        }
        for _ in 0..3 {
            assert!(e.step());
        }
        let deadline = e.now() + SimDuration::from_millis(50);
        e.begin_drain(deadline);
        while e.step() {}
        assert!(e.now() >= deadline, "halt must come from the deadline");
        let orphans = e.take_orphans();
        assert!(
            !orphans.is_empty(),
            "a 50 ms deadline cannot finish 4k-token decodes"
        );
    }

    #[test]
    fn drain_on_idle_engine_halts_immediately() {
        let mut e = engine_with(base_config());
        e.begin_drain(SimTime::from_secs(1));
        assert!(!e.step());
        assert!(!e.crashed());
        assert_eq!(e.state(), ReplicaState::Draining);
    }

    #[test]
    fn take_unarrived_recalls_only_queue_residents() {
        let mut e = engine_with(base_config());
        e.submit(spec(0, 0, 800, 20));
        e.submit(spec(1, 60_000, 800, 20));
        e.submit(spec(2, 90_000, 800, 20));
        // Deliver the first arrival (and admit it), leaving two queued.
        for _ in 0..2 {
            assert!(e.step());
        }
        let recalled = e.take_unarrived();
        let ids: Vec<u64> = recalled.iter().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![1, 2]);
        let outcomes = e.run();
        assert_eq!(outcomes.len(), 1, "the delivered request still finishes");
        assert!(outcomes[0].finished());
    }

    #[test]
    fn accepts_work_matches_lifecycle_contract() {
        for (state, accepts) in [
            (ReplicaState::Provisioning, false),
            (ReplicaState::Warming, false),
            (ReplicaState::Up, true),
            (ReplicaState::Degraded, true),
            (ReplicaState::Draining, false),
            (ReplicaState::Down, false),
            (ReplicaState::Restarting, true),
        ] {
            assert_eq!(state.accepts_work(), accepts, "{state:?}");
        }
    }

    #[test]
    fn rejections_surface_with_their_own_disposition() {
        let inner = SarathiScheduler::new(OrderPolicy::Fcfs, 256);
        let sched = RateLimitScheduler::new(inner, 1_000);
        let mut config = base_config();
        config.horizon = Some(SimTime::from_millis(200));
        let mut e = ReplicaEngine::new(config, Box::new(sched), &SeedStream::new(7));
        // The first arrival fills the backlog past the cap; the rest bounce.
        for i in 0..4 {
            e.submit(spec(i, 0, 3_000, 50));
        }
        let outcomes = e.run();
        assert_eq!(outcomes.len(), 4);
        let rejected = outcomes
            .iter()
            .filter(|o| o.disposition == Disposition::Rejected)
            .count();
        assert!(rejected >= 1, "backlog cap must produce Rejected outcomes");
        for o in outcomes
            .iter()
            .filter(|o| o.disposition == Disposition::Rejected)
        {
            assert!(o.first_token.is_none());
            assert!(o.completion.is_none());
        }
    }
}
