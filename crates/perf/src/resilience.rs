//! Online misprediction tracking and the adaptive safety margin.
//!
//! The static predictor margin ([`LatencyPredictor::DEFAULT_MARGIN`])
//! encodes an *offline* belief about model error. Under injected faults
//! that belief goes stale: straggler and predictor-drift windows inflate
//! observed iteration latency while the predictor keeps quoting clean
//! numbers, so dynamic chunking over-commits and decode deadlines start
//! slipping. This module closes the loop:
//!
//! * [`ErrorTracker`] — a deterministic fixed-size ring of
//!   observed/predicted iteration-latency ratios with windowed quantile
//!   extraction (sorting through [`sort_f64`], so NaNs cannot poison the
//!   order or panic).
//! * [`AdaptiveMargin`] — consumes the tracker: widens the margin when the
//!   upper-quantile ratio escapes the current margin's cover, decays
//!   linearly back to the base margin when calm, and — under *sustained*
//!   gross error — recommends a hard fallback from the forest to the
//!   analytical predictor. New margins land on a quantization grid
//!   anchored at the base margin, so the calm state is *exactly* the base
//!   margin (fault-free runs stay bit-identical to the static pipeline)
//!   and the chunk-budget memo sees few distinct margin keys.
//!
//! Everything here is pure state-machine arithmetic on recorded samples:
//! no clocks, no randomness, no hashing — replays are bit-identical.

use qoserve_sim::float::sort_f64;

/// Maximum ring capacity accepted by [`ErrorTracker::with_capacity`];
/// quantile extraction copies and sorts the window, so unbounded windows
/// would turn every update into a large sort.
const MAX_WINDOW: usize = 4_096;

/// Windowed online quantiles of observed/predicted latency ratios.
///
/// A fixed-size ring: recording the `capacity + 1`-th sample overwrites
/// the oldest. Ratios are dimensionless (`observed_us / predicted_us`);
/// 1.0 means the predictor was exact, above 1.0 means under-prediction.
///
/// # Example
///
/// ```
/// use qoserve_perf::ErrorTracker;
///
/// let mut t = ErrorTracker::with_capacity(8);
/// for observed in [102.0, 98.0, 101.0, 250.0] {
///     t.record(100.0, observed);
/// }
/// // The straggler outlier lives in the upper tail, not the median.
/// assert!(t.quantile(0.5).unwrap() < 1.1);
/// assert!(t.quantile(0.95).unwrap() > 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct ErrorTracker {
    ring: Vec<f64>,
    capacity: usize,
    cursor: usize,
    total: u64,
}

impl ErrorTracker {
    /// Default window: enough samples to see through one straggler window
    /// (tens of iterations) without remembering stale epochs forever.
    pub const DEFAULT_WINDOW: usize = 64;

    /// Creates a tracker with the default window.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_WINDOW)
    }

    /// Creates a tracker holding the last `capacity` ratios (clamped to
    /// `1..=4096`).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.clamp(1, MAX_WINDOW);
        ErrorTracker {
            ring: Vec::with_capacity(capacity),
            capacity,
            cursor: 0,
            total: 0,
        }
    }

    /// Records one `(predicted, observed)` pair in microseconds. Pairs
    /// with a non-positive or non-finite prediction carry no information
    /// and are dropped rather than poisoning the window.
    pub fn record(&mut self, predicted_us: f64, observed_us: f64) {
        if !(predicted_us > 0.0) || !observed_us.is_finite() || observed_us < 0.0 {
            return;
        }
        self.push_ratio(observed_us / predicted_us);
    }

    /// Records a pre-computed ratio (tests and property checks).
    pub fn push_ratio(&mut self, ratio: f64) {
        if !ratio.is_finite() || ratio < 0.0 {
            return;
        }
        if self.ring.len() < self.capacity {
            self.ring.push(ratio);
        } else {
            self.ring[self.cursor] = ratio;
        }
        self.cursor = (self.cursor + 1) % self.capacity;
        self.total += 1;
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total samples ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// The `q`-quantile (0.0–1.0, nearest-rank) of the windowed ratios;
    /// `None` when the window is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.ring.is_empty() {
            return None;
        }
        let mut scratch = self.ring.clone();
        sort_f64(&mut scratch);
        let q = q.clamp(0.0, 1.0);
        let rank = ((scratch.len() as f64 - 1.0) * q).round() as usize;
        Some(scratch[rank.min(scratch.len() - 1)])
    }

    /// Median ratio of the window (`quantile(0.5)`).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }
}

impl Default for ErrorTracker {
    fn default() -> Self {
        Self::new()
    }
}

/// Tuning of the adaptive margin controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveMarginConfig {
    /// Margin the controller decays back to when calm — normally the
    /// predictor's static margin. The quantization grid is anchored here,
    /// so "calm" is *exactly* the base margin.
    pub base: f64,
    /// Upper bound for the widened margin.
    pub max: f64,
    /// Quantile of the tracked ratio used as the under-prediction signal.
    pub quantile: f64,
    /// Extra cover added on top of the observed quantile when widening.
    pub headroom: f64,
    /// Quantization step for new margins (grid anchored at `base`).
    pub step: f64,
    /// Linear decay per update while calm.
    pub decay: f64,
    /// Minimum samples in the tracker before any adaptation fires.
    pub min_samples: usize,
    /// Recorded samples between controller updates.
    pub update_every: u32,
    /// Ring capacity of the embedded [`ErrorTracker`].
    pub window: usize,
    /// Median ratio above which an update counts toward the forest →
    /// analytical fallback.
    pub fallback_threshold: f64,
    /// Consecutive over-threshold updates before the fallback engages.
    pub fallback_patience: u32,
    /// Dead band around 1.0 within which the median ratio is treated as
    /// "no drift" and no estimator recalibration is recommended.
    pub recalibration_deadband: f64,
}

impl Default for AdaptiveMarginConfig {
    fn default() -> Self {
        AdaptiveMarginConfig {
            base: 0.08,
            max: 1.0,
            quantile: 0.9,
            headroom: 0.04,
            step: 1.0 / 128.0,
            decay: 0.02,
            min_samples: 16,
            update_every: 8,
            window: ErrorTracker::DEFAULT_WINDOW,
            fallback_threshold: 1.5,
            fallback_patience: 4,
            recalibration_deadband: 0.05,
        }
    }
}

impl AdaptiveMarginConfig {
    /// The default configuration re-anchored at `base` (normally the
    /// predictor's static margin, so calm behaviour is bit-identical to
    /// the static pipeline).
    pub fn anchored_at(base: f64) -> Self {
        AdaptiveMarginConfig {
            base: base.max(0.0),
            ..AdaptiveMarginConfig::default()
        }
    }
}

/// The adaptive-margin controller: an [`ErrorTracker`] plus the
/// widen/decay/fallback state machine driven by it.
///
/// Invariants (pinned by property tests):
///
/// * the margin never drops below `config.base` and never exceeds just
///   above `config.max` (one quantization step of slop at the clamp);
/// * for a fixed update schedule, the margin is monotone in the observed
///   ratios — larger observed error never yields a smaller margin;
/// * under zero drift (ratios ≤ 1 + base) the margin converges back to
///   *exactly* `config.base` within `(max - base) / decay` updates.
#[derive(Debug, Clone)]
pub struct AdaptiveMargin {
    config: AdaptiveMarginConfig,
    tracker: ErrorTracker,
    margin: f64,
    since_update: u32,
    over_threshold_streak: u32,
    fallback_engaged: bool,
    widenings: u64,
}

impl AdaptiveMargin {
    /// Creates the controller at its base margin.
    pub fn new(config: AdaptiveMarginConfig) -> Self {
        let tracker = ErrorTracker::with_capacity(config.window);
        AdaptiveMargin {
            margin: config.base,
            config,
            tracker,
            since_update: 0,
            over_threshold_streak: 0,
            fallback_engaged: false,
            widenings: 0,
        }
    }

    /// The active margin.
    pub fn current(&self) -> f64 {
        self.margin
    }

    /// The controller configuration.
    pub fn config(&self) -> &AdaptiveMarginConfig {
        &self.config
    }

    /// Read access to the embedded tracker.
    pub fn tracker(&self) -> &ErrorTracker {
        &self.tracker
    }

    /// Whether sustained gross error has engaged the forest → analytical
    /// fallback recommendation. Sticky once set: a predictor bad enough to
    /// trip the patience threshold is not trusted again this run.
    pub fn fallback_engaged(&self) -> bool {
        self.fallback_engaged
    }

    /// Times the margin was widened (diagnostics).
    pub fn widenings(&self) -> u64 {
        self.widenings
    }

    /// Rate-recalibration recommendation from the tracker: the median
    /// observed/predicted ratio when it sits outside the dead band,
    /// `None` while drift is indistinguishable from noise. Callers apply
    /// it via `ProcessingEstimator::recalibrate` (anchored scaling, so
    /// repeated application does not compound).
    pub fn recalibration_factor(&self) -> Option<f64> {
        if self.tracker.len() < self.config.min_samples {
            return None;
        }
        let median = self.tracker.median()?;
        if (median - 1.0).abs() > self.config.recalibration_deadband {
            Some(median)
        } else {
            None
        }
    }

    /// Records one `(predicted, observed)` pair and runs the controller
    /// every `update_every` samples. Returns `true` when an update ran
    /// (the caller should then re-read [`current`](Self::current) and
    /// [`fallback_engaged`](Self::fallback_engaged)).
    pub fn record(&mut self, predicted_us: f64, observed_us: f64) -> bool {
        self.tracker.record(predicted_us, observed_us);
        self.since_update += 1;
        if self.since_update < self.config.update_every.max(1) {
            return false;
        }
        self.since_update = 0;
        self.update();
        true
    }

    /// One controller step against the current tracker window.
    fn update(&mut self) {
        if self.tracker.len() < self.config.min_samples {
            return;
        }
        let Some(q) = self.tracker.quantile(self.config.quantile) else {
            return;
        };

        // Fallback bookkeeping runs on the median: a heavy upper tail is a
        // straggler, a displaced *median* is a broken predictor.
        match self.tracker.median() {
            Some(m) if m > self.config.fallback_threshold => {
                self.over_threshold_streak += 1;
                if self.over_threshold_streak >= self.config.fallback_patience.max(1) {
                    self.fallback_engaged = true;
                }
            }
            _ => self.over_threshold_streak = 0,
        }

        if q <= 1.0 + self.config.base {
            // Calm: decay linearly toward — and exactly onto — the base.
            self.margin = self.quantize(self.margin - self.config.decay);
        } else {
            // Under-prediction escaped the base cover: widen so the
            // observed quantile plus headroom fits; never narrow here.
            // (Widening only when the *current* margin is escaped would
            // break trajectory monotonicity: a run with slightly smaller
            // errors could overshoot one with larger errors by the
            // headroom. Keying the branch on the base keeps the margin a
            // pointwise-monotone function of the observed ratios.)
            let target = (q - 1.0 + self.config.headroom).min(self.config.max);
            let widened = self.quantize(target.max(self.margin));
            if widened > self.margin {
                self.widenings += 1;
            }
            self.margin = widened;
        }
    }

    /// Snaps a margin onto the grid anchored at `base`, clamped to
    /// `[base, max + step)`.
    fn quantize(&self, m: f64) -> f64 {
        let step = self.config.step.max(1e-6);
        let steps = ((m - self.config.base) / step).round().max(0.0);
        let q = self.config.base + steps * step;
        if q > self.config.max + step {
            self.config.max
        } else {
            q
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_ring_overwrites_oldest() {
        let mut t = ErrorTracker::with_capacity(4);
        for r in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
            t.push_ratio(r);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_recorded(), 6);
        // Window is {3, 4, 5, 6}.
        assert_eq!(t.quantile(0.0), Some(3.0));
        assert_eq!(t.quantile(1.0), Some(6.0));
    }

    #[test]
    fn tracker_rejects_poisoned_samples() {
        let mut t = ErrorTracker::new();
        t.record(0.0, 100.0);
        t.record(-5.0, 100.0);
        t.record(f64::NAN, 100.0);
        t.record(100.0, f64::NAN);
        t.record(100.0, -1.0);
        t.push_ratio(f64::INFINITY);
        assert!(t.is_empty());
        assert_eq!(t.quantile(0.5), None);
    }

    #[test]
    fn quantiles_are_deterministic_nearest_rank() {
        let mut t = ErrorTracker::with_capacity(16);
        for r in [1.0, 1.1, 1.2, 1.3, 1.4] {
            t.push_ratio(r);
        }
        assert_eq!(t.quantile(0.5), Some(1.2));
        assert_eq!(t.median(), Some(1.2));
        assert_eq!(t.quantile(0.0), Some(1.0));
        assert_eq!(t.quantile(1.0), Some(1.4));
    }

    fn drive(am: &mut AdaptiveMargin, ratio: f64, samples: usize) {
        for _ in 0..samples {
            am.record(100.0, ratio * 100.0);
        }
    }

    #[test]
    fn margin_stays_at_base_under_noise() {
        let mut am = AdaptiveMargin::new(AdaptiveMarginConfig::default());
        // 2 % noise around exactness: comfortably inside the 8 % base.
        for i in 0..200 {
            let r = if i % 2 == 0 { 0.98 } else { 1.02 };
            am.record(100.0, r * 100.0);
        }
        assert_eq!(am.current(), am.config().base);
        assert!(!am.fallback_engaged());
        assert_eq!(am.widenings(), 0);
        assert_eq!(am.recalibration_factor(), None);
    }

    #[test]
    fn margin_widens_under_sustained_underprediction() {
        let mut am = AdaptiveMargin::new(AdaptiveMarginConfig::default());
        drive(&mut am, 1.4, 64);
        assert!(
            am.current() >= 0.4,
            "a sustained 1.4x ratio must widen past 40 %, got {}",
            am.current()
        );
        assert!(am.current() <= am.config().max + am.config().step);
        assert!(am.widenings() > 0);
        // 1.4 is gross drift but below the 1.5 fallback threshold.
        assert!(!am.fallback_engaged());
        assert_eq!(am.recalibration_factor(), Some(1.4));
    }

    #[test]
    fn margin_decays_back_to_base_exactly() {
        let mut am = AdaptiveMargin::new(AdaptiveMarginConfig::default());
        drive(&mut am, 1.6, 64);
        assert!(am.current() > am.config().base);
        // Calm traffic: enough updates to walk the whole range down.
        drive(&mut am, 1.0, 8 * 64 * 2);
        assert_eq!(am.current(), am.config().base, "must land exactly on base");
    }

    #[test]
    fn fallback_engages_on_sustained_gross_error_and_sticks() {
        let mut am = AdaptiveMargin::new(AdaptiveMarginConfig::default());
        drive(&mut am, 2.0, 64 * 2);
        assert!(
            am.fallback_engaged(),
            "a sustained 2x median must fall back"
        );
        drive(&mut am, 1.0, 64 * 4);
        assert!(am.fallback_engaged(), "fallback is sticky");
    }

    #[test]
    fn quantization_is_anchored_at_base() {
        let am = AdaptiveMargin::new(AdaptiveMarginConfig::default());
        let step = am.config().step;
        let base = am.config().base;
        assert_eq!(am.quantize(base), base);
        let q = am.quantize(base + 2.6 * step);
        assert_eq!(q, base + 3.0 * step);
        assert!(am.quantize(base - 1.0) >= base, "never below base");
    }

    #[test]
    fn no_adaptation_before_min_samples() {
        let mut am = AdaptiveMargin::new(AdaptiveMarginConfig::default());
        drive(&mut am, 3.0, 8);
        assert_eq!(am.current(), am.config().base);
        assert_eq!(am.recalibration_factor(), None);
    }

    #[test]
    fn anchored_config_rebases() {
        let c = AdaptiveMarginConfig::anchored_at(0.12);
        assert_eq!(c.base, 0.12);
        assert_eq!(c.max, AdaptiveMarginConfig::default().max);
        assert_eq!(AdaptiveMarginConfig::anchored_at(-3.0).base, 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite invariant: the margin is a pointwise-monotone
        /// function of the observed error — a run that observes ratio
        /// sequence `b` dominating `a` pointwise never ends up with a
        /// smaller margin at any step.
        #[test]
        fn margin_is_monotone_in_observed_error(
            ratios in proptest::collection::vec(0.5f64..3.0, 1..300),
            bumps in proptest::collection::vec(0.0f64..1.5, 300),
        ) {
            let mut a = AdaptiveMargin::new(AdaptiveMarginConfig::default());
            let mut b = AdaptiveMargin::new(AdaptiveMarginConfig::default());
            for (i, &r) in ratios.iter().enumerate() {
                a.record(100.0, r * 100.0);
                b.record(100.0, (r + bumps[i]) * 100.0);
                prop_assert!(
                    b.current() >= a.current(),
                    "step {i}: dominated run has margin {} > {}",
                    a.current(),
                    b.current()
                );
            }
        }

        /// Satellite invariant: under zero drift the margin converges
        /// back to *exactly* the base margin, whatever happened before.
        #[test]
        fn margin_converges_to_base_under_zero_drift(
            prefix in proptest::collection::vec(0.1f64..4.0, 0..200),
        ) {
            let mut am = AdaptiveMargin::new(AdaptiveMarginConfig::default());
            for &r in &prefix {
                am.record(100.0, r * 100.0);
            }
            // Calm traffic: flush the window, then walk the margin down.
            for _ in 0..2_000 {
                am.record(100.0, 100.0);
            }
            prop_assert_eq!(am.current(), am.config().base);
        }

        /// The margin never leaves `[base, max + step]` and never panics,
        /// whatever (finite, non-negative) ratios are observed.
        #[test]
        fn margin_stays_bounded(
            ratios in proptest::collection::vec(0.0f64..50.0, 0..500),
        ) {
            let mut am = AdaptiveMargin::new(AdaptiveMarginConfig::default());
            for &r in &ratios {
                am.record(100.0, r * 100.0);
                let c = am.config();
                prop_assert!(am.current() >= c.base);
                prop_assert!(am.current() <= c.max + c.step);
            }
        }
    }
}
