//! Fault sweep: goodput vs fault intensity under failure recovery.
//!
//! Injects a deterministic fault timeline — replica crashes (with and
//! without restart), straggler windows, predictor drift — at increasing
//! intensity into a shared cluster, and compares how each scheme's
//! goodput degrades when the recovery loop (re-dispatch with bounded
//! retries, re-prefill, tier-aware shedding) is doing the serving. The
//! paper's graceful-degradation argument (§3.3) predicts QoServe should
//! lose mostly low-priority traffic where importance-blind baselines lose
//! uniformly.

use qoserve::experiments::{fault_sweep, FaultSweepSetup};
use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results};

fn main() {
    banner("fault_sweep", "Goodput vs fault intensity with recovery");

    let setup = FaultSweepSetup {
        dataset: Dataset::azure_conv(),
        hardware: HardwareConfig::llama3_8b_a100_tp1(),
        replicas: 4,
        qps: 10.0,
        window: qoserve::experiments::scaled_window(600),
        mix: TierMix::paper_equal(),
        low_priority_fraction: 0.2,
        plan: FaultPlan::with_faults(FaultConfig::moderate()),
        seed: 31,
    };
    let schemes: Vec<SchedulerSpec> = vec![
        SchedulerSpec::qoserve(),
        SchedulerSpec::sarathi_fcfs(),
        SchedulerSpec::RateLimited {
            inner: Box::new(SchedulerSpec::sarathi_fcfs()),
            max_backlog_tokens: 90_000,
        },
    ];
    let intensities = [0.0, 0.5, 1.0, 1.5, 2.0];

    println!(
        "workload: {} replicas at {} QPS, moderate fault profile scaled by intensity\n",
        setup.replicas, setup.qps
    );

    let points = fault_sweep(&setup, &schemes, &intensities);

    let mut table = Table::new(vec![
        "scheme",
        "intensity",
        "goodput",
        "violations",
        "crashes",
        "redisp.",
        "shed",
        "exhausted",
        "reprefill toks",
    ]);
    let mut rows: Vec<serde_json::Value> = Vec::new();
    for p in &points {
        let goodput_pct = 100.0 - p.report.violation_pct();
        table.row(vec![
            p.scheme.clone(),
            format!("{:.1}", p.intensity),
            format!("{goodput_pct:.1}%"),
            format!("{:.1}%", p.report.violation_pct()),
            p.stats.crashes.to_string(),
            p.stats.redispatches.to_string(),
            p.stats.shed.to_string(),
            p.stats.retry_exhausted.to_string(),
            p.stats.reprefill_tokens.to_string(),
        ]);
        rows.push(serde_json::json!({
            "scheme": p.scheme,
            "intensity": p.intensity,
            "goodput_pct": goodput_pct,
            "violation_pct": p.report.violation_pct(),
            "served_violation_pct": p.report.served_violation_pct(),
            "rejected_pct": p.report.rejected_pct(),
            "completion_fraction": p.recovery.overall.completion_fraction(),
            "crashes": p.stats.crashes,
            "restarts": p.stats.restarts,
            "redispatches": p.stats.redispatches,
            "shed": p.stats.shed,
            "retry_exhausted": p.stats.retry_exhausted,
            "reprefill_tokens": p.stats.reprefill_tokens,
            "degraded_iterations": p.stats.degraded_iterations,
        }));
        eprintln!("  done: {} @ intensity {:.1}", p.scheme, p.intensity);
    }
    print!("{table}");
    println!(
        "\nexpectation: as intensity grows, every scheme pays crashes and \
         re-prefill, but QoServe's tier-aware recovery sheds free-tier work \
         first while rate limiting rejects blindly and FCFS drags all tiers \
         down together."
    );
    emit_results("fault_sweep", &rows);
}
