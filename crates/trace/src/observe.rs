//! Control-instant observation: the hook the cluster kernels use to let
//! an observer (the `qoserve-stats` aggregator) take deterministic
//! snapshots *during* a run.
//!
//! # Why a trait here
//!
//! Live statistics must be folded at deterministic simulated-time
//! boundaries or the snapshot stream depends on thread interleaving.
//! The only places that can guarantee "every replica's clock has reached
//! `t`" are the cluster kernels' control-instant loops — but `qoserve-
//! cluster` must not depend on `qoserve-stats` (stats consumes cluster
//! output in bins and tests). Both crates already depend on this one, so
//! the narrow waist lives here: kernels drive any [`ControlObserver`]
//! handed to them, and the stats crate implements it.
//!
//! # Determinism contract
//!
//! A kernel driving an observer guarantees, for every boundary `t` it
//! reports via [`boundary`](ControlObserver::boundary):
//!
//! * `t` was obtained from [`next_boundary`](ControlObserver::next_boundary)
//!   and boundaries are visited in strictly increasing order;
//! * when `boundary(t)` runs, every runnable replica clock has reached at
//!   least `t`, so the set of trace records with `time_us < t` emitted so
//!   far is a pure function of the simulation — never of thread count or
//!   interleaving (orchestrator records can still be stamped *ahead* of
//!   the boundary, e.g. a scheduled re-dispatch; those fold later, which
//!   is equally deterministic);
//! * [`finish`](ControlObserver::finish) runs exactly once, after the
//!   last replica event, with the run's end time.
//!
//! Observers must be behaviorally invisible: kernels promise that runs
//! with and without an observer produce bit-identical outcomes, so an
//! observer must never mutate anything the simulation reads.

use qoserve_sim::SimTime;

/// An observer driven at deterministic control instants by the cluster
/// kernels (see the module docs for the exact contract).
pub trait ControlObserver {
    /// The first boundary strictly after `after`, or `None` when the
    /// observer wants no further mid-run boundaries. Must be monotone:
    /// repeated calls with the same `after` return the same instant.
    fn next_boundary(&self, after: SimTime) -> Option<SimTime>;

    /// Called once per boundary, when every runnable replica clock has
    /// reached `at`.
    fn boundary(&self, at: SimTime);

    /// Called exactly once at the end of the run with the run's end time
    /// (the maximum of all replica clocks and orchestrator instants).
    fn finish(&self, at: SimTime);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// A scripted observer recording the calls it receives, used to pin
    /// the trait's object-safety and call shape.
    struct Script {
        every: u64,
        log: RefCell<Vec<(String, u64)>>,
    }

    impl ControlObserver for Script {
        fn next_boundary(&self, after: SimTime) -> Option<SimTime> {
            let n = (after.as_micros() / self.every + 1) * self.every;
            Some(SimTime::from_micros(n))
        }

        fn boundary(&self, at: SimTime) {
            self.log.borrow_mut().push(("b".into(), at.as_micros()));
        }

        fn finish(&self, at: SimTime) {
            self.log.borrow_mut().push(("f".into(), at.as_micros()));
        }
    }

    #[test]
    fn observer_is_object_safe_and_monotone() {
        let s = Script {
            every: 10,
            log: RefCell::new(Vec::new()),
        };
        let obs: &dyn ControlObserver = &s;
        let mut t = SimTime::ZERO;
        for _ in 0..3 {
            let n = obs.next_boundary(t).unwrap();
            assert!(n > t);
            assert_eq!(obs.next_boundary(t), Some(n));
            obs.boundary(n);
            t = n;
        }
        obs.finish(t);
        let log = s.log.borrow();
        assert_eq!(
            *log,
            vec![
                ("b".to_owned(), 10),
                ("b".to_owned(), 20),
                ("b".to_owned(), 30),
                ("f".to_owned(), 30),
            ]
        );
    }
}
