//! `lock-discipline`: call-graph-aware lock hygiene.
//!
//! Two shapes are rejected in determinism-crate library code:
//!
//! 1. **Nested acquisition** — a second `.lock()` taken in the same
//!    statement as an earlier one (`a.lock()...b.lock()...`): the classic
//!    inconsistent-order deadlock hazard, and under the determinism
//!    contract also a replay hazard (guard lifetimes now overlap in an
//!    order the scheduler chooses). Detected per file from the structural
//!    pass.
//! 2. **Hot-path reachability** — a `.lock()` site inside any function
//!    reachable (over the name-resolved workspace call graph) from the
//!    hot-fn set shared with `hot-path-alloc` (`step`, `advance_replica`,
//!    `pop_due`, …). Per-iteration locking skews the sharded==lockstep
//!    timing contract; hoist the lock out of the loop or waive with a
//!    proof that the path never actually locks (e.g. a disabled tracer).
//!
//! Both shapes are fix-or-waive, never ratcheted: new locks on hot paths
//! are exactly the regressions the rule exists to stop.

use crate::symbols::SymbolTable;

use super::{Diagnostic, RULE_LOCK};

/// Hot roots shared with `hot-path-alloc` (see [`super::HOT_FNS`]).
pub(crate) fn hot_roots() -> &'static [&'static str] {
    super::HOT_FNS
}

/// Workspace pass: every `.lock(` site in a function reachable from the
/// hot roots. Returns `(file_index, diagnostic)` pairs; the caller routes
/// them through that file's waivers. `in_scope(file)` limits reports to
/// files whose scope includes lock discipline.
pub(crate) fn check_hot_locks(
    table: &SymbolTable,
    paths: &[String],
    in_scope: impl Fn(usize) -> bool,
) -> Vec<(usize, Diagnostic)> {
    let mut out = Vec::new();
    for reach in table.reachable_from(hot_roots()) {
        let site = &table.fns[reach.site];
        if !in_scope(site.file) {
            continue;
        }
        for &(line, col) in site.locks.iter().chain(site.nested_locks.iter()) {
            out.push((
                site.file,
                Diagnostic {
                    path: paths[site.file].clone(),
                    line,
                    col,
                    rule: RULE_LOCK,
                    message: format!(
                        "`.lock()` in `fn {}` is reachable from hot path `{}` (call chain: {}); \
                         per-iteration locking skews the sharded==lockstep timing contract; \
                         hoist the lock out of the loop, or waive with a reason",
                        site.name,
                        reach.chain.first().map_or("?", |s| s.as_str()),
                        reach.chain.join(" -> "),
                    ),
                },
            ));
        }
    }
    out.sort_by(|a, b| (a.0, a.1.line, a.1.col).cmp(&(b.0, b.1.line, b.1.col)));
    out
}

/// Per-file pass: same-statement nested `.lock()` acquisition. The caller
/// supplies the structural fn list of one file and receives raw sites.
pub(crate) fn nested_lock_sites(
    structure: &crate::structure::FileStructure,
) -> Vec<(u32, u32, String)> {
    let mut sites = Vec::new();
    for f in &structure.fns {
        for &(line, col) in &f.nested_locks {
            sites.push((
                line,
                col,
                format!(
                    "`.lock()` taken while another guard from the same statement is still live \
                     (in `fn {}`); bind the first guard, drop it, then acquire the second, or \
                     waive with a reason",
                    f.name
                ),
            ));
        }
    }
    sites.sort_by_key(|(line, col, _)| (*line, *col));
    sites
}
