//! `--format json`: machine-readable diagnostics.
//!
//! One JSON object per line (JSONL), one record per diagnostic, in the
//! same deterministic `(path, line, col)` order as the human output. The
//! schema is pinned by the integration tests and is a compatibility
//! surface for CI artifact consumers — fields are only ever *added*:
//!
//! ```json
//! {"path":"crates/sim/src/time.rs","line":42,"col":17,"rule":"lossy-cast","message":"..."}
//! ```
//!
//! Hand-rolled (no serde) so the linter stays dependency-free; strings
//! are escaped per RFC 8259 (quote, backslash, and control characters).

use crate::rules::Diagnostic;
use crate::LintReport;

/// Renders all diagnostics of a report as JSONL. Clean reports render to
/// the empty string.
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&diagnostic_json(d));
        out.push('\n');
    }
    out
}

/// One diagnostic as a single-line JSON object with fixed key order.
pub fn diagnostic_json(d: &Diagnostic) -> String {
    format!(
        "{{\"path\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
        escape(&d.path),
        d.line,
        d.col,
        escape(d.rule),
        escape(&d.message)
    )
}

/// JSON string literal for `s`.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULE_CAST;

    #[test]
    fn fixed_key_order_and_escaping() {
        let d = Diagnostic {
            path: "crates/sim/src/x.rs".to_string(),
            line: 7,
            col: 3,
            rule: RULE_CAST,
            message: "a \"quoted\" back\\slash\nnewline".to_string(),
        };
        assert_eq!(
            diagnostic_json(&d),
            "{\"path\":\"crates/sim/src/x.rs\",\"line\":7,\"col\":3,\
             \"rule\":\"lossy-cast\",\"message\":\"a \\\"quoted\\\" back\\\\slash\\nnewline\"}"
        );
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(escape("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(escape("tab\there"), "\"tab\\there\"");
    }

    #[test]
    fn clean_report_renders_empty() {
        let report = LintReport::default();
        assert_eq!(render_json(&report), "");
    }
}
