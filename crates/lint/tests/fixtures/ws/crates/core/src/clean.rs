//! Fixture: clean file — hash construction and point lookup are legal,
//! and the waiver below suppresses nothing (summary tags it `[unused]`).
use std::collections::HashMap;

// qoserve-lint: allow(nondeterministic-time) -- fixture: deliberately unused
pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}

pub fn build() -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    m.insert(1, 2);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwraps_in_tests_are_fine() {
        let m = build();
        assert_eq!(lookup(&m, 1).unwrap(), 2);
        for (k, v) in m.iter() {
            assert_eq!(*v, k + 1);
        }
    }
}
