//! Inline waiver syntax.
//!
//! A violation can be waived in place with a line comment:
//!
//! ```text
//! // qoserve-lint: allow(panic-hygiene) -- documented panicking wrapper
//! ```
//!
//! The reason after `--` is mandatory — a waiver without one is itself a
//! violation (`bad-waiver`), so every exception in the tree carries its
//! justification. A waiver applies to violations on its own line (trailing
//! comment) or on the next line (comment above the statement). Several
//! rules may be waived at once: `allow(panic-hygiene, hash-iteration)`.

use crate::lexer::{Tok, TokKind};

/// A parsed waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rules waived (kebab-case rule names, or `all`).
    pub rules: Vec<String>,
    /// Mandatory justification.
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
    /// Column of the comment.
    pub col: u32,
    /// Set once a violation was actually suppressed by this waiver.
    pub used: std::cell::Cell<bool>,
}

impl Waiver {
    /// True when this waiver covers `rule` on `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        (line == self.line || line == self.line + 1)
            && self.rules.iter().any(|r| r == rule || r == "all")
    }
}

/// A syntactically invalid waiver (most commonly: missing reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadWaiver {
    /// What is wrong with it.
    pub message: String,
    /// Line of the offending comment.
    pub line: u32,
    /// Column of the offending comment.
    pub col: u32,
}

/// Extracts waivers (and malformed waivers) from a token stream.
pub fn collect_waivers(toks: &[Tok]) -> (Vec<Waiver>, Vec<BadWaiver>) {
    let mut waivers = Vec::new();
    let mut bad = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("qoserve-lint:") else {
            continue;
        };
        match parse_waiver_body(rest.trim()) {
            Ok((rules, reason)) => waivers.push(Waiver {
                rules,
                reason,
                line: t.line,
                col: t.col,
                used: std::cell::Cell::new(false),
            }),
            Err(message) => bad.push(BadWaiver {
                message,
                line: t.line,
                col: t.col,
            }),
        }
    }
    (waivers, bad)
}

fn parse_waiver_body(body: &str) -> Result<(Vec<String>, String), String> {
    let Some(rest) = body.strip_prefix("allow") else {
        return Err(format!("expected `allow(<rule>)`, found `{body}`"));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(` list".to_string());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("empty rule list in `allow()`".to_string());
    }
    let tail = rest[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("--") else {
        return Err(
            "missing mandatory reason: write `allow(<rule>) -- <why this is safe>`".to_string(),
        );
    };
    let reason = reason.trim().to_string();
    if reason.is_empty() {
        return Err(
            "missing mandatory reason: write `allow(<rule>) -- <why this is safe>`".to_string(),
        );
    }
    Ok((rules, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<Waiver>, Vec<BadWaiver>) {
        collect_waivers(&lex(src))
    }

    #[test]
    fn well_formed_waiver() {
        let (ws, bad) = parse("// qoserve-lint: allow(panic-hygiene) -- test harness boundary\n");
        assert!(bad.is_empty());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rules, vec!["panic-hygiene"]);
        assert_eq!(ws[0].reason, "test harness boundary");
        assert_eq!(ws[0].line, 1);
    }

    #[test]
    fn multi_rule_waiver() {
        let (ws, bad) = parse("// qoserve-lint: allow(panic-hygiene, hash-iteration) -- both ok\n");
        assert!(bad.is_empty());
        assert_eq!(ws[0].rules, vec!["panic-hygiene", "hash-iteration"]);
    }

    #[test]
    fn missing_reason_is_bad() {
        let (ws, bad) = parse("// qoserve-lint: allow(panic-hygiene)\n");
        assert!(ws.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("mandatory reason"));
        // `--` with nothing after it is equally bad.
        let (_, bad) = parse("// qoserve-lint: allow(panic-hygiene) -- \n");
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn malformed_allow_is_bad() {
        let (_, bad) = parse("// qoserve-lint: allow panic -- x\n");
        assert_eq!(bad.len(), 1);
        let (_, bad) = parse("// qoserve-lint: allow() -- x\n");
        assert_eq!(bad.len(), 1);
        let (_, bad) = parse("// qoserve-lint: deny(foo) -- x\n");
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn coverage_spans_own_and_next_line() {
        let (ws, _) = parse("\n\n// qoserve-lint: allow(float-ordering) -- r\n");
        let w = &ws[0];
        assert!(w.covers("float-ordering", 3));
        assert!(w.covers("float-ordering", 4));
        assert!(!w.covers("float-ordering", 5));
        assert!(!w.covers("panic-hygiene", 3));
    }

    #[test]
    fn allow_all_covers_everything() {
        let (ws, _) = parse("// qoserve-lint: allow(all) -- generated code\n");
        assert!(ws[0].covers("panic-hygiene", 1));
        assert!(ws[0].covers("hash-iteration", 2));
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let (ws, bad) = parse("// just a note about qoserve\n// lint me not\n");
        assert!(ws.is_empty());
        assert!(bad.is_empty());
    }
}
