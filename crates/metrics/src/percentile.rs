//! Percentile computation and latency summaries.

use qoserve_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Linearly interpolated percentile of `values` (need not be sorted;
/// `p` in `[0, 1]`). Returns `None` on an empty slice.
///
/// # Example
///
/// ```
/// use qoserve_metrics::percentile;
/// let xs = vec![1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 0.5), Some(2.5));
/// assert_eq!(percentile(&xs, 0.0), Some(1.0));
/// assert_eq!(percentile(&xs, 1.0), Some(4.0));
/// ```
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let p = p.clamp(0.0, 1.0);
    // total_cmp, not partial_cmp: a NaN-swallowing comparator is not a
    // strict weak order and can silently corrupt the sort.
    let mut sorted: Vec<f64> = values.to_vec();
    qoserve_sim::float::sort_f64(&mut sorted);
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Summary statistics of a latency sample in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Sample size.
    pub count: usize,
    /// Mean latency, seconds.
    pub mean: f64,
    /// Median latency, seconds.
    pub p50: f64,
    /// 95th percentile, seconds.
    pub p95: f64,
    /// 99th percentile, seconds.
    pub p99: f64,
    /// Maximum, seconds.
    pub max: f64,
}

impl LatencySummary {
    /// Summarises a set of durations. Empty input yields an all-zero
    /// summary with `count == 0`.
    pub fn of_durations<I: IntoIterator<Item = SimDuration>>(durations: I) -> Self {
        let secs: Vec<f64> = durations.into_iter().map(|d| d.as_secs_f64()).collect();
        Self::of_seconds(&secs)
    }

    /// Summarises latencies given in seconds.
    pub fn of_seconds(secs: &[f64]) -> Self {
        if secs.is_empty() {
            return LatencySummary::default();
        }
        LatencySummary {
            count: secs.len(),
            mean: secs.iter().sum::<f64>() / secs.len() as f64,
            p50: percentile(secs, 0.50).unwrap_or(0.0),
            p95: percentile(secs, 0.95).unwrap_or(0.0),
            p99: percentile(secs, 0.99).unwrap_or(0.0),
            max: secs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_none() {
        assert_eq!(percentile(&[], 0.5), None);
        let s = LatencySummary::of_seconds(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn single_value() {
        assert_eq!(percentile(&[7.0], 0.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 0.99), Some(7.0));
    }

    #[test]
    fn interpolation() {
        let xs = [10.0, 20.0];
        assert_eq!(percentile(&xs, 0.5), Some(15.0));
        assert_eq!(percentile(&xs, 0.25), Some(12.5));
    }

    #[test]
    fn unsorted_input_is_fine() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.5), Some(3.0));
    }

    #[test]
    fn p_is_clamped() {
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, -1.0), Some(1.0));
        assert_eq!(percentile(&xs, 2.0), Some(2.0));
    }

    #[test]
    fn summary_of_durations() {
        let s = LatencySummary::of_durations((1..=100).map(SimDuration::from_secs));
        assert_eq!(s.count, 100);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.max, 100.0);
        assert!(s.p99 > s.p95 && s.p95 > s.p50);
    }

    proptest! {
        #[test]
        fn percentile_is_within_range(
            xs in proptest::collection::vec(0.0f64..1e6, 1..100),
            p in 0.0f64..1.0,
        ) {
            let v = percentile(&xs, p).unwrap();
            let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }

        #[test]
        fn percentile_is_monotone_in_p(
            xs in proptest::collection::vec(0.0f64..1e6, 1..100),
        ) {
            let p50 = percentile(&xs, 0.5).unwrap();
            let p90 = percentile(&xs, 0.9).unwrap();
            let p99 = percentile(&xs, 0.99).unwrap();
            prop_assert!(p50 <= p90 + 1e-9);
            prop_assert!(p90 <= p99 + 1e-9);
        }
    }
}
