//! Property-based tests of the workload substrate: deadline algebra,
//! trace structure, and arrival-process statistics.

use proptest::prelude::*;

use qoserve_sim::{SeedStream, SimDuration, SimTime};
use qoserve_workload::{
    ArrivalProcess, Dataset, Priority, QosClass, QosTier, TierId, TierMix, TraceBuilder,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 2: token deadlines are strictly increasing in the token index
    /// for interactive classes, and constant for non-interactive ones.
    #[test]
    fn token_deadlines_monotone(
        ttft_s in 0.1f64..60.0,
        tbt_ms in 1.0f64..500.0,
        ttlt_s in 1.0f64..7_200.0,
        arrival_s in 0.0f64..10_000.0,
        n in 1u32..2_000,
    ) {
        let arrival = SimTime::from_secs_f64(arrival_s);
        let interactive = QosClass::interactive_secs_ms(ttft_s, tbt_ms);
        prop_assert!(interactive.token_deadline(arrival, n + 1) > interactive.token_deadline(arrival, n));
        prop_assert_eq!(interactive.token_deadline(arrival, 1), interactive.first_token_deadline(arrival));

        let batch = QosClass::non_interactive_secs(ttlt_s);
        prop_assert_eq!(batch.token_deadline(arrival, n), batch.token_deadline(arrival, n + 1));
        prop_assert_eq!(batch.completion_deadline(arrival, n), batch.first_token_deadline(arrival));
    }

    /// Eq. 2 at the last token equals the interactive completion deadline.
    #[test]
    fn completion_deadline_matches_last_token(
        ttft_s in 0.1f64..60.0,
        tbt_ms in 1.0f64..500.0,
        decode_tokens in 1u32..5_000,
    ) {
        let c = QosClass::interactive_secs_ms(ttft_s, tbt_ms);
        prop_assert_eq!(
            c.completion_deadline(SimTime::ZERO, decode_tokens),
            c.token_deadline(SimTime::ZERO, decode_tokens)
        );
    }

    /// Traces are sorted, id-dense, respect the tier mix support, and are
    /// deterministic per seed.
    #[test]
    fn trace_structure(seed in 0u64..10_000, n in 1usize..300, qps in 0.2f64..20.0) {
        let build = || TraceBuilder::new(Dataset::azure_conv())
            .arrivals(ArrivalProcess::poisson(qps))
            .num_requests(n)
            .paper_tier_mix()
            .low_priority_fraction(0.3)
            .build(&SeedStream::new(seed));
        let t = build();
        prop_assert_eq!(t.len(), n);
        for (i, w) in t.requests().windows(2).enumerate() {
            prop_assert!(w[1].arrival > w[0].arrival, "at {i}");
        }
        for (i, r) in t.requests().iter().enumerate() {
            prop_assert_eq!(r.id.0, i as u64);
            prop_assert!(matches!(r.tier(), TierId::Q1 | TierId::Q2 | TierId::Q3));
            prop_assert!(r.prompt_tokens >= 16);
            prop_assert!(r.decode_tokens >= 1);
            prop_assert!(matches!(r.priority(), Priority::Low | Priority::Important));
        }
        prop_assert_eq!(t, build());
    }

    /// Mean arrival rate tracks the requested QPS for every process.
    #[test]
    fn arrival_rates_track_qps(seed in 0u64..1_000, qps in 1.0f64..20.0) {
        let window = SimDuration::from_secs(600);
        for proc in [ArrivalProcess::poisson(qps), ArrivalProcess::uniform(qps)] {
            let mut rng = SeedStream::new(seed).derive("rate");
            let times = proc.generate_for(window, &mut rng);
            let rate = times.len() as f64 / 600.0;
            prop_assert!(
                (rate - qps).abs() < qps * 0.25 + 0.5,
                "{proc:?}: rate {rate} vs requested {qps}"
            );
        }
    }

    /// Weighted tier sampling converges to the weights.
    #[test]
    fn tier_mix_weights_converge(w1 in 0.05f64..1.0, w2 in 0.05f64..1.0, w3 in 0.05f64..1.0) {
        let [q1, q2, q3] = QosTier::paper_tiers();
        let mix = TierMix::new(vec![(q1, w1), (q2, w2), (q3, w3)]);
        let mut rng = SeedStream::new(9).derive("mix");
        let n = 6_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            match mix.sample(&mut rng).id {
                TierId::Q1 => counts[0] += 1,
                TierId::Q2 => counts[1] += 1,
                _ => counts[2] += 1,
            }
        }
        let total = w1 + w2 + w3;
        for (count, w) in counts.iter().zip([w1, w2, w3]) {
            let expected = w / total;
            let got = *count as f64 / n as f64;
            prop_assert!((got - expected).abs() < 0.04, "expected {expected}, got {got}");
        }
    }
}
