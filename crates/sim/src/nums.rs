//! Checked integer conversions — the one sanctioned home for raw integer
//! casts in the workspace.
//!
//! Simulated time is integer microseconds and token budgets are integer
//! counts, so conversion mistakes corrupt results silently: `as` truncates
//! (`u128 as u64`), wraps (`i64 as u64`), or clamps (`f64 as u64`) with no
//! panic to point at the site. `qoserve-lint` bans integer-target `as`
//! casts in the time/token-math crates (`lossy-cast` rule) *except* this
//! file, and everything routes through these helpers instead. Each helper
//! names its policy (clamp, saturate, widen) in its signature, keeps the
//! exact semantics the call sites have always had — replayed traces stay
//! bit-identical — and debug-asserts when a supposedly lossless
//! conversion would actually lose information.

/// Rounds a microsecond quantity to the nearest whole tick. Negative and
/// NaN inputs clamp to zero; values beyond `u64::MAX` saturate. (These
/// are the `f64 as u64` semantics the time types have always used, made
/// explicit.)
#[inline]
pub fn f64_round_to_u64(x: f64) -> u64 {
    x.round() as u64
}

/// Signed difference `a - b` between two unsigned microsecond counters,
/// as two's-complement arithmetic (never panics; deltas beyond
/// `± i64::MAX` wrap, which simulated timestamps never approach).
#[inline]
pub fn u64_delta_i64(a: u64, b: u64) -> i64 {
    a.wrapping_sub(b) as i64
}

/// Clamps a signed microsecond count to an unsigned one: negatives
/// (expired slack) become zero.
#[inline]
pub fn i64_clamp_u64(x: i64) -> u64 {
    x.max(0) as u64
}

/// Clamps an unsigned microsecond count into the signed range: values
/// above `i64::MAX` saturate.
#[inline]
pub fn u64_clamp_i64(x: u64) -> i64 {
    x.min(i64::MAX as u64) as i64
}

/// Widens a slab/shard index to `u64`. Lossless on every supported
/// target (`usize` is at most 64 bits).
#[inline]
pub const fn usize_to_u64(x: usize) -> u64 {
    x as u64
}

/// Narrows a counter to `usize` for indexing. Lossless on 64-bit
/// targets; debug-asserts on 32-bit ones where a count beyond 4 billion
/// would truncate.
#[inline]
pub fn u64_to_usize(x: u64) -> usize {
    debug_assert!(
        x <= usize::MAX as u64,
        "u64 value {x} does not fit in usize"
    );
    x as usize
}

/// Widens a packed 32-bit index to `usize`. Lossless on every supported
/// target (`usize` is at least 32 bits).
#[inline]
pub const fn u32_to_usize(x: u32) -> usize {
    x as usize
}

/// Narrows a length or index to the packed 32-bit form used by slab
/// references and batch counts. Debug-asserts on real truncation; slabs
/// and batches are bounded far below 4 billion entries.
#[inline]
pub fn usize_to_u32(x: usize) -> u32 {
    debug_assert!(x <= u32::MAX as usize, "value {x} does not fit in u32");
    x as u32
}

/// Narrows a 64-bit counter to the 32-bit form used by token and batch
/// counts. Debug-asserts on real truncation.
#[inline]
pub fn u64_to_u32(x: u64) -> u32 {
    debug_assert!(x <= u64::from(u32::MAX), "value {x} does not fit in u32");
    x as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_clamps_and_saturates() {
        assert_eq!(f64_round_to_u64(1.4), 1);
        assert_eq!(f64_round_to_u64(1.5), 2);
        assert_eq!(f64_round_to_u64(-3.0), 0);
        assert_eq!(f64_round_to_u64(f64::NAN), 0);
        assert_eq!(f64_round_to_u64(1e300), u64::MAX);
    }

    #[test]
    fn signed_delta_is_exact_for_time_ranges() {
        assert_eq!(u64_delta_i64(5, 2), 3);
        assert_eq!(u64_delta_i64(2, 5), -3);
        assert_eq!(u64_delta_i64(0, 0), 0);
        assert_eq!(u64_delta_i64(0, 1), -1);
    }

    #[test]
    fn clamps_hold_at_the_boundaries() {
        assert_eq!(i64_clamp_u64(-1), 0);
        assert_eq!(i64_clamp_u64(i64::MAX), i64::MAX as u64);
        assert_eq!(u64_clamp_i64(u64::MAX), i64::MAX);
        assert_eq!(u64_clamp_i64(7), 7);
    }

    #[test]
    fn index_widening_round_trips() {
        assert_eq!(usize_to_u64(42), 42);
        assert_eq!(u64_to_usize(42), 42);
        assert_eq!(u32_to_usize(7), 7);
        assert_eq!(usize_to_u32(7), 7);
    }

    #[test]
    #[should_panic(expected = "does not fit in u32")]
    #[cfg(debug_assertions)]
    fn narrowing_truncation_is_caught_in_debug() {
        usize_to_u32(u32::MAX as usize + 1);
    }
}
