//! The ratcheting panic-hygiene baseline (`lint-baseline.toml`).
//!
//! Existing `unwrap()`/`expect()`/`panic!` debt in library code is frozen
//! per file: a file may never *gain* panic sites, and when it sheds some,
//! `--fix-baseline` rewrites the file so the new, lower count becomes the
//! ceiling. The format is a deliberately tiny TOML subset — one section,
//! quoted-path keys, integer values — parsed by hand so the linter stays
//! dependency-free:
//!
//! ```toml
//! [panic-hygiene]
//! "crates/sched/src/queue.rs" = 14
//! ```

use std::collections::BTreeMap;

/// Per-file allowed panic-site counts, keyed by workspace-relative path
/// (always with `/` separators, so baselines are portable across hosts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// file path -> allowed count.
    pub allowed: BTreeMap<String, u32>,
}

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line of the problem.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint-baseline.toml:{}: {}", self.line, self.message)
    }
}

impl Baseline {
    /// Allowed count for `path` (0 when the file is not listed).
    pub fn allowed_for(&self, path: &str) -> u32 {
        self.allowed.get(path).copied().unwrap_or(0)
    }

    /// Parses the baseline file contents.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut allowed = BTreeMap::new();
        let mut in_section = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                in_section = section.trim() == "panic-hygiene";
                if !in_section {
                    return Err(BaselineError {
                        line: lineno,
                        message: format!("unknown section `[{}]`", section.trim()),
                    });
                }
                continue;
            }
            if !in_section {
                return Err(BaselineError {
                    line: lineno,
                    message: "entry before `[panic-hygiene]` section".to_string(),
                });
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("expected `\"path\" = count`, found `{line}`"),
                });
            };
            let key = key.trim();
            let Some(path) = key
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .filter(|p| !p.is_empty())
            else {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("path must be double-quoted, found `{key}`"),
                });
            };
            let count: u32 = value.trim().parse().map_err(|_| BaselineError {
                line: lineno,
                message: format!(
                    "count must be a non-negative integer, found `{}`",
                    value.trim()
                ),
            })?;
            allowed.insert(path.to_string(), count);
        }
        Ok(Baseline { allowed })
    }

    /// Renders the baseline back to its canonical on-disk form (sorted,
    /// zero-count entries dropped).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# Ratcheting panic-hygiene baseline, maintained by `qoserve-lint`.\n\
             # Counts may only go DOWN: fix panic sites, then run\n\
             # `cargo run -p qoserve-lint -- --fix-baseline` to lower the ceiling.\n\
             \n[panic-hygiene]\n",
        );
        for (path, count) in &self.allowed {
            if *count > 0 {
                out.push_str(&format!("\"{path}\" = {count}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_queries() {
        let b = Baseline::parse(
            "# comment\n\n[panic-hygiene]\n\"crates/a/src/x.rs\" = 14\n\"crates/b/src/y.rs\" = 3\n",
        )
        .unwrap();
        assert_eq!(b.allowed_for("crates/a/src/x.rs"), 14);
        assert_eq!(b.allowed_for("crates/b/src/y.rs"), 3);
        assert_eq!(b.allowed_for("crates/never/seen.rs"), 0);
    }

    #[test]
    fn empty_file_is_empty_baseline() {
        let b = Baseline::parse("").unwrap();
        assert!(b.allowed.is_empty());
        assert_eq!(b.allowed_for("anything"), 0);
    }

    #[test]
    fn render_roundtrips_sorted_without_zeros() {
        let mut b = Baseline::default();
        b.allowed.insert("z.rs".into(), 2);
        b.allowed.insert("a.rs".into(), 7);
        b.allowed.insert("gone.rs".into(), 0);
        let text = b.render();
        let reparsed = Baseline::parse(&text).unwrap();
        assert_eq!(reparsed.allowed_for("a.rs"), 7);
        assert_eq!(reparsed.allowed_for("z.rs"), 2);
        assert!(!text.contains("gone.rs"));
        let a = text.find("a.rs").unwrap();
        let z = text.find("z.rs").unwrap();
        assert!(a < z, "entries must be sorted");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Baseline::parse("[panic-hygiene]\nnot an entry\n").is_err());
        assert!(Baseline::parse("[panic-hygiene]\nbare/path.rs = 1\n").is_err());
        assert!(Baseline::parse("[panic-hygiene]\n\"x.rs\" = -2\n").is_err());
        assert!(Baseline::parse("[panic-hygiene]\n\"x.rs\" = lots\n").is_err());
        assert!(
            Baseline::parse("\"x.rs\" = 1\n").is_err(),
            "entry before section"
        );
        let err = Baseline::parse("[other-section]\n").unwrap_err();
        assert!(err.message.contains("unknown section"));
        assert_eq!(err.line, 1);
    }
}
