//! Live-stats layer, end to end: the aggregator observing real elastic
//! chaos runs through the `_observed` kernel entry points.
//!
//! Four contracts are pinned here, mirroring DESIGN.md's stats section:
//!
//! 1. **Behavioral invisibility**: a stats-enabled run (tee sink plus
//!    observation boundaries) is bit-identical in outcomes, counters,
//!    and fleet accounting to the plain unstatted run.
//! 2. **Stream determinism**: the snapshot JSONL is byte-identical
//!    between the sharded and lockstep kernels and across repeated
//!    runs of the same seed.
//! 3. **Delta composition**: the per-boundary deltas merge left-to-right
//!    into exactly the final full snapshot, and the JSONL round-trips
//!    losslessly with the schema version checked on load.
//! 4. **Typed endpoint**: `StatsServer` answers queries over a real run
//!    consistently with the handle's own snapshot state.

use qoserve::prelude::*;
use qoserve_stats::{
    compose, stream_from_jsonl, stream_to_jsonl, StatsConfig, StatsHandle, StatsQuery, StatsReply,
    StatsServer, SNAPSHOT_SCHEMA_VERSION,
};
use qoserve_trace::{RingSink, Tracer};

fn cluster_config() -> ClusterConfig {
    ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1())
}

fn chaos_trace(seed: u64) -> Trace {
    TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(8.0))
        .num_requests(160)
        .tier_mix(TierMix::paper_equal())
        .low_priority_fraction(0.25)
        .build(&SeedStream::new(seed))
}

/// A plan with both faults and membership churn, so the stream carries
/// lifecycle, fault, and re-dispatch traffic — not just completions.
fn chaos_plan() -> (FaultPlan, ElasticPlan) {
    let plan = FaultPlan::with_faults(FaultConfig::moderate().scaled(2.0));
    let elastic = ElasticPlan {
        lifecycle: LifecycleConfig {
            provision_delay: SimDuration::from_secs(2),
            warmup: SimDuration::from_secs(3),
            drain_grace: SimDuration::from_secs(5),
        },
        max_replicas: 4,
        schedule: vec![
            ScaleEvent {
                at: SimTime::from_secs(4),
                action: ScaleAction::Add,
            },
            ScaleEvent {
                at: SimTime::from_secs(12),
                action: ScaleAction::Drain,
            },
        ],
        autoscale: None,
    };
    (plan, elastic)
}

/// Runs the elastic chaos scenario with stats observing at `cadence`,
/// through either kernel.
fn run_observed(
    seed: u64,
    cadence: SimDuration,
    lockstep: bool,
) -> (ElasticRunResult, StatsHandle) {
    let trace = chaos_trace(seed);
    let config = cluster_config();
    let (plan, elastic) = chaos_plan();
    let stats = StatsHandle::new(StatsConfig::every(cadence));
    let tracer = Tracer::new(stats.tee(Box::new(RingSink::new(4096))));
    let run = if lockstep {
        run_shared_elastic_observed_lockstep
    } else {
        run_shared_elastic_observed
    };
    let result = run(
        &trace,
        2,
        &SchedulerSpec::qoserve(),
        &config,
        &plan,
        &elastic,
        &SeedStream::new(seed),
        &tracer,
        Some(&stats),
    )
    .expect("observed elastic run routes");
    (result, stats)
}

#[test]
fn stats_observation_is_behaviorally_invisible() {
    let trace = chaos_trace(71);
    let config = cluster_config();
    let (plan, elastic) = chaos_plan();
    let baseline = run_shared_elastic(
        &trace,
        2,
        &SchedulerSpec::qoserve(),
        &config,
        &plan,
        &elastic,
        &SeedStream::new(71),
    )
    .expect("baseline routes");

    let (observed, stats) = run_observed(71, SimDuration::from_secs(5), false);
    assert_eq!(
        observed.outcomes, baseline.outcomes,
        "stats observation must not perturb a single outcome"
    );
    assert_eq!(observed.stats, baseline.stats);
    assert_eq!(observed.replica_us, baseline.replica_us);
    assert_eq!(observed.fleet, baseline.fleet);

    // And the observer actually saw the run: boundaries fired, events
    // were folded, the final fold closed the stream.
    assert!(stats.finished(), "final fold must run");
    let full = stats.full();
    assert!(full.frame.events > 0, "aggregator saw trace records");
    assert!(
        full.seq > 1,
        "a multi-second run crosses several 5 s boundaries (saw {})",
        full.seq
    );
}

#[test]
fn snapshot_stream_is_byte_identical_sharded_vs_lockstep() {
    let cadence = SimDuration::from_secs(5);
    let (sharded_run, sharded) = run_observed(72, cadence, false);
    let (lockstep_run, lockstep) = run_observed(72, cadence, true);
    assert_eq!(sharded_run.outcomes, lockstep_run.outcomes);
    assert_eq!(
        sharded.stream(),
        lockstep.stream(),
        "every boundary delta must match between kernels, value for value"
    );

    let sharded_jsonl = stream_to_jsonl(&sharded.stream());
    let lockstep_jsonl = stream_to_jsonl(&lockstep.stream());
    assert_eq!(
        sharded_jsonl, lockstep_jsonl,
        "sharded and lockstep kernels must export the same stream bytes"
    );

    // Same seed, same kernel, run again: byte-identical replay.
    let (_, again) = run_observed(72, cadence, false);
    assert_eq!(stream_to_jsonl(&again.stream()), sharded_jsonl);
}

#[test]
fn deltas_compose_to_the_final_full_snapshot() {
    let (_, stats) = run_observed(73, SimDuration::from_secs(5), false);
    let stream = stats.stream();
    let full = stream.full.clone().expect("run finished");
    assert!(
        stream.deltas.len() > 1,
        "need several boundaries to compose"
    );
    assert_eq!(
        compose(&stream.deltas),
        full,
        "left-fold of deltas must reproduce the cumulative snapshot exactly"
    );
    // Suffix queries compose on top of a prefix: full = prefix + suffix.
    let mid = stream.deltas.len() / 2;
    let mut prefix = compose(&stream.deltas[..mid]);
    for d in &stream.deltas[mid..] {
        prefix.frame.merge(&d.frame);
        prefix.seq = d.seq + 1;
        prefix.upto_us = prefix.upto_us.max(d.upto_us);
    }
    assert_eq!(prefix, full);
}

#[test]
fn snapshot_jsonl_round_trips_and_checks_the_schema_version() {
    let (_, stats) = run_observed(74, SimDuration::from_secs(10), true);
    let stream = stats.stream();
    let jsonl = stream_to_jsonl(&stream);
    let reloaded = stream_from_jsonl(&jsonl).expect("own bytes reload");
    assert_eq!(reloaded, stream, "stream round-trips losslessly");

    // A stream from a future schema must be refused, not misread.
    let future = jsonl.replacen(
        &format!("\"version\":{SNAPSHOT_SCHEMA_VERSION}"),
        &format!("\"version\":{}", SNAPSHOT_SCHEMA_VERSION + 1),
        1,
    );
    assert_ne!(future, jsonl, "header version must appear in the bytes");
    assert!(stream_from_jsonl(&future).is_err());
}

#[test]
fn capture_ring_drops_surface_in_the_snapshot() {
    // A tiny per-replica ring under a dense run guarantees evictions.
    let trace = chaos_trace(75);
    let config = cluster_config();
    let (plan, elastic) = chaos_plan();
    let stats = StatsHandle::new(StatsConfig::every(SimDuration::from_secs(5)));
    let tracer = Tracer::new(stats.tee(Box::new(RingSink::new(8))));
    run_shared_elastic_observed(
        &trace,
        2,
        &SchedulerSpec::qoserve(),
        &config,
        &plan,
        &elastic,
        &SeedStream::new(75),
        &tracer,
        Some(&stats),
    )
    .expect("observed elastic run routes");

    let full = stats.full();
    assert!(full.frame.dropped > 0, "an 8-slot ring must overflow");
    assert_eq!(full.frame.dropped, tracer.dropped());
    assert_eq!(
        full.frame.dropped_by_replica.values().sum::<u64>(),
        full.frame.dropped,
        "per-replica drop attribution must account for every eviction"
    );
    assert_eq!(
        full.frame.dropped_by_replica,
        tracer.dropped_by_replica(),
        "snapshot drop table matches the capture sink's own accounting"
    );
}

#[test]
fn stats_server_answers_queries_over_a_real_run() {
    let (_, stats) = run_observed(76, SimDuration::from_secs(5), false);
    let full = stats.full();
    let server = StatsServer::new(stats);

    let StatsReply::Meta(meta) = server.query(&StatsQuery::Meta) else {
        panic!("meta reply shape");
    };
    assert_eq!(meta.version, SNAPSHOT_SCHEMA_VERSION);
    assert_eq!(meta.cadence_us, 5_000_000);
    assert!(meta.finished);
    assert_eq!(meta.snapshots, full.seq);

    let StatsReply::Full(served) = server.query(&StatsQuery::Full) else {
        panic!("full reply shape");
    };
    assert_eq!(*served, full);

    let (&tier, tier_stats) = full.frame.tiers.first_key_value().expect("completions");
    let StatsReply::Tier(Some(t)) = server.query(&StatsQuery::Tier { tier }) else {
        panic!("tier reply shape");
    };
    assert_eq!(&t, tier_stats);
    assert!(matches!(
        server.query(&StatsQuery::Tier { tier: 200 }),
        StatsReply::Tier(None)
    ));
    assert!(matches!(
        server.query(&StatsQuery::Replica { replica: 9_999 }),
        StatsReply::Replica(None)
    ));

    let StatsReply::Deltas(deltas) = server.query(&StatsQuery::DeltasSince { since_seq: 0 }) else {
        panic!("deltas reply shape");
    };
    assert_eq!(compose(&deltas), full, "served deltas compose to full");

    let StatsReply::Fleet(fleet) = server.query(&StatsQuery::Fleet) else {
        panic!("fleet reply shape");
    };
    assert_eq!(fleet, full.frame.fleet);
}
