//! `serde-back-compat`: persisted-schema tolerance for added fields.
//!
//! Metrics snapshots and trace records are serialized to JSONL that
//! outlives the binary which wrote it. The repo's convention (followed by
//! hand since PR 3) is that every field of a
//! `#[derive(Serialize, Deserialize)]` struct in the metrics/trace crates
//! carries `#[serde(default)]`, so yesterday's artifacts keep loading
//! after today's struct gains a field. This rule mechanizes the
//! convention via the structural pass: container-level `#[serde(default)]`
//! (or `#[serde(transparent)]`) satisfies it wholesale; `#[serde(skip)]`
//! and `#[serde(flatten)]` fields are exempt (never deserialized directly
//! / delegated to the inner type). Ratcheted: pre-existing fields are
//! frozen in `lint-baseline.toml`.

use crate::structure::FileStructure;

use super::Site;

/// Unfiltered non-defaulted serde fields, anchored at the field name.
pub(crate) fn serde_sites(structure: &FileStructure) -> Vec<Site> {
    let mut sites = Vec::new();
    for st in &structure.structs {
        let serializes = st.derives.iter().any(|d| d == "Serialize");
        let deserializes = st.derives.iter().any(|d| d == "Deserialize");
        if !(serializes && deserializes) || st.serde_container_default {
            continue;
        }
        for f in &st.fields {
            if f.serde_default || f.serde_skip || f.serde_flatten {
                continue;
            }
            sites.push((f.line, f.col, format!("`{}::{}`", st.name, f.name)));
        }
    }
    sites.sort_by_key(|(line, col, _)| (*line, *col));
    sites
}
