//! QoS classes, SLO targets, tiers, and deadline computation.
//!
//! QoServe defines two QoS *classes* — interactive (TTFT + TBT SLOs) and
//! non-interactive (TTLT SLO) — while letting each application pick its own
//! targets within the class (§3.2). A [`QosTier`] pairs a class+SLO with a
//! tier identity (the paper's Q1/Q2/Q3). Deadlines follow Eq. 1–3:
//!
//! * `D_first = t_arrival + SLO_TTFT`
//! * `D_n     = t_arrival + SLO_TTFT + (n − 1) · SLO_TBT`
//! * `D_total = t_arrival + SLO_TTLT`

use qoserve_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a QoS tier (the paper's Q1, Q2, Q3 — but any number of
/// tiers is supported).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct TierId(pub u8);

impl TierId {
    /// Interactive tier of Table 3.
    pub const Q1: TierId = TierId(1);
    /// Relaxed non-interactive tier of Table 3 (10-minute TTLT).
    pub const Q2: TierId = TierId(2);
    /// Batch tier of Table 3 (30-minute TTLT).
    pub const Q3: TierId = TierId(3);
}

impl fmt::Display for TierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// Latency SLO of a QoS class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QosClass {
    /// Interactive: bounded time-to-first-token and time-between-tokens.
    Interactive {
        /// TTFT target.
        ttft: SimDuration,
        /// Per-token pacing target.
        tbt: SimDuration,
    },
    /// Non-interactive: bounded total completion time only.
    NonInteractive {
        /// TTLT target.
        ttlt: SimDuration,
    },
}

impl QosClass {
    /// Convenience constructor for an interactive class with targets in
    /// seconds / milliseconds.
    pub fn interactive_secs_ms(ttft_secs: f64, tbt_ms: f64) -> Self {
        QosClass::Interactive {
            ttft: SimDuration::from_secs_f64(ttft_secs),
            tbt: SimDuration::from_millis_f64(tbt_ms),
        }
    }

    /// Convenience constructor for a non-interactive class with a TTLT in
    /// seconds.
    pub fn non_interactive_secs(ttlt_secs: f64) -> Self {
        QosClass::NonInteractive {
            ttlt: SimDuration::from_secs_f64(ttlt_secs),
        }
    }

    /// True for the interactive class.
    pub fn is_interactive(&self) -> bool {
        matches!(self, QosClass::Interactive { .. })
    }

    /// The TTFT target, if interactive.
    pub fn ttft(&self) -> Option<SimDuration> {
        match self {
            QosClass::Interactive { ttft, .. } => Some(*ttft),
            QosClass::NonInteractive { .. } => None,
        }
    }

    /// The TBT target, if interactive.
    pub fn tbt(&self) -> Option<SimDuration> {
        match self {
            QosClass::Interactive { tbt, .. } => Some(*tbt),
            QosClass::NonInteractive { .. } => None,
        }
    }

    /// The TTLT target, if non-interactive.
    pub fn ttlt(&self) -> Option<SimDuration> {
        match self {
            QosClass::Interactive { .. } => None,
            QosClass::NonInteractive { ttlt } => Some(*ttlt),
        }
    }

    /// Deadline for the first output token (Eq. 1). Non-interactive
    /// requests have no first-token deadline; their TTLT deadline is
    /// returned instead so schedulers can treat both uniformly as "the
    /// deadline that matters for prefill urgency".
    pub fn first_token_deadline(&self, arrival: SimTime) -> SimTime {
        match self {
            QosClass::Interactive { ttft, .. } => arrival + *ttft,
            QosClass::NonInteractive { ttlt } => arrival + *ttlt,
        }
    }

    /// Deadline for the `n`-th output token, 1-based (Eq. 2). For
    /// non-interactive requests every token shares the TTLT deadline
    /// (Eq. 3) — only completion matters.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `n` is zero.
    pub fn token_deadline(&self, arrival: SimTime, n: u32) -> SimTime {
        debug_assert!(n >= 1, "token positions are 1-based");
        match self {
            QosClass::Interactive { ttft, tbt } => arrival + *ttft + *tbt * (n.max(1) - 1) as u64,
            QosClass::NonInteractive { ttlt } => arrival + *ttlt,
        }
    }

    /// Deadline for full completion given the request will emit
    /// `decode_tokens` tokens: Eq. 3 for non-interactive, Eq. 2 evaluated
    /// at the last token for interactive.
    pub fn completion_deadline(&self, arrival: SimTime, decode_tokens: u32) -> SimTime {
        match self {
            QosClass::Interactive { .. } => self.token_deadline(arrival, decode_tokens.max(1)),
            QosClass::NonInteractive { ttlt } => arrival + *ttlt,
        }
    }
}

/// A named QoS tier: identity plus class/SLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QosTier {
    /// Tier identity.
    pub id: TierId,
    /// Latency class and targets.
    pub class: QosClass,
}

impl QosTier {
    /// Creates a tier.
    pub fn new(id: TierId, class: QosClass) -> Self {
        QosTier { id, class }
    }

    /// Table 3's Q1: interactive, TTFT 6 s, TBT 50 ms.
    pub fn paper_q1() -> Self {
        QosTier::new(TierId::Q1, QosClass::interactive_secs_ms(6.0, 50.0))
    }

    /// Table 3's Q2: non-interactive, TTLT 600 s.
    pub fn paper_q2() -> Self {
        QosTier::new(TierId::Q2, QosClass::non_interactive_secs(600.0))
    }

    /// Table 3's Q3: non-interactive, TTLT 1800 s.
    pub fn paper_q3() -> Self {
        QosTier::new(TierId::Q3, QosClass::non_interactive_secs(1_800.0))
    }

    /// All three Table 3 tiers in order.
    pub fn paper_tiers() -> [QosTier; 3] {
        [Self::paper_q1(), Self::paper_q2(), Self::paper_q3()]
    }
}

/// Application-provided importance hint used by eager relegation during
/// overload (the paper's free-vs-paid-tier example, §3.4).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Priority {
    /// Preferentially relegated under overload.
    Low,
    /// Protected as long as any low-priority work can be relegated instead.
    #[default]
    Important,
}

/// A fully-specified SLO: tier plus the metrics derived from it. This is
/// the value attached to each request at submission, mirroring the paper's
/// extended vLLM API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Slo {
    /// The tier the request belongs to.
    pub tier: QosTier,
    /// Application importance hint.
    pub priority: Priority,
}

impl Slo {
    /// Creates an SLO from a tier with default (important) priority.
    pub fn of_tier(tier: QosTier) -> Self {
        Slo {
            tier,
            priority: Priority::Important,
        }
    }

    /// Sets the priority hint.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_first_token_deadline() {
        let q1 = QosTier::paper_q1();
        let arrival = SimTime::from_secs(100);
        assert_eq!(
            q1.class.first_token_deadline(arrival),
            SimTime::from_secs(106)
        );
    }

    #[test]
    fn eq2_token_deadlines_pace_by_tbt() {
        let class = QosClass::interactive_secs_ms(6.0, 50.0);
        let arrival = SimTime::ZERO;
        assert_eq!(class.token_deadline(arrival, 1), SimTime::from_secs(6));
        assert_eq!(
            class.token_deadline(arrival, 2),
            SimTime::from_secs(6) + SimDuration::from_millis(50)
        );
        assert_eq!(
            class.token_deadline(arrival, 21),
            SimTime::from_secs(7) // 6s + 20 * 50ms
        );
    }

    #[test]
    fn eq3_non_interactive_deadline_is_flat() {
        let class = QosClass::non_interactive_secs(600.0);
        let arrival = SimTime::from_secs(50);
        let expected = SimTime::from_secs(650);
        assert_eq!(class.first_token_deadline(arrival), expected);
        assert_eq!(class.token_deadline(arrival, 1), expected);
        assert_eq!(class.token_deadline(arrival, 500), expected);
        assert_eq!(class.completion_deadline(arrival, 123), expected);
    }

    #[test]
    fn interactive_completion_deadline_uses_last_token() {
        let class = QosClass::interactive_secs_ms(6.0, 50.0);
        let arrival = SimTime::ZERO;
        assert_eq!(
            class.completion_deadline(arrival, 101),
            SimTime::from_secs(6) + SimDuration::from_millis(50) * 100
        );
        // Degenerate zero-decode request still has the TTFT deadline.
        assert_eq!(class.completion_deadline(arrival, 0), SimTime::from_secs(6));
    }

    #[test]
    fn accessors_match_class() {
        let i = QosClass::interactive_secs_ms(3.0, 25.0);
        assert!(i.is_interactive());
        assert_eq!(i.ttft(), Some(SimDuration::from_secs(3)));
        assert_eq!(i.tbt(), Some(SimDuration::from_millis(25)));
        assert_eq!(i.ttlt(), None);

        let n = QosClass::non_interactive_secs(1_000.0);
        assert!(!n.is_interactive());
        assert_eq!(n.ttlt(), Some(SimDuration::from_secs(1_000)));
        assert_eq!(n.ttft(), None);
        assert_eq!(n.tbt(), None);
    }

    #[test]
    fn paper_tiers_match_table3() {
        let [q1, q2, q3] = QosTier::paper_tiers();
        assert_eq!(q1.id, TierId::Q1);
        assert_eq!(q1.class.ttft(), Some(SimDuration::from_secs(6)));
        assert_eq!(q1.class.tbt(), Some(SimDuration::from_millis(50)));
        assert_eq!(q2.class.ttlt(), Some(SimDuration::from_secs(600)));
        assert_eq!(q3.class.ttlt(), Some(SimDuration::from_secs(1_800)));
    }

    #[test]
    fn priority_orders_low_first() {
        assert!(Priority::Low < Priority::Important);
        assert_eq!(Priority::default(), Priority::Important);
    }

    #[test]
    fn tier_display() {
        assert_eq!(TierId::Q1.to_string(), "Q1");
        assert_eq!(TierId(7).to_string(), "Q7");
    }

    #[test]
    fn slo_builder() {
        let slo = Slo::of_tier(QosTier::paper_q1()).with_priority(Priority::Low);
        assert_eq!(slo.priority, Priority::Low);
        assert_eq!(slo.tier.id, TierId::Q1);
    }

    #[test]
    fn serde_round_trip() {
        let slo = Slo::of_tier(QosTier::paper_q2());
        let json = serde_json::to_string(&slo).unwrap();
        assert_eq!(serde_json::from_str::<Slo>(&json).unwrap(), slo);
    }
}
