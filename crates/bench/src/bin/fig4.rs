//! Figure 4: throughput/latency as a function of chunk size.
//!
//! Reproduces the characterisation behind dynamic chunking: iteration
//! latency grows roughly affinely with chunk size while throughput
//! saturates around a 2–2.5 k-token chunk; the paper marks chunk ≈ 330
//! against the 50 ms TBT SLO and reports ~2x throughput at 2500 vs 256.

use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results};

fn main() {
    banner(
        "fig4",
        "Throughput-latency tradeoff vs chunk size (Llama3-8B, A100)",
    );

    let hw = HardwareConfig::llama3_8b_a100_tp1();
    let model = LatencyModel::new(&hw);

    // The decode pool the characterisation batches carry: ~100 in-flight
    // decodes with ~2k context each (a loaded replica).
    let decodes = 100u32;
    let decode_ctx = 200_000u64;
    let batch = |chunk: u32| {
        BatchProfile::builder()
            .prefill_chunk(chunk, 1_000)
            .decodes(decodes, decode_ctx)
            .build()
    };

    let mut table = Table::new(vec!["chunk", "throughput (tok/s)", "latency (ms)"]);
    let mut at_slo: Option<u32> = None;
    let mut tput_256 = 0.0;
    let mut tput_2500 = 0.0;
    let mut rows = Vec::new();
    for chunk in (64..=2_560).step_by(64).chain([3_072, 4_096]) {
        let b = batch(chunk);
        let tput = model.throughput_tokens_per_sec(&b);
        let lat_ms = model.iteration_time_us(&b) / 1e3;
        if lat_ms <= 50.0 {
            at_slo = Some(chunk);
        }
        if chunk == 256 {
            tput_256 = tput;
        }
        if chunk == 2_496 {
            tput_2500 = tput;
        }
        if chunk % 256 == 0 || chunk == 64 {
            table.row(vec![
                chunk.to_string(),
                format!("{tput:.0}"),
                format!("{lat_ms:.1}"),
            ]);
        }
        rows.push(serde_json::json!({
            "chunk": chunk,
            "throughput_tok_s": tput,
            "latency_ms": lat_ms,
        }));
    }
    print!("{table}");
    emit_results("fig4", &rows);

    println!();
    println!(
        "largest chunk meeting the 50ms TBT SLO: {} (paper marks ~330)",
        at_slo.map_or("none".to_owned(), |c| c.to_string())
    );
    println!(
        "throughput ratio 2500/256: {:.2}x (paper reports ~2x)",
        tput_2500 / tput_256
    );
}
