//! Streaming log-bucketed latency histogram.
//!
//! Long cluster runs produce millions of latency samples; sorting full
//! vectors per percentile query (as [`percentile`](crate::percentile)
//! does) is fine for experiment post-processing but not for online
//! monitoring. [`LogHistogram`] records samples in logarithmically spaced
//! buckets — constant memory, O(1) insert, bounded relative quantile
//! error — the same trade HDR-style histograms make in production serving
//! telemetry.

use serde::{Deserialize, Serialize};

/// Rejected [`LogHistogram::try_with_resolution`] parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResolutionError {
    /// The floor was zero or negative (buckets are log-spaced, so the
    /// smallest representable value must be positive).
    NonPositiveFloor(f64),
    /// The growth factor was ≤ 1 (buckets would not grow).
    GrowthTooSmall(f64),
}

impl std::fmt::Display for ResolutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolutionError::NonPositiveFloor(v) => {
                write!(f, "floor must be positive (got {v})")
            }
            ResolutionError::GrowthTooSmall(v) => {
                write!(f, "growth must exceed 1 (got {v})")
            }
        }
    }
}

impl std::error::Error for ResolutionError {}

/// Rejected [`LogHistogram::try_merge`]: the operands bucket values
/// differently, so their counts are not combinable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MergeError {
    /// The histograms disagree on the bucket floor.
    Floor {
        /// Receiver's floor.
        left: f64,
        /// Argument's floor.
        right: f64,
    },
    /// The histograms disagree on the growth factor.
    Growth {
        /// Receiver's growth.
        left: f64,
        /// Argument's growth.
        right: f64,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Floor { left, right } => {
                write!(f, "floor mismatch: {left} vs {right}")
            }
            MergeError::Growth { left, right } => {
                write!(f, "growth mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// A streaming histogram with logarithmically spaced buckets.
///
/// Values are expected in `(0, +inf)`; non-positive values clamp into the
/// first bucket. With the default `growth` of 1.05, quantile estimates
/// carry at most ~5 % relative error.
///
/// # Example
///
/// ```
/// use qoserve_metrics::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for i in 1..=1000 {
///     h.record(i as f64);
/// }
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((p50 / 500.0 - 1.0).abs() < 0.06);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Smallest representable value; everything below lands in bucket 0.
    floor: f64,
    /// Bucket growth factor (> 1).
    growth: f64,
    /// ln(growth), cached.
    ln_growth: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Default: 1 µs floor, 5 % buckets — spans µs to days in ~460
    /// buckets.
    pub fn new() -> Self {
        Self::with_resolution(1e-6, 1.05)
    }

    /// Custom floor and growth factor.
    ///
    /// # Panics
    ///
    /// Panics if `floor <= 0` or `growth <= 1`; use
    /// [`try_with_resolution`](Self::try_with_resolution) to handle the
    /// error instead.
    pub fn with_resolution(floor: f64, growth: f64) -> Self {
        match Self::try_with_resolution(floor, growth) {
            Ok(h) => h,
            // qoserve-lint: allow(panic-hygiene) -- documented `# Panics` wrapper for statically valid configs; fallible path is try_with_resolution
            Err(e) => panic!("{e}"),
        }
    }

    /// Custom floor and growth factor, rejecting unusable parameters
    /// instead of panicking.
    pub fn try_with_resolution(floor: f64, growth: f64) -> Result<Self, ResolutionError> {
        // NaN parameters fall into the error arms too.
        if floor.is_nan() || floor <= 0.0 {
            return Err(ResolutionError::NonPositiveFloor(floor));
        }
        if growth.is_nan() || growth <= 1.0 {
            return Err(ResolutionError::GrowthTooSmall(growth));
        }
        Ok(LogHistogram {
            floor,
            growth,
            ln_growth: growth.ln(),
            counts: Vec::new(),
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        })
    }

    fn bucket_of(&self, value: f64) -> usize {
        if value <= self.floor {
            return 0;
        }
        ((value / self.floor).ln() / self.ln_growth).floor() as usize + 1
    }

    /// Lower edge of bucket `i`.
    fn bucket_low(&self, i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            self.floor * self.growth.powi(i as i32 - 1)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        let idx = self.bucket_of(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact mean of the recorded values.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum / self.total as f64)
        }
    }

    /// Exact minimum.
    pub fn min(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Exact maximum.
    pub fn max(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), within one bucket's
    /// relative error; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c > rank {
                // Geometric midpoint of the bucket, clamped to observed
                // extremes so min/max quantiles are exact.
                let low = self.bucket_low(i).max(self.min);
                let high = (self.bucket_low(i + 1)).min(self.max).max(low);
                return Some((low * high).sqrt().clamp(self.min, self.max));
            }
            seen += c;
        }
        Some(self.max)
    }

    /// Merges another histogram with identical resolution.
    ///
    /// # Panics
    ///
    /// Panics if the resolutions differ; use
    /// [`try_merge`](Self::try_merge) to handle the mismatch instead.
    pub fn merge(&mut self, other: &LogHistogram) {
        if let Err(e) = self.try_merge(other) {
            // qoserve-lint: allow(panic-hygiene) -- documented `# Panics` wrapper for same-resolution merges; fallible path is try_merge
            panic!("{e}");
        }
    }

    /// Merges another histogram, failing — with `self` unchanged — when
    /// the resolutions differ (their buckets would not line up).
    pub fn try_merge(&mut self, other: &LogHistogram) -> Result<(), MergeError> {
        if self.floor != other.floor {
            return Err(MergeError::Floor {
                left: self.floor,
                right: other.floor,
            });
        }
        if self.growth != other.growth {
            return Err(MergeError::Growth {
                left: self.growth,
                right: other.growth,
            });
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }
}

impl Extend<f64> for LogHistogram {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for LogHistogram {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut h = LogHistogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percentile::percentile;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn single_value_is_exact() {
        let mut h = LogHistogram::new();
        h.record(42.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.0), Some(42.0));
        assert_eq!(h.quantile(1.0), Some(42.0));
        assert_eq!(h.mean(), Some(42.0));
    }

    #[test]
    fn quantiles_track_exact_within_bucket_error() {
        let values: Vec<f64> = (1..=10_000).map(|i| (i as f64).powf(1.3)).collect();
        let h: LogHistogram = values.iter().copied().collect();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = percentile(&values, q).unwrap();
            let est = h.quantile(q).unwrap();
            assert!(
                (est / exact - 1.0).abs() < 0.06,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn non_positive_values_clamp_to_first_bucket() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(1.0);
        assert_eq!(h.count(), 3);
        assert!(h.quantile(0.0).unwrap() <= 0.0 + 1e-12);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let xs: Vec<f64> = (1..500).map(|i| i as f64 * 0.37).collect();
        let mut a: LogHistogram = xs[..200].iter().copied().collect();
        let b: LogHistogram = xs[200..].iter().copied().collect();
        a.merge(&b);
        let combined: LogHistogram = xs.iter().copied().collect();
        assert_eq!(a, combined);
    }

    #[test]
    #[should_panic(expected = "floor mismatch")]
    fn merge_rejects_mismatched_resolution() {
        let mut a = LogHistogram::with_resolution(1e-3, 1.05);
        let b = LogHistogram::with_resolution(1e-6, 1.05);
        a.merge(&b);
    }

    #[test]
    fn try_with_resolution_reports_the_bad_parameter() {
        assert_eq!(
            LogHistogram::try_with_resolution(0.0, 1.05),
            Err(ResolutionError::NonPositiveFloor(0.0))
        );
        assert_eq!(
            LogHistogram::try_with_resolution(-2.0, 1.05),
            Err(ResolutionError::NonPositiveFloor(-2.0))
        );
        assert_eq!(
            LogHistogram::try_with_resolution(1e-6, 1.0),
            Err(ResolutionError::GrowthTooSmall(1.0))
        );
        assert!(LogHistogram::try_with_resolution(f64::NAN, 1.05).is_err());
        assert!(LogHistogram::try_with_resolution(1e-6, f64::NAN).is_err());
        assert!(LogHistogram::try_with_resolution(1e-6, 1.05).is_ok());
        let msg = LogHistogram::try_with_resolution(1e-6, 0.5)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("growth must exceed 1"), "{msg}");
    }

    #[test]
    fn try_merge_fails_cleanly_and_leaves_self_unchanged() {
        let mut a = LogHistogram::with_resolution(1e-3, 1.05);
        a.record(5.0);
        let snapshot = a.clone();
        let b = LogHistogram::with_resolution(1e-6, 1.05);
        let err = a.try_merge(&b).unwrap_err();
        assert_eq!(
            err,
            MergeError::Floor {
                left: 1e-3,
                right: 1e-6
            }
        );
        assert_eq!(a, snapshot, "failed merge must not mutate the receiver");

        let c = LogHistogram::with_resolution(1e-3, 1.10);
        assert!(matches!(a.try_merge(&c), Err(MergeError::Growth { .. })));

        let mut d = LogHistogram::with_resolution(1e-3, 1.05);
        d.record(7.0);
        assert!(a.try_merge(&d).is_ok());
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn extreme_quantiles_stay_within_one_bucket_of_min_and_max() {
        // q=0 and q=1 resolve to the extreme buckets: at 5% growth the
        // estimate sits within one bucket's relative error of the true
        // extreme, and the clamp keeps it inside the observed range.
        let h: LogHistogram = (1..=1000).map(|i| i as f64 * 0.731).collect();
        let q0 = h.quantile(0.0).unwrap();
        let q1 = h.quantile(1.0).unwrap();
        assert!(q0 >= 0.731 && q0 <= 0.731 * 1.05, "q0={q0}");
        assert!(q1 <= 731.0 && q1 >= 731.0 / 1.05, "q1={q1}");
    }

    #[test]
    fn values_on_bucket_edges_bucket_deterministically() {
        // A value exactly at the floor lands in bucket 0 (the `<=` in
        // bucket_of); values exactly on a log-bucket edge land in a
        // single bucket, so repeated edge values never straddle two.
        let floor = 1.0;
        let growth = 2.0;
        let mut h = LogHistogram::with_resolution(floor, growth);
        h.record(floor);
        assert_eq!(h.quantile(0.5), Some(floor));

        // growth^3 = 8.0 is an exact f64, i.e. a true bucket edge.
        let mut edge = LogHistogram::with_resolution(floor, growth);
        for _ in 0..10 {
            edge.record(8.0);
        }
        // All mass in one bucket and clamped to the observed extremes:
        // every quantile is exactly the recorded edge value.
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(edge.quantile(q), Some(8.0), "q={q}");
        }
    }

    #[test]
    fn quantile_rank_boundaries_pick_the_right_bucket() {
        // Two buckets with equal mass: the rank rounding at q=0.5 must
        // stay inside the lower bucket for an even split of 2 values.
        let mut h = LogHistogram::with_resolution(1.0, 10.0);
        h.record(2.0); // bucket for (1, 10]
        h.record(200.0); // bucket for (100, 1000]
        let q0 = h.quantile(0.0).unwrap();
        let q1 = h.quantile(1.0).unwrap();
        assert!((2.0..10.0).contains(&q0), "q0={q0}");
        assert!((100.0..=200.0).contains(&q1), "q1={q1}");
        // rank(0.49) = round(0.49 * 1) = 0 -> lower bucket; rank(0.51)
        // rounds to 1 -> upper bucket.
        assert!(h.quantile(0.49).unwrap() < 100.0);
        assert!(h.quantile(0.51).unwrap() > 100.0);
    }

    #[test]
    fn histogram_serde_round_trip_preserves_quantiles() {
        let h: LogHistogram = (1..=500).map(|i| (i as f64).sqrt()).collect();
        let json = serde_json::to_string(&h).expect("serialize");
        let back: LogHistogram = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(h, back);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), back.quantile(q), "q={q}");
        }
    }

    proptest! {
        #[test]
        fn quantile_within_observed_range(
            xs in proptest::collection::vec(1e-6f64..1e6, 1..300),
            q in 0.0f64..1.0,
        ) {
            let h: LogHistogram = xs.iter().copied().collect();
            let v = h.quantile(q).unwrap();
            let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9, "{v} not in [{min}, {max}]");
        }

        #[test]
        fn quantile_monotone_in_q(xs in proptest::collection::vec(1e-3f64..1e5, 2..300)) {
            let h: LogHistogram = xs.iter().copied().collect();
            let q25 = h.quantile(0.25).unwrap();
            let q75 = h.quantile(0.75).unwrap();
            prop_assert!(q25 <= q75 + 1e-9);
        }

        #[test]
        fn count_and_mean_are_exact(xs in proptest::collection::vec(1e-3f64..1e5, 1..200)) {
            let h: LogHistogram = xs.iter().copied().collect();
            prop_assert_eq!(h.count(), xs.len() as u64);
            let exact = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((h.mean().unwrap() - exact).abs() < 1e-6 * exact.abs().max(1.0));
        }
    }
}
