//! Failure recovery: dynamic re-dispatch across a fault-injected cluster.
//!
//! The plain deployments in [`deployment`](crate::deployment) fix each
//! request's replica once, at submission — fine while every replica
//! lives. Under injected faults ([`FaultSchedule`]) a crash strands
//! everything in flight or queued on the dead replica, so this module
//! replaces the static one-shot assignment with a recovery loop:
//!
//! 1. Replicas advance in sharded epochs: between fault-schedule events
//!    every replica's steps are purely replica-local, so the runner lets
//!    each one advance independently (across `QOSERVE_THREADS` workers)
//!    up to the next pending crash instant, then falls back to the
//!    min-now lockstep kernel for the crash neighbourhood — a crash is
//!    still observed before any survivor moves past it, and the step
//!    order replayed around it is exactly the lockstep one.
//! 2. A crash surfaces the dead replica's orphans
//!    ([`OrphanedJob`](qoserve_engine::OrphanedJob)); each is re-dispatched
//!    to a surviving replica after a deterministic linear backoff, paying
//!    its prompt tokens again (re-prefill — the KV died with the replica).
//! 3. Retries are bounded ([`FaultPlan::max_retries`]); requests that keep
//!    landing on crashing replicas end as
//!    [`Disposition::RetryExhausted`].
//! 4. When too few replicas survive, low-priority requests are shed
//!    ([`Disposition::Shed`]) instead of dragging every tier down —
//!    the fault-path analogue of the paper's graceful-degradation
//!    argument (§3.3).
//! 5. Crashed replicas with a configured downtime restart empty and
//!    rejoin the rotation.
//!
//! Everything is deterministic: the fault timeline is derived from the
//! seed alone, replica selection is a round-robin cursor over the
//! schedule's up-set, and backoff is a fixed linear function of the
//! attempt number. The same seed and configuration replays bit-identically
//! regardless of `QOSERVE_THREADS`, and an all-zero fault configuration is
//! bit-identical to [`run_shared`](crate::deployment::run_shared).

use std::collections::{BTreeMap, BTreeSet};

use qoserve_engine::{ReplicaConfig, ReplicaEngine};
use qoserve_metrics::{Disposition, RequestOutcome};
use qoserve_sim::faults::{CrashEvent, FaultConfig, FaultSchedule};
use qoserve_sim::{par_map, SeedStream, SimDuration, SimTime};
use qoserve_trace::{ControlObserver, FaultKind, TraceEvent, Tracer};
use qoserve_workload::{Priority, RequestId, Trace};

use crate::breaker::{pick_round_robin, pick_target, BreakerConfig, CircuitBreaker};
use crate::deployment::ClusterConfig;
use crate::router::RouterError;
use crate::spec::SchedulerSpec;

/// Fault-injection and recovery policy for one cluster run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Fault intensity configuration; the timeline is derived from it and
    /// the run's seed.
    pub faults: FaultConfig,
    /// Re-dispatch attempts per request before giving up
    /// ([`Disposition::RetryExhausted`]).
    pub max_retries: u32,
    /// Linear backoff unit: attempt `n` is re-dispatched
    /// `n * retry_backoff` after the crash.
    pub retry_backoff: SimDuration,
    /// When fewer than this fraction of replicas are up at re-dispatch
    /// time, [`Priority::Low`] orphans are shed instead of retried.
    pub shed_below_up_fraction: f64,
    /// When set, each replica gets a circuit breaker thresholding its
    /// rolling health snapshot, and orphan re-dispatch prefers replicas
    /// whose breaker allows work (falling back to the full up-set — a
    /// breaker may delay work, never strand it).
    pub breaker: Option<BreakerConfig>,
}

impl FaultPlan {
    /// No faults; the recovery path is exercised but never fires.
    pub fn none() -> Self {
        FaultPlan {
            faults: FaultConfig::none(),
            ..FaultPlan::default()
        }
    }

    /// A plan around the given fault configuration with default recovery
    /// parameters.
    pub fn with_faults(faults: FaultConfig) -> Self {
        FaultPlan {
            faults,
            ..FaultPlan::default()
        }
    }

    /// The plan with fault rates scaled by `intensity` (recovery
    /// parameters unchanged) — the knob the fault sweep turns.
    pub fn scaled(&self, intensity: f64) -> Self {
        FaultPlan {
            faults: self.faults.scaled(intensity),
            ..self.clone()
        }
    }

    /// The plan with per-replica circuit breakers enabled.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = Some(breaker);
        self
    }
}

impl Default for FaultPlan {
    /// Defaults: no faults, 3 retries, 500 ms backoff unit, shed
    /// low-priority work below 1/3 surviving capacity, no breakers.
    fn default() -> Self {
        FaultPlan {
            faults: FaultConfig::none(),
            max_retries: 3,
            retry_backoff: SimDuration::from_millis(500),
            shed_below_up_fraction: 0.34,
            breaker: None,
        }
    }
}

/// Aggregate fault/recovery counters of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct FaultRunStats {
    /// Crash events that fired.
    pub crashes: u64,
    /// Crashed replicas that restarted (a crash without restart is a
    /// permanent loss).
    pub restarts: u64,
    /// Successful re-dispatches of orphaned requests.
    pub redispatches: u64,
    /// Orphans shed by the tier-aware low-capacity policy (plus orphans
    /// with no surviving replica at all).
    pub shed: u64,
    /// Orphans dropped after exhausting the retry budget.
    pub retry_exhausted: u64,
    /// Prompt tokens prefilled again because their KV died with a crash.
    pub reprefill_tokens: u64,
    /// Engine iterations executed inside straggler/drift windows.
    pub degraded_iterations: u64,
    /// Circuit-breaker trips across all replicas (0 without breakers).
    #[serde(default)]
    pub breaker_opens: u64,
    /// Re-dispatches steered away from an up-but-unhealthy replica.
    #[serde(default)]
    pub breaker_diverted: u64,
    /// Scale-up actions applied by the elastic control plane.
    #[serde(default)]
    pub scale_ups: u64,
    /// Scale-down (graceful drain) actions applied.
    #[serde(default)]
    pub scale_downs: u64,
    /// Requests migrated off draining replicas through the orphan path.
    #[serde(default)]
    pub drain_migrated: u64,
    /// Simulated microseconds spent provisioning and warming replicas
    /// before they served their first request — the cost of every flap.
    #[serde(default)]
    pub warmup_wasted_us: u64,
}

/// Outcomes plus recovery counters of one fault-injected run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultRunResult {
    /// One outcome per submitted request, ordered by request id, with
    /// retry/re-prefill accounting stamped on.
    pub outcomes: Vec<RequestOutcome>,
    /// Aggregate counters.
    pub stats: FaultRunStats,
}

/// One replica slot of the recovery loop. The engine is replaced by a
/// fresh generation after a restart; `crashes` is this replica's full
/// crash timeline with `next_crash` indexing the upcoming one.
pub(crate) struct Slot {
    pub(crate) engine: ReplicaEngine,
    pub(crate) crashes: Vec<CrashEvent>,
    pub(crate) next_crash: usize,
    /// Drained (or restarting-and-empty): skipped until new work arrives.
    pub(crate) parked: bool,
    /// Permanently crashed; never receives work again.
    pub(crate) dead: bool,
}

/// Runs `trace` on a shared deployment of `replicas` identical replicas
/// under the fault plan. With an all-zero fault configuration the result's
/// outcomes are bit-identical to
/// [`run_shared`](crate::deployment::run_shared).
///
/// Returns one outcome per request (ordered by id): completions, plus
/// explicit [`Disposition::Shed`] / [`Disposition::RetryExhausted`]
/// records for requests lost to the fault policy — no request ever
/// disappears.
pub fn run_shared_faulty(
    trace: &Trace,
    replicas: u32,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    plan: &FaultPlan,
    seeds: &SeedStream,
) -> Result<FaultRunResult, RouterError> {
    run_shared_faulty_traced(
        trace,
        replicas,
        scheduler,
        config,
        plan,
        seeds,
        &Tracer::disabled(),
    )
}

/// [`run_shared_faulty`] with a decision [`Tracer`] installed on every
/// replica engine, scheduler, and circuit breaker, plus orchestrator-level
/// events (crash [`TraceEvent::FaultInjected`]s at the schedule's crash
/// instants and [`TraceEvent::OrphanRedispatched`]s at re-dispatch times).
/// The plain entry point delegates here with a disabled tracer, which is
/// behaviourally free. Within one replica, events are emitted in program
/// order and the sink orders records canonically by `(time_us, replica,
/// seq)`, so the captured trace is a pure function of
/// `(trace, scheduler, config, plan, seeds)` — independent of how the
/// sharded kernel's parallel phases were scheduled across threads.
#[allow(clippy::too_many_arguments)]
pub fn run_shared_faulty_traced(
    trace: &Trace,
    replicas: u32,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    plan: &FaultPlan,
    seeds: &SeedStream,
    tracer: &Tracer,
) -> Result<FaultRunResult, RouterError> {
    run_faulty_inner(
        trace,
        replicas,
        scheduler,
        config,
        plan,
        seeds,
        tracer,
        None,
        ExecMode::Sharded,
    )
}

/// [`run_shared_faulty_traced`] with a [`ControlObserver`] driven at its
/// own deterministic sim-time boundaries. A boundary `t` is processed
/// once every runnable replica's clock has reached it — the same fixed
/// point as the crash barrier — so the observer callback sequence is a
/// pure function of `(trace, scheduler, config, plan, seeds)` at any
/// `QOSERVE_THREADS` and in either kernel. Observation is contractually
/// invisible: outcomes are bit-identical to the unobserved entry points
/// (pinned by the stats integration tests).
#[allow(clippy::too_many_arguments)]
pub fn run_shared_faulty_observed(
    trace: &Trace,
    replicas: u32,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    plan: &FaultPlan,
    seeds: &SeedStream,
    tracer: &Tracer,
    observer: Option<&dyn ControlObserver>,
) -> Result<FaultRunResult, RouterError> {
    run_faulty_inner(
        trace,
        replicas,
        scheduler,
        config,
        plan,
        seeds,
        tracer,
        observer,
        ExecMode::Sharded,
    )
}

/// [`run_shared_faulty_observed`] on the reference lockstep kernel, for
/// differential testing of the observer schedule itself.
#[allow(clippy::too_many_arguments)]
pub fn run_shared_faulty_observed_lockstep(
    trace: &Trace,
    replicas: u32,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    plan: &FaultPlan,
    seeds: &SeedStream,
    tracer: &Tracer,
    observer: Option<&dyn ControlObserver>,
) -> Result<FaultRunResult, RouterError> {
    run_faulty_inner(
        trace,
        replicas,
        scheduler,
        config,
        plan,
        seeds,
        tracer,
        observer,
        ExecMode::Lockstep,
    )
}

/// [`run_shared_faulty`] on the pre-event-core min-now lockstep kernel:
/// a single thread always steps the engine furthest behind in simulated
/// time, start to finish. Bit-identical to the sharded kernel — kept as
/// the measured baseline for `sim_core_bench` and for differential
/// testing, not as a production entry point.
pub fn run_shared_faulty_lockstep(
    trace: &Trace,
    replicas: u32,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    plan: &FaultPlan,
    seeds: &SeedStream,
) -> Result<FaultRunResult, RouterError> {
    run_faulty_inner(
        trace,
        replicas,
        scheduler,
        config,
        plan,
        seeds,
        &Tracer::disabled(),
        None,
        ExecMode::Lockstep,
    )
}

/// Which kernel drives a faulty run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExecMode {
    /// Two-phase sharded kernel: parallel replica-local advancement
    /// between fault epochs, lockstep only around crash processing.
    Sharded,
    /// The original single-threaded min-now kernel, start to finish.
    Lockstep,
}

/// Piecewise-constant cache of [`FaultSchedule::up_replicas_at`]: the
/// up-set only changes at crash/restart instants, so re-dispatch stops
/// rescanning the whole fault timeline per orphan and binary-searches a
/// precomputed interval table instead.
pub(crate) struct UpSetIndex {
    /// Sorted instants where some replica goes down or comes back;
    /// `sets[i]` holds on `[starts[i], starts[i + 1])`.
    starts: Vec<SimTime>,
    sets: Vec<Vec<u32>>,
}

impl UpSetIndex {
    pub(crate) fn build(schedule: &FaultSchedule, replicas: u32) -> Self {
        let mut starts = vec![SimTime::ZERO];
        for r in 0..replicas {
            for c in schedule.crashes_for(r) {
                starts.push(c.at);
                if let Some(restart) = c.restart_at {
                    starts.push(restart);
                }
            }
        }
        starts.sort_unstable();
        starts.dedup();
        // Crash and restart both take effect *at* their instant
        // (left-closed intervals), so evaluating the schedule at each
        // boundary covers everything up to the next one.
        let sets = starts.iter().map(|&t| schedule.up_replicas_at(t)).collect();
        UpSetIndex { starts, sets }
    }

    /// Exactly `schedule.up_replicas_at(t)`, precomputed.
    pub(crate) fn up_at(&self, t: SimTime) -> &[u32] {
        let i = self.starts.partition_point(|&s| s <= t).saturating_sub(1);
        &self.sets[i]
    }
}

/// The next epoch barrier: the earliest pending crash instant across
/// runnable slots. `None` means no runnable replica can ever crash again
/// (parked slots only revive through re-dispatch, which needs a crash to
/// fire first), so the rest of the run is purely replica-local.
pub(crate) fn pending_crash_barrier(slots: &[Slot]) -> Option<SimTime> {
    slots
        .iter()
        .filter(|s| !s.dead && !s.parked)
        .filter_map(|s| s.crashes.get(s.next_crash).map(|c| c.at))
        .min()
}

/// Advances one replica's purely local steps up to (strictly before)
/// `barrier`, or to completion without one. The strict bound is what
/// keeps the merged state on the lockstep schedule: a step whose entry
/// clock has reached the barrier may be ordered after the crash
/// processing in min-now order, so it belongs to the serial phase.
fn advance_replica(
    slot: &mut Slot,
    mut breaker: Option<&mut CircuitBreaker>,
    barrier: Option<SimTime>,
) {
    if slot.dead || slot.parked {
        return;
    }
    loop {
        if let Some(t) = barrier {
            if slot.engine.now() >= t {
                return;
            }
        }
        if slot.engine.step() {
            if let Some(b) = breaker.as_mut() {
                // Health reads are pure and the breaker is replica-local,
                // so observing here matches the lockstep order exactly.
                b.observe(&slot.engine.health(), slot.engine.now());
            }
        } else {
            if !slot.engine.crashed() {
                slot.parked = true; // drained (or horizon); may be revived
            }
            return;
        }
    }
}

/// Phase one of the sharded kernel: every runnable replica advances to
/// the barrier on [`par_map`] workers. Replica-local steps commute
/// across replicas, so the merged state is bit-identical to stepping
/// them serially at any `QOSERVE_THREADS`.
pub(crate) fn advance_to_barrier(
    slots: &mut Vec<Slot>,
    breakers: &mut Vec<CircuitBreaker>,
    barrier: Option<SimTime>,
) {
    let pairs: Vec<(Slot, Option<CircuitBreaker>)> = if breakers.is_empty() {
        slots.drain(..).map(|s| (s, None)).collect()
    } else {
        slots.drain(..).zip(breakers.drain(..).map(Some)).collect()
    };
    for (slot, breaker) in par_map(pairs, |_, (mut slot, mut breaker)| {
        advance_replica(&mut slot, breaker.as_mut(), barrier);
        (slot, breaker)
    }) {
        slots.push(slot);
        if let Some(b) = breaker {
            breakers.push(b);
        }
    }
}

/// Shared driver behind every faulty entry point; `mode` selects the
/// sharded kernel or the reference lockstep kernel. See the module docs
/// for the synchronization argument.
#[allow(clippy::too_many_arguments)]
fn run_faulty_inner(
    trace: &Trace,
    replicas: u32,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    plan: &FaultPlan,
    seeds: &SeedStream,
    tracer: &Tracer,
    observer: Option<&dyn ControlObserver>,
    mode: ExecMode,
) -> Result<FaultRunResult, RouterError> {
    let targets = config
        .router
        .try_assign(trace.requests(), replicas as usize)?;

    // The fault timeline must cover the whole run; with no explicit
    // horizon, pad past the last arrival so late-run crashes exist.
    let schedule_horizon = config
        .horizon
        .unwrap_or_else(|| trace.horizon() + SimDuration::from_secs(3_600));
    let schedule = FaultSchedule::generate(
        &plan.faults,
        replicas,
        schedule_horizon,
        &seeds.child("faults"),
    );

    // Generation-0 engines, seeded exactly as `run_replica_pools` does so
    // the zero-fault case is bit-identical to `run_shared`.
    let make_engine = |replica_id: u32, from: SimTime| {
        let replica_seeds = seeds.child("replica");
        // qoserve-lint: allow(hot-path-alloc) -- engine construction: once per replica and per crash restart, not per event
        let mut rc = ReplicaConfig::new(config.hardware.clone())
            .with_replica_id(replica_id)
            .with_faults(schedule.profile_for(replica_id, from));
        rc.noise_sigma = config.noise_sigma;
        rc.max_decode_batch = config.max_decode_batch;
        rc.horizon = config.horizon;
        let sched = scheduler.build(&config.hardware, &replica_seeds);
        let mut engine = ReplicaEngine::new(rc, sched, &replica_seeds);
        if tracer.enabled() {
            // qoserve-lint: allow(hot-path-alloc) -- engine construction, not per event
            engine.set_tracer(tracer.clone());
        }
        engine
    };

    let mut slots: Vec<Slot> = (0..replicas)
        .map(|r| Slot {
            engine: make_engine(r, SimTime::ZERO),
            crashes: schedule.crashes_for(r),
            next_crash: 0,
            parked: false,
            dead: false,
        })
        .collect();
    for (spec, target) in trace.requests().iter().zip(targets) {
        slots[target].engine.submit(*spec);
    }

    let mut stats = FaultRunStats::default();
    let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(trace.len());
    let mut retries: BTreeMap<RequestId, u32> = BTreeMap::new();
    let mut reprefill: BTreeMap<RequestId, u64> = BTreeMap::new();
    let mut relegated_ids: BTreeSet<RequestId> = BTreeSet::new();
    let mut rotation: u64 = 0;
    // One breaker per replica when the plan enables them; empty otherwise
    // (dispatch then degenerates to plain round-robin).
    let mut breakers: Vec<CircuitBreaker> = plan
        .breaker
        .map(|cfg| {
            (0..replicas)
                .map(|r| {
                    let mut b = CircuitBreaker::new(cfg);
                    if tracer.enabled() {
                        b.set_tracer(tracer.for_replica(r));
                    }
                    b
                })
                .collect()
        })
        .unwrap_or_default();

    let up_index = UpSetIndex::build(&schedule, replicas);
    let sharded = matches!(mode, ExecMode::Sharded);
    // Observation boundaries are barrier instants of their own: the
    // sharded kernel never advances a replica past the next one, so the
    // observer fires at exactly the lockstep point — after every step
    // whose entry clock precedes the boundary, before any that follows.
    let mut next_obs: Option<SimTime> = observer.and_then(|o| o.next_boundary(SimTime::ZERO));
    // Two-phase sharded execution: at every resync point (run start and
    // each processed crash) the barrier may have moved, so the runner
    // first advances every runnable replica in parallel up to the next
    // pending crash instant, then re-enters the lockstep kernel below to
    // carry the crash neighbourhood serially.
    let mut resync = sharded;
    loop {
        if resync {
            let barrier = match (pending_crash_barrier(&slots), next_obs) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            advance_to_barrier(&mut slots, &mut breakers, barrier);
            resync = false;
        }

        // Fire the observation boundary once every runnable clock has
        // reached it. A pure no-op for the run itself: no engine state,
        // outcome, or timing is touched. With nothing runnable the run
        // is over and the remaining window folds at `finish` instead —
        // firing here would tick forever (boundaries never run out).
        if let (Some(obs), Some(t)) = (observer, next_obs) {
            let min_runnable = slots
                .iter()
                .filter(|s| !s.dead && !s.parked)
                .map(|s| s.engine.now())
                .min();
            if min_runnable.is_some_and(|m| m >= t) {
                obs.boundary(t);
                next_obs = obs.next_boundary(t);
                resync = sharded;
                continue;
            }
        }

        // Lockstep: always advance the live engine furthest behind, so a
        // crash is observed before any survivor's clock passes it. Ties
        // break to the lowest replica index — deterministic. In sharded
        // mode every runnable clock already sits at or past the barrier,
        // so this phase only covers the steps around one crash.
        let mut pick: Option<usize> = None;
        for (i, s) in slots.iter().enumerate() {
            if s.dead || s.parked {
                continue;
            }
            match pick {
                Some(p) if slots[p].engine.now() <= s.engine.now() => {}
                _ => pick = Some(i),
            }
        }
        let Some(idx) = pick else {
            break; // every slot is drained or dead
        };

        if slots[idx].engine.step() {
            if let Some(b) = breakers.get_mut(idx) {
                // Health reads are pure: observing never perturbs the
                // engine's own timeline.
                b.observe(&slots[idx].engine.health(), slots[idx].engine.now());
            }
            continue;
        }

        if !slots[idx].engine.crashed() {
            slots[idx].parked = true; // drained (or horizon); may be revived
            continue;
        }

        // --- Crash handling -------------------------------------------
        stats.crashes += 1;
        let crash = slots[idx].crashes.get(slots[idx].next_crash).copied();
        slots[idx].next_crash += 1;
        // The schedule's crash instant, not the engine clock (which may
        // have idled past it), anchors backoff and restart timing.
        let crash_at = crash.map(|c| c.at).unwrap_or(slots[idx].engine.now());
        let replica_id = idx as u32;
        if tracer.enabled() {
            tracer.for_replica(replica_id).emit_at(
                crash_at,
                None,
                TraceEvent::FaultInjected {
                    kind: FaultKind::Crash,
                    slowdown: 1.0,
                },
            );
        }

        let mut orphans = slots[idx].engine.take_orphans();
        stats.degraded_iterations += slots[idx].engine.degraded_iterations();
        outcomes.extend(slots[idx].engine.take_outcomes());
        orphans.sort_by_key(|j| j.spec.id);

        match crash.and_then(|c| c.restart_at) {
            Some(restart_at) => {
                stats.restarts += 1;
                slots[idx].engine = make_engine(replica_id, restart_at);
                slots[idx].parked = true; // empty until re-dispatch
                if let Some(b) = breakers.get_mut(idx) {
                    b.reset(); // fresh generation, fresh health history
                }
            }
            None => slots[idx].dead = true,
        }

        for orphan in orphans {
            let id = orphan.spec.id;
            let attempt = {
                let a = retries.entry(id).or_insert(0);
                *a += 1;
                *a
            };
            if orphan.prefill_done > 0 {
                *reprefill.entry(id).or_insert(0) += orphan.prefill_done as u64;
            }
            if orphan.relegated {
                relegated_ids.insert(id);
            }
            let was_relegated = relegated_ids.contains(&id);

            if attempt > plan.max_retries {
                stats.retry_exhausted += 1;
                outcomes.push(RequestOutcome::unserved(
                    orphan.spec,
                    was_relegated,
                    replica_id,
                    Disposition::RetryExhausted,
                ));
                continue;
            }

            let redispatch_at =
                (crash_at + plan.retry_backoff * attempt as u64).max(orphan.spec.arrival);
            let up = up_index.up_at(redispatch_at);
            let up_fraction = up.len() as f64 / replicas as f64;
            let low_capacity = up_fraction < plan.shed_below_up_fraction
                && orphan.spec.priority() == Priority::Low;
            // Breaker-aware selection prefers healthy targets but falls
            // back to the full up-set — it may delay work, never strand
            // it. `None` if and only if no replica is up at all.
            let picked = if low_capacity {
                None
            } else if breakers.is_empty() {
                pick_round_robin(up, rotation)
            } else {
                pick_target(up, &[], &breakers, rotation, redispatch_at)
            };
            let Some(picked) = picked else {
                stats.shed += 1;
                outcomes.push(RequestOutcome::unserved(
                    orphan.spec,
                    was_relegated,
                    replica_id,
                    Disposition::Shed,
                ));
                continue;
            };

            stats.redispatches += 1;
            if picked.diverted {
                stats.breaker_diverted += 1;
            }
            let target = picked.replica as usize;
            rotation += 1;
            if tracer.enabled() {
                tracer.for_replica(picked.replica).emit_at(
                    redispatch_at,
                    Some(id.0),
                    TraceEvent::OrphanRedispatched {
                        from_replica: replica_id,
                        to_replica: picked.replica,
                        attempt,
                    },
                );
            }
            slots[target].engine.submit_at(orphan.spec, redispatch_at);
            slots[target].parked = false;
        }

        // One crash fully processed: re-dispatches may have revived
        // parked slots and `next_crash` advanced, so the barrier has to
        // be recomputed before anything else steps.
        resync = sharded;
    }

    // Finalize every surviving engine (dead slots were emptied at crash
    // time; their `finish` contributes nothing).
    for slot in &mut slots {
        stats.degraded_iterations += slot.engine.degraded_iterations();
        outcomes.extend(slot.engine.finish());
    }

    // Stamp retry / re-prefill / relegation history onto final outcomes.
    for o in &mut outcomes {
        if let Some(&r) = retries.get(&o.spec.id) {
            o.retries = r;
        }
        if let Some(&tokens) = reprefill.get(&o.spec.id) {
            o.reprefill_tokens = tokens;
            stats.reprefill_tokens += tokens;
        }
        if relegated_ids.contains(&o.spec.id) {
            o.relegated = true;
        }
    }
    outcomes.sort_by_key(|o| o.spec.id);
    debug_assert_eq!(outcomes.len(), trace.len(), "no request may be lost");

    stats.breaker_opens = breakers.iter().map(|b| b.open_count()).sum();
    if let Some(obs) = observer {
        let end = slots
            .iter()
            .map(|s| s.engine.now())
            .max()
            .unwrap_or(SimTime::ZERO);
        obs.finish(end);
    }
    Ok(FaultRunResult { outcomes, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::run_shared;
    use qoserve_perf::HardwareConfig;
    use qoserve_workload::{ArrivalProcess, Dataset, TraceBuilder};

    fn config() -> ClusterConfig {
        ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1())
    }

    fn trace(seed: u64, qps: f64, n: usize) -> Trace {
        TraceBuilder::new(Dataset::azure_conv())
            .arrivals(ArrivalProcess::poisson(qps))
            .num_requests(n)
            .paper_tier_mix()
            .build(&SeedStream::new(seed))
    }

    #[test]
    fn zero_faults_match_run_shared_bit_for_bit() {
        let t = trace(11, 5.0, 150);
        let plain = run_shared(
            &t,
            3,
            &SchedulerSpec::qoserve(),
            &config(),
            &SeedStream::new(11),
        );
        let faulty = run_shared_faulty(
            &t,
            3,
            &SchedulerSpec::qoserve(),
            &config(),
            &FaultPlan::none(),
            &SeedStream::new(11),
        )
        .unwrap();
        assert_eq!(faulty.outcomes, plain);
        assert_eq!(faulty.stats, FaultRunStats::default());
    }

    #[test]
    fn faulty_run_is_deterministic_and_conserves_requests() {
        let t = trace(12, 6.0, 200);
        let plan = FaultPlan::with_faults(FaultConfig::moderate().scaled(2.0));
        let run = || {
            run_shared_faulty(
                &t,
                4,
                &SchedulerSpec::qoserve(),
                &config(),
                &plan,
                &SeedStream::new(12),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must replay bit-identically");
        assert_eq!(a.outcomes.len(), t.len());
        for (i, o) in a.outcomes.iter().enumerate() {
            assert_eq!(o.spec.id.0, i as u64, "one outcome per request, by id");
        }
    }

    #[test]
    fn crashes_produce_retries_and_reprefill() {
        let t = trace(13, 8.0, 250);
        // Crash hard and often, with restarts, so recovery must fire.
        let mut faults = FaultConfig::moderate();
        faults.crash_rate_per_hour = 600.0;
        let plan = FaultPlan::with_faults(faults);
        let r = run_shared_faulty(
            &t,
            3,
            &SchedulerSpec::qoserve(),
            &config(),
            &plan,
            &SeedStream::new(13),
        )
        .unwrap();
        assert!(r.stats.crashes > 0, "600 crashes/hour must fire");
        assert!(r.stats.redispatches > 0, "orphans must be re-dispatched");
        assert!(
            r.outcomes.iter().any(|o| o.retries > 0),
            "some outcome must record a retry"
        );
        let completed_after_retry = r
            .outcomes
            .iter()
            .filter(|o| o.retries > 0 && o.finished())
            .count();
        assert!(
            completed_after_retry > 0,
            "recovery must actually save requests"
        );
    }

    #[test]
    fn breakers_leave_zero_fault_runs_bit_identical() {
        let t = trace(16, 5.0, 120);
        let base = run_shared_faulty(
            &t,
            3,
            &SchedulerSpec::qoserve(),
            &config(),
            &FaultPlan::none(),
            &SeedStream::new(16),
        )
        .unwrap();
        let with_breaker = run_shared_faulty(
            &t,
            3,
            &SchedulerSpec::qoserve(),
            &config(),
            &FaultPlan::none().with_breaker(BreakerConfig::default()),
            &SeedStream::new(16),
        )
        .unwrap();
        // Health observation is a pure read: enabling breakers on a
        // fault-free cluster changes nothing.
        assert_eq!(with_breaker.outcomes, base.outcomes);
        assert_eq!(with_breaker.stats.breaker_opens, 0);
        assert_eq!(with_breaker.stats.breaker_diverted, 0);
    }

    #[test]
    fn sustained_stragglers_trip_the_breakers() {
        let t = trace(17, 8.0, 150);
        // Straggler windows at ~100/s tiling the whole run at 4x latency:
        // every replica is degraded essentially always, so every breaker
        // must trip once it has a full judgement window.
        let mut faults = FaultConfig::none();
        faults.straggler_rate_per_hour = 360_000.0;
        faults.straggler_duration = SimDuration::from_secs(60);
        faults.straggler_factor = 4.0;
        let plan = FaultPlan::with_faults(faults).with_breaker(BreakerConfig::default());
        let run = || {
            run_shared_faulty(
                &t,
                2,
                &SchedulerSpec::qoserve(),
                &config(),
                &plan,
                &SeedStream::new(17),
            )
            .unwrap()
        };
        let a = run();
        assert_eq!(a, run(), "breaker decisions must replay bit-identically");
        assert_eq!(a.outcomes.len(), t.len());
        assert!(a.stats.degraded_iterations > 0);
        assert!(
            a.stats.breaker_opens > 0,
            "an always-straggling replica must trip its breaker"
        );
    }

    #[test]
    fn breaker_dispatch_is_deterministic_under_mixed_faults() {
        let t = trace(18, 8.0, 250);
        let mut faults = FaultConfig::moderate();
        faults.crash_rate_per_hour = 600.0;
        let plan = FaultPlan::with_faults(faults).with_breaker(BreakerConfig::default());
        let run = || {
            run_shared_faulty(
                &t,
                3,
                &SchedulerSpec::qoserve(),
                &config(),
                &plan,
                &SeedStream::new(18),
            )
            .unwrap()
        };
        let a = run();
        assert_eq!(a, run(), "same seed must replay bit-identically");
        assert_eq!(a.outcomes.len(), t.len());
        assert!(a.stats.crashes > 0);
        assert!(
            a.stats.redispatches > 0,
            "orphans must still flow with breakers enabled"
        );
    }

    #[test]
    fn sharded_kernel_matches_lockstep_reference_bit_for_bit() {
        let t = trace(19, 8.0, 250);
        let mut faults = FaultConfig::moderate();
        faults.crash_rate_per_hour = 600.0;
        let plan = FaultPlan::with_faults(faults).with_breaker(BreakerConfig::default());
        let run = |f: &dyn Fn() -> Result<FaultRunResult, RouterError>| f().unwrap();
        let sharded = run(&|| {
            run_shared_faulty(
                &t,
                3,
                &SchedulerSpec::qoserve(),
                &config(),
                &plan,
                &SeedStream::new(19),
            )
        });
        let lockstep = run(&|| {
            run_shared_faulty_lockstep(
                &t,
                3,
                &SchedulerSpec::qoserve(),
                &config(),
                &plan,
                &SeedStream::new(19),
            )
        });
        assert!(
            sharded.stats.crashes > 0,
            "the differential must exercise recovery"
        );
        assert_eq!(sharded, lockstep, "kernels must agree bit-for-bit");
    }

    #[test]
    fn zero_replicas_is_a_typed_error() {
        let t = trace(14, 1.0, 5);
        let err = run_shared_faulty(
            &t,
            0,
            &SchedulerSpec::qoserve(),
            &config(),
            &FaultPlan::none(),
            &SeedStream::new(14),
        );
        assert_eq!(err.unwrap_err(), RouterError::NoReplicas);
    }

    #[test]
    fn permanent_crashes_without_restart_shed_or_exhaust() {
        let t = trace(15, 6.0, 150);
        let mut faults = FaultConfig::moderate();
        faults.crash_rate_per_hour = 900.0;
        faults.restart_downtime = None; // every crash is permanent
        let plan = FaultPlan::with_faults(faults);
        let r = run_shared_faulty(
            &t,
            2,
            &SchedulerSpec::sarathi_fcfs(),
            &config(),
            &plan,
            &SeedStream::new(15),
        )
        .unwrap();
        assert!(r.stats.crashes > 0);
        assert_eq!(r.stats.restarts, 0);
        assert_eq!(r.outcomes.len(), t.len());
        let lost = r
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.disposition,
                    Disposition::Shed | Disposition::RetryExhausted
                )
            })
            .count();
        assert!(
            lost > 0,
            "with every replica permanently dead, some work must be shed"
        );
    }
}
