//! Figure 9: dynamic chunk sizes over consecutive batches.
//!
//! Runs QoServe on the Azure-Conv trace and prints the chunk budget and
//! execution time of 200 consecutive iterations taken from the middle of
//! the run. Expected shape: when slack accumulates, the budget opens
//! toward the 2560 maximum; when interactive decodes get tight, it drops
//! back — execution time tracks the chosen chunk.

use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results};

fn main() {
    banner("fig9", "Dynamic chunking trace (Az-Conv, Llama3-8B)");

    let hw = HardwareConfig::llama3_8b_a100_tp1();
    let seeds = SeedStream::new(9);
    // Interactive-heavy near-capacity load: decode slack actually binds,
    // so the budget oscillates between the TBT floor and the 2560 cap.
    let mix = TierMix::new(vec![(QosTier::paper_q1(), 2.0), (QosTier::paper_q2(), 1.0)]);
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(7.0))
        .duration(SimDuration::from_secs(600))
        .tier_mix(mix)
        .build(&seeds);

    let sched = QoServeScheduler::new(QoServeConfig::default(), LatencyPredictor::analytical(&hw));
    let config = ReplicaConfig::new(hw).with_batch_recording();
    let mut engine = ReplicaEngine::new(config, Box::new(sched), &seeds);
    let _ = engine.run_trace(&trace);

    let log = engine.batch_log();
    let start = log.len() / 3;
    let window = &log[start..(start + 200).min(log.len())];

    let mut table = Table::new(vec![
        "batch",
        "chunk budget",
        "prefill tokens",
        "exec (ms)",
        "decodes",
    ]);
    let mut rows = Vec::new();
    for (i, b) in window.iter().enumerate() {
        if i % 10 == 0 {
            table.row(vec![
                (start + i).to_string(),
                b.token_budget.to_string(),
                b.prefill_tokens.to_string(),
                format!("{:.1}", b.exec.as_millis_f64()),
                b.num_decodes.to_string(),
            ]);
        }
        rows.push(serde_json::json!({
            "batch": start + i,
            "chunk_budget": b.token_budget,
            "prefill_tokens": b.prefill_tokens,
            "exec_ms": b.exec.as_millis_f64(),
            "decodes": b.num_decodes,
        }));
    }
    print!("{table}");
    emit_results("fig9", &rows);

    let budgets: Vec<f64> = window.iter().map(|b| b.token_budget as f64).collect();
    let execs: Vec<f64> = window.iter().map(|b| b.exec.as_millis_f64()).collect();
    let min_b = budgets.iter().copied().fold(f64::INFINITY, f64::min);
    let max_b = budgets.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!();
    println!(
        "chunk budget range over the window: {min_b:.0}..{max_b:.0} tokens \
         (paper: oscillates between the TBT-constrained floor and ~2500)"
    );
    println!(
        "exec time range: {:.1}..{:.1} ms",
        execs.iter().copied().fold(f64::INFINITY, f64::min),
        execs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    );

    // Correlation between budget and execution time (should be strongly
    // positive: bigger chunks take longer).
    let corr = correlation(&budgets, &execs);
    println!("corr(chunk budget, exec time) = {corr:.2}");
}

fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
}
