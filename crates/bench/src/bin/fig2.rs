//! Figure 2: traditional multi-SLA scheduling policies vs QoServe.
//!
//! Sweeps load over the three-tier Azure-Code workload and reports, for
//! the strictest QoS class (Q1): median latency, tail (p99) latency,
//! overall deadline violations, and long-request deadline violations.
//! Expected shape (paper): FCFS collapses first; EDF is clean at low load
//! but cliff-drops past capacity; SJF/SRPF hold median latency but starve
//! long jobs even at 2.5 QPS; QoServe interpolates and minimises
//! violations everywhere.

use qoserve::experiments::{load_sweep, scaled_window};
use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results};
use qoserve_metrics::percentile;

fn main() {
    banner(
        "fig2",
        "Traditional policies for multi-SLA scheduling (Az-Code, Llama3-8B)",
    );

    let schemes = vec![
        SchedulerSpec::sarathi_fcfs(),
        SchedulerSpec::Sarathi {
            policy: OrderPolicy::Sjf,
            chunk: 256,
        },
        SchedulerSpec::sarathi_srpf(),
        SchedulerSpec::sarathi_edf(),
        SchedulerSpec::qoserve(),
    ];
    let qps_list = [2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 6.0];
    let window = scaled_window(3600);

    let points = load_sweep(
        &Dataset::azure_code(),
        &HardwareConfig::llama3_8b_a100_tp1(),
        &schemes,
        &qps_list,
        window,
        &TierMix::paper_equal(),
        2026,
    );

    let mut table = Table::new(vec![
        "qps",
        "scheme",
        "Q1 p50 TTFT (s)",
        "Q1 p99 TTFT (s)",
        "violations",
        "long violations",
    ]);
    let mut rows = Vec::new();
    for p in &points {
        let q1_ttft: Vec<f64> = p
            .outcomes
            .iter()
            .filter(|o| o.tier() == TierId::Q1)
            .filter_map(|o| o.ttft())
            .map(|d| d.as_secs_f64())
            .collect();
        table.row(vec![
            format!("{:.1}", p.qps),
            p.scheme.clone(),
            percentile(&q1_ttft, 0.5).map_or("-".into(), |v| format!("{v:.2}")),
            percentile(&q1_ttft, 0.99).map_or("-".into(), |v| format!("{v:.2}")),
            format!("{:.1}%", p.report.violation_pct()),
            format!("{:.1}%", p.report.long_violation_pct()),
        ]);
        rows.push(serde_json::json!({
            "scheme": p.scheme,
            "qps": p.qps,
            "q1_p50_ttft_secs": percentile(&q1_ttft, 0.5),
            "q1_p99_ttft_secs": percentile(&q1_ttft, 0.99),
            "violation_pct": p.report.violation_pct(),
            "long_violation_pct": p.report.long_violation_pct(),
        }));
    }
    print!("{table}");
    emit_results("fig2", &rows);

    // Headline checks mirroring the figure's captions.
    println!();
    let at = |scheme: &str, qps: f64| {
        points
            .iter()
            .find(|p| p.scheme == scheme && (p.qps - qps).abs() < 1e-9)
            .expect("point exists")
    };
    println!(
        "long-request violations at 2.5 QPS — SRPF {:.1}% vs QoServe {:.1}% (paper: SRPF already starves long jobs)",
        at("Sarathi-SRPF", 2.5).report.long_violation_pct(),
        at("QoServe", 2.5).report.long_violation_pct(),
    );
    println!(
        "overall violations at 6 QPS — FCFS {:.1}%, EDF {:.1}%, QoServe {:.1}%",
        at("Sarathi-FCFS", 6.0).report.violation_pct(),
        at("Sarathi-EDF", 6.0).report.violation_pct(),
        at("QoServe", 6.0).report.violation_pct(),
    );
}
