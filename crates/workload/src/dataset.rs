//! Token-length distributions for the evaluation datasets.
//!
//! Table 2 of the paper reports p50/p90 prompt and decode token counts for
//! ShareGPT and the Azure Conversation / Code production traces. The real
//! traces are not redistributable, so [`Dataset`] fits a log-normal to the
//! published percentiles of each (see DESIGN.md's substitution table) —
//! the evaluation only depends on these marginals plus Poisson arrivals.

use rand::Rng;
use serde::{Deserialize, Serialize};

use qoserve_sim::rng::lognormal_from_percentiles;

/// Percentile description of one token-count distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LengthProfile {
    /// Median token count.
    pub p50: f64,
    /// 90th-percentile token count.
    pub p90: f64,
    /// Hard floor applied to samples.
    pub min: u32,
    /// Hard cap applied to samples (model context limit).
    pub max: u32,
}

impl LengthProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `p50 <= 0`, `p90 < p50`, or `min > max`.
    pub fn new(p50: f64, p90: f64, min: u32, max: u32) -> Self {
        assert!(p50 > 0.0, "p50 must be positive");
        assert!(p90 >= p50, "p90 must be >= p50");
        assert!(min <= max, "min must be <= max");
        LengthProfile { p50, p90, min, max }
    }

    /// Draws one token count.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        lognormal_from_percentiles(
            rng,
            self.p50,
            self.p90 / self.p50,
            self.min as f64,
            self.max as f64,
        )
        .round() as u32
    }
}

/// A named dataset: prompt and decode length distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name as reported in the paper.
    pub name: String,
    /// Prompt-length distribution.
    pub prompt: LengthProfile,
    /// Decode-length distribution.
    pub decode: LengthProfile,
}

impl Dataset {
    /// ShareGPT (Table 2): prompt p50 1730 / p90 5696, decode p50 415 /
    /// p90 834.
    pub fn sharegpt() -> Self {
        Dataset {
            name: "ShareGPT".to_owned(),
            prompt: LengthProfile::new(1_730.0, 5_696.0, 16, 32_768),
            decode: LengthProfile::new(415.0, 834.0, 1, 4_096),
        }
    }

    /// Azure Conversation trace (Table 2): prompt 928 / 3830, decode 41 /
    /// 342.
    pub fn azure_conv() -> Self {
        Dataset {
            name: "Azure Conv".to_owned(),
            prompt: LengthProfile::new(928.0, 3_830.0, 16, 32_768),
            decode: LengthProfile::new(41.0, 342.0, 1, 4_096),
        }
    }

    /// Azure Code trace (Table 2): prompt 1930 / 6251, decode 8 / 43.
    pub fn azure_code() -> Self {
        Dataset {
            name: "Azure Code".to_owned(),
            prompt: LengthProfile::new(1_930.0, 6_251.0, 16, 32_768),
            decode: LengthProfile::new(8.0, 43.0, 1, 4_096),
        }
    }

    /// The three paper datasets in Table 2 order.
    pub fn paper_datasets() -> Vec<Dataset> {
        vec![Self::sharegpt(), Self::azure_conv(), Self::azure_code()]
    }

    /// A fixed-length synthetic dataset (used by the Medha comparison,
    /// §4.5.1: 10 K prefill / 500 decode tokens per request).
    pub fn fixed(name: &str, prompt_tokens: u32, decode_tokens: u32) -> Self {
        Dataset {
            name: name.to_owned(),
            prompt: LengthProfile::new(
                prompt_tokens.max(1) as f64,
                prompt_tokens.max(1) as f64,
                prompt_tokens,
                prompt_tokens,
            ),
            decode: LengthProfile::new(
                decode_tokens.max(1) as f64,
                decode_tokens.max(1) as f64,
                decode_tokens.max(1),
                decode_tokens.max(1),
            ),
        }
    }

    /// Draws one (prompt, decode) length pair.
    pub fn sample_lengths<R: Rng + ?Sized>(&self, rng: &mut R) -> (u32, u32) {
        (self.prompt.sample(rng), self.decode.sample(rng))
    }

    /// Expected tokens per request (analytic log-normal mean of prompt +
    /// decode, clamped contributions ignored) — used for capacity
    /// back-of-envelope checks.
    pub fn mean_tokens_per_request(&self) -> f64 {
        fn lognormal_mean(p: &LengthProfile) -> f64 {
            const Z90: f64 = 1.281_551_565_544_9;
            let mu = p.p50.ln();
            let sigma = (p.p90 / p.p50).ln() / Z90;
            (mu + sigma * sigma / 2.0).exp()
        }
        lognormal_mean(&self.prompt) + lognormal_mean(&self.decode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_sim::SeedStream;

    fn percentile(mut xs: Vec<u32>, p: f64) -> f64 {
        xs.sort_unstable();
        xs[((xs.len() as f64 - 1.0) * p).round() as usize] as f64
    }

    #[test]
    fn sharegpt_matches_table2_percentiles() {
        let d = Dataset::sharegpt();
        let mut rng = SeedStream::new(1).derive("ds");
        let prompts: Vec<u32> = (0..30_000).map(|_| d.prompt.sample(&mut rng)).collect();
        let decodes: Vec<u32> = (0..30_000).map(|_| d.decode.sample(&mut rng)).collect();
        assert!((percentile(prompts.clone(), 0.5) / 1_730.0 - 1.0).abs() < 0.06);
        assert!((percentile(prompts, 0.9) / 5_696.0 - 1.0).abs() < 0.08);
        assert!((percentile(decodes.clone(), 0.5) / 415.0 - 1.0).abs() < 0.06);
        assert!((percentile(decodes, 0.9) / 834.0 - 1.0).abs() < 0.08);
    }

    #[test]
    fn azure_code_is_prefill_heavy() {
        // Az-Code has huge prompts and tiny decodes — the most
        // prefill-dominated of the three (Table 2).
        let d = Dataset::azure_code();
        let mut rng = SeedStream::new(2).derive("ds");
        let (sum_p, sum_d) = (0..5_000).fold((0u64, 0u64), |(p, dd), _| {
            let (a, b) = d.sample_lengths(&mut rng);
            (p + a as u64, dd + b as u64)
        });
        assert!(sum_p > 50 * sum_d, "prompts {sum_p} vs decodes {sum_d}");
    }

    #[test]
    fn azure_conv_decode_percentiles() {
        let d = Dataset::azure_conv();
        let mut rng = SeedStream::new(3).derive("ds");
        let decodes: Vec<u32> = (0..30_000).map(|_| d.decode.sample(&mut rng)).collect();
        assert!((percentile(decodes.clone(), 0.5) / 41.0 - 1.0).abs() < 0.1);
        assert!((percentile(decodes, 0.9) / 342.0 - 1.0).abs() < 0.1);
    }

    #[test]
    fn samples_respect_bounds() {
        let p = LengthProfile::new(100.0, 400.0, 50, 200);
        let mut rng = SeedStream::new(4).derive("b");
        for _ in 0..2_000 {
            let v = p.sample(&mut rng);
            assert!((50..=200).contains(&v));
        }
    }

    #[test]
    fn fixed_dataset_is_deterministic() {
        let d = Dataset::fixed("medha-synth", 10_000, 500);
        let mut rng = SeedStream::new(5).derive("f");
        for _ in 0..100 {
            assert_eq!(d.sample_lengths(&mut rng), (10_000, 500));
        }
    }

    #[test]
    #[should_panic(expected = "p90 must be >= p50")]
    fn profile_rejects_inverted_percentiles() {
        let _ = LengthProfile::new(100.0, 50.0, 1, 1_000);
    }

    #[test]
    fn mean_tokens_ordering() {
        // ShareGPT moves the most tokens per request of the three datasets.
        let means: Vec<f64> = Dataset::paper_datasets()
            .iter()
            .map(Dataset::mean_tokens_per_request)
            .collect();
        assert!(
            means[0] > means[1],
            "ShareGPT {} vs Conv {}",
            means[0],
            means[1]
        );
        assert!(
            means[0] > means[2],
            "ShareGPT {} vs Code {}",
            means[0],
            means[2]
        );
    }

    #[test]
    fn serde_round_trip() {
        let d = Dataset::azure_conv();
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(serde_json::from_str::<Dataset>(&json).unwrap(), d);
    }
}
