//! Criterion micro-benchmarks of the hot paths: batch-latency modelling,
//! random-forest prediction, the dynamic-chunk budget search, scheduler
//! batch planning, and end-to-end engine stepping.
//!
//! The scheduling-overhead comparison with SLOs-Serve (§4.5.3) rests on
//! QoServe's per-iteration cost being `O(log N_new)` — `plan_batch_*`
//! benches document that cost directly.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use qoserve::prelude::*;
use qoserve_sched::{Constraints, PrefillJob};

fn hw() -> HardwareConfig {
    HardwareConfig::llama3_8b_a100_tp1()
}

fn mixed_batch() -> BatchProfile {
    BatchProfile::builder()
        .prefill_chunk(512, 2_048)
        .decodes(64, 64 * 1_500)
        .build()
}

fn bench_latency_model(c: &mut Criterion) {
    let model = LatencyModel::new(&hw());
    let batch = mixed_batch();
    c.bench_function("latency_model/iteration_time", |b| {
        b.iter(|| model.iteration_time_us(black_box(&batch)))
    });
}

fn bench_forest_predict(c: &mut Criterion) {
    let seeds = SeedStream::new(1);
    let forest = LatencyPredictor::train_forest(&hw(), &seeds);
    let batch = mixed_batch();
    c.bench_function("forest/predict", |b| {
        b.iter(|| forest.predict_raw_us(black_box(&batch)))
    });
}

fn bench_chunk_budget(c: &mut Criterion) {
    let analytical = ChunkBudget::new(LatencyPredictor::analytical(&hw()), ChunkLimits::default());
    let seeds = SeedStream::new(2);
    let forest_predictor = LatencyPredictor::train_forest(&hw(), &seeds);
    let forest = ChunkBudget::new(forest_predictor.clone(), ChunkLimits::default());
    // The uncached variants quantify what the prediction memo buys; the
    // memoized searches above them run warm (repeated identical args), so
    // the pair brackets the cold-vs-hot range a live scheduler sits in.
    let analytical_uncached =
        ChunkBudget::uncached(LatencyPredictor::analytical(&hw()), ChunkLimits::default());
    let forest_uncached = ChunkBudget::uncached(forest_predictor, ChunkLimits::default());
    let slack = Some(SimDuration::from_millis(80));
    c.bench_function("chunk_budget/analytical", |b| {
        b.iter(|| analytical.prefill_budget(black_box(64), 64 * 1_500, 1_024, slack))
    });
    c.bench_function("chunk_budget/analytical_uncached", |b| {
        b.iter(|| analytical_uncached.prefill_budget(black_box(64), 64 * 1_500, 1_024, slack))
    });
    c.bench_function("chunk_budget/forest", |b| {
        b.iter(|| forest.prefill_budget(black_box(64), 64 * 1_500, 1_024, slack))
    });
    c.bench_function("chunk_budget/forest_uncached", |b| {
        b.iter(|| forest_uncached.prefill_budget(black_box(64), 64 * 1_500, 1_024, slack))
    });
}

fn queued_scheduler(n_jobs: u64) -> QoServeScheduler {
    let mut sched = QoServeScheduler::new(
        QoServeConfig::default(),
        LatencyPredictor::analytical(&hw()),
    );
    for i in 0..n_jobs {
        let spec = RequestSpec {
            id: RequestId(i),
            arrival: SimTime::from_millis(i),
            prompt_tokens: 1_000 + (i % 7) as u32 * 300,
            decode_tokens: 100,
            slo: Slo::of_tier(QosTier::paper_tiers()[(i % 3) as usize]),
            app_id: (i % 3) as u32,
        };
        sched.on_arrival(PrefillJob::new(spec), spec.arrival);
    }
    sched
}

fn decode_pool(n: u64) -> Vec<qoserve_sched::DecodeJob> {
    (0..n)
        .map(|i| qoserve_sched::DecodeJob {
            id: RequestId(1_000_000 + i),
            context_len: 1_500,
            next_token_deadline: SimTime::from_secs(100),
            relegated: false,
        })
        .collect()
}

fn bench_plan_batch(c: &mut Criterion) {
    let decodes = decode_pool(64);
    for queue_len in [100u64, 10_000] {
        c.bench_function(&format!("plan_batch/queue_{queue_len}"), |b| {
            b.iter_batched(
                || queued_scheduler(queue_len),
                |mut sched| {
                    black_box(sched.plan_batch(
                        SimTime::from_secs(1),
                        &decodes,
                        Constraints::unlimited(),
                    ))
                },
                BatchSize::SmallInput,
            )
        });
    }
    // §4.5.3: the SLOs-Serve DP at the same depths (expected to blow up).
    for queue_len in [100u64, 2_000] {
        c.bench_function(&format!("plan_batch/slos_serve_queue_{queue_len}"), |b| {
            b.iter_batched(
                || {
                    let mut sched = SlosServeScheduler::new(
                        SlosServeConfig::default(),
                        LatencyPredictor::analytical(&hw()),
                    );
                    for i in 0..queue_len {
                        let spec = RequestSpec {
                            id: RequestId(i),
                            arrival: SimTime::from_millis(i),
                            prompt_tokens: 1_000 + (i % 7) as u32 * 300,
                            decode_tokens: 100,
                            slo: Slo::of_tier(QosTier::paper_tiers()[(i % 3) as usize]),
                            app_id: (i % 3) as u32,
                        };
                        sched.on_arrival(PrefillJob::new(spec), spec.arrival);
                    }
                    sched
                },
                |mut sched| {
                    black_box(sched.plan_batch(
                        SimTime::from_secs(1),
                        &decodes,
                        Constraints::unlimited(),
                    ))
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_engine_steps(c: &mut Criterion) {
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(3.0))
        .num_requests(200)
        .paper_tier_mix()
        .build(&SeedStream::new(3));
    c.bench_function("engine/run_200_requests", |b| {
        b.iter_batched(
            || {
                let sched = QoServeScheduler::new(
                    QoServeConfig::default(),
                    LatencyPredictor::analytical(&hw()),
                );
                let mut engine = ReplicaEngine::new(
                    ReplicaConfig::new(hw()),
                    Box::new(sched),
                    &SeedStream::new(3),
                );
                for spec in &trace {
                    engine.submit(*spec);
                }
                engine
            },
            |mut engine| black_box(engine.run().len()),
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_latency_model,
        bench_forest_predict,
        bench_chunk_budget,
        bench_plan_batch,
        bench_engine_steps
);
criterion_main!(benches);
