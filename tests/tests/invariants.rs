//! Cross-crate conservation and consistency invariants, checked over full
//! simulation runs (including property-based workload generation).

use proptest::prelude::*;

use qoserve::prelude::*;

fn hw() -> HardwareConfig {
    HardwareConfig::llama3_8b_a100_tp1()
}

fn run(trace: &Trace, spec: &SchedulerSpec, seed: u64) -> Vec<RequestOutcome> {
    let config = ClusterConfig::new(hw());
    run_shared(trace, 1, spec, &config, &SeedStream::new(seed))
}

/// Every outcome of a finished request is temporally consistent.
fn check_outcome_consistency(outcomes: &[RequestOutcome]) {
    for o in outcomes {
        if let (Some(first), Some(done)) = (o.first_token, o.completion) {
            assert!(
                first > o.spec.arrival,
                "{}: first token before arrival",
                o.spec.id
            );
            assert!(
                done >= first,
                "{}: completion before first token",
                o.spec.id
            );
            // TTLT >= TTFT by construction.
            assert!(o.ttlt().unwrap() >= o.ttft().unwrap());
            // A finished request with non-positive worst lateness is not a
            // violation, and vice versa.
            assert_eq!(o.violated(), o.worst_token_lateness.as_micros() > 0);
            // Decode span sanity: at least one token, gaps accumulate.
            if o.spec.decode_tokens > 1 {
                assert!(o.max_tbt > SimDuration::ZERO, "{}: zero TBT", o.spec.id);
            }
        } else {
            assert!(o.violated(), "unfinished must count as violated");
        }
    }
}

#[test]
fn outcomes_are_consistent_across_schedulers() {
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(5.0))
        .num_requests(400)
        .paper_tier_mix()
        .build(&SeedStream::new(1));
    for spec in [
        SchedulerSpec::sarathi_fcfs(),
        SchedulerSpec::sarathi_srpf(),
        SchedulerSpec::sarathi_edf(),
        SchedulerSpec::qoserve(),
    ] {
        let outcomes = run(&trace, &spec, 1);
        assert_eq!(outcomes.len(), trace.len(), "{}", spec.label());
        check_outcome_consistency(&outcomes);
    }
}

#[test]
fn siloed_and_shared_account_identically() {
    let trace = TraceBuilder::new(Dataset::azure_code())
        .arrivals(ArrivalProcess::poisson(6.0))
        .num_requests(600)
        .paper_tier_mix()
        .build(&SeedStream::new(2));
    let config = ClusterConfig::new(hw());
    let seeds = SeedStream::new(2);

    let shared = run_shared(&trace, 3, &SchedulerSpec::qoserve(), &config, &seeds);
    let siloed = run_siloed(
        &trace,
        &[
            SiloGroup::new(vec![TierId::Q1], 1, SchedulerSpec::sarathi_fcfs()),
            SiloGroup::new(
                vec![TierId::Q2, TierId::Q3],
                2,
                SchedulerSpec::sarathi_fcfs(),
            ),
        ],
        &config,
        &seeds,
    );
    for outcomes in [&shared, &siloed] {
        assert_eq!(outcomes.len(), trace.len());
        let ids: std::collections::BTreeSet<u64> = outcomes.iter().map(|o| o.spec.id.0).collect();
        assert_eq!(ids.len(), trace.len(), "unique accounting");
    }
    check_outcome_consistency(&shared);
    check_outcome_consistency(&siloed);
}

#[test]
fn full_stack_determinism() {
    let trace = TraceBuilder::new(Dataset::sharegpt())
        .arrivals(ArrivalProcess::poisson(2.0))
        .num_requests(150)
        .paper_tier_mix()
        .low_priority_fraction(0.2)
        .build(&SeedStream::new(3));
    let a = run(&trace, &SchedulerSpec::qoserve(), 3);
    let b = run(&trace, &SchedulerSpec::qoserve(), 3);
    assert_eq!(
        a, b,
        "identical seeds must reproduce bit-identical outcomes"
    );
}

#[test]
fn trace_survives_serde_and_produces_identical_run() {
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(3.0))
        .num_requests(100)
        .paper_tier_mix()
        .build(&SeedStream::new(4));
    let json = serde_json::to_string(&trace).expect("serialize");
    let back: Trace = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, trace);
    assert_eq!(
        run(&trace, &SchedulerSpec::qoserve(), 4),
        run(&back, &SchedulerSpec::qoserve(), 4)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation holds for arbitrary workload shapes: every request
    /// yields exactly one outcome, and finished outcomes are consistent.
    #[test]
    fn conservation_over_random_workloads(
        seed in 0u64..1_000,
        qps in 0.5f64..8.0,
        n in 20usize..150,
        low_frac in 0.0f64..0.5,
    ) {
        let trace = TraceBuilder::new(Dataset::azure_conv())
            .arrivals(ArrivalProcess::poisson(qps))
            .num_requests(n)
            .paper_tier_mix()
            .low_priority_fraction(low_frac)
            .build(&SeedStream::new(seed));
        let outcomes = run(&trace, &SchedulerSpec::qoserve(), seed);
        prop_assert_eq!(outcomes.len(), n);
        check_outcome_consistency(&outcomes);
    }

    /// The facade API preserves the same invariants.
    #[test]
    fn facade_conservation(seed in 0u64..100, n in 1usize..40) {
        let mut server = QoServe::builder(hw()).seed(seed).build();
        for i in 0..n {
            let req = if i % 2 == 0 {
                Request::interactive(200 + i as u32 * 50, 10)
            } else {
                Request::batch(1_000 + i as u32 * 100, 30)
            };
            server.submit(req.arriving_at_secs(i as f64 * 0.2));
        }
        let report = server.run();
        prop_assert_eq!(report.outcomes.len(), n);
        prop_assert_eq!(report.slo.total, n);
        check_outcome_consistency(&report.outcomes);
    }
}
