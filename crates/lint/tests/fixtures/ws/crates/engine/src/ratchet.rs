//! Fixture: one panic site while the baseline still allows five — a
//! ratchet candidate, not a violation.

pub fn only(v: Option<u32>) -> u32 {
    v.unwrap()
}
