//! The versioned snapshot schema and the delta-composition law.
//!
//! # Full vs delta snapshots
//!
//! The aggregator publishes one [`StatsDelta`] per cadence boundary
//! covering `[from_us, upto_us)`, and maintains the full cumulative
//! [`StatsSnapshot`] *as the left-fold merge of those deltas* — not as an
//! independently updated accumulator. That makes the composition law
//!
//! ```text
//! compose(deltas[..n]) == full snapshot after boundary n    (bit-exact)
//! ```
//!
//! hold even for order-sensitive float merges (Welford means): both
//! sides perform literally the same merge sequence.
//!
//! # Merge semantics per field kind
//!
//! * counters (`u64`) — addition;
//! * windowed aggregates ([`WindowedCounts`]/[`WindowedSamples`],
//!   [`LogHistogram`]) — exact per-window / per-bucket addition;
//! * running moments ([`OnlineStats`]) — parallel Welford merge;
//! * gauges (`Option<T>`: breaker phase, lifecycle, fleet size) — the
//!   later frame wins when it observed a change, otherwise the earlier
//!   value is kept;
//! * event logs (`Vec`) — concatenation (folds run in canonical record
//!   order, so concatenation preserves time order).
//!
//! # Versioning
//!
//! Every snapshot and delta carries [`SNAPSHOT_SCHEMA_VERSION`]; loaders
//! reject other versions. Within a version, fields may be *added* with
//! `#[serde(default)]` (the `serde-back-compat` lint enforces the
//! default), so older artifacts keep loading; unknown fields from newer
//! writers are ignored by serde's default behavior.

use std::collections::BTreeMap;

use qoserve_metrics::{LogHistogram, WindowedCounts, WindowedSamples};
use qoserve_sim::OnlineStats;
use serde::{Deserialize, Serialize};

/// Schema version stamped on every [`StatsSnapshot`] / [`StatsDelta`]
/// and on the JSONL stream header.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Per-QoS-tier accounting. Keys in [`StatsFrame::tiers`] are raw tier
/// ids (`workload::TierId` numbering); [`RELEGATED_TIER`]
/// (`u8::MAX`) never appears as a key — relegations are counted on the
/// tier the request held before demotion.
///
/// [`RELEGATED_TIER`]: qoserve_trace::RELEGATED_TIER
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct TierStats {
    /// Request deliveries to a scheduler (re-dispatched orphans that are
    /// delivered again count again; this is deliveries, not unique ids).
    pub arrived: u64,
    /// Completed requests.
    pub completed: u64,
    /// Completed requests that violated their SLO.
    pub violated: u64,
    /// Eager-relegation demotions out of this tier.
    pub relegated: u64,
    /// Requests bounced by the deadline-aware admission gate.
    pub admission_rejected: u64,
    /// Requests still in flight when the run ended (set only by the
    /// final fold).
    pub unfinished: u64,
    /// Per-window completed/violated tallies — the rolling SLO-attainment
    /// series.
    pub attainment: WindowedCounts,
    /// Time-to-first-token running moments, microseconds.
    pub ttft_us: OnlineStats,
    /// Worst per-token lateness running moments, microseconds (negative
    /// = always early).
    pub lateness_us: OnlineStats,
    /// Max time-between-tokens distribution, microseconds.
    pub tbt_us: LogHistogram,
}

/// Per-replica accounting.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct ReplicaStats {
    /// Engine iterations executed.
    pub iterations: u64,
    /// Sum of observed iteration latencies, microseconds.
    pub busy_us: u64,
    /// Scheduled batch sizes (tokens) per window.
    pub batch_tokens: WindowedSamples,
    /// Dynamic-chunking budget choices per window.
    pub chunk_budget: WindowedSamples,
    /// Outstanding requests sampled at every arrival / completion /
    /// rejection on this replica, per window.
    pub queue_depth: WindowedSamples,
    /// Request deliveries to this replica's scheduler.
    pub arrived: u64,
    /// Requests completed on this replica.
    pub completed: u64,
    /// SLO-violating completions on this replica.
    pub violated: u64,
    /// Crash faults injected.
    pub crashes: u64,
    /// Slowdown faults injected.
    pub slowdowns: u64,
    /// Orphans re-dispatched *off* this replica.
    pub redispatched_away: u64,
    /// Orphans re-dispatched *onto* this replica.
    pub redispatched_onto: u64,
    /// Circuit-breaker transitions into `Open`.
    pub breaker_opens: u64,
    /// Latest breaker phase (`closed` / `open` / `half_probe`), when a
    /// transition was observed.
    pub breaker: Option<String>,
    /// Latest lifecycle state (`provisioning` / `serving` / `draining` /
    /// `retired` / `crashed` / `degraded`), when observed.
    pub lifecycle: Option<String>,
    /// Provision + warm-up time spent before serving, microseconds.
    pub warmup_us: u64,
    /// Graceful drains started.
    pub drains_started: u64,
    /// Graceful drains finished.
    pub drains_finished: u64,
    /// Requests migrated off by graceful drains.
    pub drain_migrated: u64,
    /// Drains whose deadline fired with work still running.
    pub drain_deadline_hits: u64,
    /// Chunk-margin controller adjustments.
    pub margin_moves: u64,
    /// Latest chunk-budget safety margin, when observed.
    pub last_margin: Option<f64>,
    /// Latest forest→analytical fallback engagement, when observed.
    pub fallback: Option<bool>,
    /// Hybrid EDF↔SRPF priority scores computed.
    pub priority_scored: u64,
    /// Chunk-budget searches served from the memo cache.
    pub chunk_cache_hits: u64,
    /// Trace records the capture sink evicted that were attributed to
    /// this replica (truncated observability, not lost requests).
    pub dropped: u64,
}

/// Fleet-wide elastic control-plane accounting.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct FleetStats {
    /// Scale-up decisions.
    pub scale_ups: u64,
    /// Scale-down (drain) decisions.
    pub scale_downs: u64,
    /// `(time_us, fleet_after)` per scale decision, in fold order.
    pub size_points: Vec<(u64, u32)>,
    /// Latest provisioned fleet size, when a scale decision was observed.
    pub last_size: Option<u32>,
    /// Warm-up completions.
    pub warmups: u64,
    /// Total provision + warm-up time, microseconds (replica-hours spent
    /// before serving).
    pub warmup_us: u64,
    /// Orphan re-dispatches.
    pub redispatches: u64,
    /// Faults injected (crashes + slowdowns).
    pub faults: u64,
    /// Total busy time across replicas, microseconds (replica-hours
    /// actually serving).
    pub busy_us: u64,
}

impl FleetStats {
    fn merge(&mut self, other: &FleetStats) {
        self.scale_ups += other.scale_ups;
        self.scale_downs += other.scale_downs;
        self.size_points.extend_from_slice(&other.size_points);
        if other.last_size.is_some() {
            self.last_size = other.last_size;
        }
        self.warmups += other.warmups;
        self.warmup_us += other.warmup_us;
        self.redispatches += other.redispatches;
        self.faults += other.faults;
        self.busy_us += other.busy_us;
    }
}

impl TierStats {
    fn merge(&mut self, other: &TierStats) {
        self.arrived += other.arrived;
        self.completed += other.completed;
        self.violated += other.violated;
        self.relegated += other.relegated;
        self.admission_rejected += other.admission_rejected;
        self.unfinished += other.unfinished;
        self.attainment.merge(&other.attainment);
        self.ttft_us.merge(&other.ttft_us);
        self.lateness_us.merge(&other.lateness_us);
        // Infallible in practice: every writer uses the default
        // resolution. A mismatched (hand-edited) histogram is skipped
        // rather than panicking.
        let _ = self.tbt_us.try_merge(&other.tbt_us);
    }
}

impl ReplicaStats {
    fn merge(&mut self, other: &ReplicaStats) {
        self.iterations += other.iterations;
        self.busy_us += other.busy_us;
        self.batch_tokens.merge(&other.batch_tokens);
        self.chunk_budget.merge(&other.chunk_budget);
        self.queue_depth.merge(&other.queue_depth);
        self.arrived += other.arrived;
        self.completed += other.completed;
        self.violated += other.violated;
        self.crashes += other.crashes;
        self.slowdowns += other.slowdowns;
        self.redispatched_away += other.redispatched_away;
        self.redispatched_onto += other.redispatched_onto;
        self.breaker_opens += other.breaker_opens;
        if other.breaker.is_some() {
            self.breaker.clone_from(&other.breaker);
        }
        if other.lifecycle.is_some() {
            self.lifecycle.clone_from(&other.lifecycle);
        }
        self.warmup_us += other.warmup_us;
        self.drains_started += other.drains_started;
        self.drains_finished += other.drains_finished;
        self.drain_migrated += other.drain_migrated;
        self.drain_deadline_hits += other.drain_deadline_hits;
        self.margin_moves += other.margin_moves;
        if other.last_margin.is_some() {
            self.last_margin = other.last_margin;
        }
        if other.fallback.is_some() {
            self.fallback = other.fallback;
        }
        self.priority_scored += other.priority_scored;
        self.chunk_cache_hits += other.chunk_cache_hits;
        self.dropped += other.dropped;
    }
}

/// The mergeable aggregate payload shared by full and delta snapshots.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct StatsFrame {
    /// Trace records folded into this frame.
    pub events: u64,
    /// Folded-record counts per `TraceEvent` name.
    pub by_event: BTreeMap<String, u64>,
    /// Capture-sink evictions noted in this frame.
    pub dropped: u64,
    /// Capture-sink evictions per replica.
    pub dropped_by_replica: BTreeMap<u32, u64>,
    /// Per-tier accounting, keyed by raw tier id.
    pub tiers: BTreeMap<u8, TierStats>,
    /// Per-replica accounting.
    pub replicas: BTreeMap<u32, ReplicaStats>,
    /// Fleet-wide elastic accounting.
    pub fleet: FleetStats,
    /// Violation counts per lateness-cause label (the forensics
    /// taxonomy: `queueing-delay`, `chunk-induced`, `fault-induced`,
    /// `scale-induced`).
    pub causes: BTreeMap<String, u64>,
    /// Per-window violation tallies per cause label (`total` counts
    /// attributed violations; `flagged` is unused and stays 0).
    pub cause_windows: BTreeMap<String, WindowedCounts>,
}

impl StatsFrame {
    /// Merges `other` into `self` per the field-kind semantics in the
    /// module docs. Exact for counters/windows; running moments merge via
    /// parallel Welford in `other`-after-`self` order.
    pub fn merge(&mut self, other: &StatsFrame) {
        self.events += other.events;
        for (name, n) in &other.by_event {
            *self.by_event.entry(name.clone()).or_insert(0) += n;
        }
        self.dropped += other.dropped;
        for (&replica, n) in &other.dropped_by_replica {
            *self.dropped_by_replica.entry(replica).or_insert(0) += n;
        }
        for (&tier, stats) in &other.tiers {
            self.tiers.entry(tier).or_default().merge(stats);
        }
        for (&replica, stats) in &other.replicas {
            self.replicas.entry(replica).or_default().merge(stats);
        }
        self.fleet.merge(&other.fleet);
        for (label, n) in &other.causes {
            *self.causes.entry(label.clone()).or_insert(0) += n;
        }
        for (label, windows) in &other.cause_windows {
            self.cause_windows
                .entry(label.clone())
                .or_default()
                .merge(windows);
        }
    }

    /// Completed requests across all tiers.
    pub fn completed(&self) -> u64 {
        self.tiers.values().map(|t| t.completed).sum()
    }

    /// SLO-violating completions across all tiers.
    pub fn violated(&self) -> u64 {
        self.tiers.values().map(|t| t.violated).sum()
    }
}

/// The full cumulative snapshot: everything folded in `[0, upto_us)`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct StatsSnapshot {
    /// Schema version ([`SNAPSHOT_SCHEMA_VERSION`]); checked on load.
    pub version: u32,
    /// Boundaries folded so far (the next delta's `seq`).
    pub seq: u64,
    /// Exclusive upper bound of folded record stamps, microseconds.
    pub upto_us: u64,
    /// The cumulative aggregate.
    pub frame: StatsFrame,
}

/// One cadence window's aggregate: records stamped in `[from_us, upto_us)`
/// (plus, in the final delta, any stragglers the orchestrator stamped
/// ahead of the last boundary).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct StatsDelta {
    /// Schema version ([`SNAPSHOT_SCHEMA_VERSION`]); checked on load.
    pub version: u32,
    /// 0-based boundary index.
    pub seq: u64,
    /// Inclusive lower bound of the window, microseconds.
    pub from_us: u64,
    /// Exclusive upper bound of the window, microseconds.
    pub upto_us: u64,
    /// This window's aggregate.
    pub frame: StatsFrame,
}

/// Left-fold merges `deltas` (in the given order) into the full snapshot
/// they compose to. Returns the empty snapshot for an empty slice.
pub fn compose(deltas: &[StatsDelta]) -> StatsSnapshot {
    let mut full = StatsSnapshot {
        version: SNAPSHOT_SCHEMA_VERSION,
        ..StatsSnapshot::default()
    };
    for d in deltas {
        full.frame.merge(&d.frame);
        full.seq = d.seq + 1;
        full.upto_us = full.upto_us.max(d.upto_us);
    }
    full
}

/// A captured snapshot stream: the per-boundary deltas plus the final
/// full snapshot (present once the run finished).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotStream {
    /// Cadence between boundaries, microseconds.
    pub cadence_us: u64,
    /// Per-boundary deltas in `seq` order.
    pub deltas: Vec<StatsDelta>,
    /// The final full snapshot.
    pub full: Option<StatsSnapshot>,
}

/// One JSONL line after the header.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", content = "body", rename_all = "snake_case")]
enum StreamLine {
    Delta(StatsDelta),
    Full(StatsSnapshot),
}

/// Serializes a snapshot stream as JSONL: a header object, one line per
/// delta, then the final full snapshot (when present).
///
/// ```text
/// {"stream":"qoserve-stats","version":1,"cadence_us":60000000,"deltas":3}
/// {"kind":"delta","body":{...}}
/// {"kind":"full","body":{...}}
/// ```
///
/// Output bytes are a pure function of the stream value (struct fields
/// serialize in definition order; maps are `BTreeMap`s).
pub fn stream_to_jsonl(stream: &SnapshotStream) -> String {
    let mut out = String::with_capacity(256 + stream.deltas.len() * 512);
    // Built by hand so the file is self-identifying from its first
    // bytes: `serde_json` maps are `BTreeMap`s, which would order the
    // keys alphabetically and bury the `stream` tag mid-line.
    out.push_str(&format!(
        "{{\"stream\":\"qoserve-stats\",\"version\":{SNAPSHOT_SCHEMA_VERSION},\
         \"cadence_us\":{},\"deltas\":{}}}\n",
        stream.cadence_us,
        stream.deltas.len(),
    ));
    let mut push_line = |line: &StreamLine| {
        // Unreachable for these plain-data types; skipping keeps the
        // writer panic-free (same idiom as the trace exporter).
        if let Ok(text) = serde_json::to_string(line) {
            out.push_str(&text);
            out.push('\n');
        }
    };
    for d in &stream.deltas {
        push_line(&StreamLine::Delta(d.clone()));
    }
    if let Some(full) = &stream.full {
        push_line(&StreamLine::Full(full.clone()));
    }
    out
}

/// Parses a JSONL snapshot stream, rejecting schema-version mismatches
/// (in the header and on every line) with a descriptive error.
pub fn stream_from_jsonl(text: &str) -> Result<SnapshotStream, String> {
    let mut stream = SnapshotStream::default();
    let mut saw_header = false;
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if !saw_header {
            saw_header = true;
            let header: serde_json::Value = serde_json::from_str(line)
                .map_err(|e| format!("line {}: bad header: {e}", idx + 1))?;
            if header.get("stream").and_then(serde_json::Value::as_str) != Some("qoserve-stats") {
                return Err(format!("line {}: not a qoserve-stats stream", idx + 1));
            }
            let version = header
                .get("version")
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0);
            if version != u64::from(SNAPSHOT_SCHEMA_VERSION) {
                return Err(format!(
                    "line {}: unsupported stream version {version} (expected {SNAPSHOT_SCHEMA_VERSION})",
                    idx + 1
                ));
            }
            stream.cadence_us = header
                .get("cadence_us")
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0);
            continue;
        }
        let parsed: StreamLine =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let version = match &parsed {
            StreamLine::Delta(d) => d.version,
            StreamLine::Full(s) => s.version,
        };
        if version != SNAPSHOT_SCHEMA_VERSION {
            return Err(format!(
                "line {}: unsupported snapshot version {version} (expected {SNAPSHOT_SCHEMA_VERSION})",
                idx + 1
            ));
        }
        match parsed {
            StreamLine::Delta(d) => stream.deltas.push(d),
            StreamLine::Full(s) => stream.full = Some(s),
        }
    }
    if !saw_header {
        return Err("empty stream: missing header line".to_owned());
    }
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(seq: u64, from_us: u64, upto_us: u64) -> StatsDelta {
        let mut frame = StatsFrame {
            events: seq + 1,
            ..StatsFrame::default()
        };
        let tier = frame.tiers.entry(1).or_default();
        tier.completed = 2;
        tier.violated = u64::from(seq == 1);
        tier.ttft_us.push(1000.0 * (seq + 1) as f64);
        frame.fleet.last_size = Some(2 + seq as u32);
        StatsDelta {
            version: SNAPSHOT_SCHEMA_VERSION,
            seq,
            from_us,
            upto_us,
            frame,
        }
    }

    #[test]
    fn compose_left_folds_deltas() {
        let deltas = vec![delta(0, 0, 10), delta(1, 10, 20), delta(2, 20, 30)];
        let full = compose(&deltas);
        assert_eq!(full.seq, 3);
        assert_eq!(full.upto_us, 30);
        assert_eq!(full.frame.events, 6);
        let t = &full.frame.tiers[&1];
        assert_eq!(t.completed, 6);
        assert_eq!(t.violated, 1);
        assert_eq!(t.ttft_us.count(), 3);
        // The gauge keeps the latest observation.
        assert_eq!(full.frame.fleet.last_size, Some(4));
        // Composition is incremental: composing a prefix then merging the
        // rest matches composing everything at once.
        let mut prefix = compose(&deltas[..2]);
        prefix.frame.merge(&deltas[2].frame);
        assert_eq!(prefix.frame, full.frame);
    }

    #[test]
    fn stream_jsonl_round_trips() {
        let deltas = vec![delta(0, 0, 10), delta(1, 10, 20)];
        let stream = SnapshotStream {
            cadence_us: 10,
            full: Some(compose(&deltas)),
            deltas,
        };
        let text = stream_to_jsonl(&stream);
        assert!(text.starts_with("{\"stream\":\"qoserve-stats\""), "{text}");
        let back = stream_from_jsonl(&text).expect("round trip");
        assert_eq!(back, stream);
        // Serialization is deterministic.
        assert_eq!(text, stream_to_jsonl(&stream));
    }

    #[test]
    fn stream_rejects_version_mismatch() {
        let stream = SnapshotStream {
            cadence_us: 10,
            deltas: vec![delta(0, 0, 10)],
            full: None,
        };
        let text = stream_to_jsonl(&stream);
        let bumped = text.replace("\"version\":1", "\"version\":99");
        let err = stream_from_jsonl(&bumped).expect_err("must reject");
        assert!(err.contains("unsupported"), "{err}");
        // A per-line mismatch (header fine, body stale) is caught too.
        let line_only = text
            .replacen("\"version\":1", "\"version\":1", 1)
            .replace("\"body\":{\"version\":1", "\"body\":{\"version\":0");
        let err = stream_from_jsonl(&line_only).expect_err("must reject line");
        assert!(err.contains("unsupported snapshot version 0"), "{err}");
        assert!(stream_from_jsonl("").is_err());
        assert!(stream_from_jsonl("{\"stream\":\"other\"}\n").is_err());
    }

    #[test]
    fn snapshot_serde_tolerates_missing_and_unknown_fields() {
        // Missing fields default (an old reader meeting a trimmed
        // artifact, or a new reader meeting an old writer)...
        let s: StatsSnapshot = serde_json::from_str("{\"version\":1,\"seq\":2}").expect("defaults");
        assert_eq!(s.seq, 2);
        assert_eq!(s.frame, StatsFrame::default());
        // ...and unknown fields from a newer writer are ignored.
        let s: StatsDelta = serde_json::from_str(
            "{\"version\":1,\"seq\":0,\"from_us\":0,\"upto_us\":5,\"frame\":{},\"added_in_v9\":true}",
        )
        .expect("unknown fields tolerated");
        assert_eq!(s.upto_us, 5);
        // A defaulted version field (absent entirely) fails the stream's
        // version check rather than loading silently.
        let line = "{\"kind\":\"full\",\"body\":{\"seq\":1}}";
        let text =
            format!("{{\"stream\":\"qoserve-stats\",\"version\":1,\"cadence_us\":1}}\n{line}\n");
        assert!(stream_from_jsonl(&text).is_err());
    }

    #[test]
    fn merge_is_exact_for_windowed_and_counter_fields() {
        let mut a = StatsFrame::default();
        let mut b = StatsFrame::default();
        let ta = a.tiers.entry(0).or_default();
        ta.attainment = WindowedCounts::new(10);
        ta.attainment.record(5, false);
        let tb = b.tiers.entry(0).or_default();
        tb.attainment = WindowedCounts::new(10);
        tb.attainment.record(5, true);
        tb.attainment.record(25, false);
        a.merge(&b);
        let t = &a.tiers[&0];
        assert_eq!(t.attainment.total(), 3);
        assert_eq!(t.attainment.flagged(), 1);
        assert_eq!(t.attainment.windows[&0].total, 2);
    }
}
