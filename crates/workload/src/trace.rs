//! Trace assembly: dataset × arrivals × tier mix → a reproducible workload.
//!
//! The paper "divides the dataset into three equal parts, and assigns each
//! part a different application type and the corresponding QoS bucket and
//! SLO" (§4), with skewed 70-15-15 / 15-15-70 variants in §4.4.2 and a 20 %
//! low-priority tagging in the transient-overload study (§4.3).

use rand::Rng;
use serde::{Deserialize, Serialize};

use qoserve_sim::{SeedStream, SimDuration, SimTime};

use crate::arrivals::ArrivalProcess;
use crate::dataset::Dataset;
use crate::qos::{Priority, QosTier, Slo, TierId};
use crate::request::{RequestId, RequestSpec};

/// A weighted mixture of QoS tiers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierMix {
    entries: Vec<(QosTier, f64)>,
}

impl TierMix {
    /// Builds a mix from `(tier, weight)` pairs. Weights are relative and
    /// need not sum to one.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or any weight is negative / all weights
    /// are zero.
    pub fn new(entries: Vec<(QosTier, f64)>) -> Self {
        assert!(!entries.is_empty(), "tier mix must not be empty");
        assert!(
            entries.iter().all(|(_, w)| *w >= 0.0),
            "tier weights must be non-negative"
        );
        assert!(
            entries.iter().map(|(_, w)| w).sum::<f64>() > 0.0,
            "at least one tier weight must be positive"
        );
        TierMix { entries }
    }

    /// The paper's default: Table 3 tiers at 33.3 % each.
    pub fn paper_equal() -> Self {
        let [q1, q2, q3] = QosTier::paper_tiers();
        TierMix::new(vec![(q1, 1.0), (q2, 1.0), (q3, 1.0)])
    }

    /// §4.4.2's interactive-dominant split (70-15-15 over Q1/Q2/Q3).
    pub fn paper_interactive_dominant() -> Self {
        let [q1, q2, q3] = QosTier::paper_tiers();
        TierMix::new(vec![(q1, 0.70), (q2, 0.15), (q3, 0.15)])
    }

    /// §4.4.2's batch-dominant split (15-15-70 over Q1/Q2/Q3).
    pub fn paper_batch_dominant() -> Self {
        let [q1, q2, q3] = QosTier::paper_tiers();
        TierMix::new(vec![(q1, 0.15), (q2, 0.15), (q3, 0.70)])
    }

    /// A single-tier mix.
    pub fn single(tier: QosTier) -> Self {
        TierMix::new(vec![(tier, 1.0)])
    }

    /// The tiers in this mix.
    pub fn tiers(&self) -> impl Iterator<Item = &QosTier> {
        self.entries.iter().map(|(t, _)| t)
    }

    /// Draws a tier according to the weights.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> QosTier {
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen_range(0.0..total);
        for (tier, w) in &self.entries {
            if x < *w {
                return *tier;
            }
            x -= w;
        }
        self.entries.last().expect("mix is non-empty").0
    }
}

/// How many requests a trace should contain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Extent {
    Count(usize),
    Duration(SimDuration),
}

/// Builder for [`Trace`].
///
/// # Example
///
/// ```
/// use qoserve_sim::SeedStream;
/// use qoserve_workload::{ArrivalProcess, Dataset, TraceBuilder};
///
/// let trace = TraceBuilder::new(Dataset::azure_conv())
///     .arrivals(ArrivalProcess::poisson(2.0))
///     .num_requests(50)
///     .paper_tier_mix()
///     .low_priority_fraction(0.2)
///     .build(&SeedStream::new(1));
/// assert_eq!(trace.len(), 50);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    dataset: Dataset,
    arrivals: ArrivalProcess,
    extent: Extent,
    mix: TierMix,
    low_priority_fraction: f64,
}

impl TraceBuilder {
    /// Starts a builder over `dataset` with defaults: 1 QPS Poisson, 1000
    /// requests, the paper's equal tier mix, no low-priority tagging.
    pub fn new(dataset: Dataset) -> Self {
        TraceBuilder {
            dataset,
            arrivals: ArrivalProcess::poisson(1.0),
            extent: Extent::Count(1_000),
            mix: TierMix::paper_equal(),
            low_priority_fraction: 0.0,
        }
    }

    /// Sets the arrival process.
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sizes the trace by request count.
    pub fn num_requests(mut self, count: usize) -> Self {
        self.extent = Extent::Count(count);
        self
    }

    /// Sizes the trace by wall-clock duration of the arrival window.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.extent = Extent::Duration(duration);
        self
    }

    /// Uses the paper's equal three-tier mix (Table 3).
    pub fn paper_tier_mix(mut self) -> Self {
        self.mix = TierMix::paper_equal();
        self
    }

    /// Sets a custom tier mix.
    pub fn tier_mix(mut self, mix: TierMix) -> Self {
        self.mix = mix;
        self
    }

    /// Marks a random `fraction` of requests in *each* tier as
    /// [`Priority::Low`] (the paper's §4.3 uses 0.2).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn low_priority_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        self.low_priority_fraction = fraction;
        self
    }

    /// Generates the trace. Same seeds → identical trace.
    pub fn build(&self, seeds: &SeedStream) -> Trace {
        let mut arrival_rng = seeds.derive("trace-arrivals");
        let times = match self.extent {
            Extent::Count(n) => self.arrivals.generate_count(n, &mut arrival_rng),
            Extent::Duration(d) => self.arrivals.generate_for(d, &mut arrival_rng),
        };

        let mut length_rng = seeds.derive("trace-lengths");
        let mut tier_rng = seeds.derive("trace-tiers");
        let mut priority_rng = seeds.derive("trace-priority");

        let requests = times
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                let (prompt_tokens, decode_tokens) = self.dataset.sample_lengths(&mut length_rng);
                let tier = self.mix.sample(&mut tier_rng);
                let priority = if priority_rng.gen_bool(self.low_priority_fraction) {
                    Priority::Low
                } else {
                    Priority::Important
                };
                RequestSpec {
                    id: RequestId(i as u64),
                    arrival,
                    prompt_tokens,
                    decode_tokens,
                    slo: Slo::of_tier(tier).with_priority(priority),
                    app_id: tier.id.0 as u32,
                }
            })
            .collect();

        Trace {
            dataset_name: self.dataset.name.clone(),
            requests,
        }
    }
}

/// A generated workload: requests sorted by arrival time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Name of the source dataset.
    pub dataset_name: String,
    requests: Vec<RequestSpec>,
}

impl Trace {
    /// Builds a trace directly from request specs (sorted by arrival).
    pub fn from_requests(dataset_name: &str, mut requests: Vec<RequestSpec>) -> Self {
        requests.sort_by_key(|r| (r.arrival, r.id));
        Trace {
            dataset_name: dataset_name.to_owned(),
            requests,
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The requests, in arrival order.
    pub fn requests(&self) -> &[RequestSpec] {
        &self.requests
    }

    /// Iterates over requests in arrival order.
    pub fn iter(&self) -> std::slice::Iter<'_, RequestSpec> {
        self.requests.iter()
    }

    /// Arrival time of the last request (`ZERO` when empty).
    pub fn horizon(&self) -> SimTime {
        self.requests.last().map_or(SimTime::ZERO, |r| r.arrival)
    }

    /// Requests belonging to `tier`.
    pub fn tier_requests(&self, tier: TierId) -> impl Iterator<Item = &RequestSpec> {
        self.requests.iter().filter(move |r| r.tier() == tier)
    }

    /// The 90th-percentile prompt length of this trace — the paper's
    /// threshold for classifying a request as "long" (Fig. 11).
    pub fn long_prompt_threshold(&self) -> u32 {
        if self.requests.is_empty() {
            return u32::MAX;
        }
        let mut prompts: Vec<u32> = self.requests.iter().map(|r| r.prompt_tokens).collect();
        prompts.sort_unstable();
        prompts[((prompts.len() as f64 - 1.0) * 0.9).round() as usize]
    }

    /// Observed mean arrival rate over the trace window, requests/second.
    pub fn observed_qps(&self) -> f64 {
        if self.requests.len() < 2 {
            return 0.0;
        }
        self.requests.len() as f64 / self.horizon().as_secs_f64().max(1e-9)
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a RequestSpec;
    type IntoIter = std::slice::Iter<'a, RequestSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace(seed: u64) -> Trace {
        TraceBuilder::new(Dataset::azure_code())
            .arrivals(ArrivalProcess::poisson(4.0))
            .num_requests(3_000)
            .paper_tier_mix()
            .build(&SeedStream::new(seed))
    }

    #[test]
    fn builds_requested_count_in_arrival_order() {
        let t = small_trace(1);
        assert_eq!(t.len(), 3_000);
        for w in t.requests().windows(2) {
            assert!(w[1].arrival > w[0].arrival);
        }
        // IDs are assigned in arrival order.
        assert_eq!(t.requests()[0].id, RequestId(0));
    }

    #[test]
    fn equal_mix_splits_into_thirds() {
        let t = small_trace(2);
        for tier in [TierId::Q1, TierId::Q2, TierId::Q3] {
            let frac = t.tier_requests(tier).count() as f64 / t.len() as f64;
            assert!(
                (frac - 1.0 / 3.0).abs() < 0.03,
                "tier {tier} fraction was {frac}"
            );
        }
    }

    #[test]
    fn skewed_mix_is_respected() {
        let t = TraceBuilder::new(Dataset::azure_code())
            .num_requests(3_000)
            .tier_mix(TierMix::paper_interactive_dominant())
            .build(&SeedStream::new(3));
        let q1 = t.tier_requests(TierId::Q1).count() as f64 / t.len() as f64;
        assert!((q1 - 0.70).abs() < 0.03, "Q1 fraction was {q1}");
    }

    #[test]
    fn low_priority_fraction_is_respected_per_tier() {
        let t = TraceBuilder::new(Dataset::azure_conv())
            .num_requests(4_000)
            .low_priority_fraction(0.2)
            .build(&SeedStream::new(4));
        for tier in [TierId::Q1, TierId::Q2, TierId::Q3] {
            let reqs: Vec<_> = t.tier_requests(tier).collect();
            let low = reqs
                .iter()
                .filter(|r| r.priority() == Priority::Low)
                .count() as f64
                / reqs.len() as f64;
            assert!((low - 0.2).abs() < 0.05, "tier {tier} low fraction {low}");
        }
    }

    #[test]
    fn build_is_deterministic() {
        assert_eq!(small_trace(7), small_trace(7));
        assert_ne!(small_trace(7), small_trace(8));
    }

    #[test]
    fn app_id_follows_tier() {
        let t = small_trace(5);
        for r in &t {
            assert_eq!(r.app_id, r.tier().0 as u32);
        }
    }

    #[test]
    fn long_prompt_threshold_is_p90() {
        let t = small_trace(6);
        let threshold = t.long_prompt_threshold();
        let long = t
            .requests()
            .iter()
            .filter(|r| r.prompt_tokens >= threshold)
            .count() as f64
            / t.len() as f64;
        assert!((long - 0.10).abs() < 0.02, "long fraction was {long}");
    }

    #[test]
    fn observed_qps_near_target() {
        let t = small_trace(9);
        assert!((t.observed_qps() - 4.0).abs() < 0.4, "{}", t.observed_qps());
    }

    #[test]
    fn duration_extent_bounds_arrivals() {
        let t = TraceBuilder::new(Dataset::sharegpt())
            .arrivals(ArrivalProcess::poisson(5.0))
            .duration(SimDuration::from_secs(100))
            .build(&SeedStream::new(10));
        assert!(t.horizon() < SimTime::from_secs(100));
        assert!(t.len() > 300 && t.len() < 700, "got {}", t.len());
    }

    #[test]
    fn from_requests_sorts() {
        let specs = vec![
            RequestSpec {
                id: RequestId(1),
                arrival: SimTime::from_secs(5),
                prompt_tokens: 10,
                decode_tokens: 1,
                slo: Slo::of_tier(QosTier::paper_q1()),
                app_id: 0,
            },
            RequestSpec {
                id: RequestId(0),
                arrival: SimTime::from_secs(1),
                prompt_tokens: 10,
                decode_tokens: 1,
                slo: Slo::of_tier(QosTier::paper_q1()),
                app_id: 0,
            },
        ];
        let t = Trace::from_requests("custom", specs);
        assert_eq!(t.requests()[0].id, RequestId(0));
    }

    #[test]
    fn serde_round_trip() {
        let t = TraceBuilder::new(Dataset::azure_code())
            .num_requests(20)
            .build(&SeedStream::new(11));
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<Trace>(&json).unwrap(), t);
    }

    #[test]
    #[should_panic(expected = "tier mix must not be empty")]
    fn empty_mix_rejected() {
        let _ = TierMix::new(vec![]);
    }

    #[test]
    fn empty_trace_edge_cases() {
        let t = Trace::from_requests("empty", vec![]);
        assert!(t.is_empty());
        assert_eq!(t.horizon(), SimTime::ZERO);
        assert_eq!(t.observed_qps(), 0.0);
        assert_eq!(t.long_prompt_threshold(), u32::MAX);
    }
}
