//! The original token-stream rules: nondeterministic time sources, hash
//! iteration, NaN-unsafe float comparisons, panic/output/alloc site
//! collection, and the shared test-region excision they all respect.

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};

use super::{diag, Diagnostic, Site, RULE_FLOAT, RULE_HASH, RULE_TIME};

/// Output macros that bypass structured reporting: library code must
/// return data (or use the trace layer) instead of writing to the
/// process streams; only `src/bin/` drivers and `src/main.rs` may print.
const OUTPUT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// `HashMap`/`HashSet` methods that observe iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items.
pub(crate) fn test_regions(code: &[&Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].is_punct('#') && i + 1 < code.len() && code[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        // Collect the attribute tokens up to the matching `]`.
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut attr_text: Vec<&str> = Vec::new();
        while j < code.len() && depth > 0 {
            if code[j].is_punct('[') {
                depth += 1;
            } else if code[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            attr_text.push(code[j].text.as_str());
            j += 1;
        }
        let is_test_attr =
            attr_text == ["test"] || attr_text.windows(4).any(|w| w == ["cfg", "(", "test", ")"]);
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then find the item body braces.
        let mut k = j + 1;
        while k + 1 < code.len() && code[k].is_punct('#') && code[k + 1].is_punct('[') {
            let mut d = 1i32;
            k += 2;
            while k < code.len() && d > 0 {
                if code[k].is_punct('[') {
                    d += 1;
                } else if code[k].is_punct(']') {
                    d -= 1;
                }
                k += 1;
            }
        }
        // Scan to the opening brace; `;` first means `mod tests;` (the
        // referenced file is exempt by path anyway).
        let mut body_open = None;
        while k < code.len() {
            if code[k].is_punct('{') {
                body_open = Some(k);
                break;
            }
            if code[k].is_punct(';') {
                break;
            }
            k += 1;
        }
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        let mut d = 1i32;
        let mut end = open;
        let mut m = open + 1;
        while m < code.len() {
            if code[m].is_punct('{') {
                d += 1;
            } else if code[m].is_punct('}') {
                d -= 1;
                if d == 0 {
                    end = m;
                    break;
                }
            }
            m += 1;
        }
        let end_line = if d == 0 {
            code[end].line
        } else {
            u32::MAX // unterminated: treat the rest of the file as test
        };
        regions.push((code[attr_start].line, end_line));
        i = m + 1;
    }
    regions
}

/// `Instant::now`, `SystemTime`, `thread_rng`, `from_entropy`.
pub(crate) fn check_time(path: &str, code: &[&Tok], out: &mut Vec<Diagnostic>) {
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant"
                if i + 3 < code.len()
                    && code[i + 1].is_punct(':')
                    && code[i + 2].is_punct(':')
                    && code[i + 3].is_ident("now") =>
            {
                out.push(diag(
                    path,
                    t,
                    RULE_TIME,
                    "`Instant::now` breaks replay determinism; use `SimTime` from the event loop"
                        .to_string(),
                ));
            }
            "SystemTime" => out.push(diag(
                path,
                t,
                RULE_TIME,
                "`SystemTime` breaks replay determinism; thread simulated time through instead"
                    .to_string(),
            )),
            "thread_rng" => out.push(diag(
                path,
                t,
                RULE_TIME,
                "`thread_rng` is nondeterministic; derive a stream from `SeedStream`".to_string(),
            )),
            "from_entropy" => out.push(diag(
                path,
                t,
                RULE_TIME,
                "`from_entropy` seeds from the OS; derive a stream from `SeedStream`".to_string(),
            )),
            _ => {}
        }
    }
}

/// Names bound to `HashMap` / `HashSet` in this file (fields, lets,
/// params). Purely lexical; see module docs for the shadowing caveat.
fn hash_names(code: &[&Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..code.len() {
        let t = code[i];
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // `name = HashMap::new()` / `= HashSet::with_capacity(..)`.
        if i >= 2 && code[i - 1].is_punct('=') && code[i - 2].kind == TokKind::Ident {
            names.insert(code[i - 2].text.clone());
            continue;
        }
        // `name: [&][mut] [path::]HashMap<..>` — walk back over the path.
        let mut j = i;
        while j >= 3
            && code[j - 1].is_punct(':')
            && code[j - 2].is_punct(':')
            && code[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        while j >= 1 && (code[j - 1].is_punct('&') || code[j - 1].is_ident("mut")) {
            j -= 1;
        }
        if j >= 2
            && code[j - 1].is_punct(':')
            && !code[j - 2].is_punct(':')
            && code[j - 2].kind == TokKind::Ident
        {
            names.insert(code[j - 2].text.clone());
        }
    }
    names
}

/// Iteration over tracked hash containers: `x.iter()`, `x.values()`,
/// `for k in &x`, `x.drain()`, …
pub(crate) fn check_hash_iteration(path: &str, code: &[&Tok], out: &mut Vec<Diagnostic>) {
    let names = hash_names(code);
    if names.is_empty() {
        return;
    }
    // Method-call form.
    for i in 0..code.len() {
        let t = code[i];
        if t.kind == TokKind::Ident
            && names.contains(&t.text)
            && i + 3 < code.len()
            && code[i + 1].is_punct('.')
            && code[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&code[i + 2].text.as_str())
            && code[i + 3].is_punct('(')
        {
            out.push(diag(
                path,
                t,
                RULE_HASH,
                format!(
                    "iteration over hash container `{}` (`.{}()`) is order-nondeterministic; \
                     use `BTreeMap`/`BTreeSet` or a `Vec`",
                    t.text,
                    code[i + 2].text
                ),
            ));
        }
    }
    // Bare `for .. in [&[mut]] x` form.
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("for") {
            i += 1;
            continue;
        }
        // Find `in` at bracket depth 0; bail at `{` (e.g. `impl T for U {`).
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut in_at = None;
        while j < code.len() {
            let t = code[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_ident("in") {
                in_at = Some(j);
                break;
            } else if depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
                break;
            }
            j += 1;
        }
        let Some(in_at) = in_at else {
            i = j.max(i + 1);
            continue;
        };
        // Expression tokens up to the loop body `{`.
        let mut k = in_at + 1;
        let mut depth = 0i32;
        while k < code.len() {
            let t = code[k];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('{') {
                break;
            } else if t.kind == TokKind::Ident
                && names.contains(&t.text)
                && !(k + 1 < code.len() && code[k + 1].is_punct('.'))
            {
                out.push(diag(
                    path,
                    t,
                    RULE_HASH,
                    format!(
                        "`for .. in` over hash container `{}` is order-nondeterministic; \
                         use `BTreeMap`/`BTreeSet` or a `Vec`",
                        t.text
                    ),
                ));
            }
            k += 1;
        }
        i = k + 1;
    }
}

/// Index of the `)` matching `code[open]` (which must be `(`).
fn matching_paren(code: &[&Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (idx, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(idx);
            }
        }
    }
    None
}

/// `partial_cmp(..).unwrap()/expect(..)` and comparator closures built on
/// `partial_cmp` passed to the sort/min/max family.
pub(crate) fn check_float_ordering(path: &str, code: &[&Tok], out: &mut Vec<Diagnostic>) {
    let mut covered: Vec<(usize, usize)> = Vec::new();
    const SORT_FAMILY: &[&str] = &["sort_by", "sort_unstable_by", "max_by", "min_by"];
    for i in 0..code.len() {
        let t = code[i];
        if t.kind == TokKind::Ident
            && SORT_FAMILY.contains(&t.text.as_str())
            && i + 1 < code.len()
            && code[i + 1].is_punct('(')
        {
            if let Some(close) = matching_paren(code, i + 1) {
                if code[i + 2..close].iter().any(|a| a.is_ident("partial_cmp")) {
                    out.push(diag(
                        path,
                        t,
                        RULE_FLOAT,
                        format!(
                            "`{}` comparator built on `partial_cmp` is not a total order under \
                             NaN; use `f64::total_cmp` (see `qoserve_sim::float`)",
                            t.text
                        ),
                    ));
                    covered.push((i + 2, close));
                }
            }
        }
    }
    for i in 0..code.len() {
        if covered.iter().any(|(lo, hi)| (*lo..*hi).contains(&i)) {
            continue;
        }
        let t = code[i];
        if !t.is_ident("partial_cmp") || i + 1 >= code.len() || !code[i + 1].is_punct('(') {
            continue;
        }
        let Some(close) = matching_paren(code, i + 1) else {
            continue;
        };
        if close + 2 < code.len()
            && code[close + 1].is_punct('.')
            && (code[close + 2].is_ident("unwrap") || code[close + 2].is_ident("expect"))
        {
            out.push(diag(
                path,
                t,
                RULE_FLOAT,
                "`partial_cmp(..).unwrap()` panics on NaN; use `f64::total_cmp` \
                 (see `qoserve_sim::float`)"
                    .to_string(),
            ));
        }
    }
}

/// Unfiltered panic sites: `.unwrap(`, `.expect(`, `panic!`, `todo!`.
pub(crate) fn panic_sites(code: &[&Tok]) -> Vec<Site> {
    let mut sites = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if i >= 1
                    && code[i - 1].is_punct('.')
                    && i + 1 < code.len()
                    && code[i + 1].is_punct('(') =>
            {
                sites.push((t.line, t.col, format!(".{}()", t.text)));
            }
            "panic" | "todo" if i + 1 < code.len() && code[i + 1].is_punct('!') => {
                sites.push((t.line, t.col, format!("{}!", t.text)));
            }
            _ => {}
        }
    }
    sites
}

/// Unfiltered output-macro sites: `println!`, `eprintln!`, `print!`,
/// `eprint!`, `dbg!`. Purely lexical, so `writeln!` and methods named
/// `println` never match (the `!` check requires a macro invocation).
pub(crate) fn output_sites(code: &[&Tok]) -> Vec<Site> {
    let mut sites = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind == TokKind::Ident
            && OUTPUT_MACROS.contains(&t.text.as_str())
            && i + 1 < code.len()
            && code[i + 1].is_punct('!')
        {
            sites.push((t.line, t.col, format!("{}!", t.text)));
        }
    }
    sites
}

/// Line ranges covered by the bodies of hot-path functions (any `fn`
/// named in [`super::HOT_FNS`]), including nested closures and items.
pub(crate) fn hot_regions(code: &[&Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 1 < code.len() {
        if !(code[i].is_ident("fn")
            && code[i + 1].kind == TokKind::Ident
            && super::HOT_FNS.contains(&code[i + 1].text.as_str()))
        {
            i += 1;
            continue;
        }
        // Scan the signature for the body `{` at bracket depth 0; a `;`
        // first means a bodyless trait-method declaration.
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut open = None;
        while j < code.len() {
            let t = code[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('{') {
                open = Some(j);
                break;
            } else if depth == 0 && t.is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 2);
            continue;
        };
        let mut d = 1i32;
        let mut m = open + 1;
        let mut end_line = u32::MAX; // unterminated: rest of file is hot
        while m < code.len() {
            if code[m].is_punct('{') {
                d += 1;
            } else if code[m].is_punct('}') {
                d -= 1;
                if d == 0 {
                    end_line = code[m].line;
                    break;
                }
            }
            m += 1;
        }
        regions.push((code[open].line, end_line));
        i = m + 1;
    }
    regions
}

/// Unfiltered allocation sites: `Box::new(`, `.to_string(`, `.clone(`,
/// `.to_owned(`, `.to_vec(`. `Clone` derives and pass-through calls like
/// `clone_from` never match (the method name must be exact).
pub(crate) fn alloc_sites(code: &[&Tok]) -> Vec<Site> {
    let mut sites = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Box"
                if i + 4 < code.len()
                    && code[i + 1].is_punct(':')
                    && code[i + 2].is_punct(':')
                    && code[i + 3].is_ident("new")
                    && code[i + 4].is_punct('(') =>
            {
                sites.push((t.line, t.col, "Box::new(..)".to_string()));
            }
            "to_string" | "clone" | "to_owned" | "to_vec"
                if i >= 1
                    && code[i - 1].is_punct('.')
                    && i + 1 < code.len()
                    && code[i + 1].is_punct('(') =>
            {
                sites.push((t.line, t.col, format!(".{}()", t.text)));
            }
            _ => {}
        }
    }
    sites
}
