//! Property-based invariants that every scheduler implementation must
//! uphold, exercised over randomly generated queues, decode pools, and
//! constraints.
//!
//! These are the contracts the engine relies on:
//!
//! 1. A plan never exceeds the KV headroom.
//! 2. A plan never schedules more *new* requests than allowed.
//! 3. No request appears twice in one plan.
//! 4. Scheduled tokens never exceed a request's remaining prompt.
//! 5. `completes_prefill` is set iff the cumulative scheduled tokens
//!    reach the prompt length.
//! 6. `allow_prefill == false` yields an empty plan.
//! 7. Conservation: queued tokens + scheduled tokens is invariant.

use proptest::prelude::*;

use qoserve_perf::{HardwareConfig, LatencyPredictor};
use qoserve_sched::{
    ConServeScheduler, Constraints, DecodeJob, MedhaConfig, MedhaScheduler, OrderPolicy,
    PrefillJob, QoServeConfig, QoServeScheduler, RateLimitScheduler, SarathiScheduler, Scheduler,
    SlosServeConfig, SlosServeScheduler,
};
use qoserve_sim::SimTime;
use qoserve_workload::{QosTier, RequestId, RequestSpec, Slo};

fn predictor() -> LatencyPredictor {
    LatencyPredictor::analytical(&HardwareConfig::llama3_8b_a100_tp1())
}

/// All scheduler implementations under test, freshly constructed.
fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(SarathiScheduler::new(OrderPolicy::Fcfs, 256)),
        Box::new(SarathiScheduler::new(OrderPolicy::Srpf, 512)),
        Box::new(SarathiScheduler::new(OrderPolicy::Edf, 2_048)),
        Box::new(QoServeScheduler::new(QoServeConfig::default(), predictor())),
        Box::new(QoServeScheduler::new(
            QoServeConfig::ablation_dc(),
            predictor(),
        )),
        Box::new(MedhaScheduler::new(MedhaConfig::default(), predictor())),
        Box::new(SlosServeScheduler::new(
            SlosServeConfig::default(),
            predictor(),
        )),
        Box::new(RateLimitScheduler::new(
            SarathiScheduler::new(OrderPolicy::Fcfs, 256),
            200_000,
        )),
        Box::new(ConServeScheduler::new(512)),
    ]
}

#[derive(Debug, Clone)]
struct QueueScenario {
    jobs: Vec<(
        u32, /* prompt */
        u8,  /* tier 0..3 */
        u32, /* arrival ms */
    )>,
    decodes: Vec<(u32 /* ctx */, u32 /* deadline ms from now */)>,
    now_ms: u32,
    kv_headroom: u64,
    max_new: usize,
    allow_prefill: bool,
}

fn scenario_strategy() -> impl Strategy<Value = QueueScenario> {
    (
        proptest::collection::vec((16u32..20_000, 0u8..3, 0u32..5_000), 0..40),
        proptest::collection::vec((16u32..4_000, 1u32..10_000), 0..32),
        5_000u32..100_000,
        proptest::prop_oneof![Just(u64::MAX), 0u64..5_000],
        proptest::prop_oneof![Just(usize::MAX), 0usize..4],
        proptest::bool::ANY,
    )
        .prop_map(
            |(jobs, decodes, now_ms, kv_headroom, max_new, allow_prefill)| QueueScenario {
                jobs,
                decodes,
                now_ms,
                kv_headroom,
                max_new,
                allow_prefill,
            },
        )
}

fn run_scenario(sched: &mut dyn Scheduler, s: &QueueScenario) {
    let tiers = QosTier::paper_tiers();
    for (i, (prompt, tier, arrival_ms)) in s.jobs.iter().enumerate() {
        let spec = RequestSpec {
            id: RequestId(i as u64),
            arrival: SimTime::from_millis(*arrival_ms as u64),
            prompt_tokens: *prompt,
            decode_tokens: 10,
            slo: Slo::of_tier(tiers[*tier as usize]),
            app_id: *tier as u32,
        };
        sched.on_arrival(PrefillJob::new(spec), spec.arrival);
    }
    let now = SimTime::from_millis(s.now_ms as u64);
    let decodes: Vec<DecodeJob> = s
        .decodes
        .iter()
        .enumerate()
        .map(|(i, (ctx, deadline_ms))| DecodeJob {
            id: RequestId(100_000 + i as u64),
            context_len: *ctx,
            next_token_deadline: now + qoserve_sim::SimDuration::from_millis(*deadline_ms as u64),
            relegated: false,
        })
        .collect();
    let constraints = Constraints {
        kv_headroom_tokens: s.kv_headroom,
        allow_prefill: s.allow_prefill,
        max_new_requests: s.max_new,
    };

    let admitted_tokens: u64 = sched.pending_prefill_tokens();
    let mut progress: std::collections::HashMap<RequestId, u32> = Default::default();

    // Run several consecutive planning rounds to exercise partial
    // progress and reinsertion paths.
    let mut scheduled_total: u64 = 0;
    for round in 0..4u64 {
        let plan = sched.plan_batch(
            now + qoserve_sim::SimDuration::from_millis(50 * round),
            &decodes,
            constraints,
        );

        if !s.allow_prefill {
            assert!(plan.is_empty(), "{}: prefill gate ignored", sched.name());
        }
        if s.kv_headroom != u64::MAX {
            assert!(
                plan.prefill_tokens() as u64 <= s.kv_headroom * 4,
                "{}: plan exceeds cumulative KV headroom",
                sched.name()
            );
        }
        // Invariant 3: no duplicate request in one plan.
        let mut seen = std::collections::HashSet::new();
        for a in &plan.prefill {
            assert!(
                seen.insert(a.id),
                "{}: duplicate assignment {:?}",
                sched.name(),
                a.id
            );
        }
        // Invariant 2: new-request cap per plan.
        let new_started = plan
            .prefill
            .iter()
            .filter(|a| a.context_before == 0)
            .count();
        assert!(
            new_started <= s.max_new,
            "{}: started {new_started} new requests, cap {}",
            sched.name(),
            s.max_new
        );
        // Invariants 4/5: per-request token accounting.
        for a in &plan.prefill {
            let prompt = s.jobs[a.id.0 as usize].0;
            let done = progress.entry(a.id).or_insert(0);
            assert_eq!(
                a.context_before,
                *done,
                "{}: context_before mismatch for {:?}",
                sched.name(),
                a.id
            );
            *done += a.tokens;
            assert!(
                *done <= prompt,
                "{}: over-scheduled {:?}: {} > {prompt}",
                sched.name(),
                a.id,
                *done
            );
            assert_eq!(
                a.completes_prefill,
                *done == prompt,
                "{}: completes_prefill wrong for {:?}",
                sched.name(),
                a.id
            );
        }
        scheduled_total += plan.prefill_tokens() as u64;
        // Per-plan KV cap (invariant 1, per round).
        if s.kv_headroom != u64::MAX {
            assert!(
                plan.prefill_tokens() as u64 <= s.kv_headroom,
                "{}: single plan exceeds KV headroom",
                sched.name()
            );
        }
    }

    // Invariant 7: conservation across rounds.
    assert_eq!(
        sched.pending_prefill_tokens() + scheduled_total,
        admitted_tokens,
        "{}: token conservation broken",
        sched.name()
    );

    // Draining returns every unfinished job — including any the rate
    // limiter rejected at admission (those never entered `pending`, so
    // the drain equality is against the total offered work, not the
    // admitted backlog).
    let total_offered: u64 = s.jobs.iter().map(|(p, _, _)| *p as u64).sum();
    let drained = sched.drain_pending();
    let drained_tokens: u64 = drained.iter().map(|j| j.remaining_tokens() as u64).sum();
    assert_eq!(
        drained_tokens + scheduled_total,
        total_offered,
        "{}: drain conservation broken",
        sched.name()
    );
    assert_eq!(sched.pending_prefills(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_schedulers_uphold_plan_invariants(s in scenario_strategy()) {
        for mut sched in all_schedulers() {
            run_scenario(sched.as_mut(), &s);
        }
    }
}

#[test]
fn empty_queue_plans_are_empty_for_all_schedulers() {
    for mut sched in all_schedulers() {
        let plan = sched.plan_batch(SimTime::from_secs(1), &[], Constraints::unlimited());
        assert!(plan.is_empty(), "{}", sched.name());
        assert_eq!(sched.pending_prefills(), 0);
    }
}
