//! A minimal Rust lexer — just enough to walk token streams safely.
//!
//! The rules in [`crate::rules`] are lexical pattern matchers, so the one
//! thing this lexer must get exactly right is *what is not code*: line
//! comments, nested block comments, string literals (including raw strings
//! with arbitrary `#` fences and byte/C-string prefixes), and char
//! literals (including `'"'` and escapes) must never leak their contents
//! into the token stream — otherwise a `"partial_cmp"` inside a string, or
//! an `unwrap()` inside a doc example, would produce false diagnostics.
//!
//! Line comments are *kept* (as [`TokKind::LineComment`]) because the
//! waiver syntax lives in them; everything else that is not code is
//! dropped. Numeric literals are consumed and dropped too — no rule ever
//! matches on a number.

/// Kinds of tokens the rule engine sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`jobs`, `for`, `HashMap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `(`, `!`, …).
    Punct,
    /// A `//` line comment, text includes the leading `//`.
    LineComment,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Source text (for `Punct` a single character).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

impl Tok {
    /// True when this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    src: std::marker::PhantomData<&'a str>,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src: std::marker::PhantomData,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Lexes `src` into a token stream. Never fails: unterminated literals
/// simply consume to end of input (the compiler will reject such files
/// anyway; the linter must not panic on them).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut toks = Vec::new();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' => match cur.peek_at(1) {
                Some('/') => {
                    let mut text = String::new();
                    while let Some(ch) = cur.peek() {
                        if ch == '\n' {
                            break;
                        }
                        text.push(ch);
                        cur.bump();
                    }
                    toks.push(Tok {
                        kind: TokKind::LineComment,
                        text,
                        line,
                        col,
                    });
                }
                Some('*') => {
                    cur.bump();
                    cur.bump();
                    let mut depth = 1u32;
                    while depth > 0 {
                        match (cur.peek(), cur.peek_at(1)) {
                            (Some('/'), Some('*')) => {
                                cur.bump();
                                cur.bump();
                                depth += 1;
                            }
                            (Some('*'), Some('/')) => {
                                cur.bump();
                                cur.bump();
                                depth -= 1;
                            }
                            (Some(_), _) => {
                                cur.bump();
                            }
                            (None, _) => break,
                        }
                    }
                }
                _ => {
                    cur.bump();
                    toks.push(punct(c, line, col));
                }
            },
            '"' => consume_string(&mut cur),
            '\'' => consume_char_or_lifetime(&mut cur),
            _ if c.is_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(ch) = cur.peek() {
                    if ch.is_alphanumeric() || ch == '_' {
                        text.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                // Raw/byte/C string prefixes: the prefix ident fuses with
                // the following literal and must not become a token.
                let raw_prefix = matches!(text.as_str(), "r" | "br" | "cr")
                    && matches!(cur.peek(), Some('"') | Some('#'));
                let cooked_prefix = matches!(text.as_str(), "b" | "c") && cur.peek() == Some('"');
                if raw_prefix && consume_raw_string(&mut cur) {
                    continue;
                }
                if cooked_prefix {
                    consume_string(&mut cur);
                    continue;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            _ if c.is_ascii_digit() => consume_number(&mut cur),
            _ => {
                cur.bump();
                toks.push(punct(c, line, col));
            }
        }
    }
    toks
}

fn punct(c: char, line: u32, col: u32) -> Tok {
    Tok {
        kind: TokKind::Punct,
        text: c.to_string(),
        line,
        col,
    }
}

/// Consumes a cooked string literal starting at the opening `"`.
fn consume_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump(); // whatever is escaped, including \" and \\
            }
            '"' => return,
            _ => {}
        }
    }
}

/// Consumes a raw string starting at the `#`s or `"` that follow an `r` /
/// `br` / `cr` prefix (already consumed). Returns false if this turned out
/// not to be a raw string (e.g. `r#foo` raw identifier) — in that case
/// nothing was consumed beyond what a retry can tolerate.
fn consume_raw_string(cur: &mut Cursor<'_>) -> bool {
    let mut hashes = 0usize;
    while cur.peek_at(hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek_at(hashes) != Some('"') {
        // `r#ident` (raw identifier): leave the `#` for the main loop; the
        // identifier after it lexes normally, which is fine for our rules.
        return false;
    }
    for _ in 0..=hashes {
        cur.bump(); // hashes + opening quote
    }
    loop {
        match cur.bump() {
            None => return true, // unterminated: consumed to EOF
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some('#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return true;
                }
            }
            Some(_) => {}
        }
    }
}

/// Consumes either a char literal (`'x'`, `'\''`, `'"'`, `'\u{1F600}'`)
/// or a lifetime (`'a`, `'_`, `'static`) starting at the `'`.
fn consume_char_or_lifetime(cur: &mut Cursor<'_>) {
    cur.bump(); // the quote
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal.
            cur.bump();
            if let Some(esc) = cur.bump() {
                if esc == 'u' {
                    // '\u{...}': consume through the closing brace.
                    while let Some(ch) = cur.bump() {
                        if ch == '}' {
                            break;
                        }
                    }
                } else if esc == 'x' {
                    cur.bump();
                    cur.bump();
                }
            }
            if cur.peek() == Some('\'') {
                cur.bump();
            }
        }
        Some(c) if (c.is_alphanumeric() || c == '_') && cur.peek_at(1) != Some('\'') => {
            // Lifetime: consume the label.
            while let Some(ch) = cur.peek() {
                if ch.is_alphanumeric() || ch == '_' {
                    cur.bump();
                } else {
                    break;
                }
            }
        }
        Some(_) => {
            // Plain char literal, e.g. '"' or 'λ'.
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
        }
        None => {}
    }
}

/// Consumes a numeric literal (integer, float, hex/oct/bin, underscores,
/// exponents, suffixes). Numbers never participate in rules.
fn consume_number(cur: &mut Cursor<'_>) {
    // Leading digits / radix prefix / underscores / type suffix chars all
    // fall under "alphanumeric or underscore".
    while let Some(ch) = cur.peek() {
        if ch.is_alphanumeric() || ch == '_' {
            cur.bump();
        } else if ch == '.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
            cur.bump(); // decimal point followed by digits: still the number
        } else if (ch == '+' || ch == '-')
            && cur
                .chars
                .get(cur.pos.wrapping_sub(1))
                .is_some_and(|p| *p == 'e' || *p == 'E')
        {
            cur.bump(); // exponent sign, e.g. 1e-9
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_tokens_with_positions() {
        let toks = lex("let x = foo.bar();");
        let names: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            names,
            vec!["let", "x", "=", "foo", ".", "bar", "(", ")", ";"]
        );
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].col, 1);
        assert_eq!(toks[3].col, 9);
    }

    #[test]
    fn line_comment_is_kept_and_contents_hidden() {
        let toks = lex("a // unwrap() here\nb");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].kind, TokKind::LineComment);
        assert_eq!(toks[1].text, "// unwrap() here");
        assert!(toks[2].is_ident("b"));
        assert_eq!(toks[2].line, 2);
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        assert_eq!(
            idents("a /* x /* nested unwrap() */ y */ b"),
            vec!["a", "b"]
        );
    }

    #[test]
    fn string_contents_are_hidden() {
        assert_eq!(idents(r#"a "partial_cmp().unwrap()" b"#), vec!["a", "b"]);
        // Escaped quote does not end the string.
        assert_eq!(idents(r#"a "x \" unwrap()" b"#), vec!["a", "b"]);
        // A // inside a string is not a comment.
        assert_eq!(idents(r#"a "http://x" b"#), vec!["a", "b"]);
    }

    #[test]
    fn raw_strings_with_fences() {
        assert_eq!(idents(r###"a r"unwrap()" b"###), vec!["a", "b"]);
        assert_eq!(idents("a r#\"has \" quote unwrap()\"# b"), vec!["a", "b"]);
        assert_eq!(
            idents("a r##\"fence \"# inside unwrap()\"## b"),
            vec!["a", "b"]
        );
        // Byte and C-string variants.
        assert_eq!(idents("a b\"unwrap()\" c"), vec!["a", "c"]);
        assert_eq!(idents("a br#\"unwrap()\"# c"), vec!["a", "c"]);
        assert_eq!(idents("a c\"unwrap()\" d"), vec!["a", "d"]);
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        // `r#match` must lex as an identifier-ish sequence, not swallow
        // the rest of the file hunting for a closing quote.
        let ids = idents("let r#match = foo; bar");
        assert!(ids.contains(&"bar".to_string()));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        // '"' must not open a string.
        assert_eq!(idents("a '\"' b \"unwrap()\" c"), vec!["a", "b", "c"]);
        // Escaped quote char.
        assert_eq!(idents(r"a '\'' b"), vec!["a", "b"]);
        // Unicode escape char.
        assert_eq!(idents(r"a '\u{1F600}' b"), vec!["a", "b"]);
        // Lifetimes lex without consuming the next token.
        assert_eq!(
            idents("fn f<'a>(x: &'a str) {}"),
            vec!["fn", "f", "x", "str"]
        );
        assert_eq!(idents("&'static str"), vec!["str"]);
        assert_eq!(idents("&'_ str"), vec!["str"]);
    }

    #[test]
    fn numbers_are_dropped_but_ranges_survive() {
        let toks = lex("for i in 0..10 { x }");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["for", "i", "in", ".", ".", "{", "x", "}"]);
        assert_eq!(
            idents("let y = 1.0e-9f64 + 0x_ff; z"),
            vec!["let", "y", "z"]
        );
        // `1.max(2)`: the dot belongs to the method call, not the number.
        let texts: Vec<String> = lex("1.max(2)").into_iter().map(|t| t.text).collect();
        assert_eq!(texts, vec![".", "max", "(", ")"]);
    }

    #[test]
    fn doc_comments_are_line_comments() {
        let toks = lex("/// example: h.quantile(0.5).unwrap()\nfn f() {}");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert!(toks[1].is_ident("fn"));
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        lex("let s = \"never closed");
        lex("let s = r#\"never closed");
        lex("/* never closed");
        lex("let c = '");
    }
}
