//! Figure 14: the hybrid-prioritization parameter α.
//!
//! Sweeps load for α ∈ {0, 2, 4} ms/token. Expected shape: larger α
//! lowers median latency under load (SRPF-like shedding of long work) but
//! raises long-request deadline violations — the trade hybrid
//! prioritization is tuning.

use qoserve::experiments::{load_sweep, scaled_window};
use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results, overall_median_latency};

fn main() {
    banner(
        "fig14",
        "Varying the hybrid prioritization parameter (Az-Code)",
    );

    let alphas = [0.0, 2.0, 4.0];
    let schemes: Vec<SchedulerSpec> = alphas
        .iter()
        .map(|&a| {
            SchedulerSpec::qoserve_with(QoServeConfig {
                alpha: AlphaPolicy::Fixed { ms_per_token: a },
                ..QoServeConfig::default()
            })
        })
        .collect();

    let qps_list = [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
    let points = load_sweep(
        &Dataset::azure_code(),
        &HardwareConfig::llama3_8b_a100_tp1(),
        &schemes,
        &qps_list,
        scaled_window(3600),
        &TierMix::paper_equal(),
        14,
    );

    let mut table = Table::new(vec![
        "qps",
        "alpha (ms/tok)",
        "median latency (s)",
        "violations",
        "long violations",
    ]);
    let mut rows = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let alpha = alphas[i % alphas.len()];
        table.row(vec![
            format!("{:.0}", p.qps),
            format!("{alpha:.0}"),
            overall_median_latency(&p.outcomes).map_or("-".into(), |v| format!("{v:.2}")),
            format!("{:.1}%", p.report.violation_pct()),
            format!("{:.1}%", p.report.long_violation_pct()),
        ]);
        rows.push(serde_json::json!({
            "qps": p.qps,
            "alpha_ms_per_token": alpha,
            "median_latency_secs": overall_median_latency(&p.outcomes),
            "violation_pct": p.report.violation_pct(),
            "long_violation_pct": p.report.long_violation_pct(),
        }));
    }
    print!("{table}");
    emit_results("fig14", &rows);

    println!();
    let high_load: Vec<&_> = points.iter().filter(|p| p.qps == 6.0).collect();
    println!(
        "at 6 QPS — violations by alpha: {}",
        high_load
            .iter()
            .enumerate()
            .map(|(i, p)| format!("a={}: {:.1}%", alphas[i], p.report.violation_pct()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "paper: increasing alpha reduces median latency and overall violations at high \
         load, at the cost of long-request deadlines — motivating load-adaptive tuning"
    );
}
