//! Figures 12 and 13: transient overload with a diurnal load pattern.
//!
//! Load alternates 2 ↔ 5 QPS every 15 minutes over 4 hours (compressed by
//! `QOSERVE_SCALE`); 20 % of each tier is tagged low-priority. Fig. 12
//! reports overall and per-tier violations plus violations among
//! *important* requests; Fig. 13 the rolling p99 latency per tier over
//! time. Expected shape: the baselines enter cascading violation past the
//! first burst; QoServe relegates a small low-priority slice and keeps
//! every important request within SLO.

use qoserve::experiments::{run_run, scale_factor};
use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results};
use qoserve_metrics::{RollingSeries, SloReport};

fn main() {
    banner(
        "fig12_13",
        "Diurnal transient overload (Az-Code, Llama3-8B)",
    );

    // 4h of 15-minute phases in the paper; compressed by default so the
    // binary finishes quickly, stretched by QOSERVE_SCALE toward paper
    // scale. Phase length and total duration scale together so the wave
    // keeps its 2.5x peak-to-trough shape.
    let scale = scale_factor();
    let half_period = SimDuration::from_secs_f64(900.0 * scale.clamp(0.2, 1.0));
    let total = half_period * 8;
    // The paper alternates 2 <-> 5 QPS against a ~3.6-QPS-capacity
    // system (1.4x peak overload). Our simulator's absolute capacity is
    // ~5.5-6 QPS, so the equivalent stress is 3 <-> 8 QPS — the same
    // ~2.6x peak-to-trough ratio and ~1.4x peak overload.
    let arrivals = ArrivalProcess::DiurnalSquare {
        low_qps: 3.0,
        high_qps: 8.0,
        half_period,
    };
    let trace = TraceBuilder::new(Dataset::azure_code())
        .arrivals(arrivals)
        .duration(total)
        .paper_tier_mix()
        .low_priority_fraction(0.2)
        .build(&SeedStream::new(12));
    println!(
        "trace: {} requests over {} ({} phases of {})",
        trace.len(),
        total,
        8,
        half_period
    );

    let hw = HardwareConfig::llama3_8b_a100_tp1();
    let schemes = [
        SchedulerSpec::sarathi_fcfs(),
        SchedulerSpec::sarathi_edf(),
        SchedulerSpec::qoserve(),
    ];

    println!("\n--- Figure 12: deadline violations (%) ---");
    let mut fig12 = Table::new(vec![
        "scheme",
        "overall",
        "important",
        "Q1",
        "Q2",
        "Q3",
        "relegated",
        "max latency (s)",
    ]);
    let mut rows = Vec::new();
    let mut all_outcomes = Vec::new();
    for scheme in &schemes {
        let outcomes = run_run(&trace, scheme, &hw, 12);
        let report = SloReport::compute(&outcomes, trace.long_prompt_threshold());
        let max_latency = outcomes
            .iter()
            .filter_map(|o| o.ttlt())
            .map(|d| d.as_secs_f64())
            .fold(0.0, f64::max);
        fig12.row(vec![
            scheme.label(),
            format!("{:.2}%", report.violation_pct()),
            format!("{:.2}%", report.important_violation_pct()),
            format!("{:.2}%", report.tier_violation_pct(TierId::Q1)),
            format!("{:.2}%", report.tier_violation_pct(TierId::Q2)),
            format!("{:.2}%", report.tier_violation_pct(TierId::Q3)),
            format!("{:.1}%", report.relegated_fraction * 100.0),
            format!("{max_latency:.0}"),
        ]);
        rows.push(serde_json::json!({
            "figure": "fig12",
            "scheme": scheme.label(),
            "violation_pct": report.violation_pct(),
            "important_violation_pct": report.important_violation_pct(),
            "q1_violation_pct": report.tier_violation_pct(TierId::Q1),
            "q2_violation_pct": report.tier_violation_pct(TierId::Q2),
            "q3_violation_pct": report.tier_violation_pct(TierId::Q3),
            "relegated_pct": report.relegated_fraction * 100.0,
            "max_latency_secs": max_latency,
        }));
        all_outcomes.push((scheme.label(), outcomes));
        eprintln!("  done: {}", scheme.label());
    }
    print!("{fig12}");
    println!("paper: FCFS 81.9%/EDF 84.1% overall vs QoServe 8.6% overall and 0% important");

    println!("\n--- Figure 13: rolling p99 of tier-judged latency (60s windows, seconds) ---");
    let window = SimDuration::from_secs(60);
    for tier in [TierId::Q1, TierId::Q2, TierId::Q3] {
        println!("\ntier {tier} (high-priority requests):");
        let mut table = Table::new(vec![
            "scheme",
            "mean p99",
            "max p99",
            "final-quarter mean p99",
        ]);
        for (label, outcomes) in &all_outcomes {
            let samples: Vec<(SimTime, f64)> = outcomes
                .iter()
                .filter(|o| o.tier() == tier && o.priority() == Priority::Important)
                .filter_map(|o| o.tier_latency().map(|l| (o.spec.arrival, l.as_secs_f64())))
                .collect();
            let series = RollingSeries::percentile_over(&samples, window, 0.99);
            let quarter = total.as_secs_f64() * 0.75;
            let tail: Vec<f64> = series.slice(quarter, f64::INFINITY.min(1e18));
            let tail_mean = if tail.is_empty() {
                f64::NAN
            } else {
                tail.iter().sum::<f64>() / tail.len() as f64
            };
            table.row(vec![
                label.clone(),
                format!("{:.1}", series.mean_value().unwrap_or(f64::NAN)),
                format!("{:.1}", series.max_value().unwrap_or(f64::NAN)),
                format!("{tail_mean:.1}"),
            ]);
            rows.push(serde_json::json!({
                "figure": "fig13",
                "tier": tier.to_string(),
                "scheme": label,
                "mean_p99_secs": series.mean_value(),
                "max_p99_secs": series.max_value(),
                "final_quarter_mean_p99_secs": if tail_mean.is_nan() { None } else { Some(tail_mean) },
            }));
        }
        print!("{table}");
    }
    emit_results("fig12_13", &rows);
    println!(
        "\npaper: baselines cannot recover after the bursts (latency keeps climbing); \
         QoServe's rolling p99 stays near the SLO through every burst"
    );
}
