//! Figure 15a: Medha's adaptive chunking vs QoServe's dynamic chunking.
//!
//! Both schedulers process a synthetic trace of long requests (10 K
//! prefill, 500 decode tokens — §4.5.1) and their per-batch chunk sizes
//! are traced. Medha only shrinks chunks as prompt context deepens;
//! QoServe additionally grows them whenever batch slack accumulates. An
//! isolated goodput comparison (dynamic chunking only, FCFS order, no
//! relegation) quantifies the difference — the paper measures 0.32 vs
//! 0.26 QPS, a 23 % gain.

use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results};
use qoserve_metrics::{max_supported_load, SloReport};

fn synthetic_trace(qps: f64, window: SimDuration, seeds: &SeedStream) -> Trace {
    TraceBuilder::new(Dataset::fixed("synthetic-10k", 10_000, 500))
        .arrivals(ArrivalProcess::poisson(qps))
        .duration(window)
        .tier_mix(TierMix::single(QosTier::new(
            TierId::Q1,
            QosClass::interactive_secs_ms(6.0, 50.0),
        )))
        .build(seeds)
}

/// QoServe stripped to dynamic chunking only: α=0 (with a single tier
/// this is FCFS), relegation off — the §4.5.1 isolation.
fn dc_only() -> SchedulerSpec {
    SchedulerSpec::qoserve_with(QoServeConfig {
        alpha: AlphaPolicy::Fixed { ms_per_token: 0.0 },
        eager_relegation: false,
        ..QoServeConfig::default()
    })
}

fn medha() -> SchedulerSpec {
    SchedulerSpec::Medha {
        config: MedhaConfig::default(),
        predictor: PredictorKind::Analytical,
    }
}

fn chunk_trace(spec: &SchedulerSpec, trace: &Trace, seeds: &SeedStream) -> Vec<u32> {
    let hw = HardwareConfig::llama3_8b_a100_tp1();
    let config = ReplicaConfig::new(hw.clone()).with_batch_recording();
    let sched = spec.build(&hw, seeds);
    let mut engine = ReplicaEngine::new(config, sched, seeds);
    let _ = engine.run_trace(trace);
    engine
        .batch_log()
        .iter()
        .filter(|b| b.prefill_tokens > 0)
        .map(|b| b.prefill_tokens)
        .collect()
}

fn main() {
    banner(
        "fig15a",
        "Chunk-size traces: Medha vs QoServe (synthetic 10k/500)",
    );

    let seeds = SeedStream::new(15);
    let trace = synthetic_trace(0.25, SimDuration::from_secs(600), &seeds);

    let medha_chunks = chunk_trace(&medha(), &trace, &seeds);
    let qoserve_chunks = chunk_trace(&dc_only(), &trace, &seeds);

    let stats = |chunks: &[u32]| {
        let mut sorted = chunks.to_vec();
        sorted.sort_unstable();
        (
            sorted.first().copied().unwrap_or(0),
            sorted[sorted.len() / 2],
            sorted.last().copied().unwrap_or(0),
        )
    };
    let (m_min, m_med, m_max) = stats(&medha_chunks);
    let (q_min, q_med, q_max) = stats(&qoserve_chunks);

    let mut table = Table::new(vec![
        "scheme",
        "batches",
        "chunk min",
        "chunk p50",
        "chunk max",
    ]);
    table.row(vec![
        "Medha".into(),
        medha_chunks.len().to_string(),
        m_min.to_string(),
        m_med.to_string(),
        m_max.to_string(),
    ]);
    table.row(vec![
        "QoServe (DC only)".into(),
        qoserve_chunks.len().to_string(),
        q_min.to_string(),
        q_med.to_string(),
        q_max.to_string(),
    ]);
    print!("{table}");

    println!("\nfirst 24 chunk sizes of one long prefill:");
    println!(
        "  Medha:   {:?}",
        &medha_chunks[..24.min(medha_chunks.len())]
    );
    println!(
        "  QoServe: {:?}",
        &qoserve_chunks[..24.min(qoserve_chunks.len())]
    );

    // Isolated goodput comparison.
    let hw = HardwareConfig::llama3_8b_a100_tp1();
    let config = ClusterConfig::new(hw);
    let goodput = |spec: &SchedulerSpec| {
        max_supported_load(0.05, 2.0, 0.02, |qps| {
            let t = synthetic_trace(qps, SimDuration::from_secs(600), &seeds.child("gp"));
            if t.is_empty() {
                return true;
            }
            let outcomes = run_shared(&t, 1, spec, &config, &seeds);
            SloReport::compute(&outcomes, t.long_prompt_threshold()).meets_goodput_bar(1.0)
        })
        .unwrap_or(0.0)
    };
    let gm = goodput(&medha());
    let gq = goodput(&dc_only());
    emit_results(
        "fig15a",
        &[
            serde_json::json!({
                "scheme": "Medha",
                "batches": medha_chunks.len(),
                "chunk_min": m_min,
                "chunk_p50": m_med,
                "chunk_max": m_max,
                "goodput_qps": gm,
            }),
            serde_json::json!({
                "scheme": "QoServe (DC only)",
                "batches": qoserve_chunks.len(),
                "chunk_min": q_min,
                "chunk_p50": q_med,
                "chunk_max": q_max,
                "goodput_qps": gq,
            }),
        ],
    );
    println!(
        "\ngoodput: Medha {gm:.2} QPS vs QoServe-DC {gq:.2} QPS -> {:.0}% gain",
        (gq / gm.max(1e-9) - 1.0) * 100.0
    );
    println!("paper: 0.26 vs 0.32 QPS (23% gain) from the chunking strategy alone");
}
