//! Structural-analyzer invariants over real and generated sources.
//!
//! The parser promises to be *lossless at the top level*: every code token
//! of a file belongs to exactly one top-level item span or one gap span.
//! These tests pin that tiling invariant over (a) every fixture file, (b)
//! the linter's own sources, and (c) a seeded stream of synthetic files
//! composed from item templates — a differential check of the parser
//! against the lexer's token stream. The JSONL output schema is pinned
//! here too, since CI artifact consumers depend on it.

use std::path::PathBuf;

use qoserve_lint::lexer::{lex, Tok, TokKind};
use qoserve_lint::structure::{parse, FileStructure, Span};
use qoserve_lint::{json, lint_tree, load_baseline};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

/// Lexes `src`, drops comments (as the analyzer does), parses, and checks
/// the tiling invariant: item spans and gap spans, merged and sorted,
/// exactly partition `[0, code_tokens)` without overlap, and every span
/// boundary agrees with the underlying token stream (each span starts on
/// a real token whose recorded line matches the item's).
fn assert_tiles(src: &str, label: &str) {
    let toks = lex(src);
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| t.kind != TokKind::LineComment)
        .collect();
    let s = parse(&code);
    let mut spans: Vec<(Span, bool)> = s.items.iter().map(|i| (i.span, true)).collect();
    spans.extend(s.gaps.iter().map(|g| (*g, false)));
    spans.sort_by_key(|(sp, _)| sp.start);
    let mut cursor = 0usize;
    for (sp, is_item) in &spans {
        assert_eq!(
            sp.start, cursor,
            "{label}: hole or overlap before token {cursor} (span {sp:?}, item={is_item})"
        );
        assert!(sp.end > sp.start, "{label}: empty span {sp:?}");
        cursor = sp.end;
    }
    assert_eq!(cursor, code.len(), "{label}: trailing tokens unclaimed");
    // Differential against the lexer: every item's recorded line is the
    // line of its first token, and spans index real tokens.
    for item in &s.items {
        let first = code
            .get(item.span.start)
            .unwrap_or_else(|| panic!("{label}: span start out of range"));
        assert_eq!(
            item.line, first.line,
            "{label}: item line drifted from lexer"
        );
    }
    // Function bodies always lie inside their item span.
    for f in &s.fns {
        if let Some(b) = f.body {
            assert!(
                f.span.start <= b.start && b.end <= f.span.end,
                "{label}: fn `{}` body escapes its item span",
                f.name
            );
        }
    }
}

fn parse_src(src: &str) -> FileStructure {
    let toks = lex(src);
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| t.kind != TokKind::LineComment)
        .collect();
    parse(&code)
}

#[test]
fn fixture_files_tile_exactly() {
    let root = fixture_root();
    let files = qoserve_lint::walk::rust_files(&root).expect("fixture walk");
    assert!(files.len() >= 15, "fixture tree shrank: {files:?}");
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel)).expect("fixture reads");
        assert_tiles(&src, &rel);
    }
}

#[test]
fn linter_sources_tile_exactly() {
    // The analyzer must digest real, non-toy sources: its own.
    let src_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src");
    let files = qoserve_lint::walk::rust_files(&src_root).expect("src walk");
    assert!(files.len() >= 8, "lint crate sources missing: {files:?}");
    for rel in files {
        let src = std::fs::read_to_string(src_root.join(&rel)).expect("source reads");
        assert_tiles(&src, &rel);
    }
}

/// Item templates for the seeded generator. Each is one complete
/// top-level item, so a generated file of `n` templates must parse to
/// exactly `n` top-level items and zero gaps.
const TEMPLATES: &[&str] = &[
    "use std::collections::BTreeMap;\n",
    "pub struct S%N { pub a: u64, b: Vec<u32> }\n",
    "#[derive(Debug, Serialize, Deserialize)]\npub struct P%N { #[serde(default)] x: u64, y: u32 }\n",
    "enum E%N { A, B(u32), C { x: u8 } }\n",
    "impl S%N { pub fn touch(&mut self) { self.a += 1; } }\n",
    "fn free%N(x: u64) -> u64 { x.wrapping_add(%N) }\n",
    "pub fn locky%N(m: &std::sync::Mutex<u32>) -> u32 { m.lock().map(|g| *g).unwrap_or(0) }\n",
    "mod inner%N { pub fn g(v: &[u32]) -> usize { v.len() } }\n",
    "const LIMIT%N: usize = %N;\n",
    "type Alias%N = BTreeMap<String, u64>;\n",
    "trait Step%N { fn step(&mut self) -> bool; }\n",
    "fn matchy%N(e: Option<u32>) -> u32 { match e { Some(x) => x, None => %N } }\n",
];

/// Tiny deterministic xorshift64* stream — the "seed" of the seeded
/// differential test; no ambient randomness, every run identical.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[test]
fn seeded_synthetic_files_tile_and_count() {
    let mut rng = Rng(0x5eed_0007);
    for file_no in 0..64 {
        let n_items = 1 + (rng.next() % 9) as usize;
        let mut src = String::new();
        for k in 0..n_items {
            let t = TEMPLATES[(rng.next() % TEMPLATES.len() as u64) as usize];
            src.push_str(&t.replace("%N", &format!("{}", file_no * 16 + k)));
        }
        let label = format!("synthetic#{file_no}");
        assert_tiles(&src, &label);
        let s = parse_src(&src);
        assert_eq!(
            s.items.len(),
            n_items,
            "{label}: item count disagrees with template count\n{src}"
        );
        assert!(s.gaps.is_empty(), "{label}: templates must leave no gaps");
    }
}

#[test]
fn json_schema_is_pinned() {
    let root = fixture_root();
    let baseline = load_baseline(&root).expect("fixture baseline parses");
    let r = lint_tree(&root, &baseline).expect("fixture tree lints");
    let rendered = json::render_json(&r);
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(
        lines.len(),
        r.diagnostics.len(),
        "one JSONL record per diagnostic"
    );
    // Fixed key order — the compatibility surface for CI consumers.
    for line in &lines {
        assert!(line.starts_with("{\"path\":\""), "record: {line}");
        let order = [
            "\"path\":",
            "\"line\":",
            "\"col\":",
            "\"rule\":",
            "\"message\":",
        ];
        let mut at = 0usize;
        for key in order {
            let pos = line[at..]
                .find(key)
                .unwrap_or_else(|| panic!("missing {key} in {line}"));
            at += pos + key.len();
        }
        assert!(line.ends_with('}'), "record: {line}");
    }
    // Exact first record, byte for byte.
    assert_eq!(
        lines[0],
        "{\"path\":\"crates/core/src/clean.rs\",\"line\":5,\"col\":1,\"rule\":\"bad-waiver\",\
         \"message\":\"unused waiver for `nondeterministic-time` — no violation of the waived \
         rule(s) fires on the covered lines; delete it so drift cannot hide behind it\"}"
    );
    // Records sort exactly like the human output: (path, line, col, rule).
    let keys: Vec<(&String, u32, u32, &str)> = r
        .diagnostics
        .iter()
        .map(|d| (&d.path, d.line, d.col, d.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}
