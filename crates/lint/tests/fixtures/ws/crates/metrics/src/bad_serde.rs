//! Fixture: a persisted snapshot missing `#[serde(default)]` on one
//! field (violation), with a compliant sibling field.

#[derive(Debug, Serialize, Deserialize)]
pub struct Snap {
    pub count: u64,
    #[serde(default)]
    pub p99_us: u64,
}
