//! The prefill priority queue of Algorithm 1.
//!
//! Jobs are ordered by the comparator of Algorithm 1 (lines 26–33): all
//! non-relegated jobs sort before all relegated ones, then by a policy-
//! computed priority key (smaller = more urgent), with arrival sequence as
//! the final tie-break. Keys are computed when a job is (re-)inserted, so
//! a job whose key inputs changed (tokens consumed, relegation flipped)
//! must be popped and pushed back — exactly the access pattern of the
//! batch-filling loop.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use qoserve_workload::{RequestId, TierId};

use crate::job::PrefillJob;

/// Heap key: `(relegated, priority, seq)` ascending.
type Key = (bool, i64, u64);

/// A priority queue of [`PrefillJob`]s with explicit keys.
#[derive(Debug, Clone, Default)]
pub struct JobQueue {
    jobs: HashMap<RequestId, PrefillJob>,
    heap: BinaryHeap<Reverse<(Key, RequestId)>>,
    next_seq: u64,
    /// Remaining prompt tokens across all queued jobs (O(1) load signal).
    total_tokens: u64,
    /// Remaining prompt tokens across non-relegated queued jobs.
    live_tokens: u64,
    /// Per-tier live-token accounting: `(urgency SLO offset in µs,
    /// live tokens)` — lets the scheduler estimate the queue ahead of a
    /// job under deadline-dominated orderings.
    live_by_tier: HashMap<TierId, (i64, u64)>,
}

impl JobQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        JobQueue::default()
    }

    /// Inserts `job` with priority `key` (smaller = scheduled sooner).
    /// The job's `relegated` flag is folded into the ordering: relegated
    /// jobs always sort after non-relegated ones.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a job with the same id is already queued.
    pub fn push(&mut self, job: PrefillJob, key: i64) {
        debug_assert!(
            !self.jobs.contains_key(&job.id()),
            "job {} already queued",
            job.id()
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap
            .push(Reverse(((job.relegated, key, seq), job.id())));
        self.account_insert(&job);
        self.jobs.insert(job.id(), job);
    }

    fn account_insert(&mut self, job: &PrefillJob) {
        let tokens = job.remaining_tokens() as u64;
        self.total_tokens += tokens;
        if !job.relegated {
            self.live_tokens += tokens;
            let entry = self
                .live_by_tier
                .entry(job.spec.tier())
                .or_insert((Self::slo_offset_us(job), 0));
            entry.1 += tokens;
        }
    }

    fn account_remove(&mut self, job: &PrefillJob) {
        let tokens = job.remaining_tokens() as u64;
        self.total_tokens -= tokens;
        if !job.relegated {
            self.live_tokens -= tokens;
            if let Some(entry) = self.live_by_tier.get_mut(&job.spec.tier()) {
                entry.1 -= tokens;
            }
        }
    }

    /// The urgency-deadline offset of a job's tier (TTFT for interactive,
    /// TTLT otherwise), in µs: the quantity that dominates deadline-based
    /// orderings.
    fn slo_offset_us(job: &PrefillJob) -> i64 {
        job.urgency_deadline()
            .signed_duration_since(job.spec.arrival)
            .as_micros()
    }

    /// Removes and returns the most urgent job.
    pub fn pop(&mut self) -> Option<PrefillJob> {
        while let Some(Reverse((_, id))) = self.heap.pop() {
            if let Some(job) = self.jobs.remove(&id) {
                self.account_remove(&job);
                return Some(job);
            }
            // Stale heap entry for a job that was re-keyed; skip.
        }
        None
    }

    /// The most urgent job without removing it.
    pub fn peek(&mut self) -> Option<&PrefillJob> {
        // Drop stale entries so the visible top is live.
        while let Some(Reverse((_, id))) = self.heap.peek() {
            if self.jobs.contains_key(id) {
                let id = *id;
                return self.jobs.get(&id);
            }
            self.heap.pop();
        }
        None
    }

    /// Re-inserts a job that was popped (after progress or relegation)
    /// with a freshly computed key. Unlike [`push`](Self::push) this
    /// tolerates the id having been seen before.
    pub fn reinsert(&mut self, job: PrefillJob, key: i64) {
        // Remove any live entry (defensive; normal flow pops first).
        if let Some(old) = self.jobs.remove(&job.id()) {
            self.account_remove(&old);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap
            .push(Reverse(((job.relegated, key, seq), job.id())));
        self.account_insert(&job);
        self.jobs.insert(job.id(), job);
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Sum of remaining prompt tokens across queued jobs (O(1)).
    pub fn pending_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Remaining prompt tokens across non-relegated jobs (O(1)) — the
    /// live-backlog overload signal.
    pub fn live_tokens(&self) -> u64 {
        self.live_tokens
    }

    /// Estimated live tokens that will be served *before* `job` under a
    /// deadline-dominated ordering: all tokens of tiers with a stricter
    /// SLO offset, plus half of the job's own tier (expected position).
    pub fn live_tokens_ahead_of(&self, job: &PrefillJob) -> u64 {
        let own_offset = Self::slo_offset_us(job);
        let own_tier = job.spec.tier();
        self.live_by_tier
            .iter()
            .map(|(tier, (offset, tokens))| {
                if *tier == own_tier {
                    tokens / 2
                } else if *offset < own_offset {
                    *tokens
                } else {
                    0
                }
            })
            .sum()
    }

    /// Iterates over queued jobs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &PrefillJob> {
        self.jobs.values()
    }

    /// Removes and returns every queued job (arbitrary order). Used when
    /// a simulation ends with work still queued.
    pub fn drain(&mut self) -> Vec<PrefillJob> {
        self.heap.clear();
        self.total_tokens = 0;
        self.live_tokens = 0;
        self.live_by_tier.clear();
        self.jobs.drain().map(|(_, j)| j).collect()
    }

    /// Rebuilds every heap key via `key_of` — needed when a global input
    /// of the priority function changes (e.g. the load-adaptive α).
    pub fn rekey<F: FnMut(&PrefillJob) -> i64>(&mut self, mut key_of: F) {
        self.heap.clear();
        let mut seq = self.next_seq;
        for (id, job) in &self.jobs {
            self.heap.push(Reverse(((job.relegated, key_of(job), seq), *id)));
            seq += 1;
        }
        self.next_seq = seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_sim::SimTime;
    use qoserve_workload::{QosTier, RequestSpec, Slo};

    fn job(id: u64, relegated: bool) -> PrefillJob {
        let mut j = PrefillJob::new(RequestSpec {
            id: RequestId(id),
            arrival: SimTime::ZERO,
            prompt_tokens: 100,
            decode_tokens: 10,
            slo: Slo::of_tier(QosTier::paper_q1()),
            app_id: 0,
        });
        j.relegated = relegated;
        j
    }

    #[test]
    fn pops_in_key_order() {
        let mut q = JobQueue::new();
        q.push(job(1, false), 30);
        q.push(job(2, false), 10);
        q.push(job(3, false), 20);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|j| j.id().0)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn relegated_jobs_sort_last_regardless_of_key() {
        let mut q = JobQueue::new();
        q.push(job(1, true), -1_000_000); // relegated with tiny key
        q.push(job(2, false), 1_000_000); // live with huge key
        assert_eq!(q.pop().unwrap().id().0, 2);
        assert_eq!(q.pop().unwrap().id().0, 1);
    }

    #[test]
    fn equal_keys_are_fifo() {
        let mut q = JobQueue::new();
        for i in 0..10 {
            q.push(job(i, false), 5);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|j| j.id().0)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reinsert_updates_position() {
        let mut q = JobQueue::new();
        q.push(job(1, false), 10);
        q.push(job(2, false), 20);
        let j1 = q.pop().unwrap();
        assert_eq!(j1.id().0, 1);
        // Push it back relegated: it must now sort after job 2.
        let mut j1 = j1;
        j1.relegated = true;
        q.reinsert(j1, 10);
        assert_eq!(q.pop().unwrap().id().0, 2);
        assert_eq!(q.pop().unwrap().id().0, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = JobQueue::new();
        q.push(job(5, false), 50);
        q.push(job(6, false), 5);
        assert_eq!(q.peek().unwrap().id().0, 6);
        assert_eq!(q.pop().unwrap().id().0, 6);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pending_tokens_accumulates() {
        let mut q = JobQueue::new();
        q.push(job(1, false), 1);
        let mut j = job(2, false);
        j.prefill_done = 40;
        q.push(j, 2);
        assert_eq!(q.pending_tokens(), 100 + 60);
    }

    #[test]
    fn rekey_reorders() {
        let mut q = JobQueue::new();
        q.push(job(1, false), 1);
        q.push(job(2, false), 2);
        // Invert the ordering.
        q.rekey(|j| -(j.id().0 as i64));
        assert_eq!(q.pop().unwrap().id().0, 2);
        assert_eq!(q.pop().unwrap().id().0, 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = JobQueue::new();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(q.peek().is_none());
        assert_eq!(q.pending_tokens(), 0);
    }
}
