//! Deterministic, order-preserving parallel execution.
//!
//! Every paper artifact in this workspace is a grid of *independent,
//! seeded* simulations: a load sweep is `schemes × qps`, a goodput search
//! probes many QPS points, a capacity plan probes many replica counts.
//! This module runs such grids on all available cores while guaranteeing
//! **bit-identical output to the serial path**:
//!
//! * [`par_map`] preserves input order: result `i` always comes from input
//!   `i`, regardless of which worker claimed it or in what order tasks
//!   finished.
//! * Tasks receive their index, so seed derivation (e.g.
//!   [`SeedStream::derive_indexed`](crate::rng::SeedStream::derive_indexed)
//!   or reconstructing `SeedStream::new(seed)` per task) depends only on
//!   `(seed, index)` — never on thread identity or scheduling order.
//! * [`par_max_passing`] evaluates the same probe grid as
//!   `qoserve_metrics::max_supported_load` (geometric ramp, then
//!   bisection) and brackets on the *first* failing ramp point, so it
//!   returns the identical boundary for any deterministic predicate.
//!
//! Worker count defaults to [`std::thread::available_parallelism`] and can
//! be overridden with the `QOSERVE_THREADS` environment variable
//! (`QOSERVE_THREADS=1` recovers fully serial execution). The thread count
//! affects wall-clock time only, never results.
//!
//! # Example
//!
//! ```
//! use qoserve_sim::parallel::par_map;
//!
//! let squares = par_map((1..=5).collect::<Vec<u64>>(), |i, x| (i, x * x));
//! assert_eq!(squares, vec![(0, 1), (1, 4), (2, 9), (3, 16), (4, 25)]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "QOSERVE_THREADS";

/// Parses a `QOSERVE_THREADS` value; `None` for anything that is not a
/// positive integer.
fn parse_threads(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Worker count when no override is set: one per available core.
fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Number of worker threads parallel helpers use: the `QOSERVE_THREADS`
/// environment variable if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
///
/// Thread count never affects results — only how fast they arrive.
pub fn thread_limit() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| parse_threads(&v))
        .unwrap_or_else(default_threads)
}

/// Maps `f` over `items` on [`thread_limit`] worker threads, preserving
/// input order in the output.
///
/// `f` receives `(index, item)` so per-task seeds can be derived purely
/// from the task's position; because output slot `i` is always filled from
/// input `i`, the result is bit-identical to
/// `items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect()` for any
/// thread count.
///
/// Panics in `f` propagate to the caller once all workers have stopped.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    par_map_threads(thread_limit(), items, f)
}

/// [`par_map`] with an explicit worker count (mainly for tests; callers
/// should let `QOSERVE_THREADS` decide).
pub fn par_map_threads<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }

    // Index-claim loop: each worker atomically claims the next unstarted
    // task, so load-imbalanced grids (e.g. overloaded QPS points that
    // simulate far more work) stay busy on all cores without any
    // order-sensitive work stealing.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    // qoserve-lint: allow(lock-discipline) -- one uncontended acquisition per *task*, not per iteration: the atomic index claim guarantees a single owner per slot
                    .lock()
                    .expect("task slot poisoned")
                    .take()
                    .expect("task claimed twice");
                let out = f(i, item);
                // qoserve-lint: allow(lock-discipline) -- one uncontended acquisition per *task*, not per iteration: the atomic index claim guarantees a single owner per slot
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without storing a result")
        })
        .collect()
}

/// Parallel counterpart of `qoserve_metrics::max_supported_load`: finds
/// (approximately) the largest `x` in `[lo, hi]` for which `passes(x)`
/// holds, assuming `passes` is monotone.
///
/// The serial routine probes a geometric ramp one point at a time and
/// stops at the first failure; each probe typically runs a full
/// simulation, so on a multicore host most of that wall-clock is wasted
/// serialization. This version evaluates the *entire* ramp grid (plus `lo`
/// and `hi`) concurrently with [`par_map`], then brackets on the first
/// failing grid point — the same bracket the serial scan would have found,
/// even for a non-monotone predicate — and finishes with the identical
/// serial bisection. Same probe grid, same bracket, same midpoints: the
/// returned boundary is bit-identical to the serial path.
///
/// # Panics
///
/// Panics if `lo > hi`, or `resolution` is not positive.
///
/// # Example
///
/// ```
/// use qoserve_sim::parallel::par_max_passing;
/// // Boundary at 3.7.
/// let got = par_max_passing(0.5, 10.0, 0.1, |qps| qps <= 3.7).unwrap();
/// assert!((got - 3.7).abs() <= 0.1);
/// ```
pub fn par_max_passing<F>(lo: f64, hi: f64, resolution: f64, passes: F) -> Option<f64>
where
    F: Fn(f64) -> bool + Sync,
{
    assert!(lo <= hi, "lo must be <= hi");
    assert!(resolution > 0.0, "resolution must be positive");

    // The exact probe sequence of the serial geometric ramp.
    let mut grid = vec![lo];
    let mut probe = (lo * 1.5).max(lo + resolution);
    while probe < hi {
        grid.push(probe);
        probe *= 1.5;
    }
    grid.push(hi);

    let verdicts = par_map(grid.clone(), |_, qps| passes(qps));

    if !verdicts[0] {
        return None;
    }
    // First failure over [ramp.., hi] gives the same bracket the serial
    // scan stops at; if everything up to and including hi passes, hi is
    // the answer.
    let first_fail = match (1..grid.len()).find(|&i| !verdicts[i]) {
        None => return Some(hi),
        Some(i) => i,
    };
    let mut good = grid[first_fail - 1];
    let mut bad = grid[first_fail];

    // Bisection is inherently sequential (each midpoint depends on the
    // previous verdict) and cheap relative to the ramp; identical
    // arithmetic to the serial path keeps the result bit-identical.
    while bad - good > resolution {
        let mid = (good + bad) / 2.0;
        if passes(mid) {
            good = mid;
        } else {
            bad = mid;
        }
    }
    Some(good)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(items, |i, x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3 + 1);
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let items: Vec<u32> = (0..257).rev().collect();
        let serial = par_map_threads(1, items.clone(), |i, x| (i, x.wrapping_mul(2654435761)));
        for threads in [2, 3, 8, 64] {
            let parallel = par_map_threads(threads, items.clone(), |i, x| {
                (i, x.wrapping_mul(2654435761))
            });
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(empty, |_, x: u8| x).is_empty());
        assert_eq!(par_map(vec![7u8], |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn par_map_moves_non_clone_items() {
        struct Opaque(String);
        let items = vec![Opaque("a".into()), Opaque("b".into())];
        let out = par_map(items, |_, x| x.0);
        assert_eq!(out, vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 12 "), Some(12));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("many"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn finds_internal_boundary() {
        let got = par_max_passing(0.5, 20.0, 0.05, |x| x <= 7.3).unwrap();
        assert!((got - 7.3).abs() <= 0.05, "got {got}");
    }

    #[test]
    fn returns_none_when_lo_fails() {
        assert_eq!(par_max_passing(2.0, 10.0, 0.1, |_| false), None);
    }

    #[test]
    fn returns_hi_when_everything_passes() {
        assert_eq!(par_max_passing(1.0, 10.0, 0.1, |_| true), Some(10.0));
    }

    #[test]
    fn boundary_below_first_probe() {
        let got = par_max_passing(1.0, 100.0, 0.01, |x| x <= 1.004).unwrap();
        assert!((1.0..=1.01).contains(&got), "got {got}");
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn rejects_zero_resolution() {
        let _ = par_max_passing(1.0, 2.0, 0.0, |_| true);
    }

    /// The acceptance bar for the whole module: identical output to the
    /// serial search across many boundaries, resolutions, and ranges.
    #[test]
    fn matches_serial_search_bit_for_bit() {
        // Local copy of the serial algorithm (`max_supported_load` lives
        // in qoserve-metrics, which depends on this crate).
        fn serial(lo: f64, hi: f64, resolution: f64, passes: impl Fn(f64) -> bool) -> Option<f64> {
            if !passes(lo) {
                return None;
            }
            let mut good = lo;
            let mut bad = None;
            let mut probe = (lo * 1.5).max(lo + resolution);
            while probe < hi {
                if passes(probe) {
                    good = probe;
                    probe *= 1.5;
                } else {
                    bad = Some(probe);
                    break;
                }
            }
            let mut bad = match bad {
                Some(b) => b,
                None => {
                    if passes(hi) {
                        return Some(hi);
                    }
                    hi
                }
            };
            while bad - good > resolution {
                let mid = (good + bad) / 2.0;
                if passes(mid) {
                    good = mid;
                } else {
                    bad = mid;
                }
            }
            Some(good)
        }

        let mut boundary = 0.31f64;
        while boundary < 30.0 {
            let pred = |x: f64| x <= boundary;
            for (lo, hi, res) in [
                (0.25, 24.0, 0.1),
                (0.5, 30.0, 0.25),
                (1.0, 16.0, 0.02),
                (0.31, 12.0, 0.05),
            ] {
                let want = serial(lo, hi, res, pred);
                let got = par_max_passing(lo, hi, res, pred);
                // Bit-identical, not merely approximately equal.
                assert_eq!(
                    got.map(f64::to_bits),
                    want.map(f64::to_bits),
                    "boundary={boundary} lo={lo} hi={hi} res={res}"
                );
            }
            boundary += 0.83;
        }
    }
}
