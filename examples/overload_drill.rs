//! Overload drill: what happens when traffic repeatedly doubles past
//! capacity, and 20 % of it is free-tier?
//!
//! Simulates three flash crowds (bursts at ~2x capacity, ten minutes
//! each) and shows graceful degradation: QoServe relegates free-tier and
//! hopeless requests so paid-tier traffic keeps its SLOs, while the
//! baselines melt down for everyone.
//!
//! ```sh
//! cargo run --release -p qoserve-examples --bin overload_drill
//! ```

use qoserve::prelude::*;

fn main() {
    // Steady 3 QPS with repeated 10-minute surges to 12 QPS (~2x
    // capacity) — deep enough that *someone* has to lose.
    let surge = ArrivalProcess::DiurnalSquare {
        low_qps: 3.0,
        high_qps: 12.0,
        half_period: SimDuration::from_secs(600),
    };
    let trace = TraceBuilder::new(Dataset::azure_code())
        .arrivals(surge)
        .duration(SimDuration::from_secs(3_600)) // three calm/surge cycles
        .paper_tier_mix()
        .low_priority_fraction(0.2)
        .build(&SeedStream::new(99));
    println!(
        "drill: {} requests, 3 QPS <-> 12 QPS surges; 20% free tier\n",
        trace.len()
    );

    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let mut table = Table::new(vec![
        "scheduler",
        "violations (all)",
        "violations (paid tier)",
        "relegated",
        "worst paid-tier TTLT (s)",
    ]);
    for scheduler in [
        SchedulerSpec::sarathi_fcfs(),
        SchedulerSpec::sarathi_edf(),
        SchedulerSpec::qoserve(),
    ] {
        let label = scheduler.label();
        let outcomes = run_shared(&trace, 1, &scheduler, &config, &SeedStream::new(99));
        let report = SloReport::compute(&outcomes, trace.long_prompt_threshold());
        let worst_paid = outcomes
            .iter()
            .filter(|o| o.priority() == Priority::Important)
            .filter_map(|o| o.ttlt())
            .map(|d| d.as_secs_f64())
            .fold(0.0, f64::max);
        table.row(vec![
            label,
            format!("{:.1}%", report.violation_pct()),
            format!("{:.1}%", report.important_violation_pct()),
            format!("{:.1}%", report.relegated_fraction * 100.0),
            format!("{worst_paid:.0}"),
        ]);
    }
    print!("{table}");
    println!(
        "\neager relegation sheds a small slice (preferring the free tier) so the \
         paid tier sails through the surge."
    );
}
