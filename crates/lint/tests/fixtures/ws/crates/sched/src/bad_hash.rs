//! Fixture: hash-container iteration in a determinism crate.
use std::collections::HashMap;

pub struct Table {
    slots: HashMap<u64, u64>,
}

impl Table {
    pub fn sum(&self) -> u64 {
        self.slots.values().sum()
    }

    pub fn drain_all(&mut self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self.slots.drain().collect();
        out.sort();
        out
    }
}

pub fn keys_of(m: &HashMap<String, u32>) -> Vec<String> {
    let mut ks = Vec::new();
    for k in m.keys() {
        ks.push(k.clone());
    }
    ks
}
