//! Per-request measurement records.

use qoserve_sim::time::SignedDuration;
use qoserve_sim::{SimDuration, SimTime};
use qoserve_workload::{Priority, RequestSpec, TierId};
use serde::{Deserialize, Serialize};

/// How a request's lifecycle ended — beyond the latency numbers, *why*
/// there is no (timely) result. Rejected, shed, and retry-exhausted
/// requests were never served to completion and always count as violated,
/// but reports distinguish them: a 429 is not a deadline miss.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Disposition {
    /// The request ran to completion (possibly violating its SLO).
    #[default]
    Completed,
    /// Still in flight or queued when the simulation ended.
    Unfinished,
    /// Bounced at admission by a rate limiter (a 429 to the client).
    Rejected,
    /// Dropped by tier-aware shedding when surviving capacity after
    /// failures was insufficient.
    Shed,
    /// Lost to repeated replica crashes; the retry budget ran out.
    RetryExhausted,
}

/// Everything measured about one request during a simulation run.
///
/// Produced by the engine when a request completes (or when the simulation
/// ends with the request still unfinished — then `first_token` /
/// `completion` stay `None` and the request counts as violated).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// The request this outcome describes.
    pub spec: RequestSpec,
    /// When the first output token was produced (end of prefill).
    pub first_token: Option<SimTime>,
    /// When the last output token was produced.
    pub completion: Option<SimTime>,
    /// Largest observed gap between consecutive output tokens.
    pub max_tbt: SimDuration,
    /// Worst lateness across all per-token deadlines (Eq. 2): positive
    /// means some token missed its deadline. For non-interactive requests
    /// this is completion lateness vs. the TTLT deadline.
    pub worst_token_lateness: SignedDuration,
    /// Whether eager relegation demoted this request at any point.
    pub relegated: bool,
    /// Replica that served the request.
    pub replica: u32,
    /// How the request's lifecycle ended.
    #[serde(default)]
    pub disposition: Disposition,
    /// Times the request was re-dispatched after a replica crash.
    #[serde(default)]
    pub retries: u32,
    /// Prompt tokens whose KV state was lost to crashes and had to be
    /// prefilled again (the re-prefill cost of recovery).
    #[serde(default)]
    pub reprefill_tokens: u64,
    /// Times the request was migrated off a gracefully draining replica
    /// (a subset of `retries` counted separately: a drain migration is a
    /// planned handoff, not a crash).
    #[serde(default)]
    pub drain_migrations: u32,
}

impl RequestOutcome {
    /// An outcome for a request that was never served to completion, with
    /// an explicit [`Disposition`] saying why (counts as a violation
    /// everywhere).
    pub fn unserved(
        spec: RequestSpec,
        relegated: bool,
        replica: u32,
        disposition: Disposition,
    ) -> Self {
        RequestOutcome {
            spec,
            first_token: None,
            completion: None,
            max_tbt: SimDuration::ZERO,
            worst_token_lateness: SignedDuration::from_micros(i64::MAX),
            relegated,
            replica,
            disposition,
            retries: 0,
            reprefill_tokens: 0,
            drain_migrations: 0,
        }
    }

    /// An outcome for a request that never finished before the simulation
    /// horizon (counts as a violation everywhere).
    pub fn unfinished(spec: RequestSpec, relegated: bool, replica: u32) -> Self {
        RequestOutcome::unserved(spec, relegated, replica, Disposition::Unfinished)
    }

    /// An outcome for a request bounced at admission by a rate limiter.
    pub fn rejected(spec: RequestSpec, replica: u32) -> Self {
        RequestOutcome::unserved(spec, false, replica, Disposition::Rejected)
    }

    /// Time to first token, when the request produced one.
    pub fn ttft(&self) -> Option<SimDuration> {
        self.first_token
            .map(|t| t.duration_since(self.spec.arrival))
    }

    /// Time to last token, when the request completed.
    pub fn ttlt(&self) -> Option<SimDuration> {
        self.completion.map(|t| t.duration_since(self.spec.arrival))
    }

    /// The latency that this request's tier is judged on: TTFT for
    /// interactive requests, TTLT for non-interactive ones (how the paper
    /// plots Fig. 10 per-bucket latency). Unfinished requests report
    /// `None`.
    pub fn tier_latency(&self) -> Option<SimDuration> {
        if self.spec.class().is_interactive() {
            self.ttft()
        } else {
            self.ttlt()
        }
    }

    /// Whether the request finished within the simulation.
    pub fn finished(&self) -> bool {
        self.completion.is_some()
    }

    /// Whether the TTFT SLO was met (interactive only; `None` otherwise).
    pub fn ttft_met(&self) -> Option<bool> {
        let target = self.spec.class().ttft()?;
        Some(match self.ttft() {
            Some(observed) => observed <= target,
            None => false,
        })
    }

    /// Whether this request violated its SLO contract.
    ///
    /// * Interactive: violated when any token (including the first) missed
    ///   its Eq. 2 deadline.
    /// * Non-interactive: violated when completion exceeded the TTLT
    ///   deadline.
    /// * Unfinished requests are always violations.
    pub fn violated(&self) -> bool {
        if !self.finished() {
            return true;
        }
        self.worst_token_lateness.as_micros() > 0
    }

    /// True when the prompt length reaches `threshold` — the paper's
    /// "long request" classification (p90 of the dataset).
    pub fn is_long(&self, threshold: u32) -> bool {
        self.spec.prompt_tokens >= threshold
    }

    /// Tier identity shortcut.
    pub fn tier(&self) -> TierId {
        self.spec.tier()
    }

    /// Priority shortcut.
    pub fn priority(&self) -> Priority {
        self.spec.priority()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_workload::{QosTier, RequestId, Slo};

    fn spec(tier: QosTier, arrival_secs: u64) -> RequestSpec {
        RequestSpec {
            id: RequestId(0),
            arrival: SimTime::from_secs(arrival_secs),
            prompt_tokens: 1_000,
            decode_tokens: 10,
            slo: Slo::of_tier(tier),
            app_id: 0,
        }
    }

    fn on_time_outcome(tier: QosTier) -> RequestOutcome {
        RequestOutcome {
            spec: spec(tier, 10),
            first_token: Some(SimTime::from_secs(12)),
            completion: Some(SimTime::from_secs(13)),
            max_tbt: SimDuration::from_millis(40),
            worst_token_lateness: SignedDuration::from_micros(-1_000_000),
            relegated: false,
            replica: 0,
            disposition: Disposition::Completed,
            retries: 0,
            reprefill_tokens: 0,
            drain_migrations: 0,
        }
    }

    #[test]
    fn latency_accessors() {
        let o = on_time_outcome(QosTier::paper_q1());
        assert_eq!(o.ttft(), Some(SimDuration::from_secs(2)));
        assert_eq!(o.ttlt(), Some(SimDuration::from_secs(3)));
        assert!(o.finished());
        assert!(!o.violated());
    }

    #[test]
    fn tier_latency_picks_metric_by_class() {
        let interactive = on_time_outcome(QosTier::paper_q1());
        assert_eq!(interactive.tier_latency(), interactive.ttft());
        let batch = on_time_outcome(QosTier::paper_q3());
        assert_eq!(batch.tier_latency(), batch.ttlt());
    }

    #[test]
    fn positive_lateness_is_violation() {
        let mut o = on_time_outcome(QosTier::paper_q1());
        o.worst_token_lateness = SignedDuration::from_micros(1);
        assert!(o.violated());
    }

    #[test]
    fn unfinished_is_always_violated() {
        let o = RequestOutcome::unfinished(spec(QosTier::paper_q2(), 0), true, 3);
        assert!(o.violated());
        assert!(!o.finished());
        assert_eq!(o.ttft(), None);
        assert_eq!(o.tier_latency(), None);
        assert_eq!(o.ttft_met(), None); // non-interactive has no TTFT SLO
        assert!(o.relegated);
        assert_eq!(o.replica, 3);
    }

    #[test]
    fn ttft_met_for_interactive() {
        let o = on_time_outcome(QosTier::paper_q1()); // 2s TTFT vs 6s SLO
        assert_eq!(o.ttft_met(), Some(true));
        let mut late = o;
        late.first_token = Some(SimTime::from_secs(20));
        assert_eq!(late.ttft_met(), Some(false));
        let mut never = o;
        never.first_token = None;
        assert_eq!(never.ttft_met(), Some(false));
    }

    #[test]
    fn long_classification() {
        let o = on_time_outcome(QosTier::paper_q1()); // 1000-token prompt
        assert!(o.is_long(1_000));
        assert!(o.is_long(500));
        assert!(!o.is_long(1_001));
    }

    #[test]
    fn serde_round_trip() {
        let o = on_time_outcome(QosTier::paper_q2());
        let json = serde_json::to_string(&o).unwrap();
        assert_eq!(serde_json::from_str::<RequestOutcome>(&json).unwrap(), o);
    }

    #[test]
    fn dispositions_of_constructors() {
        let s = spec(QosTier::paper_q1(), 0);
        assert_eq!(
            on_time_outcome(QosTier::paper_q1()).disposition,
            Disposition::Completed
        );
        assert_eq!(
            RequestOutcome::unfinished(s, false, 0).disposition,
            Disposition::Unfinished
        );
        let rejected = RequestOutcome::rejected(s, 2);
        assert_eq!(rejected.disposition, Disposition::Rejected);
        assert_eq!(rejected.replica, 2);
        assert!(rejected.violated(), "a 429 still violates the SLO");
        let shed = RequestOutcome::unserved(s, true, 1, Disposition::Shed);
        assert_eq!(shed.disposition, Disposition::Shed);
        assert!(shed.relegated);
        assert!(
            RequestOutcome::unserved(s, false, 0, Disposition::RetryExhausted).violated(),
            "exhausted retries violate the SLO"
        );
    }

    #[test]
    fn disposition_defaults_keep_old_records_readable() {
        // Records serialized before the disposition/retry fields existed
        // must still deserialize (fields default).
        let o = on_time_outcome(QosTier::paper_q1());
        let mut v = serde_json::to_value(o).unwrap();
        let map = v.as_object_mut().unwrap();
        map.remove("disposition");
        map.remove("retries");
        map.remove("reprefill_tokens");
        map.remove("drain_migrations");
        let back: RequestOutcome = serde_json::from_value(v).unwrap();
        assert_eq!(back, o);
    }
}
