//! The elastic runner: fault recovery composed with replica lifecycle
//! and autoscaling, on the same deterministic sharded kernel.
//!
//! [`run_shared_elastic`] extends [`run_shared_faulty`] with membership
//! changes: replicas are provisioned, warmed, drained, and retired while
//! crashes and stragglers fire, with every transition driven at
//! deterministic *control instants* — scheduled [`ScaleEvent`]s,
//! autoscaler ticks, warm-up completions, and drain deadlines. A control
//! instant is processed only once every runnable replica's clock has
//! reached it, so the decision sequence is a pure function of the seed
//! and configuration at any `QOSERVE_THREADS` (the same argument as the
//! crash barrier in [`recovery`](crate::recovery)).
//!
//! # Dispatch: static until the fleet first moves
//!
//! With no scale events the runner keeps the static pre-assignment of
//! [`run_shared_faulty`] byte for byte — a zero-scale-event elastic run
//! is bit-identical to the fault path (pinned by tests). The *first
//! applied* scale action recalls every undelivered request from every
//! engine into a held pool and switches to windowed dynamic dispatch:
//! at each control instant, held requests due before the next control
//! instant are routed over the currently serving replicas by a
//! [`FleetRouter`]. Held requests with no serving target are retried at
//! the next control instant and terminally shed at the horizon — no
//! request is ever silently dropped.
//!
//! # Drain handoff contract
//!
//! `begin_drain` stops admission immediately; undelivered arrivals are
//! recalled into the held pool at drain *start*; running decodes get
//! until the drain deadline. Exactly **at** the deadline — a control
//! instant, never an engine-local time — unfinished work is taken as
//! orphans and re-dispatched through the existing crash recovery path
//! (attempt counting, linear backoff, re-prefill accounting, tier-aware
//! shedding all included), with `drain_migrated` counted separately. A
//! draining replica that crashes first is handled by the crash path and
//! simply retires early.

use std::collections::{BTreeMap, BTreeSet};

use qoserve_engine::{ReplicaConfig, ReplicaEngine, ReplicaState};
use qoserve_metrics::{Disposition, RequestOutcome};
use qoserve_sim::faults::FaultSchedule;
use qoserve_sim::nums;
use qoserve_sim::{SeedStream, SimDuration, SimTime};
use qoserve_trace::{ControlObserver, FaultKind, ScaleDirection, TraceEvent, Tracer};
use qoserve_workload::{Priority, RequestId, RequestSpec, Trace};

use crate::autoscale::{AutoscaleController, AutoscaleDecision, ControlObservation};
use crate::breaker::{pick_target, CircuitBreaker};
use crate::deployment::ClusterConfig;
use crate::lifecycle::{drain_victim, DrainCandidate, ElasticPlan, FleetRouter, ScaleAction};
use crate::recovery::{
    advance_to_barrier, pending_crash_barrier, ExecMode, FaultPlan, FaultRunStats, Slot, UpSetIndex,
};
use crate::router::RouterError;
use crate::spec::SchedulerSpec;

/// Outcomes, counters, and fleet accounting of one elastic run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ElasticRunResult {
    /// One outcome per submitted request, ordered by request id.
    pub outcomes: Vec<RequestOutcome>,
    /// Fault/recovery counters plus the scale/drain counters.
    pub stats: FaultRunStats,
    /// Total provisioned replica-microseconds (from provisioning start
    /// to retirement), the cost side of the elasticity trade.
    pub replica_us: u64,
    /// Provisioned-fleet-size changes as `(time, size)` steps, starting
    /// with the initial fleet at time zero.
    pub fleet: Vec<(SimTime, u32)>,
}

/// Where one slot is in the replica lifecycle. The engine-facing
/// states (`Up`/`Degraded`/`Down`) stay inside the engine; these phases
/// are the cluster-side control-plane view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Unprovisioned slot (or retired replica); holds no capacity.
    Idle,
    /// Capacity allocated at `decided_at`; model load starts at
    /// `warm_at`, serving starts at `up_at`.
    Provisioning {
        warm_at: SimTime,
        up_at: SimTime,
        decided_at: SimTime,
    },
    /// Model loading; serving starts at `up_at`.
    Warming { up_at: SimTime, decided_at: SimTime },
    /// Serving traffic (possibly crashed-and-restarting under faults).
    Serving,
    /// Admission stopped; running work finishes until `deadline`.
    Draining { deadline: SimTime },
}

/// Mutable lifecycle state of the fleet, separate from the engine slots.
struct FleetState {
    phases: Vec<Phase>,
    /// When each slot's current provisioning began (replica-time accrual
    /// anchor); `None` while idle.
    provisioned_since: Vec<Option<SimTime>>,
    /// Requests submitted to each slot and not yet resolved, split
    /// `[important, low]` — the drain-victim signal.
    outstanding: Vec<[u64; 2]>,
    /// Undelivered requests recalled from engines, awaiting dynamic
    /// dispatch.
    held: Vec<RequestSpec>,
    /// False until the first applied scale action; while false the
    /// static pre-assignment stands untouched.
    dynamic: bool,
    router: FleetRouter,
    fleet_log: Vec<(SimTime, u32)>,
    replica_us: u64,
    /// Per-request drain-migration counts, stamped onto outcomes at the
    /// end like retries.
    drain_migrations: BTreeMap<RequestId, u32>,
}

impl FleetState {
    fn prio_ix(spec: &RequestSpec) -> usize {
        if spec.priority() == Priority::Low {
            1
        } else {
            0
        }
    }

    /// Provisioned fleet size: every non-idle slot, draining included.
    fn fleet_size(&self) -> u32 {
        nums::usize_to_u32(
            self.phases
                .iter()
                .filter(|p| !matches!(p, Phase::Idle))
                .count(),
        )
    }

    fn log_fleet(&mut self, at: SimTime) {
        let size = self.fleet_size();
        if self.fleet_log.last().map(|&(_, s)| s) != Some(size) {
            self.fleet_log.push((at, size));
        }
    }

    /// The per-slot [`ReplicaState`] view used for routing filters.
    fn lifecycle_states(&self, slots: &[Slot]) -> Vec<ReplicaState> {
        self.phases
            .iter()
            .zip(slots)
            .map(|(p, s)| {
                if s.dead {
                    return ReplicaState::Down;
                }
                match p {
                    Phase::Idle => ReplicaState::Down,
                    Phase::Provisioning { .. } => ReplicaState::Provisioning,
                    Phase::Warming { .. } => ReplicaState::Warming,
                    Phase::Serving => ReplicaState::Up,
                    Phase::Draining { .. } => ReplicaState::Draining,
                }
            })
            .collect()
    }

    /// Serving replicas (ascending), the dynamic-dispatch target set.
    fn serving(&self, slots: &[Slot]) -> Vec<u32> {
        self.phases
            .iter()
            .enumerate()
            .filter(|(r, p)| matches!(p, Phase::Serving) && !slots[*r].dead)
            .map(|(r, _)| nums::usize_to_u32(r))
            .collect()
    }

    fn retire(&mut self, r: usize, at: SimTime) {
        self.phases[r] = Phase::Idle;
        if let Some(since) = self.provisioned_since[r].take() {
            self.replica_us += at.duration_since(since).as_micros();
        }
        self.log_fleet(at);
    }
}

/// Retry/re-prefill bookkeeping shared by the crash and drain handoff
/// paths (the static runner keeps these as loose locals; the elastic
/// runner threads them through helpers).
struct RecoveryBook {
    stats: FaultRunStats,
    outcomes: Vec<RequestOutcome>,
    retries: BTreeMap<RequestId, u32>,
    reprefill: BTreeMap<RequestId, u64>,
    relegated_ids: BTreeSet<RequestId>,
    rotation: u64,
}

/// Runs `trace` on a shared deployment that starts with `replicas`
/// replicas and grows/shrinks under `elastic`, composed with the fault
/// plan. With an empty scale schedule and no autoscaler the result is
/// bit-identical to [`run_shared_faulty`](crate::recovery::run_shared_faulty).
pub fn run_shared_elastic(
    trace: &Trace,
    replicas: u32,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    plan: &FaultPlan,
    elastic: &ElasticPlan,
    seeds: &SeedStream,
) -> Result<ElasticRunResult, RouterError> {
    run_shared_elastic_traced(
        trace,
        replicas,
        scheduler,
        config,
        plan,
        elastic,
        seeds,
        &Tracer::disabled(),
    )
}

/// [`run_shared_elastic`] with a decision [`Tracer`] installed, adding
/// the lifecycle events ([`TraceEvent::ScaleDecision`],
/// [`TraceEvent::DrainStarted`], [`TraceEvent::DrainFinished`],
/// [`TraceEvent::WarmupComplete`]) on top of the fault-path events.
#[allow(clippy::too_many_arguments)]
pub fn run_shared_elastic_traced(
    trace: &Trace,
    replicas: u32,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    plan: &FaultPlan,
    elastic: &ElasticPlan,
    seeds: &SeedStream,
    tracer: &Tracer,
) -> Result<ElasticRunResult, RouterError> {
    run_elastic_inner(
        trace,
        replicas,
        scheduler,
        config,
        plan,
        elastic,
        seeds,
        tracer,
        None,
        ExecMode::Sharded,
    )
}

/// [`run_shared_elastic_traced`] with a [`ControlObserver`] driven at
/// its own deterministic sim-time boundaries, interleaved with the
/// elastic control instants (an observation boundary due at the same
/// instant as a control instant fires first, in both kernels).
/// Observation is contractually invisible: outcomes, stats, and the
/// fleet log are bit-identical to the unobserved entry points.
#[allow(clippy::too_many_arguments)]
pub fn run_shared_elastic_observed(
    trace: &Trace,
    replicas: u32,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    plan: &FaultPlan,
    elastic: &ElasticPlan,
    seeds: &SeedStream,
    tracer: &Tracer,
    observer: Option<&dyn ControlObserver>,
) -> Result<ElasticRunResult, RouterError> {
    run_elastic_inner(
        trace,
        replicas,
        scheduler,
        config,
        plan,
        elastic,
        seeds,
        tracer,
        observer,
        ExecMode::Sharded,
    )
}

/// [`run_shared_elastic_observed`] on the reference lockstep kernel,
/// for differential testing of the observer schedule itself.
#[allow(clippy::too_many_arguments)]
pub fn run_shared_elastic_observed_lockstep(
    trace: &Trace,
    replicas: u32,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    plan: &FaultPlan,
    elastic: &ElasticPlan,
    seeds: &SeedStream,
    tracer: &Tracer,
    observer: Option<&dyn ControlObserver>,
) -> Result<ElasticRunResult, RouterError> {
    run_elastic_inner(
        trace,
        replicas,
        scheduler,
        config,
        plan,
        elastic,
        seeds,
        tracer,
        observer,
        ExecMode::Lockstep,
    )
}

/// [`run_shared_elastic`] on the reference min-now lockstep kernel,
/// for differential testing (bit-identical to the sharded kernel).
#[allow(clippy::too_many_arguments)]
pub fn run_shared_elastic_lockstep(
    trace: &Trace,
    replicas: u32,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    plan: &FaultPlan,
    elastic: &ElasticPlan,
    seeds: &SeedStream,
) -> Result<ElasticRunResult, RouterError> {
    run_elastic_inner(
        trace,
        replicas,
        scheduler,
        config,
        plan,
        elastic,
        seeds,
        &Tracer::disabled(),
        None,
        ExecMode::Lockstep,
    )
}

/// Re-dispatches one batch of orphans through the shared recovery path.
/// `anchor` is the crash instant or the drain deadline; `drain` switches
/// on the drain-migration counters. Mirrors the static runner's
/// per-orphan logic exactly, with the lifecycle state filter added.
#[allow(clippy::too_many_arguments)]
fn redispatch_orphans(
    orphans: Vec<qoserve_engine::OrphanedJob>,
    anchor: SimTime,
    from_replica: u32,
    drain: bool,
    slots: &mut [Slot],
    breakers: &[CircuitBreaker],
    up_index: &UpSetIndex,
    fleet: &mut FleetState,
    book: &mut RecoveryBook,
    plan: &FaultPlan,
    tracer: &Tracer,
) -> u32 {
    let states = fleet.lifecycle_states(slots);
    let denom = fleet.fleet_size().max(1);
    let mut migrated = 0u32;
    for orphan in orphans {
        let id = orphan.spec.id;
        let attempt = {
            let a = book.retries.entry(id).or_insert(0);
            *a += 1;
            *a
        };
        if orphan.prefill_done > 0 {
            *book.reprefill.entry(id).or_insert(0) += u64::from(orphan.prefill_done);
        }
        if orphan.relegated {
            book.relegated_ids.insert(id);
        }
        let was_relegated = book.relegated_ids.contains(&id);

        if attempt > plan.max_retries {
            book.stats.retry_exhausted += 1;
            book.outcomes.push(RequestOutcome::unserved(
                orphan.spec,
                was_relegated,
                from_replica,
                Disposition::RetryExhausted,
            ));
            continue;
        }

        let redispatch_at =
            (anchor + plan.retry_backoff * u64::from(attempt)).max(orphan.spec.arrival);
        // Lifecycle filter *before* the fraction: replicas the schedule
        // thinks are up but the control plane holds idle/warming must
        // neither receive work nor count as surviving capacity.
        let up: Vec<u32> = up_index
            .up_at(redispatch_at)
            .iter()
            .copied()
            .filter(|&r| {
                states
                    .get(nums::u32_to_usize(r))
                    .is_none_or(|s| s.accepts_work())
            })
            .collect();
        let up_fraction = up.len() as f64 / denom as f64;
        let low_capacity =
            up_fraction < plan.shed_below_up_fraction && orphan.spec.priority() == Priority::Low;
        let picked = if low_capacity {
            None
        } else {
            pick_target(&up, &[], breakers, book.rotation, redispatch_at)
        };
        let Some(picked) = picked else {
            book.stats.shed += 1;
            book.outcomes.push(RequestOutcome::unserved(
                orphan.spec,
                was_relegated,
                from_replica,
                Disposition::Shed,
            ));
            continue;
        };

        book.stats.redispatches += 1;
        if picked.diverted {
            book.stats.breaker_diverted += 1;
        }
        if drain {
            book.stats.drain_migrated += 1;
            *fleet.drain_migrations.entry(id).or_insert(0) += 1;
            migrated += 1;
        }
        let target = nums::u32_to_usize(picked.replica);
        book.rotation += 1;
        if tracer.enabled() {
            tracer.for_replica(picked.replica).emit_at(
                redispatch_at,
                Some(id.0),
                TraceEvent::OrphanRedispatched {
                    from_replica,
                    to_replica: picked.replica,
                    attempt,
                },
            );
        }
        fleet.outstanding[target][FleetState::prio_ix(&orphan.spec)] += 1;
        slots[target].engine.submit_at(orphan.spec, redispatch_at);
        slots[target].parked = false;
    }
    migrated
}

/// Applies one scale action at `now`. Returns true when the fleet
/// actually changed; a no-op (no free slot, or the fleet is already at
/// the serving floor) changes nothing.
fn apply_action(
    now: SimTime,
    action: ScaleAction,
    min_serving: u32,
    slots: &mut [Slot],
    fleet: &mut FleetState,
    book: &mut RecoveryBook,
    elastic: &ElasticPlan,
    tracer: &Tracer,
) -> bool {
    match action {
        ScaleAction::Add => {
            let Some(r) = fleet
                .phases
                .iter()
                .zip(slots.iter())
                .position(|(p, s)| matches!(p, Phase::Idle) && !s.dead)
            else {
                return false; // no free slot: the ceiling is the ceiling
            };
            let before = fleet.fleet_size();
            let warm_at = now + elastic.lifecycle.provision_delay;
            fleet.phases[r] = Phase::Provisioning {
                warm_at,
                up_at: warm_at + elastic.lifecycle.warmup,
                decided_at: now,
            };
            fleet.provisioned_since[r] = Some(now);
            book.stats.scale_ups += 1;
            if tracer.enabled() {
                tracer.for_replica(nums::usize_to_u32(r)).emit_at(
                    now,
                    None,
                    TraceEvent::ScaleDecision {
                        direction: ScaleDirection::Up,
                        fleet_before: before,
                        fleet_after: before + 1,
                    },
                );
            }
            fleet.log_fleet(now);
            true
        }
        ScaleAction::Drain => {
            let candidates: Vec<DrainCandidate> = fleet
                .phases
                .iter()
                .enumerate()
                .filter(|(r, p)| matches!(p, Phase::Serving) && !slots[*r].dead)
                .map(|(r, _)| DrainCandidate {
                    replica: nums::usize_to_u32(r),
                    outstanding_important: fleet.outstanding[r][0],
                    outstanding_low: fleet.outstanding[r][1],
                })
                .collect();
            if nums::usize_to_u32(candidates.len()) <= min_serving {
                return false; // never drain the fleet empty
            }
            let Some(victim) = drain_victim(&candidates) else {
                return false;
            };
            let r = nums::u32_to_usize(victim);
            let before = fleet.fleet_size();
            let deadline = now + elastic.lifecycle.drain_grace;
            fleet.phases[r] = Phase::Draining { deadline };
            slots[r].engine.begin_drain(deadline);
            for spec in slots[r].engine.take_unarrived() {
                let ix = FleetState::prio_ix(&spec);
                fleet.outstanding[r][ix] = fleet.outstanding[r][ix].saturating_sub(1);
                fleet.held.push(spec);
            }
            book.stats.scale_downs += 1;
            if tracer.enabled() {
                let t = tracer.for_replica(victim);
                t.emit_at(
                    now,
                    None,
                    TraceEvent::ScaleDecision {
                        direction: ScaleDirection::Down,
                        fleet_before: before,
                        fleet_after: before.saturating_sub(1),
                    },
                );
                t.emit_at(
                    now,
                    None,
                    TraceEvent::DrainStarted {
                        deadline_us: deadline.as_micros(),
                    },
                );
            }
            // The drain itself keeps the slot non-idle until the
            // deadline retires it; no fleet-size change yet.
            true
        }
    }
}

/// The elastic driver: the static fault kernel plus control instants.
#[allow(clippy::too_many_arguments)]
fn run_elastic_inner(
    trace: &Trace,
    replicas: u32,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    plan: &FaultPlan,
    elastic: &ElasticPlan,
    seeds: &SeedStream,
    tracer: &Tracer,
    observer: Option<&dyn ControlObserver>,
    mode: ExecMode,
) -> Result<ElasticRunResult, RouterError> {
    let initial = replicas;
    let max_replicas = elastic.max_replicas.max(initial).max(
        elastic
            .autoscale
            .map(|a| a.normalized().max_replicas)
            .unwrap_or(0),
    );
    let targets = config
        .router
        .try_assign(trace.requests(), nums::u32_to_usize(initial))?;

    let schedule_horizon = config
        .horizon
        .unwrap_or_else(|| trace.horizon() + SimDuration::from_secs(3_600));
    // Slots beyond the initial fleet get fault timelines too; the
    // per-(class, replica) seed streams mean the first `initial`
    // timelines are exactly the static runner's.
    let schedule = FaultSchedule::generate(
        &plan.faults,
        max_replicas,
        schedule_horizon,
        &seeds.child("faults"),
    );

    let make_engine = |replica_id: u32, from: SimTime| {
        let replica_seeds = seeds.child("replica");
        let mut rc = ReplicaConfig::new(config.hardware.clone())
            .with_replica_id(replica_id)
            .with_faults(schedule.profile_for(replica_id, from));
        rc.noise_sigma = config.noise_sigma;
        rc.max_decode_batch = config.max_decode_batch;
        rc.horizon = config.horizon;
        let sched = scheduler.build(&config.hardware, &replica_seeds);
        let mut engine = ReplicaEngine::new(rc, sched, &replica_seeds);
        if tracer.enabled() {
            engine.set_tracer(tracer.clone());
        }
        engine
    };

    let mut slots: Vec<Slot> = (0..max_replicas)
        .map(|r| Slot {
            engine: make_engine(r, SimTime::ZERO),
            crashes: schedule.crashes_for(r),
            next_crash: 0,
            parked: r >= initial,
            dead: false,
        })
        .collect();
    for (spec, target) in trace.requests().iter().zip(targets) {
        slots[target].engine.submit(*spec);
    }

    let mut fleet = FleetState {
        phases: (0..max_replicas)
            .map(|r| {
                if r < initial {
                    Phase::Serving
                } else {
                    Phase::Idle
                }
            })
            .collect(),
        provisioned_since: (0..max_replicas)
            .map(|r| (r < initial).then_some(SimTime::ZERO))
            .collect(),
        outstanding: vec![[0, 0]; nums::u32_to_usize(max_replicas)],
        held: Vec::new(),
        dynamic: false,
        router: FleetRouter::new(config.router, max_replicas),
        fleet_log: vec![(SimTime::ZERO, initial)],
        replica_us: 0,
        drain_migrations: BTreeMap::new(),
    };
    for (spec, target) in trace.requests().iter().zip(
        config
            .router
            .try_assign(trace.requests(), nums::u32_to_usize(initial))?,
    ) {
        fleet.outstanding[target][FleetState::prio_ix(spec)] += 1;
    }

    let mut book = RecoveryBook {
        stats: FaultRunStats::default(),
        outcomes: Vec::with_capacity(trace.len()),
        retries: BTreeMap::new(),
        reprefill: BTreeMap::new(),
        relegated_ids: BTreeSet::new(),
        rotation: 0,
    };
    let mut breakers: Vec<CircuitBreaker> = plan
        .breaker
        .map(|cfg| {
            (0..max_replicas)
                .map(|r| {
                    let mut b = CircuitBreaker::new(cfg);
                    if tracer.enabled() {
                        b.set_tracer(tracer.for_replica(r));
                    }
                    b
                })
                .collect()
        })
        .unwrap_or_default();
    let up_index = UpSetIndex::build(&schedule, max_replicas);

    // Scheduled events sorted by time; ties keep schedule order.
    let mut scheduled: Vec<crate::lifecycle::ScaleEvent> = elastic.schedule.clone();
    scheduled.sort_by_key(|e| e.at);
    let mut next_event = 0usize;
    let mut controller = elastic.autoscale.map(AutoscaleController::new);
    let mut next_tick: Option<SimTime> = controller
        .as_ref()
        .map(|c| SimTime::ZERO + c.config().control_interval)
        .filter(|&t| t <= schedule_horizon);

    let sharded = matches!(mode, ExecMode::Sharded);
    let mut resync = sharded;
    let mut last_time = SimTime::ZERO;
    // Observation boundaries are barrier instants of their own (see the
    // recovery kernel); they fire before any control instant due at the
    // same time and never touch engine state, outcomes, or `last_time`.
    let mut next_obs: Option<SimTime> = observer.and_then(|o| o.next_boundary(SimTime::ZERO));

    loop {
        // The next control instant: scheduled event, autoscaler tick,
        // warm-up transition, or drain deadline — whichever is earliest.
        let next_control: Option<SimTime> = {
            let mut t = scheduled.get(next_event).map(|e| e.at);
            let mut fold = |c: Option<SimTime>| {
                t = match (t, c) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            };
            fold(next_tick);
            for p in &fleet.phases {
                match p {
                    Phase::Provisioning { warm_at, .. } => fold(Some(*warm_at)),
                    Phase::Warming { up_at, .. } => fold(Some(*up_at)),
                    Phase::Draining { deadline } => fold(Some(*deadline)),
                    Phase::Idle | Phase::Serving => {}
                }
            }
            t
        };

        if resync {
            let barrier = [pending_crash_barrier(&slots), next_control, next_obs]
                .into_iter()
                .flatten()
                .min();
            advance_to_barrier(&mut slots, &mut breakers, barrier);
            resync = false;
        }

        // Fire the observation boundary once every runnable clock has
        // reached it — a pure no-op for the run (nothing runnable means
        // the remaining window folds at `finish` instead).
        if let (Some(obs), Some(t)) = (observer, next_obs) {
            let min_runnable = slots
                .iter()
                .filter(|s| !s.dead && !s.parked)
                .map(|s| s.engine.now())
                .min();
            if min_runnable.is_some_and(|m| m >= t) {
                obs.boundary(t);
                next_obs = obs.next_boundary(t);
                resync = sharded;
                continue;
            }
        }

        // Process the control instant once every runnable clock reached
        // it (or nothing is runnable): the fixed point at which scale
        // decisions are thread-interleaving-independent.
        if let Some(t) = next_control {
            let min_runnable = slots
                .iter()
                .filter(|s| !s.dead && !s.parked)
                .map(|s| s.engine.now())
                .min();
            if min_runnable.is_none_or(|m| m >= t) {
                // Once every engine is drained and nothing can create new
                // work (no held requests, no scheduled events, no
                // lifecycle transition in flight), the remaining
                // autoscaler ticks can only observe an idle fleet and
                // bill idle replica-time — end the run instead. Both
                // execution modes evaluate this at the same instant (a
                // due tick over a quiescent fleet), so sharded and
                // lockstep runs stay bit-identical.
                let quiescent = next_tick == Some(t)
                    && slots.iter().all(|s| s.dead || s.parked)
                    && fleet.held.is_empty()
                    && next_event >= scheduled.len()
                    && fleet
                        .phases
                        .iter()
                        .all(|p| matches!(p, Phase::Idle | Phase::Serving));
                if quiescent {
                    next_tick = None;
                    continue;
                }
                last_time = last_time.max(t);
                // (1) Collect freshly completed outcomes so attainment
                // and outstanding counts are current.
                for (r, slot) in slots.iter_mut().enumerate() {
                    if slot.dead {
                        continue;
                    }
                    for o in slot.engine.take_outcomes() {
                        let ix = FleetState::prio_ix(&o.spec);
                        fleet.outstanding[r][ix] = fleet.outstanding[r][ix].saturating_sub(1);
                        book.outcomes.push(o);
                    }
                }

                // (2) Lifecycle transitions due at t, lowest slot first.
                for r in 0..nums::u32_to_usize(max_replicas) {
                    match fleet.phases[r] {
                        Phase::Provisioning {
                            warm_at,
                            up_at,
                            decided_at,
                        } if warm_at <= t => {
                            fleet.phases[r] = Phase::Warming { up_at, decided_at };
                        }
                        Phase::Warming { up_at, decided_at } if up_at <= t => {
                            slots[r].engine = make_engine(nums::usize_to_u32(r), up_at);
                            slots[r].next_crash =
                                slots[r].crashes.partition_point(|c| c.at < up_at);
                            slots[r].parked = true; // no work until routed
                            slots[r].dead = false;
                            if let Some(b) = breakers.get_mut(r) {
                                b.reset();
                            }
                            fleet.phases[r] = Phase::Serving;
                            let warmup_us = up_at.duration_since(decided_at).as_micros();
                            book.stats.warmup_wasted_us += warmup_us;
                            if tracer.enabled() {
                                tracer.for_replica(nums::usize_to_u32(r)).emit_at(
                                    up_at,
                                    None,
                                    TraceEvent::WarmupComplete { warmup_us },
                                );
                            }
                        }
                        _ => {}
                    }
                }

                // (3) Drain deadlines due at t: hand unfinished work to
                // the recovery path and retire the slot.
                for r in 0..nums::u32_to_usize(max_replicas) {
                    let Phase::Draining { deadline } = fleet.phases[r] else {
                        continue;
                    };
                    if deadline > t {
                        continue;
                    }
                    let mut orphans = slots[r].engine.take_orphans();
                    book.stats.degraded_iterations += slots[r].engine.degraded_iterations();
                    for o in slots[r].engine.take_outcomes() {
                        let ix = FleetState::prio_ix(&o.spec);
                        fleet.outstanding[r][ix] = fleet.outstanding[r][ix].saturating_sub(1);
                        book.outcomes.push(o);
                    }
                    orphans.sort_by_key(|j| j.spec.id);
                    let deadline_hit = orphans.iter().any(|o| o.prefill_done > 0);
                    for o in &orphans {
                        let ix = FleetState::prio_ix(&o.spec);
                        fleet.outstanding[r][ix] = fleet.outstanding[r][ix].saturating_sub(1);
                    }
                    slots[r].parked = true;
                    // Retire before re-dispatch so the drained replica is
                    // lifecycle-inadmissible for its own orphans.
                    fleet.retire(r, deadline);
                    let migrated = redispatch_orphans(
                        orphans,
                        deadline,
                        nums::usize_to_u32(r),
                        true,
                        &mut slots,
                        &breakers,
                        &up_index,
                        &mut fleet,
                        &mut book,
                        plan,
                        tracer,
                    );
                    if tracer.enabled() {
                        tracer.for_replica(nums::usize_to_u32(r)).emit_at(
                            deadline,
                            None,
                            TraceEvent::DrainFinished {
                                migrated,
                                deadline_hit,
                            },
                        );
                    }
                }

                // (4) Scheduled scale events due at t, in schedule order.
                while scheduled.get(next_event).is_some_and(|e| e.at <= t) {
                    let ev = scheduled[next_event];
                    next_event += 1;
                    if !fleet.dynamic {
                        go_dynamic(&mut slots, &mut fleet);
                    }
                    apply_action(
                        t, ev.action, 1, &mut slots, &mut fleet, &mut book, elastic, tracer,
                    );
                }

                // (5) Autoscaler tick due at t.
                if next_tick.is_some_and(|tick| tick <= t) {
                    let tick_at = next_tick.unwrap_or(t);
                    if let Some(c) = controller.as_mut() {
                        let obs = observe(tick_at, &slots, &fleet, &book, c);
                        match c.tick(tick_at, &obs) {
                            AutoscaleDecision::Hold => {}
                            AutoscaleDecision::Up(n) => {
                                for _ in 0..n {
                                    if !fleet.dynamic {
                                        go_dynamic(&mut slots, &mut fleet);
                                    }
                                    apply_action(
                                        tick_at,
                                        ScaleAction::Add,
                                        c.config().min_replicas,
                                        &mut slots,
                                        &mut fleet,
                                        &mut book,
                                        elastic,
                                        tracer,
                                    );
                                }
                            }
                            AutoscaleDecision::Down(n) => {
                                for _ in 0..n {
                                    if !fleet.dynamic {
                                        go_dynamic(&mut slots, &mut fleet);
                                    }
                                    apply_action(
                                        tick_at,
                                        ScaleAction::Drain,
                                        c.config().min_replicas,
                                        &mut slots,
                                        &mut fleet,
                                        &mut book,
                                        elastic,
                                        tracer,
                                    );
                                }
                            }
                        }
                        next_tick = Some(tick_at + c.config().control_interval)
                            .filter(|&nt| nt <= schedule_horizon);
                    }
                }

                // (6) Windowed dynamic dispatch of held requests.
                if fleet.dynamic && !fleet.held.is_empty() {
                    let window =
                        next_control_after(&scheduled, next_event, next_tick, &fleet.phases);
                    dispatch_held(t, &mut slots, &mut fleet, window);
                }

                resync = sharded;
                continue;
            }
        }

        // Min-now lockstep step, exactly as the static kernel.
        let mut pick: Option<usize> = None;
        for (i, s) in slots.iter().enumerate() {
            if s.dead || s.parked {
                continue;
            }
            match pick {
                Some(p) if slots[p].engine.now() <= s.engine.now() => {}
                _ => pick = Some(i),
            }
        }
        let Some(idx) = pick else {
            break; // nothing runnable and no control pending
        };

        if slots[idx].engine.step() {
            if let Some(b) = breakers.get_mut(idx) {
                b.observe(&slots[idx].engine.health(), slots[idx].engine.now());
            }
            continue;
        }

        if !slots[idx].engine.crashed() {
            slots[idx].parked = true;
            continue;
        }

        // --- Crash handling (static path + lifecycle composition) -----
        book.stats.crashes += 1;
        let crash = slots[idx].crashes.get(slots[idx].next_crash).copied();
        slots[idx].next_crash += 1;
        let crash_at = crash.map(|c| c.at).unwrap_or(slots[idx].engine.now());
        last_time = last_time.max(crash_at);
        let replica_id = nums::usize_to_u32(idx);
        if tracer.enabled() {
            tracer.for_replica(replica_id).emit_at(
                crash_at,
                None,
                TraceEvent::FaultInjected {
                    kind: FaultKind::Crash,
                    slowdown: 1.0,
                },
            );
        }

        let mut orphans = slots[idx].engine.take_orphans();
        book.stats.degraded_iterations += slots[idx].engine.degraded_iterations();
        for o in slots[idx].engine.take_outcomes() {
            let ix = FleetState::prio_ix(&o.spec);
            fleet.outstanding[idx][ix] = fleet.outstanding[idx][ix].saturating_sub(1);
            book.outcomes.push(o);
        }
        orphans.sort_by_key(|j| j.spec.id);
        for o in &orphans {
            let ix = FleetState::prio_ix(&o.spec);
            fleet.outstanding[idx][ix] = fleet.outstanding[idx][ix].saturating_sub(1);
        }

        let was_draining = matches!(fleet.phases[idx], Phase::Draining { .. });
        if was_draining {
            // A crash preempts the drain: the slot retires early and the
            // scheduled restart (if any) is moot.
            slots[idx].parked = true;
            fleet.retire(idx, crash_at);
        } else {
            match crash.and_then(|c| c.restart_at) {
                Some(restart_at) => {
                    book.stats.restarts += 1;
                    slots[idx].engine = make_engine(replica_id, restart_at);
                    slots[idx].parked = true;
                    if let Some(b) = breakers.get_mut(idx) {
                        b.reset();
                    }
                }
                None => {
                    slots[idx].dead = true;
                    if let Some(since) = fleet.provisioned_since[idx].take() {
                        fleet.replica_us += crash_at.duration_since(since).as_micros();
                    }
                }
            }
        }

        redispatch_orphans(
            orphans, crash_at, replica_id, false, &mut slots, &breakers, &up_index, &mut fleet,
            &mut book, plan, tracer,
        );

        resync = sharded;
    }

    // Finalize. Held requests that never found a serving replica are
    // shed explicitly — conservation holds under any schedule.
    for slot in &mut slots {
        book.stats.degraded_iterations += slot.engine.degraded_iterations();
        book.outcomes.extend(slot.engine.finish());
    }
    fleet.held.sort_by_key(|s| (s.arrival, s.id));
    for spec in fleet.held.drain(..) {
        book.stats.shed += 1;
        book.outcomes.push(RequestOutcome::unserved(
            spec,
            false,
            u32::MAX,
            Disposition::Shed,
        ));
    }

    for o in &mut book.outcomes {
        if let Some(&r) = book.retries.get(&o.spec.id) {
            o.retries = r;
        }
        if let Some(&tokens) = book.reprefill.get(&o.spec.id) {
            o.reprefill_tokens = tokens;
            book.stats.reprefill_tokens += tokens;
        }
        if book.relegated_ids.contains(&o.spec.id) {
            o.relegated = true;
        }
        if let Some(&m) = fleet.drain_migrations.get(&o.spec.id) {
            o.drain_migrations = m;
        }
    }
    book.outcomes.sort_by_key(|o| o.spec.id);
    debug_assert_eq!(book.outcomes.len(), trace.len(), "no request may be lost");

    book.stats.breaker_opens = breakers.iter().map(|b| b.open_count()).sum();

    // Close out replica-time for everything still provisioned.
    let end = slots
        .iter()
        .map(|s| s.engine.now())
        .max()
        .unwrap_or(SimTime::ZERO)
        .max(last_time);
    for r in 0..nums::u32_to_usize(max_replicas) {
        if let Some(since) = fleet.provisioned_since[r].take() {
            fleet.replica_us += end.duration_since(since).as_micros();
        }
    }

    if let Some(obs) = observer {
        obs.finish(end);
    }

    Ok(ElasticRunResult {
        outcomes: book.outcomes,
        stats: book.stats,
        replica_us: fleet.replica_us,
        fleet: fleet.fleet_log,
    })
}

/// The first scale action flips dispatch from the static pre-assignment
/// to dynamic: every undelivered request is recalled into the held pool
/// for re-routing over the live membership.
fn go_dynamic(slots: &mut [Slot], fleet: &mut FleetState) {
    fleet.dynamic = true;
    for (r, slot) in slots.iter_mut().enumerate() {
        if slot.dead {
            continue;
        }
        for spec in slot.engine.take_unarrived() {
            let ix = FleetState::prio_ix(&spec);
            fleet.outstanding[r][ix] = fleet.outstanding[r][ix].saturating_sub(1);
            fleet.held.push(spec);
        }
    }
}

/// The earliest control instant after the current one, used to bound the
/// dispatch window (phases are read *after* this instant's transitions).
fn next_control_after(
    scheduled: &[crate::lifecycle::ScaleEvent],
    next_event: usize,
    next_tick: Option<SimTime>,
    phases: &[Phase],
) -> Option<SimTime> {
    let mut t = scheduled.get(next_event).map(|e| e.at);
    let mut fold = |c: Option<SimTime>| {
        t = match (t, c) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    };
    fold(next_tick);
    for p in phases {
        match p {
            Phase::Provisioning { warm_at, .. } => fold(Some(*warm_at)),
            Phase::Warming { up_at, .. } => fold(Some(*up_at)),
            Phase::Draining { deadline } => fold(Some(*deadline)),
            Phase::Idle | Phase::Serving => {}
        }
    }
    t
}

/// Routes held requests due before `window_end` (all of them when the
/// schedule has no further control instant) over the serving set.
fn dispatch_held(
    now: SimTime,
    slots: &mut [Slot],
    fleet: &mut FleetState,
    window_end: Option<SimTime>,
) {
    fleet.held.sort_by_key(|s| (s.arrival, s.id));
    let serving = fleet.serving(slots);
    if serving.is_empty() {
        return; // retried at the next control instant
    }
    let mut kept = Vec::new();
    let held = std::mem::take(&mut fleet.held);
    for spec in held {
        if window_end.is_some_and(|w| spec.arrival >= w) {
            kept.push(spec);
            continue;
        }
        match fleet.router.route(&spec, &serving) {
            Some(target) => {
                let t = nums::u32_to_usize(target);
                fleet.outstanding[t][FleetState::prio_ix(&spec)] += 1;
                slots[t].engine.submit_at(spec, now);
                slots[t].parked = false;
            }
            None => kept.push(spec),
        }
    }
    fleet.held = kept;
}

/// Samples the autoscaler's control signals at `now`.
fn observe(
    now: SimTime,
    slots: &[Slot],
    fleet: &FleetState,
    book: &RecoveryBook,
    controller: &AutoscaleController,
) -> ControlObservation {
    let window_start = now.saturating_sub(controller.config().window);
    // Worst per-tier attainment over outcomes completed in the window.
    let mut per_tier: BTreeMap<qoserve_workload::TierId, (u64, u64)> = BTreeMap::new();
    for o in &book.outcomes {
        let Some(c) = o.completion else { continue };
        if c <= window_start || c > now {
            continue;
        }
        let e = per_tier.entry(o.tier()).or_insert((0, 0));
        e.0 += 1;
        if o.violated() {
            e.1 += 1;
        }
    }
    let attainment = per_tier
        .values()
        .map(|&(total, violated)| 1.0 - violated as f64 / total.max(1) as f64)
        .fold(f64::INFINITY, f64::min);
    let attainment = if attainment.is_finite() {
        attainment
    } else {
        1.0
    };

    let serving_set = fleet.serving(slots);
    let mut queue_tokens: u64 = serving_set
        .iter()
        .map(|&r| slots[nums::u32_to_usize(r)].engine.health().queue_tokens)
        .sum();
    // Held requests are queue pressure only once they have actually
    // arrived: between control instants the held pool also buffers
    // future arrivals (dispatch_held routes them lazily so routing sees
    // live membership), and counting those would pin the fleet at peak.
    queue_tokens += fleet
        .held
        .iter()
        .filter(|s| s.arrival <= now)
        .map(|s| u64::from(s.total_tokens()))
        .sum::<u64>();
    let serving = nums::usize_to_u32(serving_set.len());
    let warming = nums::usize_to_u32(
        fleet
            .phases
            .iter()
            .filter(|p| matches!(p, Phase::Provisioning { .. } | Phase::Warming { .. }))
            .count(),
    );
    ControlObservation {
        attainment,
        queue_tokens_per_replica: queue_tokens / u64::from(serving.max(1)),
        queue_tokens,
        serving,
        warming,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::{LifecycleConfig, ScaleEvent};
    use crate::recovery::run_shared_faulty;
    use qoserve_perf::HardwareConfig;
    use qoserve_sim::faults::FaultConfig;
    use qoserve_workload::{ArrivalProcess, Dataset, TraceBuilder};

    fn config() -> ClusterConfig {
        ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1())
    }

    fn trace(seed: u64, qps: f64, n: usize) -> Trace {
        TraceBuilder::new(Dataset::azure_conv())
            .arrivals(ArrivalProcess::poisson(qps))
            .num_requests(n)
            .paper_tier_mix()
            .low_priority_fraction(0.3)
            .build(&SeedStream::new(seed))
    }

    fn fast_lifecycle() -> LifecycleConfig {
        LifecycleConfig {
            provision_delay: SimDuration::from_secs(2),
            warmup: SimDuration::from_secs(3),
            drain_grace: SimDuration::from_secs(5),
        }
    }

    #[test]
    fn zero_scale_events_match_run_shared_faulty_bit_for_bit() {
        let t = trace(21, 6.0, 200);
        let plan = FaultPlan::with_faults(FaultConfig::moderate().scaled(2.0));
        let base = run_shared_faulty(
            &t,
            3,
            &SchedulerSpec::qoserve(),
            &config(),
            &plan,
            &SeedStream::new(21),
        )
        .unwrap();
        // Same fleet ceiling as the static run.
        let exact = run_shared_elastic(
            &t,
            3,
            &SchedulerSpec::qoserve(),
            &config(),
            &plan,
            &ElasticPlan::none(),
            &SeedStream::new(21),
        )
        .unwrap();
        assert_eq!(exact.outcomes, base.outcomes);
        assert_eq!(exact.stats, base.stats);
        // A larger ceiling adds idle slots only; the lifecycle filter
        // keeps them out of every dispatch decision.
        let headroom = run_shared_elastic(
            &t,
            3,
            &SchedulerSpec::qoserve(),
            &config(),
            &plan,
            &ElasticPlan {
                max_replicas: 6,
                ..ElasticPlan::none()
            },
            &SeedStream::new(21),
        )
        .unwrap();
        assert_eq!(headroom.outcomes, base.outcomes);
        assert_eq!(headroom.stats, base.stats);
    }

    #[test]
    fn scale_up_and_drain_conserve_every_request() {
        let t = trace(22, 8.0, 250);
        let elastic = ElasticPlan {
            lifecycle: fast_lifecycle(),
            max_replicas: 4,
            schedule: vec![
                ScaleEvent {
                    at: SimTime::from_secs(3),
                    action: ScaleAction::Add,
                },
                ScaleEvent {
                    at: SimTime::from_secs(10),
                    action: ScaleAction::Drain,
                },
                ScaleEvent {
                    at: SimTime::from_secs(14),
                    action: ScaleAction::Add,
                },
            ],
            autoscale: None,
        };
        let run = || {
            run_shared_elastic(
                &t,
                2,
                &SchedulerSpec::qoserve(),
                &config(),
                &FaultPlan::none(),
                &elastic,
                &SeedStream::new(22),
            )
            .unwrap()
        };
        let a = run();
        assert_eq!(a, run(), "same seed must replay bit-identically");
        assert_eq!(a.outcomes.len(), t.len());
        for (i, o) in a.outcomes.iter().enumerate() {
            assert_eq!(o.spec.id.0, i as u64, "one outcome per request, by id");
        }
        assert_eq!(a.stats.scale_ups, 2);
        assert_eq!(a.stats.scale_downs, 1);
        assert!(a.replica_us > 0);
        assert!(a.fleet.len() > 1, "membership changes must be logged");
    }

    #[test]
    fn drain_migrates_in_flight_work() {
        // Saturate two replicas then drain one with a short grace: the
        // victim's unfinished work must migrate, not vanish.
        let t = trace(23, 20.0, 300);
        let elastic = ElasticPlan {
            lifecycle: LifecycleConfig {
                drain_grace: SimDuration::from_millis(200),
                ..fast_lifecycle()
            },
            max_replicas: 2,
            schedule: vec![ScaleEvent {
                at: SimTime::from_secs(5),
                action: ScaleAction::Drain,
            }],
            autoscale: None,
        };
        let r = run_shared_elastic(
            &t,
            2,
            &SchedulerSpec::qoserve(),
            &config(),
            &FaultPlan::none(),
            &elastic,
            &SeedStream::new(23),
        )
        .unwrap();
        assert_eq!(r.outcomes.len(), t.len());
        assert_eq!(r.stats.scale_downs, 1);
        assert!(
            r.stats.drain_migrated > 0,
            "a saturated replica drained on a 200ms grace must migrate work"
        );
        assert!(
            r.outcomes.iter().any(|o| o.drain_migrations > 0),
            "migrations must be stamped on outcomes"
        );
    }

    #[test]
    fn elastic_sharded_matches_lockstep_bit_for_bit() {
        let t = trace(24, 8.0, 250);
        let mut faults = FaultConfig::moderate();
        faults.crash_rate_per_hour = 400.0;
        let plan = FaultPlan::with_faults(faults);
        let elastic = ElasticPlan {
            lifecycle: fast_lifecycle(),
            max_replicas: 5,
            schedule: vec![
                ScaleEvent {
                    at: SimTime::from_secs(4),
                    action: ScaleAction::Add,
                },
                ScaleEvent {
                    at: SimTime::from_secs(12),
                    action: ScaleAction::Drain,
                },
            ],
            autoscale: None,
        };
        let sharded = run_shared_elastic(
            &t,
            3,
            &SchedulerSpec::qoserve(),
            &config(),
            &plan,
            &elastic,
            &SeedStream::new(24),
        )
        .unwrap();
        let lockstep = run_shared_elastic_lockstep(
            &t,
            3,
            &SchedulerSpec::qoserve(),
            &config(),
            &plan,
            &elastic,
            &SeedStream::new(24),
        )
        .unwrap();
        assert!(sharded.stats.crashes > 0, "differential must see faults");
        assert_eq!(sharded, lockstep, "kernels must agree bit-for-bit");
    }

    #[test]
    fn autoscaler_grows_fleet_under_pressure() {
        // One replica at high load with headroom to 4: attainment/queue
        // pressure must provision more capacity.
        let t = trace(25, 14.0, 400);
        let elastic = ElasticPlan {
            lifecycle: fast_lifecycle(),
            max_replicas: 4,
            schedule: Vec::new(),
            autoscale: Some(crate::autoscale::AutoscaleConfig {
                control_interval: SimDuration::from_secs(5),
                window: SimDuration::from_secs(20),
                min_replicas: 1,
                max_replicas: 4,
                queue_high_tokens: 2_000,
                queue_low_tokens: 500,
                cooldown: SimDuration::from_secs(10),
                ..crate::autoscale::AutoscaleConfig::default()
            }),
        };
        let r = run_shared_elastic(
            &t,
            1,
            &SchedulerSpec::qoserve(),
            &config(),
            &FaultPlan::none(),
            &elastic,
            &SeedStream::new(25),
        )
        .unwrap();
        assert_eq!(r.outcomes.len(), t.len());
        assert!(r.stats.scale_ups > 0, "pressure must trigger scale-up");
        assert!(r.stats.warmup_wasted_us > 0, "scale-ups pay warm-up");
        assert!(
            r.fleet.iter().any(|&(_, size)| size > 1),
            "the fleet log must show growth: {:?}",
            r.fleet
        );
    }
}
