//! Shared helpers for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
//! paper-vs-measured numbers). Run them with
//! `cargo run --release -p qoserve-bench --bin <id>`; set
//! `QOSERVE_SCALE` to stretch measurement windows toward paper scale.

use qoserve::prelude::*;

pub mod forensics;
pub mod top;

/// Prints the standard experiment header.
pub fn banner(id: &str, title: &str) {
    let bar = "================================================================";
    // qoserve-lint: allow(unstructured-output) -- the banner is the experiment bins' console UI
    println!(
        "{bar}\n{id}: {title}\nscale factor {} (set QOSERVE_SCALE to change)\n{bar}",
        qoserve::experiments::scale_factor()
    );
}

/// Formats an optional latency in seconds.
pub fn secs(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "-".to_owned(),
    }
}

/// Formats a `LatencySummary` percentile pair as `p50/p95`.
pub fn p50_p95(s: &LatencySummary) -> String {
    if s.count == 0 {
        "-".to_owned()
    } else {
        format!("{:.2}/{:.2}", s.p50, s.p95)
    }
}

/// The three per-tier violation percentages as table cells.
pub fn tier_violation_cells(report: &SloReport) -> Vec<String> {
    [TierId::Q1, TierId::Q2, TierId::Q3]
        .iter()
        .map(|t| format!("{:.1}%", report.tier_violation_pct(*t)))
        .collect()
}

/// Median of the tier-judged latency over all finished requests, seconds.
pub fn overall_median_latency(outcomes: &[RequestOutcome]) -> Option<f64> {
    let secs: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.tier_latency())
        .map(|d| d.as_secs_f64())
        .collect();
    qoserve_metrics::percentile(&secs, 0.5)
}

/// p95 of the tier-judged latency over all finished requests, seconds.
pub fn overall_p95_latency(outcomes: &[RequestOutcome]) -> Option<f64> {
    overall_latency_percentile(outcomes, 0.95)
}

/// p99 of the tier-judged latency over all finished requests, seconds.
pub fn overall_p99_latency(outcomes: &[RequestOutcome]) -> Option<f64> {
    overall_latency_percentile(outcomes, 0.99)
}

/// Arbitrary percentile of the tier-judged latency, seconds.
pub fn overall_latency_percentile(outcomes: &[RequestOutcome], q: f64) -> Option<f64> {
    let secs: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.tier_latency())
        .map(|d| d.as_secs_f64())
        .collect();
    qoserve_metrics::percentile(&secs, q)
}

/// The machine-readable summary row of one sweep point: scheme, offered
/// load, violation percentage, and overall p50/p95 latency.
pub fn sweep_row(point: &qoserve::experiments::SweepPoint) -> serde_json::Value {
    serde_json::json!({
        "scheme": point.scheme,
        "qps": point.qps,
        "violation_pct": point.report.violation_pct(),
        "p50_secs": overall_median_latency(&point.outcomes),
        "p95_secs": overall_p95_latency(&point.outcomes),
    })
}

/// Writes `rows` to `results/<id>.json` (creating `results/` if needed)
/// and returns the path. The file carries the experiment id and the rows
/// verbatim, so downstream tooling can diff runs across commits.
pub fn write_results_json(
    id: &str,
    rows: &[serde_json::Value],
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{id}.json"));
    let doc = serde_json::json!({ "id": id, "rows": rows });
    let body = serde_json::to_string_pretty(&doc).map_err(std::io::Error::other)?;
    std::fs::write(&path, body + "\n")?;
    Ok(path)
}

/// [`write_results_json`], reported on stdout/stderr instead of returned —
/// a missing `results/` directory must never fail an experiment run.
pub fn emit_results(id: &str, rows: &[serde_json::Value]) {
    match write_results_json(id, rows) {
        // qoserve-lint: allow(unstructured-output) -- console report on behalf of the bins
        Ok(path) => println!("machine-readable summary: {}", path.display()),
        // qoserve-lint: allow(unstructured-output) -- best-effort warning on behalf of the bins
        Err(err) => eprintln!("warning: could not write results/{id}.json: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(None), "-");
        assert_eq!(secs(Some(1.234)), "1.23");
        assert_eq!(p50_p95(&LatencySummary::default()), "-");
    }

    #[test]
    fn sweep_row_shape() {
        let point = qoserve::experiments::SweepPoint {
            scheme: "QoServe".to_owned(),
            qps: 3.5,
            report: SloReport::compute(&[], 1_000),
            outcomes: Vec::new(),
        };
        let row = sweep_row(&point);
        assert_eq!(row["scheme"], "QoServe");
        assert_eq!(row["qps"], 3.5);
        assert!(row["violation_pct"].is_number());
        assert!(row["p50_secs"].is_null(), "no outcomes -> null percentile");
    }
}
