//! Calibrated analytical batch-latency model.
//!
//! This is the reproduction's stand-in for real GPU kernel execution. It is
//! a roofline-style model: an iteration's compute work (linear-layer GEMMs
//! plus attention FLOPs) and memory work (weight streaming plus KV-cache
//! traffic) are estimated separately, partially overlapped, and topped with
//! fixed scheduling/launch and tensor-parallel synchronization overheads.
//!
//! The per-GPU efficiency constants in [`GpuSpec`](crate::GpuSpec) are
//! *calibration constants*, fitted so that the end-to-end curve reproduces
//! the published throughput/latency-vs-chunk-size characteristic (Figure 4
//! of the paper): latency roughly affine in chunk size, throughput
//! saturating around a 2–2.5 k-token chunk at about twice the 256-token
//! throughput. They are not claims about individual kernels.

use qoserve_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::batch::BatchProfile;
use crate::hardware::HardwareConfig;

/// Fixed per-iteration overhead outside the GPU kernels (scheduler step,
/// kernel launches, sampling, detokenization hand-off), in microseconds.
const ITERATION_OVERHEAD_US: f64 = 3_000.0;

/// Fraction of the smaller of (compute, memory) that is *not* hidden by
/// overlapping the two; 0 would be a perfect roofline `max`, 1 a pessimistic
/// sum.
const OVERLAP_RESIDUAL: f64 = 0.35;

/// The ground-truth analytical latency model for one hardware
/// configuration.
///
/// # Example
///
/// ```
/// use qoserve_perf::{BatchProfile, HardwareConfig, LatencyModel};
///
/// let model = LatencyModel::new(&HardwareConfig::llama3_8b_a100_tp1());
/// let small = BatchProfile::builder().prefill_chunk(256, 0).build();
/// let large = BatchProfile::builder().prefill_chunk(2048, 0).build();
/// assert!(model.iteration_time(&large) > model.iteration_time(&small));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// FLOPs through the linear layers per token, per GPU shard.
    linear_flops_per_token: f64,
    /// Attention FLOPs per (query-token × context-token) pair, per shard.
    attn_flops_per_pair: f64,
    /// Weight bytes streamed per iteration, per shard.
    weight_bytes: f64,
    /// KV-cache bytes per token, per shard.
    kv_bytes_per_token: f64,
    /// Achievable FLOP/s of one shard.
    effective_flops: f64,
    /// Achievable bytes/s of one shard.
    effective_bw: f64,
    /// Per-iteration TP synchronization, µs.
    sync_overhead_us: f64,
}

impl LatencyModel {
    /// Builds the model for a hardware configuration.
    pub fn new(hw: &HardwareConfig) -> Self {
        let tp = hw.parallelism.tensor_parallel as f64;
        LatencyModel {
            linear_flops_per_token: 2.0 * hw.model.params as f64 / tp,
            attn_flops_per_pair: 4.0 * hw.model.hidden as f64 * hw.model.layers as f64 / tp,
            weight_bytes: hw.model.weight_bytes() as f64 / tp,
            kv_bytes_per_token: hw.model.kv_bytes_per_token() as f64 / tp,
            effective_flops: hw.gpu.effective_flops(),
            effective_bw: hw.gpu.effective_bw(),
            sync_overhead_us: hw.parallelism.sync_overhead_us(),
        }
    }

    /// Predicted execution time of one iteration, noise-free.
    pub fn iteration_time(&self, batch: &BatchProfile) -> SimDuration {
        SimDuration::from_micros(self.iteration_time_us(batch).round() as u64)
    }

    /// Same as [`iteration_time`](Self::iteration_time) but in fractional
    /// microseconds, for calibration and model fitting.
    pub fn iteration_time_us(&self, batch: &BatchProfile) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }

        let total_tokens = batch.total_tokens() as f64;

        // Compute side: GEMMs over every token, plus attention score/value
        // FLOPs over the quadratic prefill pairs and the decode context.
        let linear_flops = self.linear_flops_per_token * total_tokens;
        let attn_flops = self.attn_flops_per_pair
            * (batch.prefill_attention_pairs() as f64 + batch.decode_context_total as f64);
        let compute_us = (linear_flops + attn_flops) / self.effective_flops * 1e6;

        // Memory side: stream the weights once, read the KV context consumed
        // by decode attention and by each prefill chunk, write new KV.
        let prefill_ctx_reads: f64 = batch.prefill.iter().map(|c| c.context_before as f64).sum();
        let kv_read_tokens = batch.decode_context_total as f64 + prefill_ctx_reads;
        let kv_bytes = (kv_read_tokens + total_tokens) * self.kv_bytes_per_token;
        let memory_us = (self.weight_bytes + kv_bytes) / self.effective_bw * 1e6;

        let overlapped = compute_us.max(memory_us) + OVERLAP_RESIDUAL * compute_us.min(memory_us);
        ITERATION_OVERHEAD_US + self.sync_overhead_us + overlapped
    }

    /// Throughput of a batch in tokens per second (total tokens divided by
    /// iteration time); zero for an empty batch.
    pub fn throughput_tokens_per_sec(&self, batch: &BatchProfile) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        batch.total_tokens() as f64 / (self.iteration_time_us(batch) / 1e6)
    }

    /// Time to stream the model weights once — the latency floor of any
    /// decode-only iteration, in microseconds.
    pub fn weight_read_us(&self) -> f64 {
        self.weight_bytes / self.effective_bw * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::HardwareConfig;

    fn model_8b() -> LatencyModel {
        LatencyModel::new(&HardwareConfig::llama3_8b_a100_tp1())
    }

    /// A decode pool like the one behind Figure 4: ~100 in-flight decodes
    /// with ~2k context each.
    fn fig4_decodes() -> (u32, u64) {
        (100, 200_000)
    }

    fn fig4_batch(chunk: u32) -> BatchProfile {
        let (n, ctx) = fig4_decodes();
        BatchProfile::builder()
            .prefill_chunk(chunk, 1_000)
            .decodes(n, ctx)
            .build()
    }

    #[test]
    fn empty_batch_costs_nothing() {
        assert_eq!(model_8b().iteration_time_us(&BatchProfile::default()), 0.0);
        assert_eq!(
            model_8b().throughput_tokens_per_sec(&BatchProfile::default()),
            0.0
        );
    }

    #[test]
    fn latency_is_monotonic_in_chunk_size() {
        let m = model_8b();
        let mut last = 0.0;
        for chunk in [64, 128, 256, 512, 1024, 2048, 4096] {
            let t = m.iteration_time_us(&fig4_batch(chunk));
            assert!(t > last, "chunk {chunk}: {t} <= {last}");
            last = t;
        }
    }

    #[test]
    fn figure4_calibration_chunk_330_near_50ms() {
        // The paper's Fig. 4 marks chunk 330 against the 50 ms TBT SLO.
        let t = model_8b().iteration_time_us(&fig4_batch(330)) / 1e3;
        assert!(
            (35.0..=60.0).contains(&t),
            "chunk 330 should land near the 50ms SLO, got {t:.1}ms"
        );
    }

    #[test]
    fn figure4_calibration_throughput_ratio() {
        // Paper: a 2500-token chunk delivers ~2x the throughput of the
        // default 256 chunk. Accept 1.5x..2.5x for the reproduction.
        let m = model_8b();
        let small = m.throughput_tokens_per_sec(&fig4_batch(256));
        let large = m.throughput_tokens_per_sec(&fig4_batch(2_500));
        let ratio = large / small;
        assert!(
            (1.5..=2.5).contains(&ratio),
            "throughput ratio 2500/256 should be ~2x, got {ratio:.2} ({small:.0} -> {large:.0})"
        );
    }

    #[test]
    fn figure4_throughput_saturates() {
        // Marginal throughput gain from 2500 -> 4000 should be small
        // compared with the gain from 256 -> 2500.
        let m = model_8b();
        let t256 = m.throughput_tokens_per_sec(&fig4_batch(256));
        let t2500 = m.throughput_tokens_per_sec(&fig4_batch(2_500));
        let t4000 = m.throughput_tokens_per_sec(&fig4_batch(4_000));
        let early_gain = t2500 - t256;
        let late_gain = t4000 - t2500;
        assert!(
            late_gain < 0.25 * early_gain,
            "throughput should saturate: early gain {early_gain:.0}, late gain {late_gain:.0}"
        );
    }

    #[test]
    fn decode_only_iteration_is_memory_bound() {
        // A decode-only batch should cost at least the weight-read floor.
        let m = model_8b();
        let batch = BatchProfile::builder().decodes(32, 32 * 1000).build();
        let t = m.iteration_time_us(&batch);
        assert!(t >= m.weight_read_us());
        // And should comfortably meet a 50ms TBT.
        assert!(t / 1e3 < 50.0, "decode-only TBT was {:.1}ms", t / 1e3);
    }

    #[test]
    fn mha_decode_attention_costs_more_than_gqa() {
        // Qwen-7B (MHA) has 4x the KV bytes of Llama3-8B (GQA); a decode
        // heavy batch must cost relatively more on the KV term.
        let gqa = LatencyModel::new(&HardwareConfig::llama3_8b_a100_tp1());
        let mha = LatencyModel::new(&HardwareConfig::qwen_7b_a100_tp2());
        let light = BatchProfile::builder().decodes(8, 8 * 100).build();
        let heavy = BatchProfile::builder().decodes(64, 64 * 4_000).build();
        let gqa_growth = gqa.iteration_time_us(&heavy) / gqa.iteration_time_us(&light);
        let mha_growth = mha.iteration_time_us(&heavy) / mha.iteration_time_us(&light);
        assert!(
            mha_growth > gqa_growth,
            "MHA decode growth {mha_growth:.2} should exceed GQA {gqa_growth:.2}"
        );
    }

    #[test]
    fn deeper_context_makes_chunks_slower() {
        // The Medha effect: the same chunk is slower late in a long prompt.
        let m = model_8b();
        let early = BatchProfile::builder().prefill_chunk(512, 0).build();
        let late = BatchProfile::builder().prefill_chunk(512, 100_000).build();
        let e = m.iteration_time_us(&early);
        let l = m.iteration_time_us(&late);
        assert!(
            l > 1.5 * e,
            "chunk at 100k context ({l:.0}us) should be much slower than at 0 ({e:.0}us)"
        );
    }

    #[test]
    fn seventy_b_is_slower_than_8b() {
        let small = LatencyModel::new(&HardwareConfig::llama3_8b_a100_tp1());
        let big = LatencyModel::new(&HardwareConfig::llama3_70b_h100_tp4());
        let batch = fig4_batch(512);
        assert!(big.iteration_time_us(&batch) > small.iteration_time_us(&batch));
    }

    #[test]
    fn tp_sync_overhead_present_for_multi_gpu() {
        let tp2 = LatencyModel::new(&HardwareConfig::qwen_7b_a100_tp2());
        assert!(tp2.sync_overhead_us > 0.0);
    }

    #[test]
    fn iteration_time_matches_us_variant() {
        let m = model_8b();
        let b = fig4_batch(512);
        let us = m.iteration_time_us(&b);
        assert_eq!(m.iteration_time(&b).as_micros(), us.round() as u64);
    }
}
