//! Shared and siloed deployments.
//!
//! * **Shared** (QoServe's model): every replica serves every QoS tier;
//!   requests are routed across all replicas.
//! * **Siloed** (the SOTA baseline of §2.2, Table 4): each tier (or group
//!   of tiers) owns a dedicated replica pool with its own scheduler and
//!   chunk size — interactive silos run small chunks, batch silos run
//!   large ones.
//!
//! Replicas simulate independently (the router fixes each request's
//! target at submission, as the paper's round-robin balancer does), so
//! they execute on parallel threads with per-replica seeds; results are
//! bit-reproducible regardless of thread scheduling.

use qoserve_engine::{ReplicaConfig, ReplicaEngine};
use qoserve_metrics::RequestOutcome;
use qoserve_perf::HardwareConfig;
use qoserve_sim::{par_map, SeedStream, SimTime};
use qoserve_trace::Tracer;
use qoserve_workload::{RequestSpec, TierId, Trace};

use crate::router::Router;
use crate::spec::SchedulerSpec;

/// Cluster-wide execution settings.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Hardware of every replica.
    pub hardware: HardwareConfig,
    /// Routing policy within each deployment group.
    pub router: Router,
    /// Per-replica execution-noise sigma.
    pub noise_sigma: f64,
    /// Per-replica decode-pool cap.
    pub max_decode_batch: usize,
    /// Optional simulated-time cutoff applied to every replica.
    pub horizon: Option<SimTime>,
}

impl ClusterConfig {
    /// Defaults: round-robin, 2 % noise, TBT-sustainable decode pool
    /// (see [`qoserve_engine::sustainable_decode_batch`]), no horizon.
    pub fn new(hardware: HardwareConfig) -> Self {
        let max_decode_batch = qoserve_engine::sustainable_decode_batch(&hardware);
        ClusterConfig {
            hardware,
            router: Router::RoundRobin,
            noise_sigma: 0.02,
            max_decode_batch,
            horizon: None,
        }
    }

    /// Sets the horizon.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }
}

/// One silo of a siloed deployment: a tier set served by a dedicated
/// replica pool.
#[derive(Debug, Clone)]
pub struct SiloGroup {
    /// Tiers routed to this silo.
    pub tiers: Vec<TierId>,
    /// Number of replicas in the pool.
    pub replicas: u32,
    /// Scheduler run on each replica.
    pub scheduler: SchedulerSpec,
}

impl SiloGroup {
    /// Creates a silo.
    pub fn new(tiers: Vec<TierId>, replicas: u32, scheduler: SchedulerSpec) -> Self {
        assert!(replicas > 0, "a silo needs at least one replica");
        SiloGroup {
            tiers,
            replicas,
            scheduler,
        }
    }
}

/// Runs `trace` on a shared deployment of `replicas` identical replicas.
/// Returns one outcome per request, ordered by request id.
pub fn run_shared(
    trace: &Trace,
    replicas: u32,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    seeds: &SeedStream,
) -> Vec<RequestOutcome> {
    run_shared_traced(
        trace,
        replicas,
        scheduler,
        config,
        seeds,
        &Tracer::disabled(),
    )
}

/// [`run_shared`] with a decision [`Tracer`] installed on every replica.
/// A disabled tracer (the plain entry point delegates here with one) is
/// behaviourally free: every emission site is a no-op and the run is
/// bit-identical to the untraced path. Captured events carry per-replica
/// program-order sequence numbers, so the exported trace is a function of
/// `(trace, scheduler, config, seeds)` alone — independent of how the
/// replica threads were actually scheduled.
pub fn run_shared_traced(
    trace: &Trace,
    replicas: u32,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    seeds: &SeedStream,
    tracer: &Tracer,
) -> Vec<RequestOutcome> {
    assert!(replicas > 0, "at least one replica is required");
    let targets = config.router.assign(trace.requests(), replicas as usize);
    let mut per_replica: Vec<Vec<RequestSpec>> = vec![Vec::new(); replicas as usize];
    for (spec, target) in trace.requests().iter().zip(targets) {
        per_replica[target].push(*spec);
    }
    run_replica_pools(per_replica, scheduler, config, seeds, 0, tracer)
}

/// Runs `trace` on a siloed deployment. Requests whose tier belongs to no
/// silo are rejected (recorded as unfinished violations), mirroring a
/// misconfigured production router.
pub fn run_siloed(
    trace: &Trace,
    silos: &[SiloGroup],
    config: &ClusterConfig,
    seeds: &SeedStream,
) -> Vec<RequestOutcome> {
    assert!(!silos.is_empty(), "at least one silo is required");
    let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(trace.len());
    let mut replica_base = 0u32;
    for silo in silos {
        let members: Vec<RequestSpec> = trace
            .requests()
            .iter()
            .filter(|r| silo.tiers.contains(&r.tier()))
            .copied()
            .collect();
        let targets = config.router.assign(&members, silo.replicas as usize);
        let mut per_replica: Vec<Vec<RequestSpec>> = vec![Vec::new(); silo.replicas as usize];
        for (spec, target) in members.into_iter().zip(targets) {
            per_replica[target].push(spec);
        }
        outcomes.extend(run_replica_pools(
            per_replica,
            &silo.scheduler,
            config,
            seeds,
            replica_base,
            &Tracer::disabled(),
        ));
        replica_base += silo.replicas;
    }
    // Requests not covered by any silo.
    for r in trace.requests() {
        if !silos.iter().any(|s| s.tiers.contains(&r.tier())) {
            outcomes.push(RequestOutcome::unfinished(*r, false, u32::MAX));
        }
    }
    outcomes.sort_by_key(|o| o.spec.id);
    outcomes
}

/// Executes one pool of replicas on [`par_map`] workers (bounded by
/// `QOSERVE_THREADS`, not by the replica count — a 256-replica run no
/// longer spawns 256 OS threads). Replicas simulate independently, so
/// worker scheduling cannot affect results: outcomes come back in
/// replica order and are then sorted by request id.
fn run_replica_pools(
    per_replica: Vec<Vec<RequestSpec>>,
    scheduler: &SchedulerSpec,
    config: &ClusterConfig,
    seeds: &SeedStream,
    replica_base: u32,
    tracer: &Tracer,
) -> Vec<RequestOutcome> {
    let results: Vec<Vec<RequestOutcome>> = par_map(per_replica, |idx, specs| {
        let replica_id = replica_base + idx as u32;
        let replica_seeds = seeds.child("replica");
        let mut rc = ReplicaConfig::new(config.hardware.clone()).with_replica_id(replica_id);
        rc.noise_sigma = config.noise_sigma;
        rc.max_decode_batch = config.max_decode_batch;
        rc.horizon = config.horizon;
        let sched = scheduler.build(&config.hardware, &replica_seeds);
        let mut engine = ReplicaEngine::new(rc, sched, &replica_seeds);
        if tracer.enabled() {
            engine.set_tracer(tracer.clone());
        }
        for spec in specs {
            engine.submit(spec);
        }
        engine.run()
    });

    let mut outcomes: Vec<RequestOutcome> = results.into_iter().flatten().collect();
    outcomes.sort_by_key(|o| o.spec.id);
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_metrics::SloReport;
    use qoserve_sim::SimDuration;
    use qoserve_workload::{ArrivalProcess, Dataset, TierMix, TraceBuilder};

    fn config() -> ClusterConfig {
        ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1())
    }

    fn trace(seed: u64, qps: f64, n: usize) -> Trace {
        TraceBuilder::new(Dataset::azure_conv())
            .arrivals(ArrivalProcess::poisson(qps))
            .num_requests(n)
            .paper_tier_mix()
            .build(&SeedStream::new(seed))
    }

    #[test]
    fn shared_accounts_every_request_once() {
        let t = trace(1, 6.0, 240);
        let outcomes = run_shared(
            &t,
            3,
            &SchedulerSpec::qoserve(),
            &config(),
            &SeedStream::new(1),
        );
        assert_eq!(outcomes.len(), t.len());
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.spec.id.0, i as u64, "sorted by id");
        }
        // All three replicas served traffic.
        let mut replicas: Vec<u32> = outcomes.iter().map(|o| o.replica).collect();
        replicas.sort_unstable();
        replicas.dedup();
        assert_eq!(replicas, vec![0, 1, 2]);
    }

    #[test]
    fn shared_run_is_deterministic() {
        let t = trace(2, 4.0, 120);
        let run = || {
            run_shared(
                &t,
                2,
                &SchedulerSpec::qoserve(),
                &config(),
                &SeedStream::new(5),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn more_replicas_reduce_violations_under_load() {
        let t = trace(3, 10.0, 300);
        let threshold = t.long_prompt_threshold();
        let viol = |replicas: u32| {
            let o = run_shared(
                &t,
                replicas,
                &SchedulerSpec::sarathi_fcfs(),
                &config(),
                &SeedStream::new(3),
            );
            SloReport::compute(&o, threshold).violation_pct()
        };
        let one = viol(1);
        let four = viol(4);
        assert!(
            four < one || one == 0.0,
            "4 replicas ({four:.1}%) should beat 1 ({one:.1}%)"
        );
    }

    #[test]
    fn siloed_routes_by_tier() {
        let t = trace(4, 6.0, 120);
        let silos = vec![
            SiloGroup::new(vec![TierId::Q1], 1, SchedulerSpec::sarathi_fcfs()),
            SiloGroup::new(
                vec![TierId::Q2, TierId::Q3],
                1,
                SchedulerSpec::Sarathi {
                    policy: qoserve_sched::OrderPolicy::Fcfs,
                    chunk: 2_048,
                },
            ),
        ];
        let outcomes = run_siloed(&t, &silos, &config(), &SeedStream::new(4));
        assert_eq!(outcomes.len(), t.len());
        for o in &outcomes {
            if o.tier() == TierId::Q1 {
                assert_eq!(o.replica, 0);
            } else {
                assert_eq!(o.replica, 1);
            }
        }
    }

    #[test]
    fn uncovered_tier_is_rejected() {
        let t = TraceBuilder::new(Dataset::azure_conv())
            .num_requests(30)
            .tier_mix(TierMix::paper_equal())
            .build(&SeedStream::new(5));
        // Only Q1 is served.
        let silos = vec![SiloGroup::new(
            vec![TierId::Q1],
            1,
            SchedulerSpec::qoserve(),
        )];
        let outcomes = run_siloed(&t, &silos, &config(), &SeedStream::new(5));
        assert_eq!(outcomes.len(), t.len());
        for o in &outcomes {
            if o.tier() == TierId::Q1 {
                assert!(o.finished());
            } else {
                assert!(!o.finished());
                assert!(o.violated());
            }
        }
    }

    #[test]
    fn horizon_applies_to_all_replicas() {
        let t = trace(6, 8.0, 200);
        let cfg = config().with_horizon(SimTime::ZERO + SimDuration::from_secs(1));
        let outcomes = run_shared(&t, 2, &SchedulerSpec::qoserve(), &cfg, &SeedStream::new(6));
        // Nothing can finish in 1 simulated second against ~25s of trace.
        assert!(outcomes.iter().filter(|o| !o.finished()).count() > outcomes.len() / 2);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let t = trace(7, 1.0, 5);
        let _ = run_shared(
            &t,
            0,
            &SchedulerSpec::qoserve(),
            &config(),
            &SeedStream::new(7),
        );
    }
}
