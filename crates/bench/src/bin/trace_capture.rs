//! Captures a deterministic decision trace of a truncated fig9-style
//! workload and exports it as JSONL plus Chrome-trace JSON (Perfetto).
//!
//! This is both the Perfetto on-ramp documented in EXPERIMENTS.md and
//! CI's trace-determinism probe: the exported JSONL is a pure function
//! of `(seed, config)`, so running under `QOSERVE_THREADS=1` (serial
//! lockstep via the recovery runner with a zero-fault plan) and
//! `QOSERVE_THREADS=4` (one crossbeam thread per replica) must produce
//! byte-identical files. Canonical `(time_us, replica, seq)` ordering in
//! the sink is what erases the thread interleaving.
//!
//! Usage: `trace_capture [JSONL_PATH]` (default
//! `results/trace_capture.jsonl`; the Chrome export lands next to it
//! with a `.chrome.json` suffix).

use std::fs;
use std::path::PathBuf;

use qoserve::prelude::*;
use qoserve_trace::{to_chrome_trace, to_jsonl, Tracer};

/// Ring capacity per replica; generous for the truncated window, so CI
/// normally sees `dropped: 0` in the header.
const RING_CAPACITY: usize = 1 << 16;

fn main() {
    let out = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/trace_capture.jsonl"));

    let hw = HardwareConfig::llama3_8b_a100_tp1();
    let seeds = SeedStream::new(9);
    // Truncated fig9 shape: interactive-heavy Azure-Conv near capacity,
    // but a short window and a small replica pool keep the trace light.
    let mix = TierMix::new(vec![(QosTier::paper_q1(), 2.0), (QosTier::paper_q2(), 1.0)]);
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(7.0))
        .duration(qoserve::experiments::scaled_window(60))
        .tier_mix(mix)
        .build(&seeds);

    let replicas = 3;
    let scheduler = SchedulerSpec::qoserve();
    let config = ClusterConfig::new(hw);
    let tracer = Tracer::ring(RING_CAPACITY);

    // `QOSERVE_THREADS` steers `par_map`, not the per-replica thread
    // pool — so the determinism probe switches execution *mode* on it:
    // serial lockstep at 1 thread, one thread per replica otherwise.
    // Both paths must export the same bytes.
    let threads = thread_limit();
    let (mode, outcomes) = if threads <= 1 {
        let result = run_shared_faulty_traced(
            &trace,
            replicas,
            &scheduler,
            &config,
            &FaultPlan::none(),
            &seeds,
            &tracer,
        );
        let Ok(result) = result else {
            eprintln!("error: lockstep run failed to route requests");
            std::process::exit(1);
        };
        ("serial-lockstep", result.outcomes)
    } else {
        let outcomes = run_shared_traced(&trace, replicas, &scheduler, &config, &seeds, &tracer);
        ("parallel-replicas", outcomes)
    };

    let records = tracer.snapshot();
    let jsonl = to_jsonl(&records, tracer.dropped());
    let chrome = to_chrome_trace(&records);
    let chrome_path = out.with_extension("chrome.json");

    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = fs::write(&out, &jsonl) {
        eprintln!("error: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    if let Err(e) = fs::write(&chrome_path, &chrome) {
        eprintln!("error: cannot write {}: {e}", chrome_path.display());
        std::process::exit(1);
    }

    let report = SloReport::compute(&outcomes, trace.long_prompt_threshold());
    println!(
        "captured {} events ({} evicted) from {} requests [{mode}, {threads} thread(s)]",
        records.len(),
        tracer.dropped(),
        outcomes.len()
    );
    println!("overall violation rate: {:.2}%", report.violation_pct());
    println!("jsonl:  {}", out.display());
    println!(
        "chrome: {} (open in https://ui.perfetto.dev)",
        chrome_path.display()
    );
}
