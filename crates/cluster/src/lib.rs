//! Cluster-scale simulation for the QoServe reproduction.
//!
//! The paper's headline result (Fig. 1, Table 4) is a *deployment*
//! argument: a shared QoServe cluster needs 23 % fewer GPUs than the
//! state-of-the-art siloed deployment at the same load and SLOs. This
//! crate provides the machinery behind every cluster-scale number:
//!
//! * [`spec`] — [`SchedulerSpec`], a buildable description of a scheduler
//!   (so each replica can own a fresh instance).
//! * [`router`] — request routing across replicas (round-robin, as in the
//!   paper's experiments, plus a least-work router).
//! * [`deployment`] — shared vs siloed deployments and their execution;
//!   replicas run in parallel threads, each bit-reproducible.
//! * [`recovery`] — fault-injected deployments: sharded epoch stepping
//!   (replica-local advancement between fault events, lockstep around
//!   crashes), crash-orphan re-dispatch with bounded retries and
//!   deterministic backoff, re-prefill accounting, and tier-aware
//!   shedding when surviving capacity is insufficient.
//! * [`breaker`] — per-replica circuit breakers
//!   (Closed → Open → HalfProbe) thresholding the engines' rolling
//!   health snapshots, so straggling-but-alive replicas stop receiving
//!   re-dispatched work until they recover.
//! * [`capacity`] — goodput search ("max QPS with ≤ 1 % violations") and
//!   the minimum-replica capacity planner behind Table 4 and Fig. 15b.
//! * [`lifecycle`] — the replica lifecycle (Provisioning → Warming → Up →
//!   Draining → Down): timing constants, graceful-drain victim selection
//!   mirroring the shed ordering, deterministic scale-churn schedules,
//!   and an incremental fleet router for changing membership.
//! * [`autoscale`] — the SLO-feedback hysteresis autoscaler on windowed
//!   per-tier attainment and queue pressure.
//! * [`elastic`] — the elastic runner composing lifecycle + autoscaling
//!   with the fault-recovery kernel; zero scale events is bit-identical
//!   to [`recovery::run_shared_faulty`].

pub mod autoscale;
pub mod breaker;
pub mod capacity;
pub mod deployment;
pub mod elastic;
pub mod lifecycle;
pub mod recovery;
pub mod router;
pub mod spec;

pub use autoscale::{AutoscaleConfig, AutoscaleController, AutoscaleDecision, ControlObservation};
pub use breaker::{pick_target, BreakerConfig, BreakerState, CircuitBreaker, PickedTarget};
pub use capacity::{max_goodput, max_goodput_serial, min_replicas_for, GoodputOptions};
pub use deployment::{run_shared, run_shared_traced, run_siloed, ClusterConfig, SiloGroup};
pub use elastic::{
    run_shared_elastic, run_shared_elastic_lockstep, run_shared_elastic_observed,
    run_shared_elastic_observed_lockstep, run_shared_elastic_traced, ElasticRunResult,
};
pub use lifecycle::{
    drain_victim, generate_scale_schedule, DrainCandidate, ElasticPlan, FleetRouter,
    LifecycleConfig, ScaleAction, ScaleChurnConfig, ScaleEvent,
};
pub use recovery::{
    run_shared_faulty, run_shared_faulty_lockstep, run_shared_faulty_observed,
    run_shared_faulty_observed_lockstep, run_shared_faulty_traced, FaultPlan, FaultRunResult,
    FaultRunStats,
};
pub use router::{Router, RouterError};
pub use spec::SchedulerSpec;
