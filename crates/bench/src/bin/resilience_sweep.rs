//! Resilience sweep: static-margin vs adaptive pipelines under faults.
//!
//! Reuses the fault sweep's injected timeline (crashes, stragglers,
//! predictor drift at increasing intensity) but compares *pipelines*
//! instead of schedulers: today's static-margin QoServe against the full
//! adaptive resilience layer — online misprediction tracking widening the
//! chunking margin, SLO-aware admission rejecting provably-late work at
//! the door, and per-replica circuit breakers steering re-dispatch away
//! from straggling-but-alive replicas. At zero intensity the two
//! pipelines are bit-identical (the adaptive loop observes only calm
//! iterations); under faults the adaptive pipeline should hold more
//! per-tier deadlines.

use qoserve::experiments::{resilience_pipelines, resilience_sweep, FaultSweepSetup};
use qoserve::prelude::*;
use qoserve_bench::{banner, emit_results, tier_violation_cells};

fn main() {
    banner(
        "resilience_sweep",
        "Static vs adaptive resilience under fault intensity",
    );

    let setup = FaultSweepSetup {
        dataset: Dataset::azure_conv(),
        hardware: HardwareConfig::llama3_8b_a100_tp1(),
        replicas: 4,
        qps: 10.0,
        window: qoserve::experiments::scaled_window(600),
        mix: TierMix::paper_equal(),
        low_priority_fraction: 0.2,
        plan: FaultPlan::with_faults(FaultConfig::moderate()),
        seed: 41,
    };
    let pipelines = resilience_pipelines();
    let intensities = [0.0, 0.5, 1.0, 1.5, 2.0];

    println!(
        "workload: {} replicas at {} QPS, moderate fault profile scaled by intensity\n\
         pipelines: static (QoServe as-is) vs adaptive (online margin + \
         deadline gate + breakers)\n",
        setup.replicas, setup.qps
    );

    let points = resilience_sweep(&setup, &pipelines, &intensities);

    let mut table = Table::new(vec![
        "pipeline",
        "intensity",
        "violations",
        "Q1 viol.",
        "Q2 viol.",
        "Q3 viol.",
        "rejected",
        "crashes",
        "breaker opens",
        "diverted",
    ]);
    let mut rows: Vec<serde_json::Value> = Vec::new();
    for p in &points {
        let mut cells = vec![
            p.scheme.clone(),
            format!("{:.1}", p.intensity),
            format!("{:.1}%", p.report.violation_pct()),
        ];
        cells.extend(tier_violation_cells(&p.report));
        cells.extend([
            format!("{:.1}%", p.report.rejected_pct()),
            p.stats.crashes.to_string(),
            p.stats.breaker_opens.to_string(),
            p.stats.breaker_diverted.to_string(),
        ]);
        table.row(cells);
        rows.push(serde_json::json!({
            "pipeline": p.scheme,
            "intensity": p.intensity,
            "violation_pct": p.report.violation_pct(),
            "served_violation_pct": p.report.served_violation_pct(),
            "rejected_pct": p.report.rejected_pct(),
            "tier_violation_pct": {
                "q1": p.report.tier_violation_pct(TierId::Q1),
                "q2": p.report.tier_violation_pct(TierId::Q2),
                "q3": p.report.tier_violation_pct(TierId::Q3),
            },
            "completion_fraction": p.recovery.overall.completion_fraction(),
            "crashes": p.stats.crashes,
            "restarts": p.stats.restarts,
            "redispatches": p.stats.redispatches,
            "shed": p.stats.shed,
            "retry_exhausted": p.stats.retry_exhausted,
            "reprefill_tokens": p.stats.reprefill_tokens,
            "degraded_iterations": p.stats.degraded_iterations,
            "breaker_opens": p.stats.breaker_opens,
            "breaker_diverted": p.stats.breaker_diverted,
        }));
        eprintln!("  done: {} @ intensity {:.1}", p.scheme, p.intensity);
    }
    print!("{table}");
    println!(
        "\nexpectation: identical columns at intensity 0 (the adaptive loop \
         is exactly the static pipeline when calm); as intensity grows, the \
         adaptive pipeline trades a few up-front rejections and diverted \
         re-dispatches for fewer per-tier deadline violations."
    );
    emit_results("resilience_sweep", &rows);
}
