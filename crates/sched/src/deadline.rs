//! SLO-aware admission control — the resilience layer's kinder gate.
//!
//! [`RateLimitScheduler`](crate::RateLimitScheduler) rejects on a raw
//! backlog-token cap: importance-blind and deadline-blind, it bounces
//! feasible work in a deep-but-drainable queue and admits hopeless work
//! behind a shallow one. [`DeadlineAwareAdmission`] rejects only requests
//! that *provably* miss their deadline even if scheduled immediately —
//! the same "hopeless" predicate QoServe's eager relegation applies
//! in-queue (§3.4), moved to the door so doomed work never occupies KV or
//! batch slots at all.
//!
//! The predicate is fed by the adaptive resilience loop: per-iteration
//! `(predicted, observed)` pairs arriving through
//! [`Scheduler::on_iteration`] drive an [`AdaptiveMargin`] whose widening
//! over the base margin inflates the completion estimate, and whose
//! tracker median recalibrates the estimator's per-token rates. Under
//! drift the gate tightens exactly as much as the replica actually
//! slowed down; when calm it is a no-op beyond the static estimate.

use qoserve_perf::{AdaptiveMargin, AdaptiveMarginConfig, BatchProfile, LatencyPredictor};
use qoserve_sim::{SimDuration, SimTime};
use qoserve_trace::{TraceEvent, Tracer};
use qoserve_workload::RequestSpec;

use crate::estimate::ProcessingEstimator;
use crate::job::{DecodeJob, PrefillJob};
use crate::{BatchPlan, Constraints, Scheduler};

/// Admission wrapper rejecting provably-late requests only.
///
/// Rejections surface through [`drain_rejected`](Scheduler::drain_rejected)
/// (and ride along in [`drain_pending`](Scheduler::drain_pending) when
/// unclaimed), mirroring [`RateLimitScheduler`](crate::RateLimitScheduler)'s
/// conservation contract: no accounting path can lose a request.
#[derive(Debug)]
pub struct DeadlineAwareAdmission<S> {
    inner: S,
    estimator: ProcessingEstimator,
    predictor: LatencyPredictor,
    margin: AdaptiveMargin,
    rejected: Vec<PrefillJob>,
    name: String,
    tracer: Tracer,
}

impl<S: Scheduler> DeadlineAwareAdmission<S> {
    /// Wraps `inner`; the completion estimate derives from `predictor`
    /// (margined rates, see `ProcessingEstimator::from_predictor`) and
    /// the adaptive controller anchors at the predictor's margin.
    pub fn new(inner: S, predictor: LatencyPredictor) -> Self {
        let name = format!("DeadlineAware({})", inner.name());
        let estimator = ProcessingEstimator::from_predictor(&predictor);
        let margin = AdaptiveMargin::new(AdaptiveMarginConfig::anchored_at(predictor.margin()));
        DeadlineAwareAdmission {
            inner,
            estimator,
            predictor,
            margin,
            rejected: Vec::new(),
            name,
            tracer: Tracer::disabled(),
        }
    }

    /// Requests rejected so far.
    pub fn rejected_count(&self) -> usize {
        self.rejected.len()
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The adaptive controller driving the pessimism factor (tests).
    pub fn adaptive_margin(&self) -> &AdaptiveMargin {
        &self.margin
    }

    /// Access to the estimator the predicate uses (tests).
    pub fn estimator(&self) -> &ProcessingEstimator {
        &self.estimator
    }

    /// Estimated completion-relevant service time for `job` if it were
    /// scheduled immediately: remaining prefill for interactive classes
    /// (their urgency deadline is TTFT), prefill plus the estimated
    /// decode tail otherwise (TTLT).
    fn estimated_service(&self, job: &PrefillJob) -> SimDuration {
        if job.spec.class().is_interactive() {
            self.estimator.prefill_time(job.remaining_tokens())
        } else {
            self.estimator
                .remaining_time(job.spec.app_id, job.remaining_tokens())
        }
    }

    /// The admission predicate: would `job` miss its deadline even with
    /// the whole machine to itself, under current drift conditions?
    fn provably_misses(&self, job: &PrefillJob, now: SimTime) -> bool {
        // The estimator's rates already carry the *base* margin; only the
        // adaptive widening beyond it adds pessimism, so a calm system
        // gates exactly like the static estimate.
        let widened = (self.margin.current() - self.margin.config().base).max(0.0);
        let service = self.estimated_service(job).mul_f64(1.0 + widened);
        now + service > job.urgency_deadline()
    }
}

impl<S: Scheduler> Scheduler for DeadlineAwareAdmission<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_arrival(&mut self, job: PrefillJob, now: SimTime) {
        if self.provably_misses(&job, now) {
            if self.tracer.enabled() {
                let widened = (self.margin.current() - self.margin.config().base).max(0.0);
                let service = self.estimated_service(&job).mul_f64(1.0 + widened);
                self.tracer.emit(
                    Some(job.id().0),
                    TraceEvent::AdmissionRejected {
                        estimated_service_us: service.as_micros(),
                        deadline_us: job.urgency_deadline().as_micros(),
                    },
                );
            }
            self.rejected.push(job);
        } else {
            self.inner.on_arrival(job, now);
        }
    }

    fn plan_batch(
        &mut self,
        now: SimTime,
        decodes: &[DecodeJob],
        constraints: Constraints,
    ) -> BatchPlan {
        self.inner.plan_batch(now, decodes, constraints)
    }

    fn on_completion(&mut self, spec: &RequestSpec, observed_decode_tokens: u32) {
        self.inner.on_completion(spec, observed_decode_tokens);
    }

    fn on_iteration(&mut self, batch: &BatchProfile, observed: SimDuration, now: SimTime) {
        let predicted = self.predictor.predict_raw_us(batch);
        if self.margin.record(predicted, observed.as_micros() as f64) {
            if self.margin.fallback_engaged() {
                self.predictor.engage_fallback();
            }
            match self.margin.recalibration_factor() {
                Some(f) => self.estimator.recalibrate(f),
                None => self.estimator.restore_base_rates(),
            }
        }
        self.inner.on_iteration(batch, observed, now);
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.inner.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    fn pending_prefills(&self) -> usize {
        self.inner.pending_prefills()
    }

    fn pending_prefill_tokens(&self) -> u64 {
        self.inner.pending_prefill_tokens()
    }

    fn drain_pending(&mut self) -> Vec<PrefillJob> {
        // Unclaimed rejections ride along (conservation).
        let mut jobs = self.inner.drain_pending();
        jobs.append(&mut self.rejected);
        jobs
    }

    fn drain_rejected(&mut self) -> Vec<PrefillJob> {
        let mut rejected = std::mem::take(&mut self.rejected);
        rejected.extend(self.inner.drain_rejected());
        rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::RateLimitScheduler;
    use crate::policy::OrderPolicy;
    use crate::sarathi::SarathiScheduler;
    use qoserve_perf::HardwareConfig;
    use qoserve_workload::{QosTier, RequestId, Slo};

    fn predictor() -> LatencyPredictor {
        LatencyPredictor::analytical(&HardwareConfig::llama3_8b_a100_tp1())
    }

    fn gate() -> DeadlineAwareAdmission<SarathiScheduler> {
        DeadlineAwareAdmission::new(SarathiScheduler::new(OrderPolicy::Fcfs, 256), predictor())
    }

    fn spec(id: u64, prompt: u32, tier: QosTier) -> RequestSpec {
        RequestSpec {
            id: RequestId(id),
            arrival: SimTime::ZERO,
            prompt_tokens: prompt,
            decode_tokens: 10,
            slo: Slo::of_tier(tier),
            app_id: 0,
        }
    }

    #[test]
    fn feasible_requests_are_admitted() {
        let mut g = gate();
        // 2k prompt tokens at ~65 µs/token is ~130 ms, far inside a 6 s
        // TTFT.
        g.on_arrival(
            PrefillJob::new(spec(0, 2_000, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        assert_eq!(g.pending_prefills(), 1);
        assert_eq!(g.rejected_count(), 0);
    }

    #[test]
    fn provably_late_requests_are_rejected() {
        let mut g = gate();
        // 600k prompt tokens cannot prefill inside a 6 s TTFT even alone.
        g.on_arrival(
            PrefillJob::new(spec(0, 600_000, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        assert_eq!(g.pending_prefills(), 0);
        assert_eq!(g.rejected_count(), 1);
    }

    #[test]
    fn lateness_accounts_for_current_time() {
        let mut g = gate();
        // Feasible at arrival, hopeless once the deadline has nearly
        // passed.
        g.on_arrival(
            PrefillJob::new(spec(0, 50_000, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        assert_eq!(g.rejected_count(), 0);
        g.on_arrival(PrefillJob::new(spec(1, 50_000, QosTier::paper_q1())), {
            // 50k tokens need ~3.5 s; at t = 5.9 s the 6 s TTFT is gone.
            SimTime::from_millis(5_900)
        });
        assert_eq!(g.rejected_count(), 1);
    }

    #[test]
    fn kinder_than_backlog_cap_for_feasible_bursts() {
        // A burst that blows a 10k-token rate cap but is entirely
        // feasible: the deadline gate admits everything the cap bounces.
        let specs: Vec<RequestSpec> = (0..20)
            .map(|i| spec(i, 2_000, QosTier::paper_q2()))
            .collect();
        let mut capped =
            RateLimitScheduler::new(SarathiScheduler::new(OrderPolicy::Fcfs, 256), 10_000);
        let mut gated = gate();
        for s in &specs {
            capped.on_arrival(PrefillJob::new(s.clone()), SimTime::ZERO);
            gated.on_arrival(PrefillJob::new(s.clone()), SimTime::ZERO);
        }
        assert!(capped.rejected_count() > 0, "the cap bounces the burst");
        assert_eq!(gated.rejected_count(), 0, "the gate admits feasible work");
    }

    #[test]
    fn drift_tightens_the_gate() {
        let mut g = gate();
        // Borderline-feasible: ~80k tokens ≈ 5.6 s of prefill against a
        // 6 s TTFT.
        let borderline = || PrefillJob::new(spec(0, 80_000, QosTier::paper_q1()));
        assert!(!g.provably_misses(&borderline(), SimTime::ZERO));

        // Sustained 1.4x under-prediction: the margin widens and the
        // same request becomes provably late.
        let batch = BatchProfile::builder()
            .prefill_chunk(256, 0)
            .decodes(32, 32 * 1_000)
            .build();
        let predicted = g.predictor.predict_raw_us(&batch);
        let observed = SimDuration::from_micros((predicted * 1.4).round() as u64);
        for _ in 0..64 {
            g.on_iteration(&batch, observed, SimTime::ZERO);
        }
        assert!(g.adaptive_margin().current() > g.adaptive_margin().config().base);
        assert!(g.estimator().recalibration_count() > 0);
        assert!(
            g.provably_misses(&borderline(), SimTime::ZERO),
            "drift must tighten the admission predicate"
        );
    }

    #[test]
    fn conservation_across_drains() {
        let mut g = gate();
        g.on_arrival(
            PrefillJob::new(spec(0, 2_000, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        g.on_arrival(
            PrefillJob::new(spec(1, 600_000, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        // Unclaimed rejections ride along with drain_pending.
        assert_eq!(g.drain_pending().len(), 2);
        assert_eq!(g.rejected_count(), 0);
    }

    #[test]
    fn drain_rejected_separates_bounced_jobs() {
        let mut g = gate();
        g.on_arrival(
            PrefillJob::new(spec(0, 2_000, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        g.on_arrival(
            PrefillJob::new(spec(1, 600_000, QosTier::paper_q1())),
            SimTime::ZERO,
        );
        let rejected = g.drain_rejected();
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].spec.id, RequestId(1));
        assert_eq!(g.drain_pending().len(), 1);
    }

    #[test]
    fn name_reflects_inner() {
        assert_eq!(gate().name(), "DeadlineAware(Sarathi-FCFS)");
    }
}
