//! Classical prefill-ordering policies (§2.4).
//!
//! These are the literature baselines the paper analyses in Figure 2 and
//! benchmarks against in §4: FCFS, SJF, SRPF, and EDF. Each is expressed
//! as a priority key over [`PrefillJob`]s — smaller keys schedule first —
//! so they all plug into the same [`JobQueue`](crate::JobQueue).

use serde::{Deserialize, Serialize};

use crate::job::PrefillJob;

/// A classical ordering policy for the prefill queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrderPolicy {
    /// First-come-first-served: order by arrival time.
    Fcfs,
    /// Shortest job first: order by total prompt length (the dominant,
    /// known component of a request's execution time).
    Sjf,
    /// Shortest remaining prompt first: order by outstanding prefill
    /// tokens, re-evaluated as chunks complete.
    Srpf,
    /// Earliest deadline first: order by the request's urgency deadline
    /// (TTFT for interactive, TTLT for non-interactive).
    Edf,
}

impl OrderPolicy {
    /// The priority key for `job` (smaller = sooner).
    pub fn key(&self, job: &PrefillJob) -> i64 {
        match self {
            OrderPolicy::Fcfs => job.spec.arrival.as_micros() as i64,
            OrderPolicy::Sjf => job.spec.prompt_tokens as i64,
            OrderPolicy::Srpf => job.remaining_tokens() as i64,
            OrderPolicy::Edf => job.urgency_deadline().as_micros() as i64,
        }
    }

    /// Display name used in scheme labels.
    pub fn label(&self) -> &'static str {
        match self {
            OrderPolicy::Fcfs => "FCFS",
            OrderPolicy::Sjf => "SJF",
            OrderPolicy::Srpf => "SRPF",
            OrderPolicy::Edf => "EDF",
        }
    }

    /// All four policies, in the paper's Figure 2 order.
    pub fn all() -> [OrderPolicy; 4] {
        [
            OrderPolicy::Fcfs,
            OrderPolicy::Sjf,
            OrderPolicy::Srpf,
            OrderPolicy::Edf,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_sim::SimTime;
    use qoserve_workload::{QosTier, RequestId, RequestSpec, Slo};

    fn job(id: u64, arrival_secs: u64, prompt: u32, done: u32, tier: QosTier) -> PrefillJob {
        let mut j = PrefillJob::new(RequestSpec {
            id: RequestId(id),
            arrival: SimTime::from_secs(arrival_secs),
            prompt_tokens: prompt,
            decode_tokens: 10,
            slo: Slo::of_tier(tier),
            app_id: 0,
        });
        j.prefill_done = done;
        j
    }

    #[test]
    fn fcfs_orders_by_arrival() {
        let early = job(1, 5, 9_000, 0, QosTier::paper_q1());
        let late = job(2, 6, 10, 0, QosTier::paper_q1());
        assert!(OrderPolicy::Fcfs.key(&early) < OrderPolicy::Fcfs.key(&late));
    }

    #[test]
    fn sjf_orders_by_total_prompt() {
        let long = job(1, 5, 9_000, 8_999, QosTier::paper_q1()); // almost done
        let short = job(2, 6, 10, 0, QosTier::paper_q1());
        // SJF ignores progress — still prefers the short total job.
        assert!(OrderPolicy::Sjf.key(&short) < OrderPolicy::Sjf.key(&long));
        // SRPF accounts for progress — the nearly-done job wins.
        assert!(OrderPolicy::Srpf.key(&long) < OrderPolicy::Srpf.key(&short));
    }

    #[test]
    fn edf_orders_by_deadline_across_classes() {
        // Q1 arrives later but has a 6s TTFT; Q3 arrived first with a 30min
        // TTLT deadline. EDF must prefer the interactive request.
        let batch = job(1, 0, 100, 0, QosTier::paper_q3()); // deadline 1800s
        let chat = job(2, 100, 100, 0, QosTier::paper_q1()); // deadline 106s
        assert!(OrderPolicy::Edf.key(&chat) < OrderPolicy::Edf.key(&batch));
    }

    #[test]
    fn labels() {
        assert_eq!(OrderPolicy::Fcfs.label(), "FCFS");
        assert_eq!(OrderPolicy::all().len(), 4);
    }
}
