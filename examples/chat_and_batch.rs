//! The paper's motivating scenario: a chat application, a video-summary
//! service, and an email-insights batch pipeline — three very different
//! latency contracts — sharing one replica instead of three silos.
//!
//! Generates fifteen minutes of mixed traffic from the Azure-Conversation
//! distribution, tags each request with its application's Table-3 SLO,
//! and compares QoServe against the Sarathi-FCFS shared baseline.
//!
//! ```sh
//! cargo run --release -p qoserve-examples --bin chat_and_batch
//! ```

use qoserve::prelude::*;

fn run(scheduler: SchedulerSpec, trace: &Trace) -> SloReport {
    let config = ClusterConfig::new(HardwareConfig::llama3_8b_a100_tp1());
    let outcomes = run_shared(trace, 1, &scheduler, &config, &SeedStream::new(7));
    SloReport::compute(&outcomes, trace.long_prompt_threshold())
}

fn main() {
    // Chat (interactive), video summaries (minutes), email insights
    // (hours) — the paper's three production archetypes, equally mixed.
    let trace = TraceBuilder::new(Dataset::azure_conv())
        .arrivals(ArrivalProcess::poisson(4.0))
        .duration(SimDuration::from_secs(900))
        .paper_tier_mix()
        .build(&SeedStream::new(7));
    println!(
        "workload: {} requests over 15 min (Q1 chat 6s/50ms, Q2 video 600s, Q3 email 1800s)\n",
        trace.len()
    );

    let mut table = Table::new(vec![
        "scheduler",
        "chat p95 TTFT (s)",
        "video p95 TTLT (s)",
        "email p95 TTLT (s)",
        "violations",
    ]);
    for scheduler in [SchedulerSpec::sarathi_fcfs(), SchedulerSpec::qoserve()] {
        let label = scheduler.label();
        let report = run(scheduler, &trace);
        table.row(vec![
            label,
            format!("{:.2}", report.tier_summary(TierId::Q1).p95),
            format!("{:.2}", report.tier_summary(TierId::Q2).p95),
            format!("{:.2}", report.tier_summary(TierId::Q3).p95),
            format!("{:.1}%", report.violation_pct()),
        ]);
    }
    print!("{table}");
    println!(
        "\nQoServe keeps the chat tier responsive while the batch tiers ride \
         in the same replica's spare capacity."
    );
}
