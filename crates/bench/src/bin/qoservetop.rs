//! Terminal dashboard over a `qoserve-stats` snapshot stream.
//!
//! Two modes, both consuming the JSONL written by `stats_capture` (or
//! any `stream_to_jsonl` producer):
//!
//! * `--replay <file>` — step through every observation boundary,
//!   composing the delta prefix at each and rendering one dashboard
//!   frame per boundary. Pure plain text, no terminal control: the
//!   output is a deterministic function of the stream bytes, so CI can
//!   smoke it and humans can pipe it through a pager.
//! * `--follow <file>` — poll the file for growth and redraw the latest
//!   frame in place (ANSI clear), live-tailing a run in progress. Exits
//!   once the final full snapshot lands.
//!
//! Neither mode re-runs the simulation: every view (per-tier SLO
//! attainment, fleet lifecycle strip, worst-offender replicas,
//! violation-cause sparklines) folds out of the captured deltas alone.

use std::fs;
use std::time::Duration;

use qoserve_bench::top;
use qoserve_stats::{compose, stream_from_jsonl, SnapshotStream};

const USAGE: &str = "usage: qoservetop (--replay | --follow) <stats.jsonl>";

/// Poll interval while waiting for the followed file to grow.
const FOLLOW_POLL: Duration = Duration::from_millis(500);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [mode, path] if mode == "--replay" || mode == "--follow" => (mode.as_str(), path),
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if mode == "--replay" {
        replay(path);
    } else {
        follow(path);
    }
}

/// Loads and parses the stream, exiting with a diagnostic on failure.
fn load(path: &str) -> SnapshotStream {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match stream_from_jsonl(&text) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Renders one frame per boundary by composing each delta prefix, then
/// cross-checks the composed cumulative against the recorded full.
fn replay(path: &str) {
    let stream = load(path);
    if stream.deltas.is_empty() {
        let Some(full) = &stream.full else {
            eprintln!("error: {path}: empty stream (no deltas, no full snapshot)");
            std::process::exit(1);
        };
        print!("{}", top::render(full));
        return;
    }
    for upto in 1..=stream.deltas.len() {
        let snapshot = compose(&stream.deltas[..upto]);
        println!("{}", "─".repeat(72));
        print!("{}", top::render(&snapshot));
    }
    if let Some(full) = &stream.full {
        let composed = compose(&stream.deltas);
        println!("{}", "─".repeat(72));
        if composed == *full {
            println!(
                "stream check: {} deltas compose to the final full snapshot",
                stream.deltas.len()
            );
        } else {
            eprintln!("error: {path}: composed deltas diverge from the final full snapshot");
            std::process::exit(1);
        }
    }
}

/// Live-tails the stream file: redraw whenever new boundaries land,
/// finish when the producer writes the final full snapshot.
fn follow(path: &str) {
    let mut seen = 0usize;
    loop {
        // Mid-write lines (or a not-yet-created file) parse as errors;
        // in follow mode that just means "poll again".
        let stream = fs::read_to_string(path)
            .ok()
            .and_then(|text| stream_from_jsonl(&text).ok());
        if let Some(stream) = stream {
            if let Some(full) = &stream.full {
                print!("\x1b[2J\x1b[H{}", top::render(full));
                println!("(run finished — {} boundaries)", stream.deltas.len());
                return;
            }
            if stream.deltas.len() > seen {
                seen = stream.deltas.len();
                let snapshot = compose(&stream.deltas);
                print!("\x1b[2J\x1b[H{}", top::render(&snapshot));
                println!("(following {path} — boundary {seen}, ctrl-c to stop)");
            }
        }
        std::thread::sleep(FOLLOW_POLL);
    }
}
