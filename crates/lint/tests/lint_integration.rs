//! End-to-end tests over the seeded fixture workspace in
//! `tests/fixtures/ws`: every rule class must fire with an exact
//! diagnostic, waivers must suppress (or be reported when malformed),
//! and the baseline must both gate and ratchet.

use std::path::PathBuf;

use qoserve_lint::baseline::Baseline;
use qoserve_lint::rules::{RULE_FLOAT, RULE_HASH, RULE_OUTPUT, RULE_PANIC, RULE_TIME, RULE_WAIVER};
use qoserve_lint::{lint_tree, load_baseline, summary, LintReport};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn report() -> LintReport {
    let root = fixture_root();
    let baseline = load_baseline(&root).expect("fixture baseline parses");
    lint_tree(&root, &baseline).expect("fixture tree lints")
}

#[test]
fn seeded_fixtures_produce_exact_diagnostics() {
    let r = report();
    let got: Vec<String> = r.diagnostics.iter().map(|d| d.to_string()).collect();
    let want = [
        "crates/engine/src/debt.rs:4:16 panic-hygiene 3 panic site(s) in non-test code (first: \
         `.unwrap()`), baseline allows 2; handle the error or waive with a reason, never raise \
         the baseline",
        "crates/metrics/src/bad_float.rs:5:8 float-ordering `sort_by` comparator built on \
         `partial_cmp` is not a total order under NaN; use `f64::total_cmp` (see \
         `qoserve_sim::float`)",
        "crates/metrics/src/bad_float.rs:5:40 panic-hygiene 2 panic site(s) in non-test code \
         (first: `.unwrap()`), baseline allows 0; handle the error or waive with a reason, \
         never raise the baseline",
        "crates/metrics/src/bad_float.rs:10:7 float-ordering `partial_cmp(..).unwrap()` panics \
         on NaN; use `f64::total_cmp` (see `qoserve_sim::float`)",
        "crates/sched/src/bad_hash.rs:10:14 hash-iteration iteration over hash container \
         `slots` (`.values()`) is order-nondeterministic; use `BTreeMap`/`BTreeSet` or a `Vec`",
        "crates/sched/src/bad_hash.rs:14:45 hash-iteration iteration over hash container \
         `slots` (`.drain()`) is order-nondeterministic; use `BTreeMap`/`BTreeSet` or a `Vec`",
        "crates/sched/src/bad_hash.rs:22:14 hash-iteration iteration over hash container `m` \
         (`.keys()`) is order-nondeterministic; use `BTreeMap`/`BTreeSet` or a `Vec`",
        "crates/sched/src/bad_output.rs:5:5 unstructured-output 3 unstructured output site(s) \
         in library code (first: `println!`), baseline allows 0; return data to the caller (or \
         use the trace layer) instead of printing, or waive with a reason",
        "crates/sched/src/bad_waiver.rs:6:5 bad-waiver missing mandatory reason: write \
         `allow(<rule>) -- <why this is safe>`",
        "crates/sched/src/bad_waiver.rs:7:5 hash-iteration iteration over hash container `m` \
         (`.values()`) is order-nondeterministic; use `BTreeMap`/`BTreeSet` or a `Vec`",
        "crates/sim/src/bad_time.rs:4:24 nondeterministic-time `Instant::now` breaks replay \
         determinism; use `SimTime` from the event loop",
        "crates/sim/src/bad_time.rs:9:25 nondeterministic-time `thread_rng` is \
         nondeterministic; derive a stream from `SeedStream`",
    ];
    assert_eq!(got, want);
    assert!(!r.is_clean(), "seeded fixtures must make the tree dirty");
    assert_eq!(r.files_scanned, 10);
}

#[test]
fn every_rule_class_is_covered() {
    let r = report();
    for rule in [
        RULE_TIME,
        RULE_HASH,
        RULE_FLOAT,
        RULE_PANIC,
        RULE_OUTPUT,
        RULE_WAIVER,
    ] {
        assert!(
            r.diagnostics.iter().any(|d| d.rule == rule),
            "no fixture fires `{rule}`"
        );
    }
}

#[test]
fn waiver_with_reason_suppresses_and_is_marked_used() {
    let r = report();
    assert!(
        !r.diagnostics
            .iter()
            .any(|d| d.path == "crates/sched/src/waived.rs"),
        "waived file must produce no diagnostics"
    );
    let w = r
        .waivers
        .iter()
        .find(|w| w.path == "crates/sched/src/waived.rs")
        .expect("waiver is reported");
    assert!(w.used);
    assert_eq!(w.rules, vec!["hash-iteration".to_string()]);
    assert_eq!(w.reason, "count only; order never observed");

    let unused = r
        .waivers
        .iter()
        .find(|w| w.path == "crates/core/src/clean.rs")
        .expect("unused waiver is still reported");
    assert!(!unused.used);
    assert!(summary(&r).contains("[unused]"));
}

#[test]
fn baseline_gates_and_ratchets() {
    let r = report();
    // Below-ceiling files are ratchet candidates, not violations — for
    // both ratcheted rules.
    assert_eq!(
        r.ratchet,
        vec![
            (RULE_PANIC, "crates/engine/src/ratchet.rs".to_string(), 1, 5),
            (
                RULE_OUTPUT,
                "crates/engine/src/ratchet.rs".to_string(),
                0,
                2
            ),
        ]
    );
    // What --fix-baseline would write: current counts, sorted, canonical.
    let rendered = r.counts.render();
    assert!(rendered.contains("\"crates/engine/src/debt.rs\" = 3"));
    assert!(rendered.contains("\"crates/engine/src/ratchet.rs\" = 1"));
    assert!(rendered.contains("\"crates/metrics/src/bad_float.rs\" = 2"));
    assert!(rendered.contains("[unstructured-output]"));
    assert!(rendered.contains("\"crates/sched/src/bad_output.rs\" = 3"));
    let reparsed = Baseline::parse(&rendered).expect("rendered baseline reparses");
    assert_eq!(reparsed, r.counts);

    // Re-linting against the ratcheted baseline clears the candidates;
    // debt stays capped at its *new* count for both rules.
    let r2 = lint_tree(&fixture_root(), &reparsed).expect("relint");
    assert!(r2.ratchet.is_empty(), "freshly ratcheted baseline is tight");
    assert!(
        !r2.diagnostics
            .iter()
            .any(|d| d.rule == RULE_PANIC || d.rule == RULE_OUTPUT),
        "counts at the ceiling are allowed, never below it"
    );
}

#[test]
fn clean_file_stays_clean() {
    let r = report();
    assert!(
        !r.diagnostics
            .iter()
            .any(|d| d.path == "crates/core/src/clean.rs"),
        "construction + point lookup + test-module iteration must not fire"
    );
    assert!(!r.counts.allowed.contains_key("crates/core/src/clean.rs"));
    assert!(!r
        .counts
        .output_allowed
        .contains_key("crates/core/src/clean.rs"));
}

#[test]
fn bin_drivers_are_exempt_from_output_and_panic() {
    let r = report();
    assert!(
        !r.diagnostics
            .iter()
            .any(|d| d.path == "crates/sim/src/bin/driver.rs"),
        "drivers own the process streams and may unwrap"
    );
    assert!(!r
        .counts
        .output_allowed
        .contains_key("crates/sim/src/bin/driver.rs"));
}
