//! Processing-time estimation used by priorities and the violation
//! checker.
//!
//! Two estimates drive QoServe's decisions (§3.4):
//!
//! 1. **Prefill time** — predictable from the remaining prompt tokens and
//!    a per-token rate derived from the latency predictor.
//! 2. **Decode time** — unknown at serving time; the paper keeps a running
//!    per-application history of generated token counts and
//!    over-approximates by two standard deviations.

use std::collections::HashMap;

use qoserve_perf::{BatchProfile, LatencyPredictor};
use qoserve_sim::{OnlineStats, SimDuration};

/// Clamp on recalibration factors: observed/predicted drift outside this
/// range is treated as its nearest bound rather than trusted verbatim.
const RECALIBRATION_CLAMP: (f64, f64) = (0.5, 4.0);

/// Estimates remaining processing time for queued requests.
#[derive(Debug, Clone)]
pub struct ProcessingEstimator {
    /// Estimated prefill cost per prompt token, µs (derived from the
    /// predictor at full-chunk throughput).
    prefill_us_per_token: f64,
    /// Estimated wall-clock per decode token, µs (one iteration of a
    /// typical mixed batch produces one token per decoding request).
    decode_us_per_token: f64,
    /// Startup prefill rate the recalibration scaling is anchored to.
    base_prefill_us_per_token: f64,
    /// Startup decode rate the recalibration scaling is anchored to.
    base_decode_us_per_token: f64,
    /// Times [`recalibrate`](Self::recalibrate) actually changed the rates.
    recalibrations: u64,
    /// Fallback decode-length estimate before any history exists.
    default_decode_tokens: f64,
    /// Per-application decode-length history.
    history: HashMap<u32, OnlineStats>,
}

impl ProcessingEstimator {
    /// Derives per-token rates from `predictor`.
    ///
    /// * Prefill rate: a saturated 2048-token chunk amortises fixed costs,
    ///   giving the marginal cost per prompt token.
    /// * Decode rate: the iteration time of a representative mixed batch
    ///   (256-token chunk + 64 decodes at 1 k context), since each
    ///   iteration advances every decode by one token.
    ///
    /// Rates come from the *margined* [`LatencyPredictor::predict`], not
    /// the raw model output: the paper's conservative under-prediction
    /// bias must flow into priorities and violation estimates too, or the
    /// scheduler plans chunks pessimistically while judging deadlines
    /// optimistically.
    pub fn from_predictor(predictor: &LatencyPredictor) -> Self {
        let big_chunk = BatchProfile::builder().prefill_chunk(2_048, 0).build();
        let prefill_us_per_token = predictor.predict(&big_chunk).as_micros() as f64 / 2_048.0;

        let typical = BatchProfile::builder()
            .prefill_chunk(256, 0)
            .decodes(64, 64 * 1_024)
            .build();
        let decode_us_per_token = predictor.predict(&typical).as_micros() as f64;

        Self::with_rates(prefill_us_per_token, decode_us_per_token)
    }

    /// Builds an estimator with explicit rates (tests).
    pub fn with_rates(prefill_us_per_token: f64, decode_us_per_token: f64) -> Self {
        ProcessingEstimator {
            prefill_us_per_token,
            decode_us_per_token,
            base_prefill_us_per_token: prefill_us_per_token,
            base_decode_us_per_token: decode_us_per_token,
            recalibrations: 0,
            default_decode_tokens: 200.0,
            history: HashMap::new(),
        }
    }

    /// Rescales both per-token rates to `base × factor`, where `factor`
    /// is an observed/predicted latency ratio from the adaptive error
    /// tracker (clamped to a sane band). Scaling is *anchored at the
    /// startup rates*: repeated recalibration with the same factor is
    /// idempotent and cannot compound drift.
    pub fn recalibrate(&mut self, factor: f64) {
        if !factor.is_finite() {
            return;
        }
        let f = factor.clamp(RECALIBRATION_CLAMP.0, RECALIBRATION_CLAMP.1);
        let prefill = self.base_prefill_us_per_token * f;
        let decode = self.base_decode_us_per_token * f;
        if prefill != self.prefill_us_per_token || decode != self.decode_us_per_token {
            self.prefill_us_per_token = prefill;
            self.decode_us_per_token = decode;
            self.recalibrations += 1;
        }
    }

    /// Restores the startup rates. A no-op when never recalibrated, so
    /// calm runs stay bit-identical to a never-recalibrated estimator.
    pub fn restore_base_rates(&mut self) {
        self.prefill_us_per_token = self.base_prefill_us_per_token;
        self.decode_us_per_token = self.base_decode_us_per_token;
    }

    /// Times recalibration actually changed the rates (diagnostics).
    pub fn recalibration_count(&self) -> u64 {
        self.recalibrations
    }

    /// Records the observed decode length of a completed request.
    pub fn record_decode(&mut self, app_id: u32, decode_tokens: u32) {
        self.history
            .entry(app_id)
            .or_default()
            .push(decode_tokens as f64);
    }

    /// The paper's decode-length over-approximation for `app_id`:
    /// `mean + 2σ` from history, or the cold-start default.
    pub fn estimated_decode_tokens(&self, app_id: u32) -> f64 {
        self.history
            .get(&app_id)
            .map_or(self.default_decode_tokens, |s| {
                s.mean_plus_two_sigma_or(self.default_decode_tokens)
            })
    }

    /// Estimated time to process `tokens` of prefill.
    pub fn prefill_time(&self, tokens: u32) -> SimDuration {
        SimDuration::from_micros((tokens as f64 * self.prefill_us_per_token).round() as u64)
    }

    /// Estimated time to decode `tokens` output tokens.
    pub fn decode_time(&self, tokens: f64) -> SimDuration {
        SimDuration::from_micros((tokens.max(0.0) * self.decode_us_per_token).round() as u64)
    }

    /// Estimated end-to-end remaining time for a request of `app_id` with
    /// `prefill_remaining` prompt tokens still to run: prefill plus the
    /// estimated decode tail.
    pub fn remaining_time(&self, app_id: u32, prefill_remaining: u32) -> SimDuration {
        self.prefill_time(prefill_remaining)
            + self.decode_time(self.estimated_decode_tokens(app_id))
    }

    /// Prefill µs/token rate (diagnostics).
    pub fn prefill_rate_us(&self) -> f64 {
        self.prefill_us_per_token
    }

    /// Decode µs/token rate (diagnostics).
    pub fn decode_rate_us(&self) -> f64 {
        self.decode_us_per_token
    }

    /// Number of applications with recorded history.
    pub fn tracked_apps(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_perf::HardwareConfig;

    fn estimator() -> ProcessingEstimator {
        ProcessingEstimator::from_predictor(&LatencyPredictor::analytical(
            &HardwareConfig::llama3_8b_a100_tp1(),
        ))
    }

    #[test]
    fn rates_are_plausible_for_8b_a100() {
        let e = estimator();
        // Prefill: tens of µs per token (≈10-20k tokens/s saturated).
        assert!(
            (30.0..150.0).contains(&e.prefill_rate_us()),
            "prefill rate {} us/token",
            e.prefill_rate_us()
        );
        // Decode: one iteration of a typical batch, i.e. tens of ms.
        assert!(
            (10_000.0..80_000.0).contains(&e.decode_rate_us()),
            "decode rate {} us/token",
            e.decode_rate_us()
        );
    }

    #[test]
    fn cold_start_uses_default() {
        let e = estimator();
        assert_eq!(e.estimated_decode_tokens(42), 200.0);
    }

    #[test]
    fn history_mean_plus_two_sigma() {
        let mut e = ProcessingEstimator::with_rates(50.0, 30_000.0);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            e.record_decode(7, v as u32);
        }
        // mean 5, sigma 2 -> 9.
        assert!((e.estimated_decode_tokens(7) - 9.0).abs() < 1e-9);
        // Other apps unaffected.
        assert_eq!(e.estimated_decode_tokens(8), 200.0);
        assert_eq!(e.tracked_apps(), 1);
    }

    #[test]
    fn time_estimates_scale_linearly() {
        let e = ProcessingEstimator::with_rates(100.0, 10_000.0);
        assert_eq!(e.prefill_time(1_000), SimDuration::from_micros(100_000));
        assert_eq!(e.decode_time(50.0), SimDuration::from_micros(500_000));
        assert_eq!(
            e.remaining_time(1, 1_000),
            SimDuration::from_micros(100_000) + e.decode_time(200.0)
        );
    }

    #[test]
    fn negative_decode_estimate_clamps() {
        let e = ProcessingEstimator::with_rates(1.0, 1.0);
        assert_eq!(e.decode_time(-5.0), SimDuration::ZERO);
    }

    #[test]
    fn rates_derive_from_margined_predictions() {
        // Satellite fix pin: `from_predictor` must include the safety
        // margin. Doubling the margin must inflate both rates — under the
        // old `predict_raw_us` derivation they were margin-invariant.
        let hw = HardwareConfig::llama3_8b_a100_tp1();
        let lean = ProcessingEstimator::from_predictor(
            &LatencyPredictor::analytical(&hw).with_margin(0.0),
        );
        let padded = ProcessingEstimator::from_predictor(
            &LatencyPredictor::analytical(&hw).with_margin(0.2),
        );
        let prefill_ratio = padded.prefill_rate_us() / lean.prefill_rate_us();
        let decode_ratio = padded.decode_rate_us() / lean.decode_rate_us();
        assert!(
            (prefill_ratio - 1.2).abs() < 0.01,
            "prefill rate must carry the margin: ratio {prefill_ratio}"
        );
        assert!(
            (decode_ratio - 1.2).abs() < 0.01,
            "decode rate must carry the margin: ratio {decode_ratio}"
        );
    }

    #[test]
    fn recalibration_is_anchored_and_idempotent() {
        let mut e = ProcessingEstimator::with_rates(100.0, 10_000.0);
        e.recalibrate(1.5);
        assert_eq!(e.prefill_rate_us(), 150.0);
        assert_eq!(e.decode_rate_us(), 15_000.0);
        assert_eq!(e.recalibration_count(), 1);
        // Same factor again: anchored scaling, no compounding, no count.
        e.recalibrate(1.5);
        assert_eq!(e.prefill_rate_us(), 150.0);
        assert_eq!(e.recalibration_count(), 1);
        // New factor scales from the base, not the current rates.
        e.recalibrate(2.0);
        assert_eq!(e.prefill_rate_us(), 200.0);
        assert_eq!(e.recalibration_count(), 2);
        e.restore_base_rates();
        assert_eq!(e.prefill_rate_us(), 100.0);
        assert_eq!(e.decode_rate_us(), 10_000.0);
    }

    #[test]
    fn recalibration_clamps_and_rejects_poison() {
        let mut e = ProcessingEstimator::with_rates(100.0, 10_000.0);
        e.recalibrate(100.0);
        assert_eq!(e.prefill_rate_us(), 400.0, "clamped to 4x");
        e.recalibrate(0.01);
        assert_eq!(e.prefill_rate_us(), 50.0, "clamped to 0.5x");
        e.recalibrate(f64::NAN);
        assert_eq!(e.prefill_rate_us(), 50.0, "NaN ignored");
    }

    #[test]
    fn restore_without_recalibration_is_a_noop() {
        let mut e = ProcessingEstimator::with_rates(100.0, 10_000.0);
        e.restore_base_rates();
        assert_eq!(e.prefill_rate_us(), 100.0);
        assert_eq!(e.recalibration_count(), 0);
    }
}
