//! `trace-coverage`: cross-file exhaustiveness for the trace taxonomy.
//!
//! `TraceEvent` is a closed enum; its value comes from every consumer
//! handling every variant. Serde keeps the JSONL round-trip exhaustive
//! for free, but the Chrome exporter, the forensics attributor, and the
//! live-stats aggregator match on variants by hand — and a `_` arm silently swallows any variant
//! added later. This rule makes that a lint error: every variant of the
//! workspace's `TraceEvent` enum must be *mentioned* (as a
//! `TraceEvent::Variant` path in non-test code) in each export surface.
//! The mention test deliberately accepts explicit multi-variant or-arms
//! (`TraceEvent::A | TraceEvent::B => ..`) — the point is that adding a
//! variant forces the author to *decide* per surface, not that every
//! variant needs bespoke handling.
//!
//! When no `TraceEvent` enum is in the scanned set (e.g. `--only
//! crates/lint` self-lint), the rule is inert.

use std::collections::BTreeSet;

use crate::symbols::SymbolTable;

use super::{Diagnostic, RULE_COVERAGE};

/// The enum whose variants must be covered.
pub(crate) const TRACE_ENUM: &str = "TraceEvent";

/// Export surfaces: `(workspace-relative path, description)`. A surface
/// absent from the scanned set is skipped (partial lints stay green).
pub(crate) const SURFACES: &[(&str, &str)] = &[
    (
        "crates/trace/src/export.rs",
        "the trace exporters (JSONL + Chrome)",
    ),
    ("crates/bench/src/forensics.rs", "forensics attribution"),
    ("crates/stats/src/aggregate.rs", "the live-stats aggregator"),
];

/// Facts the workspace pass needs about one scanned file.
pub(crate) struct SurfaceFile<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// `(Enum, Variant, line)` path mentions in non-test code.
    pub mentions: &'a [(String, String, u32)],
}

/// Workspace pass: for each surface file present, every variant of the
/// workspace `TraceEvent` enum must appear as a `TraceEvent::Variant`
/// mention. Diagnostics anchor at the surface's first `TraceEvent`
/// mention (falling back to 1:1), so one waiver line can cover a
/// deliberate opt-out. Returns `(file_index, diagnostic)` pairs.
pub(crate) fn check(table: &SymbolTable, files: &[SurfaceFile<'_>]) -> Vec<(usize, Diagnostic)> {
    let Some(enum_site) = table.enum_named(TRACE_ENUM) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (surface_path, desc) in SURFACES {
        let Some((file_idx, file)) = files
            .iter()
            .enumerate()
            .find(|(_, f)| f.path == *surface_path)
        else {
            continue;
        };
        let mentioned: BTreeSet<&str> = file
            .mentions
            .iter()
            .filter(|(e, _, _)| e == TRACE_ENUM)
            .map(|(_, v, _)| v.as_str())
            .collect();
        let anchor = file
            .mentions
            .iter()
            .filter(|(e, _, _)| e == TRACE_ENUM)
            .map(|(_, _, line)| *line)
            .min()
            .unwrap_or(1);
        for variant in &enum_site.variants {
            if mentioned.contains(variant.as_str()) {
                continue;
            }
            out.push((
                file_idx,
                Diagnostic {
                    path: file.path.to_string(),
                    line: anchor,
                    col: 1,
                    rule: RULE_COVERAGE,
                    message: format!(
                        "`{TRACE_ENUM}::{variant}` is not handled in {desc}; a `_` arm would \
                         silently swallow it — add an explicit arm (or list it in an or-pattern), \
                         or waive with a reason"
                    ),
                },
            ));
        }
    }
    out.sort_by(|a, b| {
        (a.0, a.1.line, a.1.col, &a.1.message).cmp(&(b.0, b.1.line, b.1.col, &b.1.message))
    });
    out
}
