//! Feature description of one serving iteration.
//!
//! Chunked-prefill engines execute *mixed batches*: at most a few prefill
//! chunks plus every in-flight decode (§2.1). [`BatchProfile`] captures the
//! quantities that determine that iteration's latency — and nothing else —
//! so the same struct serves as the analytical model's input, the random
//! forest's feature source, and the profiler's sample space.

use serde::{Deserialize, Serialize};

/// One prefill chunk scheduled in an iteration.
///
/// `context_before` is the number of prompt tokens of the same request that
/// were already processed in earlier iterations; prefill attention cost for
/// this chunk grows with it (this is what Medha's shrinking-chunk policy
/// reacts to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefillChunkProfile {
    /// Number of prompt tokens processed in this chunk.
    pub chunk_tokens: u32,
    /// Prompt tokens of this request already in the KV cache.
    pub context_before: u32,
}

impl PrefillChunkProfile {
    /// Creates a chunk profile.
    pub fn new(chunk_tokens: u32, context_before: u32) -> Self {
        PrefillChunkProfile {
            chunk_tokens,
            context_before,
        }
    }

    /// The quadratic attention work term for this chunk:
    /// `chunk * (context_before + chunk / 2)` token-pairs (causal).
    pub fn attention_pairs(&self) -> u64 {
        self.chunk_tokens as u64 * (self.context_before as u64 + self.chunk_tokens as u64 / 2)
    }
}

/// The latency-relevant description of one mixed prefill+decode batch.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BatchProfile {
    /// Prefill chunks in this iteration (usually zero or one; QoServe's
    /// dynamic chunking may pull tokens from several queued requests).
    pub prefill: Vec<PrefillChunkProfile>,
    /// Number of requests in decode phase (each contributes one token).
    pub num_decodes: u32,
    /// Total KV-cache tokens read by the decode attention (sum of the
    /// context lengths of all decoding requests).
    pub decode_context_total: u64,
}

impl BatchProfile {
    /// Starts building a profile.
    pub fn builder() -> BatchProfileBuilder {
        BatchProfileBuilder::default()
    }

    /// Total prefill tokens across all chunks.
    pub fn prefill_tokens(&self) -> u32 {
        self.prefill.iter().map(|c| c.chunk_tokens).sum()
    }

    /// Total tokens fed through the model's linear layers this iteration
    /// (prefill tokens plus one token per decode).
    pub fn total_tokens(&self) -> u32 {
        self.prefill_tokens() + self.num_decodes
    }

    /// Sum of per-chunk quadratic attention terms.
    pub fn prefill_attention_pairs(&self) -> u64 {
        self.prefill.iter().map(|c| c.attention_pairs()).sum()
    }

    /// True when the batch does no work at all.
    pub fn is_empty(&self) -> bool {
        self.prefill.is_empty() && self.num_decodes == 0
    }

    /// The feature vector consumed by the random forest, in a fixed order:
    /// `[prefill_tokens, prefill_attention_pairs, num_decodes,
    /// decode_context_total]`.
    pub fn features(&self) -> [f64; 4] {
        [
            self.prefill_tokens() as f64,
            self.prefill_attention_pairs() as f64,
            self.num_decodes as f64,
            self.decode_context_total as f64,
        ]
    }

    /// Number of features produced by [`features`](Self::features).
    pub const NUM_FEATURES: usize = 4;
}

/// Builder for [`BatchProfile`].
///
/// # Example
///
/// ```
/// use qoserve_perf::BatchProfile;
///
/// let batch = BatchProfile::builder()
///     .prefill_chunk(256, 1024)   // 256-token chunk, 1024 tokens already done
///     .prefill_chunk(128, 0)      // second chunk from a fresh request
///     .decodes(16, 16 * 900)      // 16 decodes with 900 tokens context each
///     .build();
/// assert_eq!(batch.prefill_tokens(), 384);
/// assert_eq!(batch.total_tokens(), 400);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchProfileBuilder {
    profile: BatchProfile,
}

impl BatchProfileBuilder {
    /// Adds one prefill chunk of `chunk_tokens`, with `context_before`
    /// prompt tokens of the same request already processed.
    pub fn prefill_chunk(mut self, chunk_tokens: u32, context_before: u32) -> Self {
        if chunk_tokens > 0 {
            self.profile
                .prefill
                .push(PrefillChunkProfile::new(chunk_tokens, context_before));
        }
        self
    }

    /// Sets the decode side: `num` decoding requests whose context lengths
    /// sum to `context_total`.
    pub fn decodes(mut self, num: u32, context_total: u64) -> Self {
        self.profile.num_decodes = num;
        self.profile.decode_context_total = context_total;
        self
    }

    /// Finishes the profile.
    pub fn build(self) -> BatchProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile() {
        let b = BatchProfile::default();
        assert!(b.is_empty());
        assert_eq!(b.total_tokens(), 0);
        assert_eq!(b.features(), [0.0; 4]);
    }

    #[test]
    fn builder_accumulates_chunks() {
        let b = BatchProfile::builder()
            .prefill_chunk(100, 0)
            .prefill_chunk(50, 200)
            .decodes(4, 4000)
            .build();
        assert_eq!(b.prefill_tokens(), 150);
        assert_eq!(b.total_tokens(), 154);
        assert_eq!(b.num_decodes, 4);
        assert!(!b.is_empty());
    }

    #[test]
    fn zero_token_chunks_are_dropped() {
        let b = BatchProfile::builder().prefill_chunk(0, 500).build();
        assert!(b.prefill.is_empty());
    }

    #[test]
    fn attention_pairs_grow_with_context() {
        let fresh = PrefillChunkProfile::new(512, 0);
        let deep = PrefillChunkProfile::new(512, 8192);
        assert!(deep.attention_pairs() > fresh.attention_pairs());
        assert_eq!(fresh.attention_pairs(), 512 * 256);
        assert_eq!(deep.attention_pairs(), 512 * (8192 + 256));
    }

    #[test]
    fn feature_vector_order_is_stable() {
        let b = BatchProfile::builder()
            .prefill_chunk(256, 512)
            .decodes(8, 9000)
            .build();
        let f = b.features();
        assert_eq!(f[0], 256.0);
        assert_eq!(f[1], (256u64 * (512 + 128)) as f64);
        assert_eq!(f[2], 8.0);
        assert_eq!(f[3], 9000.0);
    }

    #[test]
    fn serde_round_trip() {
        let b = BatchProfile::builder()
            .prefill_chunk(64, 64)
            .decodes(2, 128)
            .build();
        let s = serde_json::to_string(&b).unwrap();
        assert_eq!(serde_json::from_str::<BatchProfile>(&s).unwrap(), b);
    }
}
