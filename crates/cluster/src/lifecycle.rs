//! Replica lifecycle: provisioning delays, warm-up, graceful drain, and
//! deterministic scale schedules.
//!
//! The elastic control plane extends the Up/Degraded/Down world of the
//! fault-recovery layer with a full lifecycle:
//!
//! ```text
//! Provisioning ──▶ Warming ──▶ Up ──▶ Draining ──▶ Down
//!   (capacity        (model     (serving;  (admission     (slot
//!    allocated)       loading)   faults may  stopped;      reusable)
//!                                 degrade)   decodes
//!                                            finish to a
//!                                            deadline)
//! ```
//!
//! * A scale-up decision allocates capacity, then waits
//!   [`LifecycleConfig::provision_delay`] before the model starts
//!   loading, and a further [`LifecycleConfig::warmup`] before the
//!   replica accepts any work. Warm-up elapsed before serving is the
//!   `warmup_wasted_us` cost the autoscaler pays for every flap.
//! * A scale-down decision picks a victim via [`drain_victim`] — the
//!   serving replica carrying the *least important* outstanding work,
//!   free-tier-heavy replicas first, mirroring the PR 3 shed ordering —
//!   and drains it: admission stops immediately, queued-but-unarrived
//!   work is recalled for re-routing, running decodes get
//!   [`LifecycleConfig::drain_grace`] to finish, and whatever remains at
//!   the deadline is handed to the existing orphan re-dispatch path.
//!
//! # Determinism rule for scale events
//!
//! Scale events only take effect at *control instants* (scheduled event
//! times, autoscaler ticks, warm-up completions, drain deadlines) that
//! every replica has simulated up to. The elastic runner never acts on a
//! scale decision while any replica's clock is behind it, so lifecycle
//! transitions — like fault injection before them — are a pure function
//! of the seed and the schedule, independent of thread interleaving.

use std::cmp::Reverse;

use qoserve_sim::nums;
use qoserve_sim::rng::exponential_gap_secs;
use qoserve_sim::{SeedStream, SimDuration, SimTime};
use qoserve_workload::RequestSpec;

use crate::router::Router;

/// Timing constants of the replica lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleConfig {
    /// Capacity-allocation delay before model load starts (Provisioning).
    pub provision_delay: SimDuration,
    /// Model-load / cache-warm time before the replica accepts work
    /// (Warming).
    pub warmup: SimDuration,
    /// Grace period a draining replica gets to finish running decodes
    /// before unfinished work is orphaned and re-dispatched.
    pub drain_grace: SimDuration,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            provision_delay: SimDuration::from_secs(10),
            warmup: SimDuration::from_secs(20),
            drain_grace: SimDuration::from_secs(30),
        }
    }
}

/// One externally scheduled membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Provision one new replica (no-op when no slot is free).
    Add,
    /// Gracefully drain one serving replica (no-op when only one replica
    /// is serving — scheduled churn never empties the fleet).
    Drain,
}

/// A scale action pinned to a simulated instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: ScaleAction,
}

/// Seed-derived scale-churn process for the chaos harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleChurnConfig {
    /// Mean scale events per simulated hour (Poisson arrivals).
    pub events_per_hour: f64,
    /// Hard cap on generated events.
    pub max_events: usize,
}

impl Default for ScaleChurnConfig {
    fn default() -> Self {
        ScaleChurnConfig {
            events_per_hour: 6.0,
            max_events: 64,
        }
    }
}

/// Draws a deterministic schedule of Add/Drain events over `horizon`.
///
/// Event times are a Poisson process and the Add-vs-Drain coin is a
/// fixed function of the same per-label stream, so — like
/// `FaultSchedule::generate` — the schedule is a pure function of the
/// seed and config.
pub fn generate_scale_schedule(
    config: &ScaleChurnConfig,
    horizon: SimDuration,
    seeds: &SeedStream,
) -> Vec<ScaleEvent> {
    let mut events = Vec::new();
    if config.events_per_hour <= 0.0 || config.max_events == 0 {
        return events;
    }
    let rate_per_sec = config.events_per_hour / 3_600.0;
    let horizon_secs = horizon.as_secs_f64();
    let mut rng = seeds.derive("scale-churn");
    let mut t = 0.0;
    for _ in 0..config.max_events {
        t += exponential_gap_secs(&mut rng, rate_per_sec);
        if t >= horizon_secs {
            break;
        }
        // A fair deterministic coin: an Exp(1) draw is below its median
        // ln 2 with probability 1/2.
        let action = if exponential_gap_secs(&mut rng, 1.0) < std::f64::consts::LN_2 {
            ScaleAction::Add
        } else {
            ScaleAction::Drain
        };
        events.push(ScaleEvent {
            at: SimTime::from_secs_f64(t),
            action,
        });
    }
    events
}

/// The full elastic plan the runner executes: lifecycle timing, the slot
/// ceiling, an optional external scale schedule (chaos), and an optional
/// feedback autoscaler.
#[derive(Debug, Clone, Default)]
pub struct ElasticPlan {
    /// Lifecycle timing constants.
    pub lifecycle: LifecycleConfig,
    /// Slot ceiling: the fleet may grow to this many replicas. Raised to
    /// the initial fleet size when smaller.
    pub max_replicas: u32,
    /// Externally scheduled membership changes, in any order (the runner
    /// sorts them).
    pub schedule: Vec<ScaleEvent>,
    /// Feedback autoscaler; `None` runs only the external schedule.
    pub autoscale: Option<crate::autoscale::AutoscaleConfig>,
}

impl ElasticPlan {
    /// A plan with no scale events and no autoscaler — the elastic
    /// runner degenerates to the static fault path.
    pub fn none() -> Self {
        ElasticPlan::default()
    }
}

/// Outstanding-work summary of one serving replica, used to pick the
/// scale-down victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainCandidate {
    /// Replica id.
    pub replica: u32,
    /// Outstanding requests of important (non-low) priority.
    pub outstanding_important: u64,
    /// Outstanding low-priority (free-tier) requests.
    pub outstanding_low: u64,
}

/// Picks which serving replica to drain: the one carrying the fewest
/// important requests; among ties, the one carrying the *most* free-tier
/// work (so free-tier-serving replicas drain first, mirroring the PR 3
/// shed ordering where `Priority::Low` absorbs capacity loss); final
/// ties break on the lowest replica id for determinism.
pub fn drain_victim(candidates: &[DrainCandidate]) -> Option<u32> {
    candidates
        .iter()
        .min_by_key(|c| {
            (
                c.outstanding_important,
                Reverse(c.outstanding_low),
                c.replica,
            )
        })
        .map(|c| c.replica)
}

/// Incremental router over a fleet whose membership changes: the same
/// policies as [`Router`], but routing one request at a time over the
/// currently serving set instead of pre-assigning a whole trace.
#[derive(Debug, Clone)]
pub struct FleetRouter {
    policy: Router,
    cursor: u64,
    /// Cumulative routed tokens per replica slot (LeastWork state).
    loads: Vec<u64>,
}

impl FleetRouter {
    /// A fresh router over `max_replicas` slots.
    pub fn new(policy: Router, max_replicas: u32) -> Self {
        FleetRouter {
            policy,
            cursor: 0,
            loads: vec![0; nums::u32_to_usize(max_replicas)],
        }
    }

    /// Routes one request over the serving set; `None` when it is empty.
    ///
    /// `serving` must be sorted ascending (the runner maintains it that
    /// way), so the choice is deterministic.
    pub fn route(&mut self, spec: &RequestSpec, serving: &[u32]) -> Option<u32> {
        if serving.is_empty() {
            return None;
        }
        let target = match self.policy {
            Router::RoundRobin => {
                let t =
                    serving[nums::u64_to_usize(self.cursor % nums::usize_to_u64(serving.len()))];
                self.cursor += 1;
                t
            }
            Router::LeastWork => {
                let mut best = serving[0];
                let mut best_load = self.loads[nums::u32_to_usize(best)];
                for &r in &serving[1..] {
                    let load = self.loads[nums::u32_to_usize(r)];
                    if load < best_load {
                        best = r;
                        best_load = load;
                    }
                }
                best
            }
        };
        self.loads[nums::u32_to_usize(target)] += u64::from(spec.total_tokens());
        Some(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoserve_workload::{QosTier, RequestId, Slo};

    fn spec(id: u64, prompt: u32) -> RequestSpec {
        RequestSpec {
            id: RequestId(id),
            arrival: SimTime::ZERO,
            prompt_tokens: prompt,
            decode_tokens: 10,
            slo: Slo::of_tier(QosTier::paper_q1()),
            app_id: 0,
        }
    }

    fn cand(replica: u32, important: u64, low: u64) -> DrainCandidate {
        DrainCandidate {
            replica,
            outstanding_important: important,
            outstanding_low: low,
        }
    }

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let config = ScaleChurnConfig::default();
        let horizon = SimDuration::from_secs(7_200);
        let a = generate_scale_schedule(&config, horizon, &SeedStream::new(7));
        let b = generate_scale_schedule(&config, horizon, &SeedStream::new(7));
        assert_eq!(a, b);
        assert!(!a.is_empty(), "6/h over 2h should draw events");
        assert!(a.len() <= config.max_events);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "sorted by time");
        assert!(a.iter().all(|e| e.at < SimTime::ZERO + horizon));
        let c = generate_scale_schedule(&config, horizon, &SeedStream::new(8));
        assert_ne!(a, c, "different seeds draw different schedules");
    }

    #[test]
    fn schedule_mixes_both_actions() {
        let config = ScaleChurnConfig {
            events_per_hour: 60.0,
            max_events: 64,
        };
        let events =
            generate_scale_schedule(&config, SimDuration::from_secs(7_200), &SeedStream::new(3));
        assert!(events.iter().any(|e| e.action == ScaleAction::Add));
        assert!(events.iter().any(|e| e.action == ScaleAction::Drain));
    }

    #[test]
    fn zero_rate_draws_nothing() {
        let config = ScaleChurnConfig {
            events_per_hour: 0.0,
            max_events: 64,
        };
        assert!(generate_scale_schedule(
            &config,
            SimDuration::from_secs(3_600),
            &SeedStream::new(1)
        )
        .is_empty());
    }

    #[test]
    fn drain_victim_sheds_free_tier_work_first() {
        // Fewest important requests wins outright.
        assert_eq!(
            drain_victim(&[cand(0, 5, 0), cand(1, 2, 0), cand(2, 9, 0)]),
            Some(1)
        );
        // Ties on important break toward the replica with MORE low-
        // priority work: free-tier-serving replicas drain first.
        assert_eq!(
            drain_victim(&[cand(0, 2, 1), cand(1, 2, 7), cand(2, 2, 3)]),
            Some(1)
        );
        // Full ties break on the lowest id.
        assert_eq!(drain_victim(&[cand(2, 1, 1), cand(1, 1, 1)]), Some(1));
        assert_eq!(drain_victim(&[]), None);
    }

    #[test]
    fn fleet_router_round_robin_cycles_serving_set() {
        let mut fr = FleetRouter::new(Router::RoundRobin, 8);
        let serving = vec![1, 4, 6];
        let targets: Vec<u32> = (0..5)
            .map(|i| fr.route(&spec(i, 100), &serving).unwrap())
            .collect();
        assert_eq!(targets, vec![1, 4, 6, 1, 4]);
        // Membership change mid-stream: the cursor keeps advancing over
        // the new set.
        assert_eq!(fr.route(&spec(9, 100), &[4, 6]), Some(6));
        assert_eq!(fr.route(&spec(10, 100), &[]), None);
    }

    #[test]
    fn fleet_router_least_work_tracks_cumulative_tokens() {
        let mut fr = FleetRouter::new(Router::LeastWork, 4);
        let serving = vec![0, 1];
        // First request to the lowest id, second to the other, third to
        // whichever is lighter.
        assert_eq!(fr.route(&spec(0, 1_000), &serving), Some(0));
        assert_eq!(fr.route(&spec(1, 100), &serving), Some(1));
        assert_eq!(fr.route(&spec(2, 100), &serving), Some(1));
        // A replica leaving the serving set stops receiving work but
        // keeps its load history for when it returns.
        assert_eq!(fr.route(&spec(3, 50), &[0]), Some(0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// The drain victim always has the minimum important count,
            /// and among those, the maximum low-priority count — the PR 3
            /// shed ordering (low-priority work absorbs capacity loss).
            #[test]
            fn victim_matches_shed_ordering(
                counts in proptest::collection::vec((0u64..5, 0u64..5), 1..8),
            ) {
                let candidates: Vec<DrainCandidate> = counts
                    .iter()
                    .enumerate()
                    .map(|(i, &(imp, low))| cand(i as u32, imp, low))
                    .collect();
                let victim = drain_victim(&candidates).expect("non-empty");
                let v = candidates.iter().find(|c| c.replica == victim).unwrap();
                let min_imp = candidates
                    .iter()
                    .map(|c| c.outstanding_important)
                    .min()
                    .unwrap();
                prop_assert_eq!(v.outstanding_important, min_imp);
                let max_low = candidates
                    .iter()
                    .filter(|c| c.outstanding_important == min_imp)
                    .map(|c| c.outstanding_low)
                    .max()
                    .unwrap();
                prop_assert_eq!(v.outstanding_low, max_low);
            }

            /// The router never targets outside the serving set.
            #[test]
            fn router_stays_in_serving_set(
                serving in proptest::collection::btree_set(0u32..8, 1..8),
                policy in prop_oneof![Just(Router::RoundRobin), Just(Router::LeastWork)],
                prompts in proptest::collection::vec(1u32..2_000, 1..32),
            ) {
                let serving: Vec<u32> = serving.into_iter().collect();
                let mut fr = FleetRouter::new(policy, 8);
                for (i, p) in prompts.iter().enumerate() {
                    let t = fr.route(&spec(i as u64, *p), &serving).expect("non-empty");
                    prop_assert!(serving.contains(&t));
                }
            }
        }
    }
}
